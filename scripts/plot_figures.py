#!/usr/bin/env python3
"""Plot the paper's Figures 4-8 from the bench CSV exports.

Usage:
    mkdir -p out && FDQOS_CSV_DIR=out ./build/bench/bench_fig4_td \
        && FDQOS_CSV_DIR=out ./build/bench/bench_fig5_tdu \
        && FDQOS_CSV_DIR=out ./build/bench/bench_fig6_tm \
        && FDQOS_CSV_DIR=out ./build/bench/bench_fig7_tmr \
        && FDQOS_CSV_DIR=out ./build/bench/bench_fig8_pa
    python3 scripts/plot_figures.py out

Produces out/figN_*.png in the paper's layout: safety margins on the
x-axis, one line per predictor, an arrow toward "better". Requires
matplotlib; without it, prints the parsed series as text.
"""

import csv
import sys
from pathlib import Path

FIGURES = {
    "fig4_td": ("Figure 4 - T_D (ms)", True),
    "fig5_tdu": ("Figure 5 - T_D^U (ms)", True),
    "fig6_tm": ("Figure 6 - T_M (ms)", True),
    "fig7_tmr": ("Figure 7 - T_MR (ms)", False),
    "fig8_pa": ("Figure 8 - P_A", False),
}


def load(path: Path):
    with path.open() as f:
        rows = list(csv.reader(f))
    header, body = rows[0], rows[1:]
    margins = [r[0] for r in body]
    series = {
        pred: [float(r[i + 1]) for r in body]
        for i, pred in enumerate(header[1:])
    }
    return margins, series


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("out")
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib not available - printing series as text")

    for stem, (title, smaller_better) in FIGURES.items():
        path = out_dir / f"{stem}.csv"
        if not path.exists():
            print(f"skip {path} (not found; run the bench with FDQOS_CSV_DIR)")
            continue
        margins, series = load(path)
        if plt is None:
            print(f"\n{title}")
            for pred, values in series.items():
                print(f"  {pred:10s} " + " ".join(f"{v:10.3f}" for v in values))
            continue
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for pred, values in series.items():
            ax.plot(margins, values, marker="o", label=pred)
        ax.set_title(title + ("  (lower = better)" if smaller_better else "  (higher = better)"))
        ax.set_xlabel("safety margin")
        ax.grid(True, alpha=0.3)
        ax.legend()
        fig.tight_layout()
        png = out_dir / f"{stem}.png"
        fig.savefig(png, dpi=130)
        print(f"wrote {png}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
