#!/usr/bin/env bash
# End-to-end smoke test for the `fdqos serve` live ingest daemon
# (docs/serve.md), run by `ctest -L serve` and the CI serve job:
#
#   1. start the daemon on ephemeral UDP + HTTP ports with capture on,
#   2. aim a bench_serve --send-only burst at it over loopback,
#   3. validate the /metrics exposition structurally and require the
#      fdqos_serve_* + fdqos_udp_send_failures_total families,
#   4. check the /runs row carries verb "serve",
#   5. SIGTERM the daemon and require a clean exit (finalized segments),
#   6. replay a captured segment through `fdqos replay`.
#
# Usage: serve_smoke.sh FDQOS_BIN BENCH_SERVE_BIN CHECK_EXPOSITION_PY
set -u

FDQOS="$1"
BENCH="$2"
CHECKER="$3"

workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2> /dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  echo "--- serve.log ---" >&2
  cat "$workdir/serve.log" >&2 || true
  exit 1
}

# 1. Daemon on ephemeral ports; small segments so the burst rotates at
# least one .fdt out before shutdown.
"$FDQOS" serve --port 0 --serve-metrics 0 --max-endpoints 16 \
    --eta-ms 100 --batch 32 --segment-samples 5000 \
    --capture-dir "$workdir" --capture-prefix smoke \
    > "$workdir/serve.log" 2>&1 &
serve_pid=$!

udp_port=""
http_port=""
for _ in $(seq 1 100); do
  udp_port=$(grep -oE 'udp://127\.0\.0\.1:[0-9]+' "$workdir/serve.log" \
             | head -1 | grep -oE '[0-9]+$' || true)
  http_port=$(grep -oE 'http://127\.0\.0\.1:[0-9]+' "$workdir/serve.log" \
              | head -1 | grep -oE '[0-9]+$' || true)
  [ -n "$udp_port" ] && [ -n "$http_port" ] && break
  kill -0 "$serve_pid" 2> /dev/null || fail "daemon died during startup"
  sleep 0.1
done
[ -n "$udp_port" ] || fail "no UDP port line in serve.log"
[ -n "$http_port" ] || fail "no HTTP port line in serve.log"

for _ in $(seq 1 50); do
  curl -sf "http://127.0.0.1:$http_port/healthz" > /dev/null && break
  sleep 0.1
done
curl -sf "http://127.0.0.1:$http_port/healthz" | grep -qx ok \
    || fail "/healthz did not answer ok"

# 2. Loopback burst: enough heartbeats to rotate a 5000-sample segment.
"$BENCH" --send-only --target "$udp_port" --rate 100000 --duration-s 0.2 \
    --endpoints 8 --records 64 >> "$workdir/serve.log" 2>&1 \
    || fail "bench_serve --send-only failed"
sleep 0.5  # let the daemon drain and publish a status tick

# 3. Structural exposition check + the families this PR introduces.
curl -sf "http://127.0.0.1:$http_port/metrics" > "$workdir/scrape.prom" \
    || fail "curl /metrics failed"
python3 "$CHECKER" \
    --require fdqos_serve_batches_total \
    --require fdqos_serve_datagrams_total \
    --require fdqos_serve_drops_total \
    --require fdqos_serve_batch_size \
    --require fdqos_udp_send_failures_total \
    "$workdir/scrape.prom" || fail "exposition check failed"
# The burst must actually have been counted, not just declared.
awk '$1 == "fdqos_serve_datagrams_total" && $2 + 0 > 0 { found = 1 }
     END { exit !found }' "$workdir/scrape.prom" \
    || fail "fdqos_serve_datagrams_total stayed zero"

# 4. The run registry carries the live serve row.
curl -sf "http://127.0.0.1:$http_port/runs" > "$workdir/runs.json" \
    || fail "curl /runs failed"
grep -q '"verb":"serve"' "$workdir/runs.json" || fail "no serve row in /runs"

# 5. Clean SIGTERM shutdown: exit 0 and finalized segments.
kill -TERM "$serve_pid"
serve_rc=0
wait "$serve_pid" || serve_rc=$?
serve_pid=""
[ "$serve_rc" -eq 0 ] || fail "daemon exited $serve_rc on SIGTERM"
grep -q '\[fdqos serve\] shutdown:' "$workdir/serve.log" \
    || fail "no shutdown summary in serve.log"

# 6. Every captured segment replays as a standalone trace.
segments=$(ls "$workdir"/smoke-*.fdt 2> /dev/null)
[ -n "$segments" ] || fail "no capture segments written"
for segment in $segments; do
  "$FDQOS" replay --trace "$segment" --runs 1 --cycles 40 --metric td \
      > /dev/null || fail "replay of $segment failed"
done

echo "serve_smoke: PASS (udp=$udp_port http=$http_port segments:" \
     "$(echo "$segments" | wc -w))"
