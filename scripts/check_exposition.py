#!/usr/bin/env python3
"""Minimal Prometheus text-exposition (version 0.0.4) validator.

Reads an exposition from stdin (or a file argument) and exits non-zero on
the first structural violation. Used by the CI scrape-smoke step to gate
what `fdqos --serve-metrics` actually emits — a scraper will silently drop
malformed families, so "curl returned 200" alone proves nothing.

Checks:
  * every non-comment line parses as  name{labels} value  or  name value
  * metric/label names match the Prometheus grammar
  * label values are properly quoted, with only \\\\ \\" \\n escapes
  * sample values are floats or the canonical NaN/+Inf/-Inf spellings
  * every sample belongs to the most recent HELP/TYPE family
    (histograms may append _bucket/_sum/_count to the family name)
  * at most one TYPE line per family, HELP before TYPE
  * histogram bucket counts are monotone in le order and end at +Inf

Optionally asserts required metric names are present:
  check_exposition.py --require fdqos_detector_suspect --require ... file
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$"
)
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class Violation(Exception):
    pass


def parse_value(raw):
    if raw == "NaN":
        return math.nan
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    # Reject non-canonical spellings a lax float() would accept.
    if raw.lower() in ("nan", "inf", "+inf", "-inf", "infinity", "-infinity"):
        raise Violation(f"non-canonical non-finite value {raw!r}")
    try:
        return float(raw)
    except ValueError:
        raise Violation(f"unparseable sample value {raw!r}") from None


def parse_labels(raw):
    """Parse the inside of {...}; returns a dict. Raises on bad escapes."""
    labels = {}
    i, n = 0, len(raw)
    while i < n:
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', raw[i:])
        if not m:
            raise Violation(f"bad label syntax at ...{raw[i:]!r}")
        name = m.group(1)
        i += m.end()
        value = []
        while True:
            if i >= n:
                raise Violation("unterminated label value")
            ch = raw[i]
            if ch == "\\":
                if i + 1 >= n or raw[i + 1] not in ('\\', '"', 'n'):
                    raise Violation(f"invalid escape in label value: \\{raw[i+1:i+2]}")
                value.append({"\\": "\\", '"': '"', "n": "\n"}[raw[i + 1]])
                i += 2
            elif ch == '"':
                i += 1
                break
            elif ch == "\n":
                raise Violation("raw newline inside label value")
            else:
                value.append(ch)
                i += 1
        labels[name] = "".join(value)
        if i < n:
            if raw[i] != ",":
                raise Violation(f"expected ',' between labels, got {raw[i]!r}")
            i += 1
    return labels


def family_of(name, declared):
    """Resolve a sample name to its declared family (histogram suffixes)."""
    if name in declared:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in declared:
            return name[: -len(suffix)]
    return None


def check(text, required=()):
    declared_types = {}   # family -> type
    helped = set()
    buckets = {}          # (family, frozen non-le labels) -> [(le, count)]
    seen_names = set()
    current_family = None

    for lineno, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        try:
            if line.startswith("# HELP "):
                parts = line[len("# HELP "):].split(" ", 1)
                name = parts[0]
                if not METRIC_NAME.match(name):
                    raise Violation(f"bad metric name in HELP: {name!r}")
                if name in helped:
                    raise Violation(f"duplicate HELP for {name}")
                helped.add(name)
                current_family = name
            elif line.startswith("# TYPE "):
                parts = line[len("# TYPE "):].split(" ")
                if len(parts) != 2:
                    raise Violation("TYPE line needs exactly name and type")
                name, mtype = parts
                if not METRIC_NAME.match(name):
                    raise Violation(f"bad metric name in TYPE: {name!r}")
                if mtype not in VALID_TYPES:
                    raise Violation(f"unknown type {mtype!r}")
                if name in declared_types:
                    raise Violation(f"duplicate TYPE for {name}")
                declared_types[name] = mtype
                current_family = name
            elif line.startswith("#"):
                continue  # free-form comment
            else:
                m = SAMPLE.match(line)
                if not m:
                    raise Violation(f"unparseable sample line {line!r}")
                name = m.group("name")
                labels = parse_labels(m.group("labels") or "")
                value = parse_value(m.group("value"))
                family = family_of(name, declared_types)
                if family is None:
                    raise Violation(f"sample {name!r} has no TYPE declaration")
                if current_family != family:
                    raise Violation(
                        f"sample {name!r} appears outside its family block "
                        f"(current family: {current_family!r})"
                    )
                seen_names.add(family)
                if declared_types[family] == "histogram" and name.endswith("_bucket"):
                    if "le" not in labels:
                        raise Violation(f"histogram bucket {name!r} missing le label")
                    le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
                    key = (family, frozenset(
                        (k, v) for k, v in labels.items() if k != "le"))
                    buckets.setdefault(key, []).append((le, value))
        except Violation as v:
            raise Violation(f"line {lineno}: {v}") from None

    for (family, _), series in buckets.items():
        les = [le for le, _ in series]
        if les != sorted(les):
            raise Violation(f"{family}: buckets not in increasing le order")
        if not les or not math.isinf(les[-1]):
            raise Violation(f"{family}: bucket series does not end at le=\"+Inf\"")
        counts = [c for _, c in series]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise Violation(f"{family}: bucket counts are not monotone")

    missing = [r for r in required if r not in seen_names]
    if missing:
        raise Violation(f"required metrics absent: {', '.join(missing)}")

    return len(seen_names)


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("file", nargs="?", help="exposition file (default stdin)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="METRIC", help="fail unless this family has samples")
    args = ap.parse_args()

    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    if not text.strip():
        print("check_exposition: empty exposition", file=sys.stderr)
        return 1
    try:
        families = check(text, required=args.require)
    except Violation as v:
        print(f"check_exposition: {v}", file=sys.stderr)
        return 1
    print(f"check_exposition: OK ({families} families with samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
