// bench_parallel — perf-trajectory baseline for the exec:: engine.
//
// Times the two hot parallel paths at jobs = 1 (exact serial path) and
// jobs = N (all cores, or --jobs N), verifies in-process that the parallel
// output is identical to serial, and writes BENCH_parallel.json:
//
//   [{"bench": "qos_fig4", "jobs": 1, "wall_s": 12.3, "speedup": 1.0}, ...]
//
// speedup is serial wall time / this entry's wall time for the same bench,
// so the jobs = 1 rows carry 1.0 and the jobs = N rows carry the headline
// number. Scale knobs (reduced sweeps for CI):
//
//   bench_parallel [--runs N] [--cycles N] [--n N] [--jobs N]
//                  [--out FILE]
//
// Defaults reproduce the paper's Fig-4 configuration (13 runs x 10 000
// cycles x 30 detectors) and the Table-2 grid search on 20 000 delays.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "exec/thread_pool.hpp"
#include "exp/accuracy_experiment.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"
#include "forecast/arima/order_selection.hpp"

using namespace fdqos;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

struct Entry {
  std::string bench;
  std::size_t jobs;
  double wall_s;
  double speedup;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto runs = static_cast<std::size_t>(args.get_int("--runs", 13));
  const auto cycles = args.get_int("--cycles", 10000);
  const auto n_delays = static_cast<std::size_t>(args.get_int("--n", 20000));
  const auto jobs_n = static_cast<std::size_t>(
      args.get_int("--jobs", static_cast<std::int64_t>(exec::hardware_jobs())));
  const std::string out_path = args.get_string("--out", "BENCH_parallel.json");
  const std::size_t hw = exec::hardware_jobs();
  if (jobs_n > hw) {
    // A speedup < 1 at jobs > hw is oversubscription, not a scheduling
    // regression — see docs/parallelism.md ("Reading the baseline").
    std::fprintf(stderr,
                 "[bench_parallel] note: jobs=%zu > %zu hardware thread(s); "
                 "expect speedup <= 1\n",
                 jobs_n, hw);
  }

  std::vector<Entry> entries;

  // --- Fig-4 QoS experiment ---------------------------------------------
  exp::QosExperimentConfig qos;
  qos.runs = runs;
  qos.num_cycles = cycles;
  std::fprintf(stderr, "[bench_parallel] qos_fig4: %s\n",
               exp::qos_config_summary(qos).c_str());

  exp::QosReport serial_report;
  qos.jobs = 1;
  const double qos_serial_s =
      wall_seconds([&] { serial_report = exp::run_qos_experiment(qos); });
  entries.push_back({"qos_fig4", 1, qos_serial_s, 1.0});
  std::fprintf(stderr, "[bench_parallel] qos_fig4 jobs=1: %.2fs\n",
               qos_serial_s);

  exp::QosReport parallel_report;
  qos.jobs = jobs_n;
  const double qos_parallel_s =
      wall_seconds([&] { parallel_report = exp::run_qos_experiment(qos); });
  entries.push_back(
      {"qos_fig4", jobs_n, qos_parallel_s, qos_serial_s / qos_parallel_s});
  std::fprintf(stderr, "[bench_parallel] qos_fig4 jobs=%zu: %.2fs (%.2fx)\n",
               jobs_n, qos_parallel_s, qos_serial_s / qos_parallel_s);

  if (exp::qos_report_fingerprint(serial_report) !=
      exp::qos_report_fingerprint(parallel_report)) {
    std::fprintf(stderr,
                 "[bench_parallel] FAIL: parallel QoS report differs from "
                 "serial\n");
    return 1;
  }

  // --- Table-2 ARIMA order grid search ----------------------------------
  exp::AccuracyExperimentConfig acc;
  acc.n_oneway = n_delays;
  const auto series = exp::generate_delay_series(acc);
  forecast::OrderSelectionConfig selection;  // 4x3x4 default grid

  forecast::OrderSelectionResult serial_sel;
  selection.jobs = 1;
  const double sel_serial_s = wall_seconds(
      [&] { serial_sel = forecast::select_arima_order(series, selection); });
  entries.push_back({"arima_grid", 1, sel_serial_s, 1.0});
  std::fprintf(stderr, "[bench_parallel] arima_grid jobs=1: %.2fs\n",
               sel_serial_s);

  forecast::OrderSelectionResult parallel_sel;
  selection.jobs = jobs_n;
  const double sel_parallel_s = wall_seconds(
      [&] { parallel_sel = forecast::select_arima_order(series, selection); });
  entries.push_back(
      {"arima_grid", jobs_n, sel_parallel_s, sel_serial_s / sel_parallel_s});
  std::fprintf(stderr, "[bench_parallel] arima_grid jobs=%zu: %.2fs (%.2fx)\n",
               jobs_n, sel_parallel_s, sel_serial_s / sel_parallel_s);

  if (!(serial_sel.best == parallel_sel.best) ||
      serial_sel.best_msqerr != parallel_sel.best_msqerr) {
    std::fprintf(stderr,
                 "[bench_parallel] FAIL: parallel grid search picked %s, "
                 "serial picked %s\n",
                 parallel_sel.best.to_string().c_str(),
                 serial_sel.best.to_string().c_str());
    return 1;
  }

  // --- Write the baseline ------------------------------------------------
  std::string json = "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char line[192];
    std::snprintf(line, sizeof line,
                  "  {\"bench\": \"%s\", \"jobs\": %zu, \"hw_jobs\": %zu, "
                  "\"wall_s\": %.3f, \"speedup\": %.2f}%s\n",
                  entries[i].bench.c_str(), entries[i].jobs, hw,
                  entries[i].wall_s, entries[i].speedup,
                  i + 1 < entries.size() ? "," : "");
    json += line;
  }
  json += "]\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench_parallel] cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::fprintf(stderr, "[bench_parallel] wrote %s (reports identical)\n",
               out_path.c_str());
  return 0;
}
