// bench_detector_bank — overhead A/B of the batched DetectorBank engine
// against the legacy one-FreshnessDetector-per-spec layout.
//
// For each suite width W (default 30, 300, 3000 — the paper suite and two
// synthetic replications of it, keeping 5 distinct predictors at every
// width) the same QoS experiment runs once per engine. The harness verifies
// in-process that both engines render byte-identical reports, asserts the
// bank's shared-predictor evaluation cuts predictor observe() calls by at
// least 3x, and writes BENCH_detector_bank.json:
//
//   [{"bench": "detector_bank", "width": 30, "runs": 2, "cycles": 400,
//     "legacy_wall_s": ..., "bank_wall_s": ..., "speedup": ...,
//     "legacy_predictor_updates": ..., "bank_predictor_updates": ...,
//     "update_reduction": ..., "bank_coalesced_timers": ...}, ...]
//
// Scale knobs (reduced sweeps for CI):
//   bench_detector_bank [--runs N] [--cycles N] [--widths W1,W2,...]
//                       [--jobs N] [--seed S] [--out FILE]
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"
#include "fd/suite.hpp"

using namespace fdqos;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

// W lanes built from ceil(W/30) copies of the paper suite. Copies keep the
// canonical predictor_key (so the bank still shares 5 predictor groups at
// every width) but get a "#r" name suffix — names must be unique.
std::vector<fd::FdSpec> replicated_suite(std::size_t width) {
  std::vector<fd::FdSpec> suite;
  suite.reserve(width);
  std::size_t replica = 0;
  while (suite.size() < width) {
    for (auto& spec : fd::make_paper_suite()) {
      if (suite.size() == width) break;
      if (replica > 0) spec.name += "#" + std::to_string(replica);
      suite.push_back(std::move(spec));
    }
    ++replica;
  }
  return suite;
}

std::vector<std::size_t> parse_widths(const std::string& csv) {
  std::vector<std::size_t> widths;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) widths.push_back(std::stoul(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return widths;
}

struct Entry {
  std::size_t width;
  double legacy_wall_s;
  double bank_wall_s;
  std::uint64_t legacy_updates;
  std::uint64_t bank_updates;
  std::uint64_t bank_coalesced;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto runs = static_cast<std::size_t>(args.get_int("--runs", 2));
  const auto cycles = args.get_int("--cycles", 400);
  const auto jobs = static_cast<std::size_t>(args.get_int("--jobs", 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("--seed", 42));
  const std::vector<std::size_t> widths =
      parse_widths(args.get_string("--widths", "30,300,3000"));
  const std::string out_path =
      args.get_string("--out", "BENCH_detector_bank.json");

  std::vector<Entry> entries;
  bool ok = true;
  for (const std::size_t width : widths) {
    exp::QosExperimentConfig config;
    config.runs = runs;
    config.num_cycles = cycles;
    config.seed = seed;
    config.jobs = jobs;
    config.mttc = Duration::seconds(90);
    config.ttr = Duration::seconds(20);
    // The suite is assembled here (not per engine) so both engines see the
    // exact same specs regardless of width.
    config.include_paper_suite = false;
    config.extra_specs = replicated_suite(width);

    Entry entry{};
    entry.width = width;

    config.use_detector_bank = false;
    exp::QosReport legacy_report;
    entry.legacy_wall_s =
        wall_seconds([&] { legacy_report = exp::run_qos_experiment(config); });
    entry.legacy_updates = legacy_report.bank.predictor_updates;

    config.use_detector_bank = true;
    exp::QosReport bank_report;
    entry.bank_wall_s =
        wall_seconds([&] { bank_report = exp::run_qos_experiment(config); });
    entry.bank_updates = bank_report.bank.predictor_updates;
    entry.bank_coalesced = bank_report.bank.coalesced_timers;

    if (exp::qos_report_fingerprint(legacy_report) !=
        exp::qos_report_fingerprint(bank_report)) {
      std::fprintf(stderr,
                   "[bench_detector_bank] FAIL: width %zu bank report "
                   "differs from legacy\n",
                   width);
      ok = false;
    }
    const double reduction =
        entry.bank_updates > 0
            ? static_cast<double>(entry.legacy_updates) /
                  static_cast<double>(entry.bank_updates)
            : 0.0;
    std::fprintf(stderr,
                 "[bench_detector_bank] width=%zu legacy=%.3fs bank=%.3fs "
                 "(%.2fx) predictor updates %llu -> %llu (%.1fx fewer)\n",
                 width, entry.legacy_wall_s, entry.bank_wall_s,
                 entry.legacy_wall_s / entry.bank_wall_s,
                 static_cast<unsigned long long>(entry.legacy_updates),
                 static_cast<unsigned long long>(entry.bank_updates),
                 reduction);
    if (reduction < 3.0) {
      std::fprintf(stderr,
                   "[bench_detector_bank] FAIL: width %zu predictor-update "
                   "reduction %.2fx < 3x\n",
                   width, reduction);
      ok = false;
    }
    entries.push_back(entry);
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char line[320];
    std::snprintf(
        line, sizeof line,
        "  {\"bench\": \"detector_bank\", \"width\": %zu, \"runs\": %zu, "
        "\"cycles\": %lld, \"legacy_wall_s\": %.3f, \"bank_wall_s\": %.3f, "
        "\"speedup\": %.2f, \"legacy_predictor_updates\": %llu, "
        "\"bank_predictor_updates\": %llu, \"update_reduction\": %.2f, "
        "\"bank_coalesced_timers\": %llu}%s\n",
        e.width, runs, static_cast<long long>(cycles), e.legacy_wall_s,
        e.bank_wall_s, e.legacy_wall_s / e.bank_wall_s,
        static_cast<unsigned long long>(e.legacy_updates),
        static_cast<unsigned long long>(e.bank_updates),
        static_cast<double>(e.legacy_updates) /
            static_cast<double>(e.bank_updates),
        static_cast<unsigned long long>(e.bank_coalesced),
        i + 1 < entries.size() ? "," : "");
    json += line;
  }
  json += "]\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench_detector_bank] cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::fprintf(stderr, "[bench_detector_bank] wrote %s%s\n", out_path.c_str(),
               ok ? " (reports identical)" : "");
  return ok ? 0 : 1;
}
