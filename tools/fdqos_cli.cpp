// fdqos — command-line driver for the experiment harness.
//
//   fdqos qos        [--runs N] [--cycles N] [--seed S] [--eta-ms MS]
//                    [--mttc-s S] [--ttr-s S] [--baselines] [--pareto]
//                    [--metric td|tdu|tm|tmr|pa|all] [--csv FILE]
//                    [--metrics-out FILE] [--metrics-jsonl-out FILE]
//                    [--trace-out FILE] [--progress SECONDS] [--jobs N]
//   fdqos chaos      --scenario NAME [--seed S] [--jobs N] [--runs N]
//                    [--cycles N] [--mttc-s S] [--ttr-s S]
//                    [--metric td|tdu|tm|tmr|pa|all] [--csv FILE] | --list
//   fdqos accuracy   [--n N] [--seed S] [--csv FILE]
//                    [--metrics-out FILE] [--progress SECONDS] [--jobs N]
//   fdqos link       [--n N] [--seed S]
//   fdqos order-select [--n N] [--seed S] [--pmax P] [--dmax D] [--qmax Q]
//                    [--jobs N]
//
// --jobs N runs independent experiment units (QoS runs, predictors, ARIMA
// candidates) on N threads; output is byte-identical at every N. Default
// is the machine's core count; --jobs 1 is the exact serial path.
//
// Everything prints the same paper-layout tables as the bench binaries,
// with the experiment knobs exposed as flags instead of env vars.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "exec/thread_pool.hpp"
#include "exp/accuracy_experiment.hpp"
#include "exp/chaos.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"
#include "exp/workload.hpp"
#include "faultx/fault_models.hpp"
#include "faultx/scenarios.hpp"
#include "forecast/arima/order_selection.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/runs.hpp"
#include "obs/trace.hpp"
#include "serve/daemon.hpp"
#include "wan/italy_japan.hpp"
#include "wan/tracestore.hpp"
#include "workload/leader_election.hpp"

using namespace fdqos;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fdqos "
               "<qos|chaos|workload|accuracy|link|order-select|record|replay|"
               "serve|trace> [flags]\n"
               "  qos          reproduce the Figures 4-8 experiment\n"
               "               (--trace FILE runs it on a recorded trace,\n"
               "               --policy truncate|wrap|extend at trace end)\n"
               "  chaos        run the QoS experiment under a fault scenario\n"
               "               and check the QoS invariants (--list to see\n"
               "               scenarios; --scenario NAME --seed N --jobs J)\n"
               "  workload     run a named application workload over the\n"
               "               detector grid (--name leader-election|qos,\n"
               "               --list to enumerate; same --scenario/--seed/\n"
               "               --jobs/--sim-engine knobs as qos/chaos; see\n"
               "               docs/workloads.md)\n"
               "  accuracy     reproduce the Table 3 experiment\n"
               "  link         characterize the WAN model (Table 4)\n"
               "  order-select run the ARIMA order grid search (Table 2)\n"
               "  record       capture a delay trace (.fdt or CSV) from the\n"
               "               WAN model, optionally faulted (--scenario)\n"
               "  replay       run the 30-detector comparison on a recorded\n"
               "               trace (--trace FILE required, --policy ...)\n"
               "  serve        run the live UDP heartbeat ingest daemon\n"
               "               (--port P, --max-endpoints M, --eta-ms MS,\n"
               "               --suite lite|paper, --capture-dir DIR,\n"
               "               --capture-prefix P, --segment-samples N,\n"
               "               --no-capture, --duration-s S, --batch N;\n"
               "               SIGINT/SIGTERM shut down cleanly; see\n"
               "               docs/serve.md)\n"
               "  trace        deprecated alias for `record` (CSV output)\n"
               "qos/accuracy also take --metrics-out FILE (Prometheus text),\n"
               "--metrics-jsonl-out FILE, --trace-out FILE (chrome://tracing)\n"
               "and --progress SECONDS (periodic telemetry on stderr)\n"
               "qos/chaos/record/replay take --serve-metrics PORT (live HTTP\n"
               "/metrics, /healthz and /runs on 127.0.0.1; 0 = ephemeral,\n"
               "the bound port is printed to stderr) and qos/chaos/replay\n"
               "--progress-jsonl FILE (machine-readable progress records,\n"
               "one JSON object per --progress line)\n"
               "qos/accuracy/order-select take --jobs N (worker threads;\n"
               "default = cores, 1 = serial, output identical at every N)\n"
               "qos/chaos take --engine bank|legacy (bank = one batched\n"
               "DetectorBank per run, the default; legacy = one detector\n"
               "per spec — reports are byte-identical either way)\n"
               "qos/chaos/replay take --sim-engine seq|lp (lp = conservative\n"
               "parallel simulation core, --lps N logical processes and\n"
               "--lp-jobs N workers per run; env FDQOS_SIM_ENGINE sets the\n"
               "default — reports are byte-identical at every setting)\n"
               "qos/chaos take --endpoints M (fleet mode: M independent\n"
               "monitored endpoints on one fd::FleetBank per shard) and\n"
               "--shards S (0 = auto; see docs/fleet.md)\n"
               "see docs/tracestore.md for the record/replay walkthrough\n"
               "run `fdqos <command> --help` is not needed: unknown flags "
               "are listed on error\n");
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  return std::fclose(f) == 0 && ok;
}

// --engine bank|legacy (qos + chaos). Both engines produce byte-identical
// reports; legacy exists for the equivalence suite and overhead A/Bs.
bool parse_engine(const ArgParser& args, exp::QosExperimentConfig& config) {
  const std::string engine = args.get_string("--engine", "bank");
  if (engine == "bank") {
    config.use_detector_bank = true;
  } else if (engine == "legacy") {
    config.use_detector_bank = false;
  } else {
    std::fprintf(stderr, "fdqos: unknown --engine '%s' (want bank|legacy)\n",
                 engine.c_str());
    return false;
  }
  return true;
}

// --sim-engine seq|lp and --lps N (qos + chaos + replay). seq runs each
// simulation on one sequential Simulator; lp partitions it across logical
// processes on the conservative parallel core (docs/pdes.md). Reports are
// byte-identical either way. The FDQOS_SIM_ENGINE environment variable
// supplies the default when the flag is absent (so whole ctest/CI suites
// can be steered onto the lp engine without touching every invocation).
bool parse_sim_engine(const ArgParser& args, exp::QosExperimentConfig& config) {
  std::string engine = args.get_string("--sim-engine", "");
  if (engine.empty()) {
    const char* env = std::getenv("FDQOS_SIM_ENGINE");
    engine = env != nullptr ? env : "seq";
  }
  if (engine == "seq") {
    config.sim_engine = exp::SimEngine::kSeq;
  } else if (engine == "lp") {
    config.sim_engine = exp::SimEngine::kLp;
  } else {
    std::fprintf(stderr,
                 "fdqos: unknown sim engine '%s' (want seq|lp; flag "
                 "--sim-engine or env FDQOS_SIM_ENGINE)\n",
                 engine.c_str());
    return false;
  }
  const int lps = static_cast<int>(args.get_int("--lps", 4));
  if (lps < 1) {
    std::fprintf(stderr, "fdqos: --lps must be >= 1 (got %d)\n", lps);
    return false;
  }
  config.lps = static_cast<std::size_t>(lps);
  config.lp_jobs = static_cast<std::size_t>(args.get_int("--lp-jobs", 0));
  return true;
}

// --endpoints M and --shards S (qos + chaos): fleet mode, M independent
// monitored endpoints sharded over S fd::FleetBank shards (docs/fleet.md).
// M = 1 (the default) is the exact legacy single-endpoint experiment;
// --shards 0 picks min(endpoints, hardware jobs).
bool parse_fleet(const ArgParser& args, exp::QosExperimentConfig& config) {
  const std::int64_t endpoints = args.get_int("--endpoints", 1);
  if (endpoints < 1) {
    std::fprintf(stderr, "fdqos: --endpoints must be >= 1 (got %lld)\n",
                 static_cast<long long>(endpoints));
    return false;
  }
  config.endpoints = static_cast<std::size_t>(endpoints);
  const std::int64_t shards = args.get_int("--shards", 0);
  if (shards < 0) {
    std::fprintf(stderr, "fdqos: --shards must be >= 0 (got %lld)\n",
                 static_cast<long long>(shards));
    return false;
  }
  config.fleet_shards = static_cast<std::size_t>(shards);
  if (config.endpoints > 1 && !config.use_detector_bank) {
    std::fprintf(stderr,
                 "fdqos: --endpoints > 1 requires --engine bank (the fleet "
                 "has no legacy engine)\n");
    return false;
  }
  return true;
}

// --policy truncate|wrap|extend (qos + replay): what replay does at trace
// end. Only meaningful with --trace; see docs/tracestore.md.
bool parse_policy(const ArgParser& args, exp::QosExperimentConfig& config) {
  const std::string policy = args.get_string("--policy", "truncate");
  const auto parsed = wan::parse_replay_policy(policy);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "fdqos: unknown --policy '%s' (want truncate|wrap|extend)\n",
                 policy.c_str());
    return false;
  }
  config.replay_policy = *parsed;
  return true;
}

int check_unknown(const ArgParser& args) {
  const auto unknown = args.unknown_keys();
  if (unknown.empty()) return 0;
  for (const auto& key : unknown) {
    std::fprintf(stderr, "fdqos: unknown flag %s\n", key.c_str());
  }
  return 2;
}

// Shared observability flags: --metrics-out FILE, --trace-out FILE,
// --progress SECONDS, --progress-jsonl FILE, --serve-metrics PORT. Any of
// them switches the global instrumentation on; ObsSession tears the trace
// sink and HTTP exporter down and writes the metrics files on scope exit.
struct ObsSession {
  std::string metrics_out;
  std::string metrics_jsonl_out;
  std::unique_ptr<obs::TraceWriter> tracer;
  std::unique_ptr<obs::HttpExporter> exporter;
  std::unique_ptr<obs::JsonlSink> progress_jsonl;
  double progress_s = 0.0;
  bool ok = true;  // false when a requested sink could not be set up

  static ObsSession from_args(const ArgParser& args) {
    ObsSession session;
    session.metrics_out = args.get_string("--metrics-out", "");
    session.metrics_jsonl_out = args.get_string("--metrics-jsonl-out", "");
    const std::string trace_out = args.get_string("--trace-out", "");
    session.progress_s = args.get_double("--progress", 0.0);
    const auto serve_port = args.get_int("--serve-metrics", -1);
    const std::string progress_jsonl_out =
        args.get_string("--progress-jsonl", "");
    if (!session.metrics_out.empty() || !session.metrics_jsonl_out.empty() ||
        !trace_out.empty() || session.progress_s > 0.0 || serve_port >= 0 ||
        !progress_jsonl_out.empty()) {
      obs::set_enabled(true);
    }
    if (!trace_out.empty()) {
      session.tracer = std::make_unique<obs::TraceWriter>(trace_out);
      if (!session.tracer->ok()) {
        std::fprintf(stderr, "fdqos: cannot write %s\n", trace_out.c_str());
        session.tracer.reset();
      } else {
        obs::set_trace_writer(session.tracer.get());
      }
    }
    if (serve_port >= 0) {
      if (serve_port > 65535) {
        std::fprintf(stderr, "fdqos: --serve-metrics port %lld out of range\n",
                     static_cast<long long>(serve_port));
        session.ok = false;
      } else {
        obs::HttpExporter::Options opts;
        opts.port = static_cast<std::uint16_t>(serve_port);
        session.exporter = std::make_unique<obs::HttpExporter>(std::move(opts));
        if (session.exporter->start()) {
          // The bound port line is load-bearing for scripts using port 0.
          std::fprintf(stderr,
                       "[fdqos obs] serving /metrics /healthz /runs on "
                       "http://127.0.0.1:%u\n",
                       static_cast<unsigned>(session.exporter->port()));
        } else {
          session.ok = false;
        }
      }
    }
    if (!progress_jsonl_out.empty()) {
      session.progress_jsonl = std::make_unique<obs::JsonlSink>();
      if (!session.progress_jsonl->open(progress_jsonl_out)) {
        std::fprintf(stderr, "fdqos: cannot write %s\n",
                     progress_jsonl_out.c_str());
        session.progress_jsonl.reset();
        session.ok = false;
      }
    }
    return session;
  }

  // Returns false if a requested output file could not be written.
  bool finish() {
    if (exporter != nullptr) exporter->stop();
    obs::set_trace_writer(nullptr);
    if (tracer != nullptr) tracer->flush();
    if (progress_jsonl != nullptr) progress_jsonl->close();
    if (!metrics_out.empty() &&
        !obs::Registry::global().save_prometheus(metrics_out)) {
      std::fprintf(stderr, "fdqos: cannot write %s\n", metrics_out.c_str());
      ok = false;
    }
    if (!metrics_jsonl_out.empty() &&
        !obs::Registry::global().save_jsonl(metrics_jsonl_out)) {
      std::fprintf(stderr, "fdqos: cannot write %s\n",
                   metrics_jsonl_out.c_str());
      ok = false;
    }
    return ok;
  }
};

// `qos` and `replay` share one implementation: replay is qos with --trace
// mandatory (it exists so "run the comparison on this recording" is a
// first-class verb, not a flag spelling).
int cmd_qos_impl(const ArgParser& args, bool require_trace) {
  exp::QosExperimentConfig config;
  config.runs = static_cast<std::size_t>(args.get_int("--runs", 13));
  config.num_cycles = args.get_int("--cycles", 10000);
  config.seed = static_cast<std::uint64_t>(args.get_int("--seed", 42));
  config.eta = Duration::millis(args.get_int("--eta-ms", 1000));
  config.mttc = Duration::seconds(args.get_int("--mttc-s", 300));
  config.ttr = Duration::seconds(args.get_int("--ttr-s", 30));
  config.include_constant_baseline = args.get_flag("--baselines");
  config.trace_path = args.get_string("--trace", "");
  config.jobs = static_cast<std::size_t>(args.get_int("--jobs", 0));
  if (require_trace && config.trace_path.empty()) {
    std::fprintf(stderr, "fdqos replay: --trace FILE required "
                         "(record one with `fdqos record`)\n");
    return 2;
  }
  if (!parse_engine(args, config)) return 2;
  if (!parse_sim_engine(args, config)) return 2;
  if (!parse_fleet(args, config)) return 2;
  if (!parse_policy(args, config)) return 2;
  if (!config.trace_path.empty()) {
    const wan::TraceLoadResult probe = wan::load_trace(config.trace_path);
    if (!probe.ok()) {
      std::fprintf(stderr, "fdqos: %s\n", probe.error.c_str());
      return 1;
    }
  }
  const std::string metric = args.get_string("--metric", "all");
  const std::string csv = args.get_string("--csv", "");
  const bool pareto = args.get_flag("--pareto");
  const bool variability = args.get_flag("--variability");
  ObsSession obs_session = ObsSession::from_args(args);
  config.progress_interval_s = obs_session.progress_s;
  config.progress_jsonl = obs_session.progress_jsonl.get();
  config.run_verb = require_trace ? "replay" : "qos";
  if (const int rc = check_unknown(args); rc != 0) return rc;
  if (!obs_session.ok) return 1;

  std::fprintf(stderr, "[fdqos] %s\n", exp::qos_config_summary(config).c_str());
  const exp::QosReport report = exp::run_qos_experiment(config);
  if (!obs_session.finish()) return 1;

  const std::vector<std::pair<std::string, exp::QosMetricKind>> kinds = {
      {"td", exp::QosMetricKind::kTd},   {"tdu", exp::QosMetricKind::kTdU},
      {"tm", exp::QosMetricKind::kTm},   {"tmr", exp::QosMetricKind::kTmr},
      {"pa", exp::QosMetricKind::kPa},
  };
  std::string csv_out;
  bool matched = false;
  for (const auto& [key, kind] : kinds) {
    if (metric != "all" && metric != key) continue;
    matched = true;
    auto table = exp::qos_metric_table(report, kind);
    std::printf("%s\n", table.to_ascii().c_str());
    csv_out += table.to_csv() + "\n";
  }
  if (!matched) {
    std::fprintf(stderr, "fdqos: unknown metric '%s'\n", metric.c_str());
    return 2;
  }
  if (pareto) {
    std::printf("%s\n", exp::pareto_table(report).to_ascii().c_str());
  }
  if (variability) {
    std::printf("%s\n", exp::qos_variability_table(report).to_ascii().c_str());
  }
  if (!csv.empty() && !write_file(csv, csv_out)) {
    std::fprintf(stderr, "fdqos: cannot write %s\n", csv.c_str());
    return 1;
  }
  return 0;
}

int cmd_qos(const ArgParser& args) { return cmd_qos_impl(args, false); }
int cmd_replay(const ArgParser& args) { return cmd_qos_impl(args, true); }

// Run the full 30-detector QoS experiment under a named faultx scenario
// and verify the chaos invariants. Everything on stdout is a pure function
// of (scenario, seed, runs, cycles, ...) — never of --jobs — so
//   fdqos chaos --scenario X --seed N --jobs 8
// is byte-identical to --jobs 1 (the config echo, which includes jobs,
// goes to stderr). Exit 0 = all invariants hold, 1 = violations.
int cmd_chaos(const ArgParser& args) {
  if (args.get_flag("--list")) {
    if (const int rc = check_unknown(args); rc != 0) return rc;
    for (const auto& info : faultx::scenario_catalogue()) {
      std::printf("%-16s %s\n", info.name.c_str(), info.summary.c_str());
    }
    return 0;
  }

  exp::QosExperimentConfig config;
  config.chaos_scenario = args.get_string("--scenario", "");
  config.runs = static_cast<std::size_t>(args.get_int("--runs", 3));
  config.num_cycles = args.get_int("--cycles", 1200);
  config.seed = static_cast<std::uint64_t>(args.get_int("--seed", 7));
  config.eta = Duration::millis(args.get_int("--eta-ms", 1000));
  config.mttc = Duration::seconds(args.get_int("--mttc-s", 120));
  config.ttr = Duration::seconds(args.get_int("--ttr-s", 25));
  config.jobs = static_cast<std::size_t>(args.get_int("--jobs", 0));
  if (!parse_engine(args, config)) return 2;
  if (!parse_sim_engine(args, config)) return 2;
  if (!parse_fleet(args, config)) return 2;
  const std::string metric = args.get_string("--metric", "all");
  const std::string csv = args.get_string("--csv", "");
  ObsSession obs_session = ObsSession::from_args(args);
  config.progress_interval_s = obs_session.progress_s;
  config.progress_jsonl = obs_session.progress_jsonl.get();
  config.run_verb = "chaos";
  if (const int rc = check_unknown(args); rc != 0) return rc;
  if (!obs_session.ok) return 1;

  if (config.chaos_scenario.empty()) {
    std::fprintf(stderr,
                 "fdqos chaos: --scenario NAME required (--list shows them)\n");
    return 2;
  }
  if (!faultx::is_scenario(config.chaos_scenario)) {
    std::fprintf(stderr, "fdqos chaos: unknown scenario '%s'; known:\n",
                 config.chaos_scenario.c_str());
    for (const auto& name : faultx::scenario_names()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 2;
  }

  std::fprintf(stderr, "[fdqos] %s\n", exp::qos_config_summary(config).c_str());
  const exp::QosReport report = exp::run_qos_experiment(config);
  if (!obs_session.finish()) return 1;

  auto chaos = exp::chaos_table(report);
  std::printf("%s\n", chaos.to_ascii().c_str());
  std::string csv_out = chaos.to_csv() + "\n";

  const std::vector<std::pair<std::string, exp::QosMetricKind>> kinds = {
      {"td", exp::QosMetricKind::kTd},   {"tdu", exp::QosMetricKind::kTdU},
      {"tm", exp::QosMetricKind::kTm},   {"tmr", exp::QosMetricKind::kTmr},
      {"pa", exp::QosMetricKind::kPa},
  };
  bool matched = false;
  for (const auto& [key, kind] : kinds) {
    if (metric != "all" && metric != key) continue;
    matched = true;
    auto table = exp::qos_metric_table(report, kind);
    std::printf("%s\n", table.to_ascii().c_str());
    csv_out += table.to_csv() + "\n";
  }
  if (!matched) {
    std::fprintf(stderr, "fdqos: unknown metric '%s'\n", metric.c_str());
    return 2;
  }
  if (!csv.empty() && !write_file(csv, csv_out)) {
    std::fprintf(stderr, "fdqos: cannot write %s\n", csv.c_str());
    return 1;
  }

  const auto violations = exp::qos_invariant_violations(report);
  if (violations.empty()) {
    std::printf("invariants: OK (%zu detectors, scenario %s, seed %llu)\n",
                report.results.size(), config.chaos_scenario.c_str(),
                static_cast<unsigned long long>(config.seed));
    return 0;
  }
  for (const auto& v : violations) {
    std::printf("invariant VIOLATED [%s] %s\n", v.invariant.c_str(),
                v.detail.c_str());
  }
  std::printf("invariants: %zu violation(s) (scenario %s, seed %llu)\n",
              violations.size(), config.chaos_scenario.c_str(),
              static_cast<unsigned long long>(config.seed));
  return 1;
}

// Run a named exp::Workload over the detector grid. The flags mirror
// qos/chaos exactly (--scenario/--seed/--jobs/--sim-engine/--endpoints all
// work for any workload, because every factory takes the shared
// QosExperimentConfig), and the stdout contract is the same: every section
// is a pure function of (workload, seed, config), never of --jobs. For
// workloads that define invariants (leader-election; qos under --scenario)
// the verdicts print last and drive the exit code: 0 = all hold, 1 =
// violations — same contract as `fdqos chaos`.
int cmd_workload(const ArgParser& args) {
  workload::register_builtin_workloads();
  if (args.get_flag("--list")) {
    if (const int rc = check_unknown(args); rc != 0) return rc;
    for (const auto& name : exp::workload_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  exp::QosExperimentConfig config;
  config.chaos_scenario = args.get_string("--scenario", "");
  config.runs = static_cast<std::size_t>(args.get_int("--runs", 3));
  config.num_cycles = args.get_int("--cycles", 1200);
  config.seed = static_cast<std::uint64_t>(args.get_int("--seed", 7));
  config.eta = Duration::millis(args.get_int("--eta-ms", 1000));
  config.mttc = Duration::seconds(args.get_int("--mttc-s", 120));
  config.ttr = Duration::seconds(args.get_int("--ttr-s", 25));
  config.trace_path = args.get_string("--trace", "");
  config.jobs = static_cast<std::size_t>(args.get_int("--jobs", 0));
  const std::string name = args.get_string("--name", "");
  if (!parse_engine(args, config)) return 2;
  if (!parse_sim_engine(args, config)) return 2;
  if (!parse_fleet(args, config)) return 2;
  if (!parse_policy(args, config)) return 2;
  const std::string csv = args.get_string("--csv", "");
  ObsSession obs_session = ObsSession::from_args(args);
  config.progress_interval_s = obs_session.progress_s;
  config.progress_jsonl = obs_session.progress_jsonl.get();
  config.run_verb = "workload";
  if (const int rc = check_unknown(args); rc != 0) return rc;
  if (!obs_session.ok) return 1;

  if (name.empty()) {
    std::fprintf(stderr,
                 "fdqos workload: --name NAME required (--list shows them)\n");
    return 2;
  }
  if (!config.chaos_scenario.empty() &&
      !faultx::is_scenario(config.chaos_scenario)) {
    std::fprintf(stderr, "fdqos workload: unknown scenario '%s'; known:\n",
                 config.chaos_scenario.c_str());
    for (const auto& scenario : faultx::scenario_names()) {
      std::fprintf(stderr, "  %s\n", scenario.c_str());
    }
    return 2;
  }
  if (!config.trace_path.empty()) {
    const wan::TraceLoadResult probe = wan::load_trace(config.trace_path);
    if (!probe.ok()) {
      std::fprintf(stderr, "fdqos: %s\n", probe.error.c_str());
      return 1;
    }
  }
  std::unique_ptr<exp::Workload> workload = exp::make_workload(name, config);
  if (workload == nullptr) {
    std::fprintf(stderr, "fdqos workload: unknown workload '%s'; known:\n",
                 name.c_str());
    for (const auto& known : exp::workload_names()) {
      std::fprintf(stderr, "  %s\n", known.c_str());
    }
    return 2;
  }

  std::fprintf(stderr, "[fdqos] workload=%s %s\n", name.c_str(),
               exp::qos_config_summary(config).c_str());
  exp::run_workload(*workload);
  if (!obs_session.finish()) return 1;

  std::string csv_out;
  for (const auto& section : workload->report_sections()) {
    std::printf("%s\n", section.table.to_ascii().c_str());
    for (const auto& note : section.notes) {
      std::printf("%s\n", note.c_str());
    }
    csv_out += section.table.to_csv() + "\n";
  }
  if (!csv.empty() && !write_file(csv, csv_out)) {
    std::fprintf(stderr, "fdqos: cannot write %s\n", csv.c_str());
    return 1;
  }

  // Workload-specific invariants (printed after the tables so the table
  // block stays byte-comparable across workloads).
  std::vector<exp::InvariantViolation> violations;
  bool checked = false;
  if (const auto* leader =
          dynamic_cast<const workload::LeaderElectionWorkload*>(
              workload.get())) {
    violations = workload::leader_invariant_violations(leader->report());
    checked = true;
  } else if (const auto* qos =
                 dynamic_cast<const exp::QosWorkload*>(workload.get());
             qos != nullptr && !config.chaos_scenario.empty()) {
    violations = exp::qos_invariant_violations(qos->report());
    checked = true;
  }
  if (!checked) return 0;
  if (violations.empty()) {
    std::printf("invariants: OK (workload %s, seed %llu)\n", name.c_str(),
                static_cast<unsigned long long>(config.seed));
    return 0;
  }
  for (const auto& v : violations) {
    std::printf("invariant VIOLATED [%s] %s\n", v.invariant.c_str(),
                v.detail.c_str());
  }
  std::printf("invariants: %zu violation(s) (workload %s, seed %llu)\n",
              violations.size(), name.c_str(),
              static_cast<unsigned long long>(config.seed));
  return 1;
}

// Capture a delay trace from the calibrated WAN model — the input
// `fdqos replay` / `qos --trace` consume. The capture mirrors the
// experiment's link exactly: same RNG substream layout
// (seed → run → "net" → "link/0/1") and the same draw order (loss first,
// then delay; a lost heartbeat has no record). With --scenario the stream
// is pushed through the faultx wrappers, so a chaos scenario becomes a
// replayable artifact. --runs R records R shards (one per forked run
// stream) merged in run order. A trace captured from a real link (e.g. by
// wiring wan::RecordingDelay into a UDP deployment) drops in identically.
int record_impl(const ArgParser& args, const std::string& default_out) {
  const auto n = args.get_int("--n", 100000);
  const auto runs = args.get_int("--runs", 1);
  const auto seed = static_cast<std::uint64_t>(args.get_int("--seed", 42));
  const std::string out = args.get_string("--out", default_out);
  const auto eta_ms = args.get_int("--eta-ms", 1000);
  const std::string scenario = args.get_string("--scenario", "");
  const auto fault_start_s = args.get_int("--fault-start-s", 0);
  std::string format = args.get_string("--format", "");
  const std::string source_note = args.get_string("--source", "");
  ObsSession obs_session = ObsSession::from_args(args);
  if (const int rc = check_unknown(args); rc != 0) return rc;
  if (!obs_session.ok) return 1;
  if (n <= 0 || runs <= 0) {
    std::fprintf(stderr, "fdqos record: --n and --runs must be positive\n");
    return 2;
  }
  if (format.empty()) {
    format = out.size() >= 4 && out.rfind(".csv") == out.size() - 4 ? "csv"
                                                                    : "fdt";
  }
  if (format != "csv" && format != "fdt") {
    std::fprintf(stderr, "fdqos record: unknown --format '%s' (want fdt|csv)\n",
                 format.c_str());
    return 2;
  }
  if (!scenario.empty() && !faultx::is_scenario(scenario)) {
    std::fprintf(stderr, "fdqos record: unknown scenario '%s'; known:\n",
                 scenario.c_str());
    for (const auto& name : faultx::scenario_names()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 2;
  }

  const Duration eta = Duration::millis(eta_ms);
  std::shared_ptr<const faultx::FaultSchedule> faults;
  if (!scenario.empty()) {
    faultx::ScenarioParams sp;
    sp.active_start = TimePoint::origin() + Duration::seconds(fault_start_s);
    sp.horizon = TimePoint::origin() + eta * n + Duration::seconds(5);
    faults = std::make_shared<const faultx::FaultSchedule>(
        faultx::make_scenario(scenario, sp));
  }

  // Live telemetry identity for the capture (a long record is otherwise
  // opaque to a /runs scrape): one registry row, refreshed per shard.
  const std::string record_run_id = "record-seed" + std::to_string(seed);
  obs::RunStatus record_status;
  if (obs::enabled()) {
    obs::set_run_context(record_run_id, scenario.empty() ? "paper" : scenario);
    record_status.id = record_run_id;
    record_status.verb = "record";
    record_status.suite = scenario.empty() ? "paper" : scenario;
    record_status.runs_total = static_cast<std::size_t>(runs);
    obs::RunRegistry::global().update(record_status);
  }

  auto hub = std::make_shared<wan::TraceRecorderHub>();
  const Rng base(seed);
  for (std::int64_t run = 0; run < runs; ++run) {
    // The experiment's exact link substream for this (seed, run).
    Rng link_rng = base.fork(static_cast<std::uint64_t>(run))
                       .fork("net")
                       .fork("link/0/1");
    std::unique_ptr<wan::DelayModel> delay = wan::make_italy_japan_delay();
    std::unique_ptr<wan::LossModel> loss = wan::make_italy_japan_loss();
    if (faults != nullptr) {
      delay = std::make_unique<faultx::FaultyDelay>(std::move(delay), faults);
      loss = std::make_unique<faultx::FaultyLoss>(std::move(loss), faults);
    }
    wan::RecordingDelay recording(std::move(delay), hub,
                                  static_cast<std::uint64_t>(run));
    TimePoint t = TimePoint::origin();
    for (std::int64_t i = 0; i < n; ++i, t += eta) {
      // Same order as the simulated link: the loss draw comes first and a
      // dropped message never samples (or records) a delay.
      if (loss->drop(link_rng, t)) continue;
      recording.sample(link_rng, t);
    }
    if (obs::enabled()) {
      record_status.runs_started = static_cast<std::size_t>(run + 1);
      record_status.runs_done = static_cast<std::size_t>(run + 1);
      record_status.heartbeats_sent +=
          static_cast<std::uint64_t>(n);  // attempts; drops recorded nothing
      obs::RunRegistry::global().update(record_status);
    }
  }
  if (obs::enabled()) {
    record_status.finished = true;
    obs::RunRegistry::global().update(record_status);
    obs::clear_run_context();
  }

  char source[256];
  std::snprintf(source, sizeof source,
                "italy_japan eta=%lldms seed=%llu runs=%lld n=%lld%s%s",
                static_cast<long long>(eta_ms),
                static_cast<unsigned long long>(seed),
                static_cast<long long>(runs), static_cast<long long>(n),
                scenario.empty() ? "" : " scenario=", scenario.c_str());
  wan::TraceMeta meta;
  meta.source = source;
  if (!source_note.empty()) meta.source += " | " + source_note;

  const wan::Trace trace = hub->merged(meta);
  std::string error;
  const bool saved = format == "csv" ? wan::save_trace_csv(trace, out, &error)
                                     : wan::save_trace_fdt(trace, out, &error);
  if (!obs_session.finish()) return 1;
  if (!saved) {
    std::fprintf(stderr, "fdqos: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "wrote %zu delays (%lld run%s) to %s [%s]%s "
      "(replay with `fdqos replay --trace %s`)\n",
      trace.size(), static_cast<long long>(runs), runs == 1 ? "" : "s",
      out.c_str(), format.c_str(), scenario.empty() ? "" : " [faulted]",
      out.c_str());
  return 0;
}

int cmd_record(const ArgParser& args) { return record_impl(args, "trace.fdt"); }

// `serve` — the live heavy-traffic UDP ingest daemon (serve/daemon.hpp,
// docs/serve.md). The signal path is the one place a handler touches the
// process: a file-scope pointer set strictly before handlers install,
// cleared strictly after they revert, and a handler body that is one
// async-signal-safe relaxed atomic store.
serve::ServeDaemon* g_serve_daemon = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_serve_daemon != nullptr) g_serve_daemon->request_stop();
}

int cmd_serve(const ArgParser& args) {
  serve::ServeConfig config;
  config.host = args.get_string("--host", "127.0.0.1");
  const auto port = args.get_int("--port", 0);
  const auto max_endpoints = args.get_int("--max-endpoints", 1024);
  const auto eta_ms = args.get_int("--eta-ms", 1000);
  const auto batch = args.get_int("--batch", 32);
  const auto segment_samples = args.get_int("--segment-samples", 1'000'000);
  const double duration_s = args.get_double("--duration-s", 0.0);
  config.force_single_recv = args.get_flag("--single-recv");
  config.capture = !args.get_flag("--no-capture");
  config.capture_dir = args.get_string("--capture-dir", ".");
  config.capture_prefix = args.get_string("--capture-prefix", "serve");
  config.suite = args.get_string("--suite", "lite");
  config.run_id = args.get_string("--run-id", "serve");
  ObsSession obs_session = ObsSession::from_args(args);
  if (const int rc = check_unknown(args); rc != 0) return rc;
  if (!obs_session.ok) return 1;
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "fdqos serve: --port %lld out of range\n",
                 static_cast<long long>(port));
    return 2;
  }
  if (max_endpoints <= 0 || eta_ms <= 0 || batch <= 0 ||
      segment_samples <= 0 || duration_s < 0.0) {
    std::fprintf(stderr,
                 "fdqos serve: --max-endpoints, --eta-ms, --batch and "
                 "--segment-samples must be positive (--duration-s >= 0)\n");
    return 2;
  }
  config.port = static_cast<std::uint16_t>(port);
  config.max_endpoints = static_cast<std::size_t>(max_endpoints);
  config.eta = Duration::millis(eta_ms);
  config.batch = static_cast<std::size_t>(batch);
  config.segment_samples = static_cast<std::uint64_t>(segment_samples);
  config.duration = Duration::from_seconds_double(duration_s);

  if (obs::enabled()) obs::set_run_context(config.run_id, config.suite);
  serve::ServeDaemon daemon(config);
  if (!daemon.init()) {
    obs_session.finish();
    return 1;
  }
  // The bound-port line is load-bearing for scripts using --port 0.
  std::fprintf(stderr,
               "[fdqos serve] listening on udp://%s:%u (max-endpoints %zu, "
               "eta %lld ms, suite %s, capture %s)\n",
               config.host.c_str(), static_cast<unsigned>(daemon.udp_port()),
               config.max_endpoints, static_cast<long long>(eta_ms),
               config.suite.c_str(), config.capture ? "on" : "off");

  g_serve_daemon = &daemon;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  int rc = daemon.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_daemon = nullptr;

  const auto& stats = daemon.stats();
  std::fprintf(stderr,
               "[fdqos serve] shutdown: %llu heartbeats from %zu endpoints, "
               "%llu datagrams in %llu batches, drops decode=%llu "
               "capacity=%llu\n",
               static_cast<unsigned long long>(stats.heartbeats),
               daemon.ingest().admitted(),
               static_cast<unsigned long long>(stats.datagrams),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.drops_decode),
               static_cast<unsigned long long>(stats.drops_capacity));
  const auto segments = daemon.capture_segments();
  if (config.capture) {
    std::fprintf(stderr,
                 "[fdqos serve] capture: %llu samples in %zu finalized "
                 "segments\n",
                 static_cast<unsigned long long>(stats.captured),
                 segments.size());
    for (const auto& path : segments) {
      std::fprintf(stderr, "[fdqos serve] segment %s\n", path.c_str());
    }
  }
  if (!obs_session.finish() && rc == 0) rc = 1;
  return rc;
}

int cmd_trace(const ArgParser& args) {
  std::fprintf(stderr,
               "fdqos trace: deprecated alias for `fdqos record` "
               "(CSV output; use record for the .fdt binary format)\n");
  return record_impl(args, "trace.csv");
}

int cmd_accuracy(const ArgParser& args) {
  exp::AccuracyExperimentConfig config;
  config.n_oneway = static_cast<std::size_t>(args.get_int("--n", 100000));
  config.seed = static_cast<std::uint64_t>(args.get_int("--seed", 42));
  config.jobs = static_cast<std::size_t>(args.get_int("--jobs", 0));
  const std::string csv = args.get_string("--csv", "");
  ObsSession obs_session = ObsSession::from_args(args);
  config.progress_interval_s = obs_session.progress_s;
  if (const int rc = check_unknown(args); rc != 0) return rc;
  if (!obs_session.ok) return 1;

  const auto report = exp::run_accuracy_experiment(config);
  if (!obs_session.finish()) return 1;
  auto table = exp::accuracy_table(report);
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(%zu delays from %zu heartbeats; link mean %.1f ms, sd %.1f ms)\n",
              report.delays_collected, report.heartbeats_sent,
              report.delays_ms.mean, report.delays_ms.stddev);
  if (!csv.empty() && !write_file(csv, table.to_csv())) {
    std::fprintf(stderr, "fdqos: cannot write %s\n", csv.c_str());
    return 1;
  }
  return 0;
}

int cmd_link(const ArgParser& args) {
  const auto n = static_cast<std::size_t>(args.get_int("--n", 500000));
  Rng rng(static_cast<std::uint64_t>(args.get_int("--seed", 42)));
  if (const int rc = check_unknown(args); rc != 0) return rc;

  auto delay = wan::make_italy_japan_delay();
  auto loss = wan::make_italy_japan_loss();
  const auto link =
      wan::measure_link(*delay, *loss, n, Duration::seconds(1), rng);
  std::printf("%s", exp::link_table(link).to_ascii().c_str());
  return 0;
}

int cmd_order_select(const ArgParser& args) {
  exp::AccuracyExperimentConfig acc;
  acc.n_oneway = static_cast<std::size_t>(args.get_int("--n", 20000));
  acc.seed = static_cast<std::uint64_t>(args.get_int("--seed", 42));
  forecast::OrderSelectionConfig selection;
  selection.max_order.p = static_cast<std::size_t>(args.get_int("--pmax", 3));
  selection.max_order.d = static_cast<std::size_t>(args.get_int("--dmax", 2));
  selection.max_order.q = static_cast<std::size_t>(args.get_int("--qmax", 3));
  selection.jobs = static_cast<std::size_t>(args.get_int("--jobs", 0));
  if (const int rc = check_unknown(args); rc != 0) return rc;

  const auto series = exp::generate_delay_series(acc);
  const auto result = forecast::select_arima_order(series, selection);
  std::printf("best order on %zu delays: %s (holdout msqerr %.3f ms^2)\n",
              series.size(), result.best.to_string().c_str(),
              result.best_msqerr);
  for (const auto& cand : result.candidates) {
    if (!cand.fitted) continue;
    std::printf("  %-14s %10.3f%s\n", cand.order.to_string().c_str(),
                cand.holdout_msqerr,
                cand.order == result.best ? "  <- selected" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string command = args.positional()[0];
  if (command == "qos") return cmd_qos(args);
  if (command == "chaos") return cmd_chaos(args);
  if (command == "workload") return cmd_workload(args);
  if (command == "accuracy") return cmd_accuracy(args);
  if (command == "link") return cmd_link(args);
  if (command == "order-select") return cmd_order_select(args);
  if (command == "record") return cmd_record(args);
  if (command == "replay") return cmd_replay(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "trace") return cmd_trace(args);
  std::fprintf(stderr, "fdqos: unknown command '%s'\n", command.c_str());
  return usage();
}
