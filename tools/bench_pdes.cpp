// bench_pdes — perf trajectory for the conservative parallel simulation
// core (sim/parallel_simulator.hpp, docs/pdes.md).
//
// Bench A (qos_lps): the Fig-4-class QoS experiment at suite widths
// {30, 300, 3000}, sequential engine first, then the LP engine across an
// LP-count sweep. Every LP entry is verified in-process to render the
// byte-identical report before its timing is accepted — a fast wrong
// simulator scores zero here.
//
// Bench B (fleet): a synthetic monitoring fleet on the raw coordinator —
// one sender LP heartbeating N endpoint LPs (100 ms lookahead), each
// delivery spawning local follow-up work — timed serial vs parallel, with
// the executed-event count compared for identity.
//
// Output (BENCH_pdes.json): one row per timing,
//   [{"bench": "qos_lps", "width": 30, "lps": 4, "jobs": 2, "hw_jobs": 4,
//     "wall_s": 1.23, "speedup": 1.9}, ...]
// speedup is the same bench's sequential wall time / this entry's wall
// time, so baseline rows carry 1.0. Oversubscribed boxes (jobs > hw_jobs)
// legitimately report speedup <= 1; hw_jobs is recorded so the baseline
// stays honest. Scale knobs (reduced sweeps for CI):
//
//   bench_pdes [--runs N] [--cycles N] [--widths W1,W2,...]
//              [--lps L1,L2,...] [--lp-jobs N] [--endpoints E1,E2,...]
//              [--fleet-beats N] [--seed S] [--out FILE]
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "exec/thread_pool.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"
#include "fd/suite.hpp"
#include "sim/parallel_simulator.hpp"

using namespace fdqos;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

// W lanes from ceil(W/30) copies of the paper suite (same construction as
// bench_detector_bank): replicas keep the canonical predictor_key, so the
// bank shares 5 predictor groups — and the LP engine therefore shards 5
// groups' worth of lanes — at every width.
std::vector<fd::FdSpec> replicated_suite(std::size_t width) {
  std::vector<fd::FdSpec> suite;
  suite.reserve(width);
  std::size_t replica = 0;
  while (suite.size() < width) {
    for (auto& spec : fd::make_paper_suite()) {
      if (suite.size() == width) break;
      if (replica > 0) spec.name += "#" + std::to_string(replica);
      suite.push_back(std::move(spec));
    }
    ++replica;
  }
  return suite;
}

std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> values;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) values.push_back(std::stoul(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return values;
}

struct Entry {
  std::string bench;
  std::size_t scale;  // suite width (qos_lps) or endpoint count (fleet)
  std::size_t lps;
  std::size_t jobs;
  double wall_s;
  double speedup;
};

// Bench B workload: `beats` heartbeats from LP0 fanned out to every
// endpoint LP, each delivery scheduling two local follow-ups (timer reset +
// bookkeeping), roughly the per-arrival work of a freshness detector.
std::uint64_t run_fleet(std::size_t endpoints, std::size_t jobs,
                        std::size_t beats) {
  sim::ParallelSimulator::Options options;
  options.lps = endpoints + 1;
  options.jobs = jobs;
  sim::ParallelSimulator psim(options);
  const Duration eta = Duration::millis(10);
  const Duration floor = Duration::millis(100);
  for (std::size_t e = 1; e <= endpoints; ++e) {
    psim.set_lookahead(0, e, floor);
  }

  std::function<void(std::size_t)> beat = [&](std::size_t remaining) {
    const TimePoint now = psim.lp(0).now();
    for (std::size_t e = 1; e <= endpoints; ++e) {
      psim.post(0, e, now + floor, [&psim, e] {
        sim::Lp& lp = psim.lp(e);
        const TimePoint t = lp.now();
        lp.schedule_at(t + Duration::millis(1), [] {});
        lp.schedule_at(t + Duration::millis(2), [] {});
      });
    }
    if (remaining > 1) {
      psim.lp(0).schedule_at(now + eta,
                             [&beat, remaining] { beat(remaining - 1); });
    }
  };
  psim.lp(0).schedule_at(TimePoint::origin() + eta,
                         [&beat, beats] { beat(beats); });
  const Duration horizon = eta * static_cast<std::int64_t>(beats + 2) + floor +
                           Duration::millis(5);
  return psim.run_until(TimePoint::origin() + horizon);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto runs = static_cast<std::size_t>(args.get_int("--runs", 4));
  const auto cycles = args.get_int("--cycles", 2000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("--seed", 42));
  const auto lp_jobs = static_cast<std::size_t>(args.get_int(
      "--lp-jobs", static_cast<std::int64_t>(exec::hardware_jobs())));
  const auto fleet_beats =
      static_cast<std::size_t>(args.get_int("--fleet-beats", 2000));
  const std::vector<std::size_t> widths =
      parse_list(args.get_string("--widths", "30,300,3000"));
  const std::vector<std::size_t> lps_sweep =
      parse_list(args.get_string("--lps", "1,2,4,8"));
  const std::vector<std::size_t> endpoints_sweep =
      parse_list(args.get_string("--endpoints", "1,16,256"));
  const std::string out_path = args.get_string("--out", "BENCH_pdes.json");
  const std::size_t hw = exec::hardware_jobs();
  if (lp_jobs > hw) {
    std::fprintf(stderr,
                 "[bench_pdes] note: lp-jobs=%zu > %zu hardware thread(s); "
                 "expect speedup <= 1\n",
                 lp_jobs, hw);
  }

  std::vector<Entry> entries;

  // --- Bench A: QoS experiment, seq vs LP engine over the lps sweep ------
  for (const std::size_t width : widths) {
    exp::QosExperimentConfig config;
    config.runs = runs;
    config.num_cycles = cycles;
    config.seed = seed;
    config.jobs = 1;  // isolate the intra-run engine; outer runs stay serial
    config.mttc = Duration::seconds(90);
    config.ttr = Duration::seconds(20);
    config.include_paper_suite = false;
    config.extra_specs = replicated_suite(width);

    config.sim_engine = exp::SimEngine::kSeq;
    exp::QosReport seq_report;
    const double seq_s =
        wall_seconds([&] { seq_report = exp::run_qos_experiment(config); });
    const std::string reference = exp::qos_report_fingerprint(seq_report);
    entries.push_back({"qos_lps", width, 0, 1, seq_s, 1.0});
    std::fprintf(stderr, "[bench_pdes] qos width=%zu seq: %.2fs\n", width,
                 seq_s);

    for (const std::size_t lps : lps_sweep) {
      config.sim_engine = exp::SimEngine::kLp;
      config.lps = lps;
      config.lp_jobs = lps == 1 ? 1 : lp_jobs;
      exp::QosReport lp_report;
      const double lp_s =
          wall_seconds([&] { lp_report = exp::run_qos_experiment(config); });
      if (exp::qos_report_fingerprint(lp_report) != reference) {
        std::fprintf(stderr,
                     "[bench_pdes] FAIL: lp engine report differs from seq "
                     "at width=%zu lps=%zu\n",
                     width, lps);
        return 1;
      }
      entries.push_back(
          {"qos_lps", width, lps, config.lp_jobs, lp_s, seq_s / lp_s});
      std::fprintf(stderr,
                   "[bench_pdes] qos width=%zu lps=%zu jobs=%zu: %.2fs "
                   "(%.2fx, identical)\n",
                   width, lps, config.lp_jobs, lp_s, seq_s / lp_s);
    }
  }

  // --- Bench B: synthetic fleet on the raw coordinator --------------------
  for (const std::size_t endpoints : endpoints_sweep) {
    std::uint64_t serial_events = 0;
    const double serial_s = wall_seconds(
        [&] { serial_events = run_fleet(endpoints, 1, fleet_beats); });
    entries.push_back({"fleet", endpoints, endpoints + 1, 1, serial_s, 1.0});
    std::fprintf(stderr, "[bench_pdes] fleet endpoints=%zu jobs=1: %.2fs\n",
                 endpoints, serial_s);

    std::uint64_t parallel_events = 0;
    const double parallel_s = wall_seconds(
        [&] { parallel_events = run_fleet(endpoints, lp_jobs, fleet_beats); });
    if (parallel_events != serial_events) {
      std::fprintf(stderr,
                   "[bench_pdes] FAIL: fleet executed %llu events parallel "
                   "vs %llu serial at endpoints=%zu\n",
                   static_cast<unsigned long long>(parallel_events),
                   static_cast<unsigned long long>(serial_events), endpoints);
      return 1;
    }
    entries.push_back({"fleet", endpoints, endpoints + 1, lp_jobs, parallel_s,
                       serial_s / parallel_s});
    std::fprintf(stderr,
                 "[bench_pdes] fleet endpoints=%zu jobs=%zu: %.2fs (%.2fx, "
                 "%llu events)\n",
                 endpoints, lp_jobs, parallel_s, serial_s / parallel_s,
                 static_cast<unsigned long long>(parallel_events));
  }

  // --- Write the baseline ------------------------------------------------
  std::string json = "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char line[224];
    if (e.bench == "qos_lps") {
      std::snprintf(line, sizeof line,
                    "  {\"bench\": \"%s\", \"width\": %zu, \"lps\": %zu, "
                    "\"jobs\": %zu, \"hw_jobs\": %zu, \"wall_s\": %.3f, "
                    "\"speedup\": %.2f}%s\n",
                    e.bench.c_str(), e.scale, e.lps, e.jobs, hw, e.wall_s,
                    e.speedup, i + 1 < entries.size() ? "," : "");
    } else {
      std::snprintf(line, sizeof line,
                    "  {\"bench\": \"%s\", \"endpoints\": %zu, \"lps\": %zu, "
                    "\"jobs\": %zu, \"hw_jobs\": %zu, \"wall_s\": %.3f, "
                    "\"speedup\": %.2f}%s\n",
                    e.bench.c_str(), e.scale, e.lps, e.jobs, hw, e.wall_s,
                    e.speedup, i + 1 < entries.size() ? "," : "");
    }
    json += line;
  }
  json += "]\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench_pdes] cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::fprintf(stderr, "[bench_pdes] wrote %s (all outputs identical)\n",
               out_path.c_str());
  return 0;
}
