// bench_fleet — fleet-scale ingestion throughput of the FleetBank
// bank-of-banks (raw-coordinator mode, no per-endpoint node stacks).
//
// For each endpoint count M (default 100, 1000, 10000) the bench shards M
// monitored endpoints over S FleetBanks (contiguous blocks, one Simulator
// per shard) and drives them with columnar heartbeat batches — one
// ingest_columns() call per shard per cycle, the coordinator's scatter.
// The TOTAL heartbeat budget is held constant across the sweep (cycles =
// beats / M), so wall-clock growth in M isolates the per-endpoint overhead
// of the sharded timer/tick plumbing: sub-linear growth means the
// coalescing works. A deterministic loss pattern (every 23rd
// (endpoint + cycle)) keeps the freshness timers and suspicion paths hot.
//
// Each endpoint runs a 12-lane suite (Last and LPF predictors × 6 paper
// margins) — O(1) predictors, so the measured cost is the fleet engine,
// not ARIMA refits.
//
// Writes BENCH_fleet.json:
//   [{"bench": "fleet", "endpoints": 100, "shards": 4, "lanes": 1200,
//     "cycles": 2000, "heartbeats": ..., "wall_s": ..., "hb_per_s": ...,
//     "bytes_per_endpoint": ..., "timer_events": ..., "member_checks": ...,
//     "coalesced_events": ...}, ...]
//
// --verify additionally re-runs each M on a single shard and asserts the
// final per-member detector state digest is identical — shard count is
// plumbing, never semantics (the CI fleet job runs this at M = 100).
//
//   bench_fleet [--endpoints M1,M2,...] [--shards S] [--beats N]
//               [--eta-ms N] [--verify] [--out FILE]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/args.hpp"
#include "common/time.hpp"
#include "fd/fleet_bank.hpp"
#include "fd/suite.hpp"
#include "sim/simulator.hpp"

using namespace fdqos;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

std::vector<std::size_t> parse_counts(const std::string& csv) {
  std::vector<std::size_t> counts;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) counts.push_back(std::stoul(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return counts;
}

// Cheap 12-lane suite: the two O(1) paper predictors under all six margins.
std::vector<fd::FdSpec> cheap_suite() {
  std::vector<fd::FdSpec> out;
  for (fd::FdSpec& spec : fd::make_paper_suite()) {
    if (spec.predictor_label == "Last" || spec.predictor_label == "LPF") {
      out.push_back(std::move(spec));
    }
  }
  return out;
}

void configure_member(fd::DetectorBank& bank,
                      const std::vector<fd::FdSpec>& suite) {
  std::unordered_map<std::string, std::size_t> group_by_key;
  for (const fd::FdSpec& spec : suite) {
    const auto it = spec.predictor_key.empty()
                        ? group_by_key.end()
                        : group_by_key.find(spec.predictor_key);
    std::size_t group;
    if (it != group_by_key.end()) {
      group = it->second;
    } else {
      group = bank.add_group(spec.make_predictor());
      if (!spec.predictor_key.empty()) {
        group_by_key.emplace(spec.predictor_key, group);
      }
    }
    bank.add_lane(spec.name, group, spec.make_margin());
  }
}

struct ShardRun {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<fd::FleetBank> fleet;
  std::vector<fd::FleetBank::HeartbeatColumns> batches;  // one per cycle
};

struct SweepResult {
  std::size_t endpoints = 0;
  std::size_t shards = 0;
  std::size_t lanes = 0;
  std::size_t cycles = 0;
  std::uint64_t heartbeats = 0;
  double wall_s = 0.0;
  std::size_t memory_bytes = 0;
  fd::FleetBank::Counters counters;
  std::uint64_t state_digest = 0;
};

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  return h * 1099511628211ULL;
}

// Order-independent-across-shards digest of every member's observable
// detector state — what --verify compares between shard counts.
std::uint64_t digest_members(const std::vector<ShardRun>& shards) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const ShardRun& shard : shards) {
    for (std::size_t m = 0; m < shard.fleet->members(); ++m) {
      const fd::DetectorBank& bank = shard.fleet->member(m);
      h = fnv_mix(h, static_cast<std::uint64_t>(bank.max_seq()));
      h = fnv_mix(h, bank.observations());
      for (std::size_t lane = 0; lane < bank.width(); ++lane) {
        h = fnv_mix(h, bank.lane_suspecting(lane) ? 2u : 1u);
        h = fnv_mix(h,
                    static_cast<std::uint64_t>(bank.lane_freshness_index(lane)));
      }
    }
  }
  return h;
}

SweepResult run_sweep(std::size_t endpoints, std::size_t shard_count,
                      std::size_t cycles, Duration eta,
                      const std::vector<fd::FdSpec>& suite) {
  SweepResult result;
  result.endpoints = endpoints;
  result.shards = shard_count;
  result.cycles = cycles;

  // Contiguous endpoint blocks, same split the experiment engine uses.
  const std::size_t base = endpoints / shard_count;
  const std::size_t rem = endpoints % shard_count;
  auto shard_begin = [&](std::size_t s) {
    return s * base + (s < rem ? s : rem);
  };

  std::vector<ShardRun> shards;
  shards.reserve(shard_count);  // no reallocation: &shard stays valid below
  const Duration delay = Duration::millis(250);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t lo = shard_begin(s), hi = shard_begin(s + 1);
    ShardRun& shard = shards.emplace_back();
    shard.sim = std::make_unique<sim::Simulator>();
    fd::FleetBank::Config config;
    config.eta = eta;
    config.name = "bench-fleet/" + std::to_string(s);
    config.expected_endpoints = hi - lo;
    shard.fleet = std::make_unique<fd::FleetBank>(*shard.sim, config);
    for (std::size_t e = lo; e < hi; ++e) {
      fd::DetectorBank& member =
          shard.fleet->add_member(static_cast<net::NodeId>(e));
      configure_member(member, suite);
      member.reserve_expiries(member.width() * 2);
    }
    // One columnar batch per cycle: every live local endpoint's heartbeat
    // for that cycle, endpoint-ascending (the scatter order). Built ahead
    // of the clock so the timed section is pure engine work.
    shard.batches.resize(cycles);
    for (std::size_t k = 1; k <= cycles; ++k) {
      auto& batch = shard.batches[k - 1];
      for (std::size_t e = lo; e < hi; ++e) {
        if ((e + k) % 23 == 0) continue;  // deterministic loss
        batch.endpoint.push_back(static_cast<std::uint32_t>(e - lo));
        batch.seq.push_back(static_cast<std::int64_t>(k));
      }
      ShardRun* sp = &shard;
      shard.sim->schedule_at(
          TimePoint::origin() + eta * static_cast<std::int64_t>(k) + delay,
          [sp, k] { sp->fleet->ingest_columns(sp->batches[k - 1]); });
    }
    result.lanes += shard.fleet->total_lanes();
  }

  const TimePoint horizon =
      TimePoint::origin() + eta * static_cast<std::int64_t>(cycles + 2);
  result.wall_s = wall_seconds([&] {
    for (ShardRun& shard : shards) {
      shard.fleet->start();
      shard.sim->run_until(horizon);
    }
  });

  for (const ShardRun& shard : shards) {
    result.counters.add(shard.fleet->counters());
    result.memory_bytes += shard.fleet->memory_bytes();
  }
  result.heartbeats = result.counters.heartbeats;
  result.state_digest = digest_members(shards);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::vector<std::size_t> endpoint_counts =
      parse_counts(args.get_string("--endpoints", "100,1000,10000"));
  const auto shard_count = static_cast<std::size_t>(args.get_int("--shards", 4));
  const auto beats = static_cast<std::size_t>(args.get_int("--beats", 200000));
  const Duration eta = Duration::millis(args.get_int("--eta-ms", 1000));
  const bool verify = args.get_flag("--verify");
  const std::string out_path = args.get_string("--out", "BENCH_fleet.json");

  const std::vector<fd::FdSpec> suite = cheap_suite();
  std::vector<SweepResult> results;
  bool ok = true;
  for (const std::size_t endpoints : endpoint_counts) {
    const std::size_t shards =
        shard_count < endpoints ? shard_count : endpoints;
    const std::size_t cycles =
        beats / endpoints > 0 ? beats / endpoints : std::size_t{1};
    SweepResult r = run_sweep(endpoints, shards, cycles, eta, suite);
    std::fprintf(
        stderr,
        "[bench_fleet] M=%zu S=%zu cycles=%zu: %.3fs, %.0f hb/s, "
        "%zu B/endpoint, timers %llu (checks %llu, coalesced %llu)\n",
        r.endpoints, r.shards, r.cycles, r.wall_s,
        static_cast<double>(r.heartbeats) / r.wall_s,
        r.memory_bytes / r.endpoints,
        static_cast<unsigned long long>(r.counters.timer_events),
        static_cast<unsigned long long>(r.counters.member_checks),
        static_cast<unsigned long long>(r.counters.coalesced_events));

    if (verify) {
      const SweepResult solo = run_sweep(endpoints, 1, cycles, eta, suite);
      if (solo.state_digest != r.state_digest ||
          solo.heartbeats != r.heartbeats) {
        std::fprintf(stderr,
                     "[bench_fleet] FAIL: M=%zu shards=%zu diverges from "
                     "shards=1 (digest %llx vs %llx)\n",
                     endpoints, shards,
                     static_cast<unsigned long long>(r.state_digest),
                     static_cast<unsigned long long>(solo.state_digest));
        ok = false;
      } else {
        std::fprintf(stderr,
                     "[bench_fleet] verify M=%zu: shards=%zu == shards=1\n",
                     endpoints, shards);
      }
    }
    results.push_back(r);
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    char line[384];
    std::snprintf(
        line, sizeof line,
        "  {\"bench\": \"fleet\", \"endpoints\": %zu, \"shards\": %zu, "
        "\"lanes\": %zu, \"cycles\": %zu, \"heartbeats\": %llu, "
        "\"wall_s\": %.3f, \"hb_per_s\": %.0f, \"bytes_per_endpoint\": %zu, "
        "\"timer_events\": %llu, \"member_checks\": %llu, "
        "\"coalesced_events\": %llu}%s\n",
        r.endpoints, r.shards, r.lanes, r.cycles,
        static_cast<unsigned long long>(r.heartbeats), r.wall_s,
        static_cast<double>(r.heartbeats) / r.wall_s,
        r.memory_bytes / r.endpoints,
        static_cast<unsigned long long>(r.counters.timer_events),
        static_cast<unsigned long long>(r.counters.member_checks),
        static_cast<unsigned long long>(r.counters.coalesced_events),
        i + 1 < results.size() ? "," : "");
    json += line;
  }
  json += "]\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench_fleet] cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::fprintf(stderr, "[bench_fleet] wrote %s%s\n", out_path.c_str(),
               verify ? (ok ? " (shard invariance verified)" : "") : "");
  return ok ? 0 : 1;
}
