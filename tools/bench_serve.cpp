// bench_serve — loopback load generator and ingest-ceiling sweep for the
// `fdqos serve` daemon (ROADMAP item 4, docs/serve.md).
//
// Each phase boots an in-process ServeDaemon (its own thread, ephemeral
// port, capture off unless stated) and drives it from a loopback sender
// for --phase-s seconds, then stops the daemon and reads its counters —
// offered vs. ingested is measured end to end through recvmmsg → codec →
// FleetIngest → FleetBank::ingest_columns, exactly the production path.
//
// Two wire modes:
//   packed  "FDQB" batches, --records heartbeats per datagram — the
//           high-rate sender contract (one datagram ≈ one syscall per
//           hundreds of heartbeats on both sides).
//   single  one "FDQ1" heartbeat per datagram — what UdpTransport mesh
//           peers emit; per-datagram syscall cost bounds this mode.
//
// Per mode the sweep runs an unpaced saturation phase (sender blasts as
// fast as the loopback accepts) plus a ladder of paced phases at the
// --rates / --single-rates targets. The sustained ceiling reported is the
// highest paced rate the daemon ingested with >= 98% delivery while the
// sender held >= 98% of the target. A final packed phase re-runs with
// rotating .fdt capture on, pricing the capture path.
//
// Writes BENCH_serve.json (object; "phases" has one entry per phase).
//
//   bench_serve [--endpoints N] [--phase-s S] [--records R] [--batch B]
//               [--eta-ms MS] [--rates R1,R2,...] [--single-rates ...]
//               [--modes packed,single] [--no-capture-phase] [--out FILE]
//
// Sender-only mode, for driving an external daemon (scripts/serve_smoke.sh):
//   bench_serve --send-only --target PORT [--rate HBPS] [--duration-s S]
//               [--records R] [--endpoints N] [--host IP]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/args.hpp"
#include "common/time.hpp"
#include "net/codec.hpp"
#include "serve/daemon.hpp"

using namespace fdqos;

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::int64_t> parse_rates(const std::string& text) {
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string tok = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::atoll(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// Loopback heartbeat generator. One connected UDP socket; heartbeats
// round-robin over `endpoints` source ids with per-endpoint sequence
// counters; datagrams go out in sendmmsg bursts on Linux (sendto loop
// elsewhere). records == 1 sends single "FDQ1" frames, > 1 packed "FDQB".
class Sender {
 public:
  Sender(const std::string& host, std::uint16_t port, std::size_t endpoints,
         std::size_t records)
      : endpoints_(endpoints), records_(records), seqs_(endpoints, 0) {
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return;
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) return;
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const int sndbuf = 4 << 20;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);
    bufs_.resize(kBurst);
    if (records_ <= 1) {
      // Prototype "FDQ1" heartbeat (empty payload), 36 bytes; the hot loop
      // patches from/seq/send_time in place.
      net::Message proto;
      proto.type = net::MessageType::kHeartbeat;
      single_proto_ = net::encode_message(proto);
    }
  }
  ~Sender() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }
  std::uint64_t offered() const { return offered_; }

  // Sends for `seconds`, pacing at `target_hbps` heartbeats/sec (0 =
  // unpaced saturation). Returns actual elapsed seconds.
  double run(double seconds, std::int64_t target_hbps) {
    const std::int64_t start = now_ns();
    const std::int64_t deadline =
        start + static_cast<std::int64_t>(seconds * 1e9);
    const std::size_t per_datagram = records_ <= 1 ? 1 : records_;
    std::uint64_t sent_hb = 0;
    while (now_ns() < deadline) {
      const std::size_t burst = fill_burst();
      const std::size_t sent = send_burst(burst);
      sent_hb += sent * per_datagram;
      offered_ += sent * per_datagram;
      if (sent < burst) {
        // Loopback backpressure (receiver rcvbuf full): a short stall
        // gives the daemon a slice to drain on a single-core box.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      if (target_hbps > 0) {
        // Stay on the offered-load schedule: heartbeats sent so far
        // should take sent_hb / rate seconds.
        const std::int64_t due =
            start + static_cast<std::int64_t>(
                        static_cast<double>(sent_hb) / target_hbps * 1e9);
        std::int64_t now = now_ns();
        if (due - now > 2'000'000) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(due - now));
        } else {
          while (now_ns() < due) {
          }
        }
      }
    }
    return static_cast<double>(now_ns() - start) / 1e9;
  }

 private:
  static constexpr std::size_t kBurst = 16;

  // Builds up to kBurst datagrams of fresh heartbeats; returns the count.
  std::size_t fill_burst() {
    for (std::size_t d = 0; d < kBurst; ++d) {
      std::vector<std::uint8_t>& buf = bufs_[d];
      if (records_ <= 1) {
        buf = single_proto_;
        patch_single(buf);
      } else {
        net::begin_packed_batch(buf);
        for (std::size_t r = 0; r < records_; ++r) {
          net::append_packed_heartbeat(buf, next_from(),
                                       ++seqs_[cursor_],
                                       TimePoint::from_nanos(now_ns()));
          advance();
        }
        net::finish_packed_batch(buf);
      }
    }
    return kBurst;
  }

  net::NodeId next_from() { return static_cast<net::NodeId>(cursor_); }
  void advance() { cursor_ = (cursor_ + 1) % endpoints_; }

  void patch_single(std::vector<std::uint8_t>& buf) {
    const auto from = static_cast<std::uint32_t>(cursor_);
    const auto seq = static_cast<std::uint64_t>(++seqs_[cursor_]);
    const auto send = static_cast<std::uint64_t>(now_ns());
    for (int i = 0; i < 4; ++i) {
      buf[4 + i] = static_cast<std::uint8_t>(from >> (8 * i));
    }
    for (int i = 0; i < 8; ++i) {
      buf[16 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
      buf[24 + i] = static_cast<std::uint8_t>(send >> (8 * i));
    }
    advance();
  }

  // Returns datagrams actually sent.
  std::size_t send_burst(std::size_t count) {
#ifdef __linux__
    mmsghdr msgs[kBurst];
    iovec iovs[kBurst];
    std::memset(msgs, 0, sizeof msgs);
    for (std::size_t i = 0; i < count; ++i) {
      iovs[i].iov_base = bufs_[i].data();
      iovs[i].iov_len = bufs_[i].size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    int rc;
    do {
      rc = ::sendmmsg(fd_, msgs, static_cast<unsigned>(count), 0);
    } while (rc < 0 && errno == EINTR);
    return rc < 0 ? 0 : static_cast<std::size_t>(rc);
#else
    std::size_t sent = 0;
    for (std::size_t i = 0; i < count; ++i) {
      ssize_t rc;
      do {
        rc = ::send(fd_, bufs_[i].data(), bufs_[i].size(), 0);
      } while (rc < 0 && errno == EINTR);
      if (rc >= 0) ++sent;
    }
    return sent;
#endif
  }

  std::size_t endpoints_;
  std::size_t records_;
  std::size_t cursor_ = 0;
  int fd_ = -1;
  std::uint64_t offered_ = 0;
  std::vector<std::int64_t> seqs_;
  std::vector<std::vector<std::uint8_t>> bufs_;
  std::vector<std::uint8_t> single_proto_;
};

struct PhaseResult {
  std::string mode;
  std::size_t records = 1;
  bool capture = false;
  std::int64_t target_hbps = 0;  // 0 = saturation
  std::uint64_t offered = 0;
  std::uint64_t ingested = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t batches = 0;
  std::uint64_t drops_decode = 0;
  std::uint64_t drops_capacity = 0;
  std::uint64_t captured = 0;
  double wall_s = 0.0;

  double offered_hbps() const { return wall_s > 0 ? offered / wall_s : 0; }
  double ingested_hbps() const { return wall_s > 0 ? ingested / wall_s : 0; }
  double delivery() const {
    return offered > 0 ? static_cast<double>(ingested) / offered : 0.0;
  }
};

struct PhaseOpts {
  std::size_t endpoints = 64;
  std::size_t batch = 32;
  std::int64_t eta_ms = 100;
  double phase_s = 2.0;
  std::string capture_dir = ".";
};

PhaseResult run_phase(const PhaseOpts& opts, std::size_t records,
                      std::int64_t target_hbps, bool capture) {
  serve::ServeConfig config;
  config.host = "127.0.0.1";
  config.port = 0;
  config.max_endpoints = opts.endpoints;
  config.eta = Duration::millis(opts.eta_ms);
  config.batch = opts.batch;
  config.capture = capture;
  config.capture_dir = opts.capture_dir;
  config.capture_prefix = "bench-serve";
  config.suite = "lite";
  config.run_id = "bench-serve";
  serve::ServeDaemon daemon(config);
  PhaseResult result;
  result.mode = records <= 1 ? "single" : "packed";
  result.records = records <= 1 ? 1 : records;
  result.capture = capture;
  result.target_hbps = target_hbps;
  if (!daemon.init()) {
    std::fprintf(stderr, "bench_serve: daemon init failed\n");
    return result;
  }
  std::thread daemon_thread([&daemon] { daemon.run(); });
  Sender sender("127.0.0.1", daemon.udp_port(), opts.endpoints, records);
  if (!sender.ok()) {
    std::fprintf(stderr, "bench_serve: sender socket failed\n");
    daemon.request_stop();
    daemon_thread.join();
    return result;
  }
  result.wall_s = sender.run(opts.phase_s, target_hbps);
  // Let the daemon drain what the kernel still queues before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  daemon.request_stop();
  daemon_thread.join();

  result.offered = sender.offered();
  const serve::ServeDaemon::Stats& stats = daemon.stats();
  result.ingested = stats.heartbeats;
  result.datagrams = stats.datagrams;
  result.batches = stats.batches;
  result.drops_decode = stats.drops_decode;
  result.drops_capacity = stats.drops_capacity;
  result.captured = stats.captured;
  return result;
}

std::string phase_json(const PhaseResult& p) {
  char line[512];
  std::snprintf(
      line, sizeof line,
      "    {\"mode\": \"%s\", \"records_per_datagram\": %zu, "
      "\"capture\": %s, \"target_hbps\": %lld, \"wall_s\": %.3f, "
      "\"offered\": %llu, \"offered_hbps\": %.0f, \"ingested\": %llu, "
      "\"ingested_hbps\": %.0f, \"delivery\": %.4f, \"datagrams\": %llu, "
      "\"batches\": %llu, \"drops_decode\": %llu, \"drops_capacity\": %llu, "
      "\"captured\": %llu}",
      p.mode.c_str(), p.records, p.capture ? "true" : "false",
      static_cast<long long>(p.target_hbps), p.wall_s,
      static_cast<unsigned long long>(p.offered), p.offered_hbps(),
      static_cast<unsigned long long>(p.ingested), p.ingested_hbps(),
      p.delivery(), static_cast<unsigned long long>(p.datagrams),
      static_cast<unsigned long long>(p.batches),
      static_cast<unsigned long long>(p.drops_decode),
      static_cast<unsigned long long>(p.drops_capacity),
      static_cast<unsigned long long>(p.captured));
  return line;
}

int send_only(const ArgParser& args) {
  const std::string host = args.get_string("--host", "127.0.0.1");
  const auto port = args.get_int("--target", 0);
  const auto rate = args.get_int("--rate", 0);
  const double duration_s = args.get_double("--duration-s", 1.0);
  const auto records = args.get_int("--records", 64);
  const auto endpoints = args.get_int("--endpoints", 16);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bench_serve: --send-only needs --target PORT\n");
    return 2;
  }
  Sender sender(host, static_cast<std::uint16_t>(port),
                static_cast<std::size_t>(std::max<std::int64_t>(1, endpoints)),
                static_cast<std::size_t>(std::max<std::int64_t>(1, records)));
  if (!sender.ok()) {
    std::fprintf(stderr, "bench_serve: cannot open sender socket\n");
    return 1;
  }
  const double wall = sender.run(duration_s, rate);
  std::printf("sent %llu heartbeats in %.3f s (%.0f hb/s offered)\n",
              static_cast<unsigned long long>(sender.offered()), wall,
              wall > 0 ? sender.offered() / wall : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.get_flag("--send-only")) return send_only(args);

  PhaseOpts opts;
  opts.endpoints =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("--endpoints", 64)));
  opts.batch =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("--batch", 32)));
  opts.eta_ms = std::max<std::int64_t>(1, args.get_int("--eta-ms", 100));
  opts.phase_s = std::max(0.05, args.get_double("--phase-s", 2.0));
  opts.capture_dir = args.get_string("--capture-dir", ".");
  const auto records = static_cast<std::size_t>(
      std::max<std::int64_t>(2, args.get_int("--records", 256)));
  const std::vector<std::int64_t> packed_rates = parse_rates(args.get_string(
      "--rates", "500000,1000000,1500000,2000000"));
  const std::vector<std::int64_t> single_rates = parse_rates(
      args.get_string("--single-rates", "100000,250000,500000"));
  const std::string modes = args.get_string("--modes", "packed,single");
  const bool capture_phase = !args.get_flag("--no-capture-phase");
  const std::string out_path = args.get_string("--out", "BENCH_serve.json");
  const bool run_packed = modes.find("packed") != std::string::npos;
  const bool run_single = modes.find("single") != std::string::npos;

  std::vector<PhaseResult> phases;
  auto announce = [](const PhaseResult& p) {
    std::printf("%-6s r=%-4zu target=%-9lld offered %9.0f hb/s  ingested "
                "%9.0f hb/s  delivery %.4f%s\n",
                p.mode.c_str(), p.records,
                static_cast<long long>(p.target_hbps), p.offered_hbps(),
                p.ingested_hbps(), p.delivery(),
                p.capture ? "  [capture]" : "");
    std::fflush(stdout);
  };

  if (run_packed) {
    phases.push_back(run_phase(opts, records, 0, false));
    announce(phases.back());
    for (const std::int64_t rate : packed_rates) {
      phases.push_back(run_phase(opts, records, rate, false));
      announce(phases.back());
    }
    if (capture_phase) {
      phases.push_back(run_phase(opts, records, 0, true));
      announce(phases.back());
    }
  }
  if (run_single) {
    phases.push_back(run_phase(opts, 1, 0, false));
    announce(phases.back());
    for (const std::int64_t rate : single_rates) {
      phases.push_back(run_phase(opts, 1, rate, false));
      announce(phases.back());
    }
  }

  // Sustained ceiling: highest paced target held by both sides — sender
  // offered >= 98% of target, daemon ingested >= 98% of offered.
  double sustained = 0.0;
  double saturation_packed = 0.0;
  double saturation_single = 0.0;
  for (const PhaseResult& p : phases) {
    if (p.target_hbps > 0 && !p.capture &&
        p.offered_hbps() >= 0.98 * static_cast<double>(p.target_hbps) &&
        p.delivery() >= 0.98) {
      sustained = std::max(sustained, p.ingested_hbps());
    }
    if (p.target_hbps == 0 && !p.capture) {
      if (p.mode == "packed") {
        saturation_packed = std::max(saturation_packed, p.ingested_hbps());
      } else {
        saturation_single = std::max(saturation_single, p.ingested_hbps());
      }
    }
  }

  std::string json = "{\n";
  char head[256];
  std::snprintf(head, sizeof head,
                "  \"bench\": \"serve\",\n  \"endpoints\": %zu,\n"
                "  \"batch\": %zu,\n  \"eta_ms\": %lld,\n"
                "  \"phase_s\": %.2f,\n",
                opts.endpoints, opts.batch,
                static_cast<long long>(opts.eta_ms), opts.phase_s);
  json += head;
  json += "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    json += phase_json(phases[i]);
    json += i + 1 < phases.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  char tail[256];
  std::snprintf(tail, sizeof tail,
                "  \"sustained_ceiling_hbps\": %.0f,\n"
                "  \"saturation_packed_hbps\": %.0f,\n"
                "  \"saturation_single_hbps\": %.0f\n}\n",
                sustained, saturation_packed, saturation_single);
  json += tail;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  return 0;
}
