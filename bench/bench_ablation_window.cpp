// Ablation — WINMEAN window size: accuracy of the windowed-mean predictor
// as a function of N, motivating the paper's N = 10 (Table 2).
#include <cstdio>

#include "bench_common.hpp"
#include "exp/accuracy_experiment.hpp"
#include "forecast/basic_predictors.hpp"
#include "forecast/msqerr.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  exp::AccuracyExperimentConfig config;
  config.n_oneway =
      static_cast<std::size_t>(bench::env_u64("FDQOS_NONEWAY", 100000));
  config.seed = bench::env_u64("FDQOS_SEED", 42);
  const auto series = exp::generate_delay_series(config);

  stats::TableWriter table("Ablation — WINMEAN window sweep");
  table.set_columns({"N", "msqerr (ms^2)", "mean |err| (ms)"});
  const std::vector<std::size_t> windows{1, 2, 5, 10, 20, 50, 100, 1000};
  const auto rows = bench::run_sweep(windows.size(), [&](std::size_t i) {
    forecast::WinMeanPredictor predictor(windows[i]);
    const auto acc = forecast::evaluate_accuracy(predictor, series);
    return std::vector<std::string>{std::to_string(windows[i]),
                                    stats::format_double(acc.msqerr, 3),
                                    stats::format_double(acc.mean_abs_err, 3)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(N=1 is LAST; N=inf is MEAN. Small-but-not-tiny windows track "
              "regime shifts while averaging out spikes.)\n");
  return 0;
}
