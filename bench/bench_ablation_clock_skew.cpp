// Ablation — clock synchronization sensitivity. The paper assumes NTP-
// synchronized clocks (offset ≈ 0); this bench quantifies what a residual
// monitor-side clock offset does to a push-style detector: the observed
// "delays" become delay + offset, shifting timeouts and biasing T_D.
//
// Implementation: the monitor's skew is folded into the link delay (a
// constant offset added to every one-way delay is indistinguishable from a
// clock offset under the paper's σ_i = i·η convention).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "stats/table_writer.hpp"
#include "wan/delay_model.hpp"
#include "wan/italy_japan.hpp"

using namespace fdqos;

namespace {

// Wraps the Italy–Japan model, adding a constant pseudo-offset.
class SkewedDelay final : public wan::DelayModel {
 public:
  SkewedDelay(std::unique_ptr<wan::DelayModel> inner, Duration skew)
      : inner_(std::move(inner)), skew_(skew) {
    name_ = "skewed(" + skew.to_string() + ")+" + inner_->name();
  }
  Duration sample(Rng& rng, TimePoint t) override {
    const Duration d = inner_->sample(rng, t) + skew_;
    return d > Duration::zero() ? d : Duration::zero();
  }
  const std::string& name() const override { return name_; }
  std::unique_ptr<wan::DelayModel> make_fresh() const override {
    return std::make_unique<SkewedDelay>(inner_->make_fresh(), skew_);
  }

 private:
  std::string name_;
  std::unique_ptr<wan::DelayModel> inner_;
  Duration skew_;
};

}  // namespace

int main() {
  stats::TableWriter table(
      "Ablation — monitor clock offset (detector: Last+JAC_med)");
  table.set_columns({"offset (ms)", "T_D mean (ms)", "T_M mean (ms)", "P_A"});

  const std::vector<int> skews_ms{-100, -20, 0, 20, 100};
  const auto rows = bench::run_sweep(skews_ms.size(), [&](std::size_t i) {
    const int skew_ms = skews_ms[i];
    exp::QosExperimentConfig config;
    config.runs = 2;
    config.num_cycles =
        static_cast<std::int64_t>(bench::env_u64("FDQOS_CYCLES", 10000)) / 2;
    config.seed = bench::env_u64("FDQOS_SEED", 42);
    config.jobs = 1;  // the sweep owns the parallelism
    config.include_paper_suite = false;
    fd::FdSpec spec;
    spec.name = "Last+JAC_med";
    spec.predictor_label = "Last";
    spec.margin_label = "JAC_med";
    spec.make_predictor = fd::make_paper_predictor("Last");
    spec.make_margin = fd::make_paper_margin("JAC_med");
    config.extra_specs.push_back(std::move(spec));
    // Fold the skew into the link; run_qos_experiment builds the link from
    // config.link, so shift the propagation floor instead.
    config.link.floor =
        Duration::millis(192 + skew_ms) > Duration::zero()
            ? Duration::millis(192 + skew_ms)
            : Duration::zero();

    const auto report = exp::run_qos_experiment(config);
    const auto& m = report.results[0].metrics;
    return std::vector<std::string>{
        std::to_string(skew_ms),
        stats::format_double(m.detection_time_ms.mean, 1),
        stats::format_double(m.mistake_duration_ms.mean, 1),
        stats::format_double(m.query_accuracy, 6)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(an adaptive detector absorbs a *constant* offset into its "
              "predictor: T_D shifts by roughly the offset, accuracy is "
              "unharmed — the paper's NTP assumption matters for comparing "
              "T_D across sites, not for detector correctness)\n");
  return 0;
}
