// Table 2 — predictor parameters, including the ARIMA order selection that
// produced ARIMA(2,1,1) in the paper (grid search over (p,d,q) minimizing
// out-of-sample msqerr on the link's delay series).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/accuracy_experiment.hpp"
#include "forecast/arima/order_selection.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  const fd::PaperParams params;

  stats::TableWriter table("Table 2 — Predictor Parameters");
  table.set_columns({"Predictor", "Parameters"});
  table.add_row({"ARIMA", params.arima_order.to_string() +
                              ", refit every " + std::to_string(params.n_arima)});
  table.add_row({"LPF", "beta = " + stats::format_double(params.lpf_beta, 3) +
                            " (1/8)"});
  table.add_row({"WINMEAN", "N = " + std::to_string(params.winmean_window)});
  std::printf("%s\n", table.to_ascii().c_str());

  // Re-run the order selection exactly as the paper did: the full grid
  // [0,0,0]..[10,10,10] (RPS toolkit there; Hannan–Rissanen + holdout
  // msqerr here), on a delay series from the calibrated link.
  exp::AccuracyExperimentConfig acc;
  acc.n_oneway =
      static_cast<std::size_t>(bench::env_u64("FDQOS_NONEWAY", 100000)) / 5;
  acc.seed = bench::env_u64("FDQOS_SEED", 42);
  const auto series = exp::generate_delay_series(acc);

  forecast::OrderSelectionConfig selection;
  selection.max_order = forecast::ArimaOrder{10, 10, 10};
  const auto result = forecast::select_arima_order(series, selection);

  // 1331 candidates: print the best ten plus the paper's pick.
  std::vector<forecast::OrderCandidate> fitted;
  for (const auto& cand : result.candidates) {
    if (cand.fitted) fitted.push_back(cand);
  }
  std::sort(fitted.begin(), fitted.end(),
            [](const auto& a, const auto& b) {
              return a.holdout_msqerr < b.holdout_msqerr;
            });
  stats::TableWriter grid(
      "ARIMA order selection over [0,0,0]..[10,10,10] — best 10 of " +
      std::to_string(fitted.size()) + " fitted candidates");
  grid.set_columns({"order", "holdout msqerr (ms^2)", "note"});
  for (std::size_t i = 0; i < fitted.size(); ++i) {
    const bool paper_pick = fitted[i].order == forecast::ArimaOrder{2, 1, 1};
    if (i >= 10 && !paper_pick) continue;
    grid.add_row({fitted[i].order.to_string(),
                  stats::format_double(fitted[i].holdout_msqerr, 3),
                  fitted[i].order == result.best
                      ? "<- selected"
                      : (paper_pick ? "<- paper's choice" : "")});
  }
  std::printf("%s", grid.to_ascii().c_str());
  std::printf(
      "Selected %s on the synthetic link (the paper's trace selected "
      "ARIMA(2,1,1); the suite keeps (2,1,1) for fidelity — it remains the "
      "most accurate of the five paper predictors, see Table 3)\n",
      result.best.to_string().c_str());
  return 0;
}
