// Run-to-run stability of the QoS experiment — how much of the figures'
// structure is signal. The paper pools 13 runs without error bars; this
// bench reports per-run mean T_D and availability as mean ± sd per
// detector, plus the key paired contrast (MEAN vs LAST), which is far
// tighter than either side's absolute spread because all detectors share
// each run's sample path through the MultiPlexer.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  const auto& report = bench::shared_qos_report();
  auto table = exp::qos_variability_table(report);
  std::printf("%s\n", table.to_ascii().c_str());

  const auto* mean = exp::find_result(report, "Mean+CI_med");
  const auto* last = exp::find_result(report, "Last+CI_med");
  if (mean != nullptr && last != nullptr) {
    std::printf(
        "Paired contrast Mean+CI_med vs Last+CI_med: T_D gap %.1f ms "
        "(per-run sds %.1f / %.1f ms) — ordering is stable even where "
        "absolute values wander, the MultiPlexer fairness property at "
        "work.\n",
        mean->metrics.detection_time_ms.mean -
            last->metrics.detection_time_ms.mean,
        mean->per_run_td_mean_ms.stddev, last->per_run_td_mean_ms.stddev);
  }
  return 0;
}
