// Ablation — message-loss sensitivity (fair-lossy link stress). A lost
// heartbeat looks exactly like a late one, so accuracy degrades with loss
// while detection time is barely affected.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  const std::uint64_t seed = bench::env_u64("FDQOS_SEED", 42);

  stats::TableWriter table(
      "Ablation — loss sweep (detector: Arima+CI_med, bursty GE loss)");
  table.set_columns({"target loss", "measured mistakes", "T_M mean (ms)",
                     "P_A", "T_D mean (ms)"});

  const std::vector<double> losses{0.0, 0.005, 0.02, 0.05, 0.10};
  const auto rows = bench::run_sweep(losses.size(), [&](std::size_t i) {
    const double loss = losses[i];
    exp::QosExperimentConfig config;
    config.runs = 2;
    config.num_cycles =
        static_cast<std::int64_t>(bench::env_u64("FDQOS_CYCLES", 10000)) / 2;
    config.seed = seed;
    config.jobs = 1;  // the sweep owns the parallelism
    // Hit the target stationary loss with 20% independent drops and 80%
    // bursty drops: fix loss_bad = 0.5 and size the bad-state occupancy
    // pi_bad = 0.8·target/0.5, then p_gb = pi_bad·p_bg/(1 − pi_bad).
    config.link.loss.loss_good = loss * 0.2;
    config.link.loss.loss_bad = loss > 0.0 ? 0.5 : 0.0;
    config.link.loss.p_bad_to_good = 0.05;
    const double pi_bad = 0.8 * loss / 0.5;
    config.link.loss.p_good_to_bad =
        loss > 0.0 ? pi_bad * 0.05 / (1.0 - pi_bad) : 0.0;
    const auto report = exp::run_qos_experiment(config);
    const auto* result = exp::find_result(report, "Arima+CI_med");
    if (result == nullptr) return std::vector<std::string>{};
    return std::vector<std::string>{
        stats::format_double(loss * 100.0, 1) + "%",
        std::to_string(result->metrics.mistakes),
        stats::format_double(result->metrics.mistake_duration_ms.mean, 1),
        stats::format_double(result->metrics.query_accuracy, 6),
        stats::format_double(result->metrics.detection_time_ms.mean, 1)};
  });
  for (const auto& row : rows) {
    if (!row.empty()) table.add_row(row);
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(loss manifests as false suspicion: mistakes grow with loss, "
              "detection time barely moves)\n");
  return 0;
}
