// Table 1 — safety margin parameters (γ and φ levels).
#include <cstdio>

#include "fd/suite.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  const fd::PaperParams params;

  stats::TableWriter table("Table 1 — Safety Margin Parameters");
  table.set_columns({"level", "SM_CI gamma", "SM_JAC phi"});
  const char* levels[3] = {"low", "med", "high"};
  for (int i = 0; i < 3; ++i) {
    table.add_row({levels[i], stats::format_double(params.gammas[static_cast<std::size_t>(i)], 2),
                   stats::format_double(params.phis[static_cast<std::size_t>(i)], 0)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("SM_JAC alpha = %.2f (Jacobson); margins as configured in the "
              "30-detector suite.\n",
              params.jacobson_alpha);

  // Echo the suite the parameters induce.
  const auto suite = fd::make_paper_suite(params);
  std::printf("\nInstantiated suite (%zu detectors):\n", suite.size());
  for (const auto& spec : suite) std::printf("  %s\n", spec.name.c_str());
  return 0;
}
