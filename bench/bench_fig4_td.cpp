// Figure 4 — mean detection time T_D for the 30 detectors.
// Paper shape: MEAN is the worst predictor everywhere; best mean delay is
// LPF+SM_CI and LAST+SM_JAC; ARIMA gets its best delay under SM_JAC.
#include "bench_common.hpp"

int main() {
  fdqos::bench::print_figure(fdqos::exp::QosMetricKind::kTd);
  return 0;
}
