// Ablation — LPF smoothing-gain sweep: accuracy of LPF(β) as a function of
// β, motivating the paper's β = 1/8 (Table 2). Small β averages jitter but
// lags the drifting level; large β tracks the level but passes jitter
// through. Includes Holt for the trend-aware comparison.
#include <cstdio>

#include "bench_common.hpp"
#include "exp/accuracy_experiment.hpp"
#include "forecast/basic_predictors.hpp"
#include "forecast/extended_predictors.hpp"
#include "forecast/msqerr.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  exp::AccuracyExperimentConfig config;
  config.n_oneway =
      static_cast<std::size_t>(bench::env_u64("FDQOS_NONEWAY", 100000));
  config.seed = bench::env_u64("FDQOS_SEED", 42);
  const auto series = exp::generate_delay_series(config);

  stats::TableWriter table("Ablation — LPF beta sweep");
  table.set_columns({"predictor", "msqerr (ms^2)", "mean |err| (ms)"});
  // Grid point i < betas.size() is LPF(beta_i); the last point is the Holt
  // trend-aware comparison. All score the shared immutable series.
  const std::vector<double> betas{0.01, 0.03125, 0.0625, 0.125, 0.25, 0.5,
                                  1.0};
  const auto rows = bench::run_sweep(betas.size() + 1, [&](std::size_t i) {
    if (i < betas.size()) {
      forecast::LpfPredictor predictor(betas[i]);
      const auto acc = forecast::evaluate_accuracy(predictor, series);
      char name[32];
      std::snprintf(name, sizeof name, "LPF(%g)", betas[i]);
      return std::vector<std::string>{
          name, stats::format_double(acc.msqerr, 3),
          stats::format_double(acc.mean_abs_err, 3)};
    }
    forecast::HoltPredictor holt(0.125, 0.125);
    const auto acc = forecast::evaluate_accuracy(holt, series);
    return std::vector<std::string>{"HOLT(0.125,0.125)",
                                    stats::format_double(acc.msqerr, 3),
                                    stats::format_double(acc.mean_abs_err, 3)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(beta = 1 is LAST; the optimum balances jitter suppression "
              "against level-tracking lag — the paper's 1/8 sits near it)\n");
  return 0;
}
