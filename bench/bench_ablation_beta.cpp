// Ablation — LPF smoothing-gain sweep: accuracy of LPF(β) as a function of
// β, motivating the paper's β = 1/8 (Table 2). Small β averages jitter but
// lags the drifting level; large β tracks the level but passes jitter
// through. Includes Holt for the trend-aware comparison.
#include <cstdio>

#include "bench_common.hpp"
#include "exp/accuracy_experiment.hpp"
#include "forecast/basic_predictors.hpp"
#include "forecast/extended_predictors.hpp"
#include "forecast/msqerr.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  exp::AccuracyExperimentConfig config;
  config.n_oneway =
      static_cast<std::size_t>(bench::env_u64("FDQOS_NONEWAY", 100000));
  config.seed = bench::env_u64("FDQOS_SEED", 42);
  const auto series = exp::generate_delay_series(config);

  stats::TableWriter table("Ablation — LPF beta sweep");
  table.set_columns({"predictor", "msqerr (ms^2)", "mean |err| (ms)"});
  for (const double beta : {0.01, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0}) {
    forecast::LpfPredictor predictor(beta);
    const auto acc = forecast::evaluate_accuracy(predictor, series);
    char name[32];
    std::snprintf(name, sizeof name, "LPF(%g)", beta);
    table.add_row({name, stats::format_double(acc.msqerr, 3),
                   stats::format_double(acc.mean_abs_err, 3)});
  }
  {
    forecast::HoltPredictor holt(0.125, 0.125);
    const auto acc = forecast::evaluate_accuracy(holt, series);
    table.add_row({"HOLT(0.125,0.125)", stats::format_double(acc.msqerr, 3),
                   stats::format_double(acc.mean_abs_err, 3)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(beta = 1 is LAST; the optimum balances jitter suppression "
              "against level-tracking lag — the paper's 1/8 sits near it)\n");
  return 0;
}
