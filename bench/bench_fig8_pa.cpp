// Figure 8 — query accuracy probability P_A for the 30 detectors.
// Paper shape: ARIMA best on the SM_CI side but among the worst on the
// SM_JAC side; under SM_JAC the ranking is LPF, LAST, WinMean, ...
#include "bench_common.hpp"

int main() {
  fdqos::bench::print_figure(fdqos::exp::QosMetricKind::kPa);
  return 0;
}
