// Shared plumbing for the table/figure reproduction binaries.
//
// Each binary reproduces one table or figure of the paper and prints it in
// the paper's layout. Scale knobs come from the environment so CI can run
// reduced sweeps:
//   FDQOS_RUNS    — QoS experiment runs        (paper: 13)
//   FDQOS_CYCLES  — heartbeat cycles per run   (paper: 10000)
//   FDQOS_NONEWAY — accuracy-experiment length (paper: 100000)
//   FDQOS_SEED    — experiment seed            (default 42)
//   FDQOS_JOBS    — sweep parallelism          (default: hardware)
//   FDQOS_ENGINE  — bank|legacy detector engine (default: bank; output is
//                   byte-identical either way, see docs/detector_bank.md)
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"

namespace fdqos::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

inline exp::QosExperimentConfig qos_config_from_env() {
  exp::QosExperimentConfig config;
  config.runs = static_cast<std::size_t>(env_u64("FDQOS_RUNS", 13));
  config.num_cycles = static_cast<std::int64_t>(env_u64("FDQOS_CYCLES", 10000));
  config.seed = env_u64("FDQOS_SEED", 42);
  config.jobs = static_cast<std::size_t>(env_u64("FDQOS_JOBS", 0));
  if (const char* engine = std::getenv("FDQOS_ENGINE");
      engine != nullptr && *engine != '\0') {
    if (std::string(engine) == "legacy") {
      config.use_detector_bank = false;
    } else if (std::string(engine) != "bank") {
      std::fprintf(stderr,
                   "[fdqos-bench] unknown FDQOS_ENGINE '%s' (want "
                   "bank|legacy); using bank\n",
                   engine);
    }
  }
  return config;
}

// Sweep parallelism from FDQOS_JOBS (0 = hardware concurrency).
inline std::size_t sweep_jobs() {
  return static_cast<std::size_t>(env_u64("FDQOS_JOBS", 0));
}

// Runs fn(i) for every grid point of an ablation sweep on an
// exec::ThreadPool and returns the results in grid order, so tables print
// identically at every FDQOS_JOBS value. Grid points that launch their own
// experiment must run it with jobs = 1 — the sweep owns the parallelism
// (exec rejects re-entrant use of one pool, and nested pools would only
// oversubscribe the machine).
template <typename Fn>
auto run_sweep(std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  const std::size_t env = sweep_jobs();
  exec::ThreadPool pool(
      std::min(env == 0 ? exec::default_jobs() : env, std::max<std::size_t>(n, 1)));
  return pool.parallel_map<R>(n, std::function<R(std::size_t)>(std::ref(fn)));
}

// The QoS experiment feeds five figures; run it once per process and share.
inline const exp::QosReport& shared_qos_report() {
  static const exp::QosReport kReport = [] {
    const auto config = qos_config_from_env();
    std::fprintf(stderr, "[fdqos-bench] running QoS experiment: %s\n",
                 exp::qos_config_summary(config).c_str());
    return exp::run_qos_experiment(config);
  }();
  return kReport;
}

inline void print_figure(exp::QosMetricKind kind) {
  const auto& report = shared_qos_report();
  auto table = exp::qos_metric_table(report, kind);
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(%s values; %s. Experiment: %s; %llu crashes observed)\n",
              exp::metric_name(kind),
              exp::metric_smaller_is_better(kind) ? "smaller is better"
                                                  : "larger is better",
              exp::qos_config_summary(report.config).c_str(),
              static_cast<unsigned long long>(report.total_crashes));

  // Optional machine-readable copy: FDQOS_CSV_DIR=<dir> writes figN.csv.
  const char* csv_dir = std::getenv("FDQOS_CSV_DIR");
  if (csv_dir != nullptr && *csv_dir != '\0') {
    std::string path = std::string(csv_dir) + "/";
    switch (kind) {
      case exp::QosMetricKind::kTd: path += "fig4_td"; break;
      case exp::QosMetricKind::kTdU: path += "fig5_tdu"; break;
      case exp::QosMetricKind::kTm: path += "fig6_tm"; break;
      case exp::QosMetricKind::kTmr: path += "fig7_tmr"; break;
      case exp::QosMetricKind::kPa: path += "fig8_pa"; break;
    }
    path += ".csv";
    const std::string csv = table.to_csv();
    if (std::FILE* f = std::fopen(path.c_str(), "w"); f != nullptr) {
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "[fdqos-bench] wrote %s\n", path.c_str());
    }
  }
}

}  // namespace fdqos::bench
