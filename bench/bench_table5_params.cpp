// Table 5 — experiment parameters, echoed from the QoS experiment
// configuration actually used by the figure benches.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  const auto config = bench::qos_config_from_env();

  stats::TableWriter table("Table 5 — Experiment Parameters");
  table.set_columns({"Parameter", "Value", "Paper value"});
  table.add_row({"NumCycles", std::to_string(config.num_cycles), "10000"});
  table.add_row({"MTTC", config.mttc.to_string(), "300 s"});
  table.add_row({"TTR", config.ttr.to_string(), "30 s"});
  table.add_row({"eta", config.eta.to_string(), "1 s"});
  table.add_row({"runs", std::to_string(config.runs), "13"});
  std::printf("%s", table.to_ascii().c_str());

  const double n_td =
      static_cast<double>(config.num_cycles) * config.eta.to_seconds_double() /
      (config.mttc.to_seconds_double() + config.ttr.to_seconds_double());
  std::printf("Expected T_D samples per run: NumCycles*eta/(MTTC+TTR) ~= %.0f "
              "(paper: ~30)\n",
              n_td);
  return 0;
}
