// Extension — φ-accrual vs the paper's predictor+margin family.
//
// Runs φ-accrual detectors at several thresholds next to representative
// paper configurations, all behind one MultiPlexer on the same link and
// crash schedule. The accrual family replaces the (predictor, margin) grid
// with a single threshold knob; this bench shows where its Φ sweep lands
// on the paper's speed/accuracy plane.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "fd/freshness_detector.hpp"
#include "fd/phi_accrual.hpp"
#include "fd/qos_tracker.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/multiplexer.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "stats/table_writer.hpp"
#include "wan/italy_japan.hpp"

using namespace fdqos;

int main() {
  const auto cycles =
      static_cast<std::int64_t>(bench::env_u64("FDQOS_CYCLES", 10000));
  const std::size_t runs =
      std::min<std::size_t>(bench::env_u64("FDQOS_RUNS", 13), 6);
  const std::uint64_t seed = bench::env_u64("FDQOS_SEED", 42);

  struct Entry {
    std::string name;
    stats::RunningStats td;
    stats::RunningStats tm;
    stats::RunningStats tmr;
  };

  const std::vector<double> thresholds{1.0, 2.0, 3.0, 5.0, 8.0};
  const std::vector<std::pair<const char*, const char*>> paper_picks{
      {"Last", "JAC_med"}, {"Arima", "CI_med"}};

  std::vector<Entry> entries;
  for (double th : thresholds) {
    char name[32];
    std::snprintf(name, sizeof name, "PHI(%g)", th);
    Entry entry;
    entry.name = name;
    entries.push_back(std::move(entry));
  }
  for (const auto& [pred, margin] : paper_picks) {
    Entry entry;
    entry.name = std::string(pred) + "+" + margin;
    entries.push_back(std::move(entry));
  }

  // Each run is a self-contained seeded simulation; fan the runs across
  // the pool and merge tracker stats in run order afterwards, so the table
  // is identical at every FDQOS_JOBS value.
  struct RunStats {
    std::vector<stats::RunningStats> td, tm, tmr;
  };
  const auto per_run = bench::run_sweep(runs, [&](std::size_t run) {
    sim::Simulator simulator;
    Rng rng = Rng(seed).fork(run);
    net::SimTransport transport(simulator, rng.fork("net"));
    net::SimTransport::LinkConfig link;
    link.delay = wan::make_italy_japan_delay();
    link.loss = wan::make_italy_japan_loss();
    transport.set_link(0, 1, std::move(link));

    runtime::ProcessNode monitored(transport, 0);
    auto& crash = monitored.push(std::make_unique<runtime::SimCrashLayer>(
        simulator,
        runtime::SimCrashLayer::Config{Duration::seconds(300),
                                       Duration::seconds(30)},
        rng.fork("crash")));
    runtime::HeartbeaterLayer::Config hb;
    hb.eta = Duration::seconds(1);
    hb.max_cycles = cycles;
    monitored.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

    runtime::ProcessNode monitor(transport, 1);
    auto& mux = monitor.push(std::make_unique<runtime::MultiPlexerLayer>());

    std::vector<fd::QosTracker> trackers;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      trackers.emplace_back(TimePoint::origin() + Duration::seconds(60));
    }
    auto observer_for = [&trackers](std::size_t i) {
      fd::QosTracker* tracker = &trackers[i];
      return [tracker](TimePoint t, bool s) {
        if (s) {
          tracker->suspect_started(t);
        } else {
          tracker->suspect_ended(t);
        }
      };
    };

    std::vector<std::unique_ptr<runtime::Layer>> detectors;
    std::size_t index = 0;
    for (double th : thresholds) {
      fd::PhiAccrualDetector::Config config;
      config.monitored = 0;
      config.threshold = th;
      auto det = std::make_unique<fd::PhiAccrualDetector>(simulator, config);
      det->set_observer(observer_for(index++));
      monitor.attach_unowned(mux, *det);
      detectors.push_back(std::move(det));
    }
    for (const auto& [pred, margin] : paper_picks) {
      fd::FreshnessDetector::Config config;
      config.eta = Duration::seconds(1);
      config.monitored = 0;
      auto det = std::make_unique<fd::FreshnessDetector>(
          simulator, config, fd::make_paper_predictor(pred)(),
          fd::make_paper_margin(margin)());
      det->set_observer(observer_for(index++));
      monitor.attach_unowned(mux, *det);
      detectors.push_back(std::move(det));
    }

    crash.set_observer([&trackers](TimePoint t, bool crashed) {
      for (auto& tracker : trackers) {
        if (crashed) {
          tracker.process_crashed(t);
        } else {
          tracker.process_restored(t);
        }
      }
    });

    monitored.start();
    monitor.start();
    const TimePoint end = TimePoint::origin() + Duration::seconds(cycles) +
                          Duration::seconds(35);
    simulator.run_until(end);
    RunStats out;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      trackers[i].finalize(end);
      out.td.push_back(trackers[i].td_stats());
      out.tm.push_back(trackers[i].tm_stats());
      out.tmr.push_back(trackers[i].tmr_stats());
    }
    return out;
  });
  for (const RunStats& out : per_run) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      entries[i].td.merge(out.td[i]);
      entries[i].tm.merge(out.tm[i]);
      entries[i].tmr.merge(out.tmr[i]);
    }
  }

  stats::TableWriter table(
      "phi-accrual threshold sweep vs paper configurations");
  table.set_columns({"detector", "T_D mean (ms)", "T_D max (ms)",
                     "T_M mean (ms)", "T_MR mean (ms)"});
  for (const auto& entry : entries) {
    table.add_row({entry.name, stats::format_double(entry.td.mean(), 1),
                   stats::format_double(entry.td.max(), 1),
                   stats::format_double(entry.tm.mean(), 1),
                   stats::format_double(entry.tmr.mean(), 1)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(raising the phi threshold walks the same speed/accuracy "
              "frontier the paper spans with its margin families; the "
              "paper's detectors sit on that frontier with an explicit "
              "margin knob instead of a probability)\n");
  return 0;
}
