// Figure 6 — mean mistake duration T_M for the 30 detectors.
// Paper shape: strongly correlated with T_MR; good accuracy needs either a
// good predictor with a predictor-independent margin (ARIMA+SM_CI) or a
// crude predictor with an error-driven margin (LAST+SM_JAC).
#include "bench_common.hpp"

int main() {
  fdqos::bench::print_figure(fdqos::exp::QosMetricKind::kTm);
  return 0;
}
