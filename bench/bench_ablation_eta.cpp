// Ablation — heartbeat period η sensitivity (not a paper figure; DESIGN.md
// design-choice bench). η trades bandwidth for detection speed: T_D grows
// roughly like η/2 + δ, while accuracy is nearly η-independent.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "stats/table_writer.hpp"

int main() {
  using namespace fdqos;
  const std::uint64_t seed = bench::env_u64("FDQOS_SEED", 42);
  const auto cycles = static_cast<std::int64_t>(
      bench::env_u64("FDQOS_CYCLES", 10000));

  stats::TableWriter table("Ablation — eta sweep (detector: Last+JAC_med)");
  table.set_columns({"eta", "T_D mean (ms)", "T_D max (ms)", "P_A",
                     "heartbeats sent"});

  const std::vector<std::int64_t> etas_ms{250, 500, 1000, 2000, 4000};
  const auto rows = bench::run_sweep(etas_ms.size(), [&](std::size_t i) {
    const std::int64_t eta_ms = etas_ms[i];
    exp::QosExperimentConfig config;
    config.runs = 2;
    config.eta = Duration::millis(eta_ms);
    // Keep virtual run length constant (~cycles seconds) across etas.
    config.num_cycles = cycles * 1000 / eta_ms;
    config.seed = seed;
    config.jobs = 1;  // the sweep owns the parallelism
    const auto report = exp::run_qos_experiment(config);
    const auto* result = exp::find_result(report, "Last+JAC_med");
    if (result == nullptr) return std::vector<std::string>{};
    char eta_label[32];
    std::snprintf(eta_label, sizeof eta_label, "%lldms",
                  static_cast<long long>(eta_ms));
    return std::vector<std::string>{
        eta_label,
        stats::format_double(result->metrics.detection_time_ms.mean, 1),
        stats::format_double(result->metrics.detection_time_ms.max, 1),
        stats::format_double(result->metrics.query_accuracy, 6),
        std::to_string(report.heartbeats_sent)};
  });
  for (const auto& row : rows) {
    if (!row.empty()) table.add_row(row);
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(T_D ~ eta/2 + delta: halving eta buys faster detection at "
              "double the message cost)\n");
  return 0;
}
