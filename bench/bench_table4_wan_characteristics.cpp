// Table 4 — characteristics of the WAN connection: measures the calibrated
// Italy–Japan link model the way the paper characterized the real path.
#include <cstdio>

#include "bench_common.hpp"
#include "exp/report.hpp"
#include "stats/histogram.hpp"
#include "wan/italy_japan.hpp"

int main() {
  using namespace fdqos;
  const std::size_t n =
      static_cast<std::size_t>(bench::env_u64("FDQOS_NONEWAY", 100000)) * 5;
  auto delay = wan::make_italy_japan_delay();
  auto loss = wan::make_italy_japan_loss();
  Rng rng(bench::env_u64("FDQOS_SEED", 42));

  const auto link =
      wan::measure_link(*delay, *loss, n, Duration::seconds(1), rng);
  auto table = exp::link_table(link);
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(measured over %zu messages; paper: mean ~200 ms, sd 7.6 ms, "
              "min 192 ms, max 340 ms, 18 hops, loss < 1%%)\n\n",
              link.messages);

  // Delay histogram for the curious (not in the paper, aids calibration).
  auto fresh = delay->make_fresh();
  Rng rng2(7);
  stats::Histogram hist(190.0, 250.0, 24);
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < 100000; ++i, t += Duration::seconds(1)) {
    hist.add(fresh->sample(rng2, t).to_millis_double());
  }
  std::printf("One-way delay distribution (ms):\n%s", hist.render().c_str());
  return 0;
}
