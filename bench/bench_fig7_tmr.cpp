// Figure 7 — mean mistake recurrence time T_MR for the 30 detectors.
// Paper shape: higher T_MR is paid for with higher T_M; ARIMA+SM_JAC_high
// is among the worst accuracy configurations.
#include "bench_common.hpp"

int main() {
  fdqos::bench::print_figure(fdqos::exp::QosMetricKind::kTmr);
  return 0;
}
