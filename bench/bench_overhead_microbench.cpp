// §5.3 — runtime overhead of the timeout-calculation methods.
//
// The paper argues all methods are O(1) per update with different constants,
// and crowns LAST+SM_JAC the most effective once implementation cost is
// considered. This google-benchmark binary measures the per-heartbeat cost
// (margin update + predictor update + forecast) of every combination.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "fd/suite.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace fdqos;

std::vector<double> delay_stream(std::size_t n) {
  Rng rng(42);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(192.0 + rng.lognormal(1.74, 0.64));
  }
  return out;
}

void BM_PredictorUpdateAndForecast(benchmark::State& state,
                                   const std::string& label) {
  const auto stream = delay_stream(1 << 14);
  auto predictor = fd::make_paper_predictor(label)();
  std::size_t i = 0;
  for (auto _ : state) {
    predictor->observe(stream[i++ & (stream.size() - 1)]);
    benchmark::DoNotOptimize(predictor->predict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_MarginUpdate(benchmark::State& state, const std::string& label) {
  const auto stream = delay_stream(1 << 14);
  auto margin = fd::make_paper_margin(label)();
  std::size_t i = 0;
  for (auto _ : state) {
    const double obs = stream[i++ & (stream.size() - 1)];
    margin->observe(obs, 200.0);
    benchmark::DoNotOptimize(margin->margin());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FullTimeoutCalculation(benchmark::State& state,
                               const std::string& pred_label,
                               const std::string& margin_label) {
  const auto stream = delay_stream(1 << 14);
  auto predictor = fd::make_paper_predictor(pred_label)();
  auto margin = fd::make_paper_margin(margin_label)();
  std::size_t i = 0;
  for (auto _ : state) {
    const double obs = stream[i++ & (stream.size() - 1)];
    margin->observe(obs, predictor->predict());
    predictor->observe(obs);
    benchmark::DoNotOptimize(predictor->predict() + margin->margin());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Substrate envelope: raw event throughput of the discrete-event core and
// the cost of one full detector heartbeat cycle (arrival + freshness
// bookkeeping). Shows the 13 × 10 000 s experiment fitting in ~1 s of CPU.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule_after(Duration::micros(i), [&fired] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_SimulatorTimerChurn(benchmark::State& state) {
  // The detector pattern: schedule + cancel (every heartbeat re-arms).
  sim::Simulator simulator;
  for (auto _ : state) {
    sim::EventHandle handle =
        simulator.schedule_after(Duration::seconds(3600), [] {});
    handle.cancel();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Instrumentation cost envelope. obs/span_disabled is what every hot path
// pays when observability is off (the acceptance bar: not measurable next
// to a predictor update); the enabled variants show the opt-in cost.
void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::ObsSpan span("bench_disabled");
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ObsCounterInc(benchmark::State& state) {
  obs::set_enabled(true);
  auto& counter = obs::Registry::global().counter(
      "fdqos_bench_obs_counter_total", "microbench scratch counter");
  for (auto _ : state) {
    if (obs::enabled()) counter.inc();
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  auto& hist = obs::Registry::global().histogram(
      "fdqos_bench_obs_span_duration_us", "microbench scratch histogram");
  for (auto _ : state) {
    obs::ObsSpan span("bench_enabled", &hist);
    benchmark::DoNotOptimize(span.active());
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& pred : fdqos::fd::paper_predictor_labels()) {
    benchmark::RegisterBenchmark(("predictor/" + pred).c_str(),
                                 BM_PredictorUpdateAndForecast, pred);
  }
  for (const auto& margin : fdqos::fd::paper_margin_labels()) {
    benchmark::RegisterBenchmark(("margin/" + margin).c_str(), BM_MarginUpdate,
                                 margin);
  }
  // The paper's §5.3 headline comparison plus the extremes.
  benchmark::RegisterBenchmark("timeout/Last+JAC_med", BM_FullTimeoutCalculation,
                               std::string("Last"), std::string("JAC_med"));
  benchmark::RegisterBenchmark("timeout/Arima+CI_med", BM_FullTimeoutCalculation,
                               std::string("Arima"), std::string("CI_med"));
  benchmark::RegisterBenchmark("timeout/Mean+CI_med", BM_FullTimeoutCalculation,
                               std::string("Mean"), std::string("CI_med"));
  benchmark::RegisterBenchmark("simulator/event_throughput",
                               BM_SimulatorEventThroughput);
  benchmark::RegisterBenchmark("simulator/timer_churn", BM_SimulatorTimerChurn);
  benchmark::RegisterBenchmark("obs/span_disabled", BM_ObsSpanDisabled);
  benchmark::RegisterBenchmark("obs/counter_inc", BM_ObsCounterInc);
  benchmark::RegisterBenchmark("obs/span_enabled", BM_ObsSpanEnabled);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
