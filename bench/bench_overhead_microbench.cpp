// §5.3 — runtime overhead of the timeout-calculation methods.
//
// The paper argues all methods are O(1) per update with different constants,
// and crowns LAST+SM_JAC the most effective once implementation cost is
// considered. This google-benchmark binary measures the per-heartbeat cost
// (margin update + predictor update + forecast) of every combination.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fd/suite.hpp"
#include "obs/http_exporter.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "stats/quantiles.hpp"
#include "stats/tdigest.hpp"

namespace {

using namespace fdqos;

std::vector<double> delay_stream(std::size_t n) {
  Rng rng(42);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(192.0 + rng.lognormal(1.74, 0.64));
  }
  return out;
}

void BM_PredictorUpdateAndForecast(benchmark::State& state,
                                   const std::string& label) {
  const auto stream = delay_stream(1 << 14);
  auto predictor = fd::make_paper_predictor(label)();
  std::size_t i = 0;
  for (auto _ : state) {
    predictor->observe(stream[i++ & (stream.size() - 1)]);
    benchmark::DoNotOptimize(predictor->predict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_MarginUpdate(benchmark::State& state, const std::string& label) {
  const auto stream = delay_stream(1 << 14);
  auto margin = fd::make_paper_margin(label)();
  std::size_t i = 0;
  for (auto _ : state) {
    const double obs = stream[i++ & (stream.size() - 1)];
    margin->observe(obs, 200.0);
    benchmark::DoNotOptimize(margin->margin());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FullTimeoutCalculation(benchmark::State& state,
                               const std::string& pred_label,
                               const std::string& margin_label) {
  const auto stream = delay_stream(1 << 14);
  auto predictor = fd::make_paper_predictor(pred_label)();
  auto margin = fd::make_paper_margin(margin_label)();
  std::size_t i = 0;
  for (auto _ : state) {
    const double obs = stream[i++ & (stream.size() - 1)];
    margin->observe(obs, predictor->predict());
    predictor->observe(obs);
    benchmark::DoNotOptimize(predictor->predict() + margin->margin());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Substrate envelope: raw event throughput of the discrete-event core and
// the cost of one full detector heartbeat cycle (arrival + freshness
// bookkeeping). Shows the 13 × 10 000 s experiment fitting in ~1 s of CPU.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule_after(Duration::micros(i), [&fired] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_SimulatorTimerChurn(benchmark::State& state) {
  // The detector pattern: schedule + cancel (every heartbeat re-arms).
  sim::Simulator simulator;
  for (auto _ : state) {
    sim::EventHandle handle =
        simulator.schedule_after(Duration::seconds(3600), [] {});
    handle.cancel();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Instrumentation cost envelope. obs/span_disabled is what every hot path
// pays when observability is off (the acceptance bar: not measurable next
// to a predictor update); the enabled variants show the opt-in cost.
void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::ObsSpan span("bench_disabled");
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ObsCounterInc(benchmark::State& state) {
  obs::set_enabled(true);
  auto& counter = obs::Registry::global().counter(
      "fdqos_bench_obs_counter_total", "microbench scratch counter");
  for (auto _ : state) {
    if (obs::enabled()) counter.inc();
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  auto& hist = obs::Registry::global().histogram(
      "fdqos_bench_obs_span_duration_us", "microbench scratch histogram");
  for (auto _ : state) {
    obs::ObsSpan span("bench_enabled", &hist);
    benchmark::DoNotOptimize(span.active());
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Streaming sketch update cost: what one Histogram::observe() pays for its
// three P² markers, and what the opt-in SampleSet streaming backend pays
// per sample. Both must stay O(1) and cheap next to a predictor update.
void BM_SketchP2Add(benchmark::State& state) {
  const auto stream = delay_stream(1 << 14);
  stats::P2Quantile p99(0.99);
  std::size_t i = 0;
  for (auto _ : state) {
    p99.add(stream[i++ & (stream.size() - 1)]);
  }
  benchmark::DoNotOptimize(p99.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SketchTDigestAdd(benchmark::State& state) {
  const auto stream = delay_stream(1 << 14);
  stats::TDigest digest(100.0);
  std::size_t i = 0;
  for (auto _ : state) {
    digest.add(stream[i++ & (stream.size() - 1)]);
  }
  benchmark::DoNotOptimize(digest.quantile(0.99));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ObsHistObserveEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  auto& hist = obs::Registry::global().histogram(
      "fdqos_bench_obs_hist_observe_us", "microbench scratch histogram");
  const auto stream = delay_stream(1 << 14);
  std::size_t i = 0;
  for (auto _ : state) {
    if (obs::enabled()) hist.observe(stream[i++ & (stream.size() - 1)]);
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// One blocking GET against the exporter's loopback port; the exporter
// always answers Connection: close, so read-to-EOF is the full response.
std::string blocking_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// Scrape cost: rendering the exposition text (what the exporter thread
// does per request, holding only per-instrument locks) and a full HTTP
// round trip against the poll loop. Neither runs on the experiment's hot
// path, but both bound how hard a scraper can hammer a live run.
void BM_ExporterRenderPrometheus(benchmark::State& state) {
  obs::Registry reg;
  for (int f = 0; f < 16; ++f) {
    auto& h = reg.histogram("fdqos_bench_render_us_" + std::to_string(f),
                            "render scratch",
                            {{"suite", "paper"}, {"run", "bench"}});
    for (int i = 0; i < 256; ++i) h.observe(static_cast<double>(i));
    reg.counter("fdqos_bench_render_total_" + std::to_string(f), "scratch")
        .inc(static_cast<std::uint64_t>(f));
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = reg.to_prometheus();
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["exposition_bytes"] = static_cast<double>(bytes);
}

void BM_ExporterHttpScrape(benchmark::State& state) {
  obs::Registry reg;
  auto& h = reg.histogram("fdqos_bench_scrape_us", "scrape scratch");
  for (int i = 0; i < 256; ++i) h.observe(static_cast<double>(i));
  obs::HttpExporter::Options opts;
  opts.registry = &reg;
  obs::HttpExporter exporter(std::move(opts));
  if (!exporter.start()) {
    state.SkipWithError("exporter failed to start");
    return;
  }
  for (auto _ : state) {
    const std::string body = blocking_get(exporter.port(), "/metrics");
    if (body.find("fdqos_bench_scrape_us_count") == std::string::npos) {
      state.SkipWithError("incomplete scrape");
      break;
    }
    benchmark::DoNotOptimize(body.data());
  }
  exporter.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& pred : fdqos::fd::paper_predictor_labels()) {
    benchmark::RegisterBenchmark(("predictor/" + pred).c_str(),
                                 BM_PredictorUpdateAndForecast, pred);
  }
  for (const auto& margin : fdqos::fd::paper_margin_labels()) {
    benchmark::RegisterBenchmark(("margin/" + margin).c_str(), BM_MarginUpdate,
                                 margin);
  }
  // The paper's §5.3 headline comparison plus the extremes.
  benchmark::RegisterBenchmark("timeout/Last+JAC_med", BM_FullTimeoutCalculation,
                               std::string("Last"), std::string("JAC_med"));
  benchmark::RegisterBenchmark("timeout/Arima+CI_med", BM_FullTimeoutCalculation,
                               std::string("Arima"), std::string("CI_med"));
  benchmark::RegisterBenchmark("timeout/Mean+CI_med", BM_FullTimeoutCalculation,
                               std::string("Mean"), std::string("CI_med"));
  benchmark::RegisterBenchmark("simulator/event_throughput",
                               BM_SimulatorEventThroughput);
  benchmark::RegisterBenchmark("simulator/timer_churn", BM_SimulatorTimerChurn);
  benchmark::RegisterBenchmark("obs/span_disabled", BM_ObsSpanDisabled);
  benchmark::RegisterBenchmark("obs/counter_inc", BM_ObsCounterInc);
  benchmark::RegisterBenchmark("obs/span_enabled", BM_ObsSpanEnabled);
  benchmark::RegisterBenchmark("sketch/p2_add", BM_SketchP2Add);
  benchmark::RegisterBenchmark("sketch/tdigest_add", BM_SketchTDigestAdd);
  benchmark::RegisterBenchmark("obs/hist_observe_enabled",
                               BM_ObsHistObserveEnabled);
  benchmark::RegisterBenchmark("exporter/render_prometheus",
                               BM_ExporterRenderPrometheus);
  benchmark::RegisterBenchmark("exporter/http_scrape", BM_ExporterHttpScrape);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
