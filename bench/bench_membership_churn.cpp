// Application-level QoS: group-membership view stability vs detector
// configuration (the paper's §2.1 motivation — for membership, accuracy
// beats speed, because every false suspicion of a live member forces a
// view change and possibly a coordinator election).
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "fd/freshness_detector.hpp"
#include "membership/view_manager.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "stats/table_writer.hpp"
#include "wan/italy_japan.hpp"

using namespace fdqos;

namespace {

constexpr int kNodes = 4;

struct ChurnResult {
  std::uint64_t views = 0;
  std::uint64_t wrongful_evictions = 0;
  std::uint64_t coordinator_changes = 0;
  stats::RunningStats view_duration_ms;
  stats::RunningStats true_eviction_delay_ms;  // app-level detection time
};

ChurnResult run_membership(const char* pred, const char* margin,
                           Duration horizon, std::uint64_t seed) {
  sim::Simulator simulator;
  Rng rng(seed);
  net::SimTransport transport(simulator, rng.fork("net"));
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      net::SimTransport::LinkConfig link;
      link.delay = wan::make_italy_japan_delay();
      link.loss = wan::make_italy_japan_loss();
      transport.set_link(a, b, std::move(link));
    }
  }

  std::vector<net::NodeId> members;
  for (int i = 0; i < kNodes; ++i) members.push_back(i);

  std::vector<bool> alive(kNodes, true);
  std::vector<TimePoint> crash_time(kNodes);
  ChurnResult result;

  struct NodeState {
    std::unique_ptr<runtime::ProcessNode> process;
    runtime::SimCrashLayer* crash = nullptr;
    std::vector<std::unique_ptr<runtime::HeartbeaterLayer>> heartbeaters;
    std::vector<std::unique_ptr<fd::FreshnessDetector>> detectors;
    std::unique_ptr<membership::ViewManager> views;
  };
  std::vector<NodeState> nodes(kNodes);

  for (int i = 0; i < kNodes; ++i) {
    NodeState& node = nodes[static_cast<std::size_t>(i)];
    node.process = std::make_unique<runtime::ProcessNode>(transport, i);
    node.crash = &node.process->push(std::make_unique<runtime::SimCrashLayer>(
        simulator,
        runtime::SimCrashLayer::Config{Duration::seconds(400),
                                       Duration::seconds(30)},
        rng.fork("crash").fork(static_cast<std::uint64_t>(i))));
    node.crash->set_observer([&, i](TimePoint t, bool crashed) {
      alive[static_cast<std::size_t>(i)] = !crashed;
      if (crashed) crash_time[static_cast<std::size_t>(i)] = t;
    });
    node.views = std::make_unique<membership::ViewManager>(i, members);

    for (int peer = 0; peer < kNodes; ++peer) {
      if (peer == i) continue;
      runtime::HeartbeaterLayer::Config hb;
      hb.eta = Duration::seconds(1);
      hb.self = i;
      hb.monitor = peer;
      auto beater = std::make_unique<runtime::HeartbeaterLayer>(simulator, hb);
      node.process->attach_unowned(*node.crash, *beater);
      node.heartbeaters.push_back(std::move(beater));

      fd::FreshnessDetector::Config config;
      config.eta = Duration::seconds(1);
      config.monitored = peer;
      auto detector = std::make_unique<fd::FreshnessDetector>(
          simulator, config, fd::make_paper_predictor(pred)(),
          fd::make_paper_margin(margin)());
      membership::ViewManager* views = node.views.get();
      detector->set_observer([&, views, peer, i](TimePoint t, bool suspect) {
        if (suspect) {
          if (alive[static_cast<std::size_t>(peer)] &&
              alive[static_cast<std::size_t>(i)]) {
            ++result.wrongful_evictions;
          } else if (!alive[static_cast<std::size_t>(peer)]) {
            result.true_eviction_delay_ms.add(
                (t - crash_time[static_cast<std::size_t>(peer)])
                    .to_millis_double());
          }
          views->peer_suspected(peer, t);
        } else {
          views->peer_trusted(peer, t);
        }
      });
      node.process->attach_unowned(*node.crash, *detector);
      node.detectors.push_back(std::move(detector));
    }
    node.process->start();
  }

  const TimePoint end = TimePoint::origin() + horizon;
  simulator.run_until(end);
  for (auto& node : nodes) {
    node.views->finalize(end);
    result.views += node.views->views_installed();
    result.coordinator_changes += node.views->coordinator_changes();
    result.view_duration_ms.merge(node.views->view_duration_ms());
  }
  return result;
}

}  // namespace

int main() {
  const Duration horizon = Duration::seconds(
      static_cast<std::int64_t>(fdqos::bench::env_u64("FDQOS_CYCLES", 10000)) / 2);
  const std::uint64_t seed = fdqos::bench::env_u64("FDQOS_SEED", 42);
  const double hours = horizon.to_seconds_double() / 3600.0;

  stats::TableWriter table("Membership churn vs detector configuration "
                           "(4 nodes, all-to-all monitoring)");
  table.set_columns({"detector", "views/h", "wrongful evictions/h",
                     "coordinator changes/h", "mean view (s)",
                     "true-eviction delay (ms)"});
  const std::pair<const char*, const char*> configs[] = {
      {"Last", "JAC_low"}, {"Last", "JAC_high"}, {"Arima", "CI_low"},
      {"Arima", "CI_high"}, {"Mean", "CI_high"}};
  for (const auto& [pred, margin] : configs) {
    const ChurnResult r = run_membership(pred, margin, horizon, seed);
    char name[64];
    std::snprintf(name, sizeof name, "%s+%s", pred, margin);
    table.add_row(
        {name,
         stats::format_double(static_cast<double>(r.views) / hours, 1),
         stats::format_double(static_cast<double>(r.wrongful_evictions) / hours, 1),
         stats::format_double(static_cast<double>(r.coordinator_changes) / hours, 1),
         stats::format_double(r.view_duration_ms.mean() / 1000.0, 1),
         stats::format_double(r.true_eviction_delay_ms.mean(), 1)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(accuracy-first configurations churn less at a small "
              "true-eviction-delay premium — the paper's §2.1 trade-off at "
              "the application layer)\n");
  return 0;
}
