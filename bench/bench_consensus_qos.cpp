// Consensus QoS as a function of failure-detector QoS — the relation the
// paper motivates via its reference [6] (Coccoli, Urbán, Bondavalli,
// Schiper, DSN 2002): the FD's accuracy/speed trade-off surfaces directly
// in the latency of Chandra–Toueg consensus.
//
//  * failure-free instances: an FD with frequent false suspicions makes
//    participants NACK a correct coordinator, adding rounds;
//  * coordinator-crash instances: detection time bounds how long round 1
//    stalls before the NACKs release everyone to round 2.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "consensus/cluster.hpp"
#include "stats/quantiles.hpp"
#include "stats/running_stats.hpp"
#include "stats/table_writer.hpp"
#include "wan/italy_japan.hpp"

using namespace fdqos;

namespace {

struct Scenario {
  const char* predictor;
  const char* margin;
};

struct ScenarioResult {
  stats::RunningStats latency_s;
  stats::SampleSet latency_samples;
  stats::RunningStats rounds;
  int failures = 0;  // instances that missed the deadline
};

ScenarioResult run_scenario(const Scenario& scenario, bool crash_coordinator,
                            int instances, std::uint64_t seed) {
  ScenarioResult result;
  const TimePoint propose_at = TimePoint::origin() + Duration::seconds(5);
  const TimePoint deadline = TimePoint::origin() + Duration::seconds(120);

  for (int k = 0; k < instances; ++k) {
    consensus::ConsensusCluster::Config config;
    config.nodes = 3;
    config.predictor_label = scenario.predictor;
    config.margin_label = scenario.margin;
    config.seed = seed + static_cast<std::uint64_t>(k) * 7919;
    if (crash_coordinator) {
      // Round-1 coordinator dies just as the instance starts.
      config.crash_schedules[0] = {
          {propose_at + Duration::millis(50), TimePoint::max()}};
    }
    consensus::ConsensusCluster cluster(
        config, [&](net::NodeId, net::NodeId) {
          net::SimTransport::LinkConfig link;
          link.delay = wan::make_italy_japan_delay();
          link.loss = wan::make_italy_japan_loss();
          return link;
        });
    cluster.propose_all(propose_at, {100, 200, 300});
    const bool decided = cluster.run_until_decided(deadline);
    if (!decided) {
      ++result.failures;
      continue;
    }
    TimePoint last_decision = TimePoint::origin();
    std::uint32_t max_rounds = 0;
    for (int i = 0; i < config.nodes; ++i) {
      if (!cluster.node_up(i)) continue;
      last_decision = std::max(last_decision, cluster.decision_time(i));
      max_rounds = std::max(max_rounds, cluster.rounds_entered(i));
    }
    const double latency = (last_decision - propose_at).to_seconds_double();
    result.latency_s.add(latency);
    result.latency_samples.add(latency);
    result.rounds.add(static_cast<double>(max_rounds));
  }
  return result;
}

}  // namespace

int main() {
  const auto instances = static_cast<int>(
      fdqos::bench::env_u64("FDQOS_CONSENSUS_INSTANCES", 40));
  const std::uint64_t seed = fdqos::bench::env_u64("FDQOS_SEED", 42);

  const std::vector<Scenario> scenarios = {
      {"Arima", "JAC_low"},   // fast, inaccurate detector
      {"Last", "JAC_med"},    // the paper's effective pick
      {"Last", "CI_med"},     // slower, accurate
      {"Mean", "CI_high"},    // slowest, most conservative
  };

  for (const bool crash : {false, true}) {
    stats::TableWriter table(
        crash ? "Consensus QoS — round-1 coordinator crashes at start"
              : "Consensus QoS — failure-free instances");
    table.set_columns({"detector", "mean latency (s)", "p95 latency (s)",
                       "mean rounds", "timeouts"});
    for (const auto& scenario : scenarios) {
      const auto result = run_scenario(scenario, crash, instances, seed);
      char name[64];
      std::snprintf(name, sizeof name, "%s+%s", scenario.predictor,
                    scenario.margin);
      table.add_row(
          {name, stats::format_double(result.latency_s.mean(), 3),
           stats::format_double(
               result.latency_samples.empty()
                   ? 0.0
                   : result.latency_samples.quantile(0.95),
               3),
           stats::format_double(result.rounds.mean(), 2),
           std::to_string(result.failures)});
    }
    std::printf("%s\n", table.to_ascii().c_str());
  }
  std::printf("(failure-free latency is a few WAN round trips for every "
              "detector, plus one extra round per false suspicion — the "
              "accurate-FD configurations run fewer rounds; under a "
              "coordinator crash, T_D adds a stall before round 2 and the "
              "inaccurate detectors' extra NACK rounds stack on top. FD "
              "QoS is consensus QoS, the paper's [6] relation.)\n");
  return 0;
}
