// Table 3 — predictor accuracy: msqerr of one-step-ahead forecasts over
// N_oneway heartbeat delays on the Italy–Japan link model (paper §5.1).
#include <cstdio>

#include "bench_common.hpp"
#include "exp/accuracy_experiment.hpp"

int main() {
  using namespace fdqos;
  exp::AccuracyExperimentConfig config;
  config.n_oneway =
      static_cast<std::size_t>(bench::env_u64("FDQOS_NONEWAY", 100000));
  config.seed = bench::env_u64("FDQOS_SEED", 42);

  std::fprintf(stderr, "[fdqos-bench] accuracy experiment: %zu heartbeats\n",
               config.n_oneway);
  const auto report = exp::run_accuracy_experiment(config);

  auto table = exp::accuracy_table(report);
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "(%zu delays collected from %zu heartbeats; paper order on its trace: "
      "ARIMA < WINMEAN < MEAN < LAST < LPF)\n",
      report.delays_collected, report.heartbeats_sent);
  return 0;
}
