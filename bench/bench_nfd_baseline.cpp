// Baseline — NFD-E (Chen, Toueg, Aguilera; the paper's reference [5]):
// configure the constant-margin detector from QoS requirements + link
// characterization, then run it against the paper's best adaptive
// combinations on the same link.
#include <cstdio>

#include "bench_common.hpp"
#include "fd/nfd_config.hpp"
#include "stats/table_writer.hpp"

using namespace fdqos;

int main() {
  // Characterize the link (Table 4 values of the synthetic model).
  fd::LinkCharacterization link;
  link.loss_probability = 0.006;
  link.delay_mean_ms = 200.0;
  link.delay_var_ms2 = 45.0;

  fd::QosRequirements req;
  req.max_detection_time = Duration::seconds(2);
  req.min_mistake_recurrence = Duration::seconds(60);
  req.max_mistake_duration = Duration::seconds(2);

  const auto config = fd::configure_nfd_e(req, link);
  if (!config) {
    std::printf("NFD-E configuration infeasible for these requirements\n");
    return 1;
  }
  std::printf("NFD-E configured from requirements (T_D^U=2s, T_MR^L=60s, "
              "T_M^U=2s):\n");
  std::printf("  eta = %s, alpha = %s (margin %.1f ms beyond E[D])\n",
              config->eta.to_string().c_str(),
              config->alpha.to_string().c_str(), config->margin_ms);
  std::printf("  bounded miss probability = %.5f, guaranteed T_D <= %s, "
              "E[T_MR] >= %s\n\n",
              config->miss_probability,
              config->detection_bound.to_string().c_str(),
              config->mistake_recurrence_bound.to_string().c_str());

  // Run NFD-E next to the paper's picks, at NFD-E's configured eta.
  exp::QosExperimentConfig experiment = bench::qos_config_from_env();
  experiment.runs = std::min<std::size_t>(experiment.runs, 6);
  experiment.eta = config->eta;
  experiment.include_paper_suite = false;
  experiment.extra_specs.push_back(fd::make_nfd_e_spec(*config));
  for (const char* pred : {"Last", "Arima"}) {
    for (const char* margin : {"JAC_med", "CI_med"}) {
      fd::FdSpec spec;
      spec.name = std::string(pred) + "+" + margin;
      spec.predictor_label = pred;
      spec.margin_label = margin;
      spec.make_predictor = fd::make_paper_predictor(pred);
      spec.make_margin = fd::make_paper_margin(margin);
      experiment.extra_specs.push_back(std::move(spec));
    }
  }
  const auto report = exp::run_qos_experiment(experiment);

  stats::TableWriter table("NFD-E vs adaptive detectors (same eta and link)");
  table.set_columns({"detector", "T_D mean (ms)", "T_D max (ms)",
                     "T_M mean (ms)", "T_MR mean (ms)", "P_A"});
  for (const auto& result : report.results) {
    const auto& m = result.metrics;
    table.add_row({result.name,
                   stats::format_double(m.detection_time_ms.mean, 1),
                   stats::format_double(m.detection_time_ms.max, 1),
                   stats::format_double(m.mistake_duration_ms.mean, 1),
                   stats::format_double(m.mistake_recurrence_ms.mean, 1),
                   stats::format_double(m.query_accuracy, 6)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(requirement check: NFD-E max T_D must stay below %.0f ms)\n",
              req.max_detection_time.to_millis_double());
  return 0;
}
