// Figure 5 — maximum observed detection time T_D^U for the 30 detectors.
// Paper shape: mirrors Figure 4 with MEAN worst; LAST+SM_JAC best.
#include "bench_common.hpp"

int main() {
  fdqos::bench::print_figure(fdqos::exp::QosMetricKind::kTdU);
  return 0;
}
