// Extension — predictors and margins beyond the paper's grid (its §6
// future-work direction): Holt double smoothing, windowed median, and the
// CI ∨ JAC hybrid margin, run inside the same QoS experiment next to the
// paper's strongest combinations.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "forecast/extended_predictors.hpp"
#include "stats/table_writer.hpp"

using namespace fdqos;

namespace {

fd::FdSpec paper_spec(const char* pred, const char* margin) {
  fd::FdSpec spec;
  spec.name = std::string(pred) + "+" + margin;
  spec.predictor_label = pred;
  spec.margin_label = margin;
  spec.make_predictor = fd::make_paper_predictor(pred);
  spec.make_margin = fd::make_paper_margin(margin);
  return spec;
}

}  // namespace

int main() {
  exp::QosExperimentConfig config = bench::qos_config_from_env();
  config.runs = std::min<std::size_t>(config.runs, 6);
  config.include_paper_suite = false;

  // Reference points from the paper grid.
  config.extra_specs.push_back(paper_spec("Last", "JAC_med"));
  config.extra_specs.push_back(paper_spec("Arima", "CI_med"));
  config.extra_specs.push_back(paper_spec("LPF", "CI_med"));

  // Extensions.
  auto holt = [] {
    return std::make_unique<forecast::HoltPredictor>(0.125, 0.125);
  };
  auto median = [] {
    return std::make_unique<forecast::WinMedianPredictor>(11);
  };
  auto hybrid = [] {
    return std::make_unique<fd::MaxSafetyMargin>(
        std::make_unique<fd::CiSafetyMargin>(2.0, "med"),
        std::make_unique<fd::JacobsonSafetyMargin>(2.0, 0.25, "med"));
  };
  {
    fd::FdSpec spec;
    spec.name = "Holt+JAC_med";
    spec.predictor_label = "Holt";
    spec.margin_label = "JAC_med";
    spec.make_predictor = holt;
    spec.make_margin = fd::make_paper_margin("JAC_med");
    config.extra_specs.push_back(std::move(spec));
  }
  {
    fd::FdSpec spec;
    spec.name = "WinMedian+CI_med";
    spec.predictor_label = "WinMedian";
    spec.margin_label = "CI_med";
    spec.make_predictor = median;
    spec.make_margin = fd::make_paper_margin("CI_med");
    config.extra_specs.push_back(std::move(spec));
  }
  {
    fd::FdSpec spec;
    spec.name = "Last+MAX(CI,JAC)";
    spec.predictor_label = "Last";
    spec.margin_label = "MAX";
    spec.make_predictor = fd::make_paper_predictor("Last");
    spec.make_margin = hybrid;
    config.extra_specs.push_back(std::move(spec));
  }
  {
    fd::FdSpec spec;
    spec.name = "WinMedian+MAX(CI,JAC)";
    spec.predictor_label = "WinMedian";
    spec.margin_label = "MAX";
    spec.make_predictor = median;
    spec.make_margin = hybrid;
    config.extra_specs.push_back(std::move(spec));
  }
  {
    fd::FdSpec spec;
    spec.name = "Last+RMS(2)";
    spec.predictor_label = "Last";
    spec.margin_label = "RMS";
    spec.make_predictor = fd::make_paper_predictor("Last");
    spec.make_margin = [] {
      return std::make_unique<fd::RmsSafetyMargin>(2.0);
    };
    config.extra_specs.push_back(std::move(spec));
  }
  {
    fd::FdSpec spec;
    spec.name = "LPF+WCI(2,500)";
    spec.predictor_label = "LPF";
    spec.margin_label = "WCI";
    spec.make_predictor = fd::make_paper_predictor("LPF");
    spec.make_margin = [] {
      return std::make_unique<fd::WindowedCiSafetyMargin>(2.0, 500);
    };
    config.extra_specs.push_back(std::move(spec));
  }

  const auto report = exp::run_qos_experiment(config);
  stats::TableWriter table("Extended suite vs paper picks");
  table.set_columns({"detector", "T_D mean (ms)", "T_M mean (ms)",
                     "T_MR mean (ms)", "P_A"});
  for (const auto& result : report.results) {
    const auto& m = result.metrics;
    table.add_row({result.name,
                   stats::format_double(m.detection_time_ms.mean, 1),
                   stats::format_double(m.mistake_duration_ms.mean, 1),
                   stats::format_double(m.mistake_recurrence_ms.mean, 1),
                   stats::format_double(m.query_accuracy, 6)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(MAX(CI,JAC) buys extra accuracy with a modest T_D premium; "
              "the windowed median resists delay spikes)\n");
  return 0;
}
