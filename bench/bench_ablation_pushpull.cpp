// Ablation — push vs pull (paper §2.2): "push-style permits to obtain the
// same quality of detection with half the messages exchanged". Runs the
// same (predictor, margin) pair in both styles on the same link and crash
// schedule and compares QoS and message cost.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fd/freshness_detector.hpp"
#include "fd/pull_detector.hpp"
#include "fd/qos_tracker.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/ping_responder.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "stats/table_writer.hpp"
#include "wan/italy_japan.hpp"

using namespace fdqos;

namespace {

struct StyleResult {
  fd::QosMetrics metrics;
  std::uint64_t messages = 0;
};

StyleResult run_style(bool push, std::int64_t cycles, std::uint64_t seed) {
  sim::Simulator simulator;
  Rng rng(seed);
  net::SimTransport transport(simulator, rng.fork("net"));
  // Both directions use the calibrated link (pull needs the return path).
  for (auto [from, to] : {std::pair<int, int>{0, 1}, {1, 0}}) {
    net::SimTransport::LinkConfig link;
    link.delay = wan::make_italy_japan_delay();
    link.loss = wan::make_italy_japan_loss();
    transport.set_link(from, to, std::move(link));
  }

  runtime::ProcessNode monitored(transport, 0);
  auto& crash = monitored.push(std::make_unique<runtime::SimCrashLayer>(
      simulator,
      runtime::SimCrashLayer::Config{Duration::seconds(300),
                                     Duration::seconds(30)},
      rng.fork("crash")));
  runtime::ProcessNode monitor(transport, 1);

  fd::QosTracker tracker(TimePoint::origin() + Duration::seconds(60));
  auto observe = [&tracker](TimePoint t, bool suspect) {
    if (suspect) {
      tracker.suspect_started(t);
    } else {
      tracker.suspect_ended(t);
    }
  };
  crash.set_observer([&tracker](TimePoint t, bool crashed) {
    if (crashed) {
      tracker.process_crashed(t);
    } else {
      tracker.process_restored(t);
    }
  });

  std::unique_ptr<fd::FreshnessDetector> push_det;
  std::unique_ptr<fd::PullDetector> pull_det;
  if (push) {
    runtime::HeartbeaterLayer::Config hb;
    hb.eta = Duration::seconds(1);
    hb.max_cycles = cycles;
    monitored.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));
    fd::FreshnessDetector::Config config;
    config.eta = Duration::seconds(1);
    config.monitored = 0;
    push_det = std::make_unique<fd::FreshnessDetector>(
        simulator, config, std::make_unique<forecast::LastPredictor>(),
        std::make_unique<fd::JacobsonSafetyMargin>(2.0));
    push_det->set_observer(observe);
    monitor.push_unowned(*push_det);
  } else {
    monitored.push(std::make_unique<runtime::PingResponderLayer>(simulator, 0));
    fd::PullDetector::Config config;
    config.eta = Duration::seconds(1);
    config.self = 1;
    config.monitored = 0;
    config.max_cycles = cycles;
    pull_det = std::make_unique<fd::PullDetector>(
        simulator, config, std::make_unique<forecast::LastPredictor>(),
        std::make_unique<fd::JacobsonSafetyMargin>(2.0));
    pull_det->set_observer(observe);
    monitor.push_unowned(*pull_det);
  }

  monitored.start();
  monitor.start();
  const TimePoint end =
      TimePoint::origin() + Duration::seconds(cycles) + Duration::seconds(35);
  simulator.run_until(end);
  tracker.finalize(end);

  StyleResult result;
  result.metrics = tracker.metrics();
  result.messages = transport.link_stats(0, 1).sent +
                    transport.link_stats(1, 0).sent;
  return result;
}

}  // namespace

int main() {
  const auto cycles =
      static_cast<std::int64_t>(bench::env_u64("FDQOS_CYCLES", 10000));
  const std::uint64_t seed = bench::env_u64("FDQOS_SEED", 42);

  stats::TableWriter table(
      "Ablation — push vs pull (Last+JAC_med, eta = 1 s, same link)");
  table.set_columns({"style", "messages", "T_D mean (ms)", "T_M mean (ms)",
                     "T_MR mean (ms)", "P_A"});
  for (const bool push : {true, false}) {
    const StyleResult r = run_style(push, cycles, seed);
    table.add_row(
        {push ? "push (heartbeats)" : "pull (ping/pong)",
         std::to_string(r.messages),
         stats::format_double(r.metrics.detection_time_ms.mean, 1),
         stats::format_double(r.metrics.mistake_duration_ms.mean, 1),
         stats::format_double(r.metrics.mistake_recurrence_ms.mean, 1),
         stats::format_double(r.metrics.query_accuracy, 6)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("(paper §2.2: push achieves comparable detection QoS with half "
              "the messages; pull pays RTT-based timeouts but needs no clock "
              "synchronization)\n");
  return 0;
}
