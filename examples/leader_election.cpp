// Leader election on top of failure detection — the classic upper layer
// (Ω from ◇-style detectors; cf. the paper's motivation that FD QoS drives
// application QoS, and its group-membership discussion in §2.1).
//
// N processes monitor each other all-to-all over the WAN model: every node
// runs one heartbeater and one FreshnessDetector per peer, behind a crash
// injector. Each node's leader is the smallest-id process it currently
// trusts. The run measures how detector QoS surfaces at the application:
// leadership changes, time with all correct nodes agreeing, and time the
// agreed leader was actually alive.
#include <cstdio>
#include <memory>
#include <vector>

#include "fd/freshness_detector.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "wan/italy_japan.hpp"

using namespace fdqos;

namespace {

constexpr int kNodes = 4;

struct Node {
  std::unique_ptr<runtime::ProcessNode> process;
  runtime::SimCrashLayer* crash = nullptr;
  std::vector<std::unique_ptr<runtime::HeartbeaterLayer>> heartbeaters;
  std::vector<std::unique_ptr<fd::FreshnessDetector>> detectors;  // per peer
  std::vector<int> detector_peer;  // detectors[k] watches detector_peer[k]

  // Smallest-id peer (or self) currently trusted.
  int current_leader(int self) const {
    int leader = self;
    for (std::size_t k = 0; k < detectors.size(); ++k) {
      if (!detectors[k]->suspecting() && detector_peer[k] < leader) {
        leader = detector_peer[k];
      }
    }
    return leader;
  }
};

}  // namespace

int main() {
  sim::Simulator simulator;
  Rng rng(7);
  net::SimTransport transport(simulator, rng.fork("net"));
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      net::SimTransport::LinkConfig link;
      link.delay = wan::make_italy_japan_delay();
      link.loss = wan::make_italy_japan_loss();
      transport.set_link(a, b, std::move(link));
    }
  }

  std::vector<Node> nodes(kNodes);
  std::vector<bool> alive(kNodes, true);
  for (int i = 0; i < kNodes; ++i) {
    Node& node = nodes[static_cast<std::size_t>(i)];
    node.process = std::make_unique<runtime::ProcessNode>(transport, i);
    node.crash = &node.process->push(std::make_unique<runtime::SimCrashLayer>(
        simulator,
        runtime::SimCrashLayer::Config{Duration::seconds(400),
                                       Duration::seconds(30)},
        rng.fork("crash").fork(static_cast<std::uint64_t>(i))));
    node.crash->set_observer([&alive, i](TimePoint, bool crashed) {
      alive[static_cast<std::size_t>(i)] = !crashed;
    });

    for (int peer = 0; peer < kNodes; ++peer) {
      if (peer == i) continue;
      runtime::HeartbeaterLayer::Config hb;
      hb.eta = Duration::seconds(1);
      hb.self = i;
      hb.monitor = peer;
      auto beater =
          std::make_unique<runtime::HeartbeaterLayer>(simulator, hb);
      node.process->attach_unowned(*node.crash, *beater);
      node.heartbeaters.push_back(std::move(beater));

      fd::FreshnessDetector::Config config;
      config.eta = Duration::seconds(1);
      config.monitored = peer;
      char name[48];
      std::snprintf(name, sizeof name, "n%d-watches-n%d", i, peer);
      config.name = name;
      auto detector = std::make_unique<fd::FreshnessDetector>(
          simulator, config, std::make_unique<forecast::LastPredictor>(),
          std::make_unique<fd::JacobsonSafetyMargin>(2.0));
      node.process->attach_unowned(*node.crash, *detector);
      node.detectors.push_back(std::move(detector));
      node.detector_peer.push_back(peer);
    }
    node.process->start();
  }

  // Sample the election every 500 ms of virtual time.
  std::vector<int> last_leader(kNodes, 0);
  std::int64_t leader_changes = 0;
  std::int64_t samples = 0;
  std::int64_t agreed = 0;
  std::int64_t agreed_leader_alive = 0;
  const Duration sample_period = Duration::millis(500);
  const TimePoint end = TimePoint::origin() + Duration::seconds(3600);

  std::function<void()> sample_election = [&] {
    ++samples;
    int consensus = -1;
    bool agree = true;
    for (int i = 0; i < kNodes; ++i) {
      if (!alive[static_cast<std::size_t>(i)]) continue;  // crashed nodes don't vote
      const int leader =
          nodes[static_cast<std::size_t>(i)].current_leader(i);
      if (leader != last_leader[static_cast<std::size_t>(i)]) {
        ++leader_changes;
        last_leader[static_cast<std::size_t>(i)] = leader;
      }
      if (consensus == -1) {
        consensus = leader;
      } else if (leader != consensus) {
        agree = false;
      }
    }
    if (agree && consensus >= 0) {
      ++agreed;
      if (alive[static_cast<std::size_t>(consensus)]) ++agreed_leader_alive;
    }
    if (simulator.now() + sample_period <= end) {
      simulator.schedule_after(sample_period, sample_election);
    }
  };
  simulator.schedule_after(sample_period, sample_election);
  simulator.run_until(end);

  std::int64_t crashes = 0;
  for (const auto& node : nodes) {
    crashes += static_cast<std::int64_t>(node.crash->crash_count());
  }
  std::printf("leader election over %d nodes, 1 simulated hour, %lld "
              "crash/restore cycles\n",
              kNodes, static_cast<long long>(crashes));
  std::printf("  election samples        : %lld (every %s)\n",
              static_cast<long long>(samples),
              sample_period.to_string().c_str());
  std::printf("  leader changes (views)  : %lld\n",
              static_cast<long long>(leader_changes));
  std::printf("  correct nodes agreeing  : %.2f%% of samples\n",
              100.0 * static_cast<double>(agreed) /
                  static_cast<double>(samples));
  std::printf("  agreed leader was alive : %.2f%% of agreement time\n",
              agreed > 0 ? 100.0 * static_cast<double>(agreed_leader_alive) /
                               static_cast<double>(agreed)
                         : 0.0);
  std::printf("\nFD accuracy bounds application QoS: every false suspicion "
              "of the current leader forces a view change (the paper's "
              "group-membership example, §2.1).\n");
  return 0;
}
