// Live monitoring over real UDP — the deployment path.
//
// The same layers that run in the simulator run here over real sockets via
// the RealTimeDriver (the Neko property). Run a heartbeater and a monitor,
// either in one process (default: both roles on loopback) or across two
// machines:
//
//   udp_live_monitor heartbeater <my-port> <monitor-host> <monitor-port>
//   udp_live_monitor monitor     <my-port> <heartbeater-host> <heartbeater-port>
//   udp_live_monitor                       # loopback demo for ~10 s
//
// The monitor prints suspect/trust transitions and the evolving timeout.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>

#include "fd/freshness_detector.hpp"
#include "fd/safety_margin.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/udp_transport.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"

using namespace fdqos;

namespace {

constexpr net::NodeId kHeartbeater = 0;
constexpr net::NodeId kMonitor = 1;

int run_heartbeater(std::uint16_t my_port, const std::string& peer_host,
                    std::uint16_t peer_port, Duration run_for) {
  sim::Simulator simulator;
  net::UdpTransport transport(simulator, kHeartbeater,
                              {{kHeartbeater, {"0.0.0.0", my_port}},
                               {kMonitor, {peer_host, peer_port}}});
  if (!transport.ok()) {
    std::fprintf(stderr, "failed to bind UDP port %u\n", my_port);
    return 1;
  }
  runtime::ProcessNode node(transport, kHeartbeater);
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::millis(500);
  hb.self = kHeartbeater;
  hb.monitor = kMonitor;
  node.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));
  node.start();

  std::printf("heartbeating to %s:%u every %s...\n", peer_host.c_str(),
              peer_port, hb.eta.to_string().c_str());
  net::RealTimeDriver driver(simulator, transport);
  driver.run_for(run_for);
  std::printf("sent %llu heartbeats\n",
              static_cast<unsigned long long>(transport.sent_count()));
  return 0;
}

int run_monitor(std::uint16_t my_port, Duration run_for) {
  obs::set_enabled(true);  // live sessions always report metrics
  sim::Simulator simulator;
  net::UdpTransport transport(
      simulator, kMonitor, {{kMonitor, {"0.0.0.0", my_port}}});
  if (!transport.ok()) {
    std::fprintf(stderr, "failed to bind UDP port %u\n", my_port);
    return 1;
  }
  runtime::ProcessNode node(transport, kMonitor);
  fd::FreshnessDetector::Config config;
  config.eta = Duration::millis(500);
  config.monitored = kHeartbeater;
  config.cold_start_timeout = Duration::seconds(2);
  auto& detector = node.push(std::make_unique<fd::FreshnessDetector>(
      simulator, config, std::make_unique<forecast::LpfPredictor>(0.125),
      std::make_unique<fd::JacobsonSafetyMargin>(2.0)));
  detector.set_observer([&](TimePoint t, bool suspecting) {
    std::printf("[%9.3fs] %s (delta=%.2f ms, obs=%zu)\n",
                t.to_seconds_double(),
                suspecting ? "SUSPECT — peer considered crashed"
                           : "trust — peer alive",
                detector.current_delta_ms(), detector.observations());
  });
  node.start();

  std::printf("monitoring UDP heartbeats on port %u (%s)...\n",
              transport.local_port(), detector.name().c_str());

  // Rolling QoS/metrics line: a repeating (real-time-driven) event that
  // summarizes the session from the global instruments every 2 s.
  const Duration status_every = Duration::seconds(2);
  std::function<void()> status_tick = [&] {
    const auto& m = obs::instruments();
    std::printf(
        "[%9.3fs] hb recv=%llu state=%s delta=%.2f ms "
        "transitions suspect=%llu trust=%llu decode_err=%llu\n",
        simulator.now().to_seconds_double(),
        static_cast<unsigned long long>(transport.received_count()),
        detector.suspecting() ? "SUSPECT" : "trust",
        detector.current_delta_ms(),
        static_cast<unsigned long long>(m.fd_transitions_to_suspect.value()),
        static_cast<unsigned long long>(m.fd_transitions_to_trust.value()),
        static_cast<unsigned long long>(m.udp_decode_failures_total.value()));
    std::fflush(stdout);
    simulator.schedule_after(status_every, status_tick);
  };
  simulator.schedule_after(status_every, status_tick);

  net::RealTimeDriver driver(simulator, transport);
  driver.run_for(run_for);

  std::printf("received %llu heartbeats; final state: %s\n",
              static_cast<unsigned long long>(transport.received_count()),
              detector.suspecting() ? "suspecting" : "trusting");
  return 0;
}

// Both roles in one process over loopback: a self-contained demo.
int run_loopback_demo() {
  const std::uint16_t hb_port = 45711;
  const std::uint16_t mon_port = 45712;

  sim::Simulator simulator;  // one driver clock, two transports
  net::UdpTransport hb_transport(simulator, kHeartbeater,
                                 {{kHeartbeater, {"127.0.0.1", hb_port}},
                                  {kMonitor, {"127.0.0.1", mon_port}}});
  net::UdpTransport mon_transport(simulator, kMonitor,
                                  {{kMonitor, {"127.0.0.1", mon_port}}});
  if (!hb_transport.ok() || !mon_transport.ok()) {
    std::fprintf(stderr, "failed to bind loopback ports %u/%u\n", hb_port,
                 mon_port);
    return 1;
  }

  runtime::ProcessNode heartbeater(hb_transport, kHeartbeater);
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::millis(200);
  hb.self = kHeartbeater;
  hb.monitor = kMonitor;
  hb.max_cycles = 25;  // "crash" the process after 5 s
  heartbeater.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

  runtime::ProcessNode monitor(mon_transport, kMonitor);
  fd::FreshnessDetector::Config config;
  config.eta = Duration::millis(200);
  config.monitored = kHeartbeater;
  config.cold_start_timeout = Duration::millis(500);
  auto& detector = monitor.push(std::make_unique<fd::FreshnessDetector>(
      simulator, config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<fd::JacobsonSafetyMargin>(4.0)));
  detector.set_observer([&](TimePoint t, bool suspecting) {
    std::printf("[%7.3fs] detector: %s (delta=%.2f ms)\n",
                t.to_seconds_double(), suspecting ? "SUSPECT" : "trust",
                detector.current_delta_ms());
  });

  heartbeater.start();
  monitor.start();
  std::printf("loopback demo: heartbeats for 5 s, then the process goes "
              "silent; watch the detector.\n");

  // One driver pumps the monitor's socket; the heartbeater sends directly.
  net::RealTimeDriver driver(simulator, mon_transport);
  driver.run_for(Duration::seconds(8));

  std::printf("demo done: %llu heartbeats delivered, final state: %s\n",
              static_cast<unsigned long long>(mon_transport.received_count()),
              detector.suspecting() ? "SUSPECTING (correct — peer stopped)"
                                    : "trusting");
  return detector.suspecting() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return run_loopback_demo();
  if (argc >= 3 && std::strcmp(argv[1], "monitor") == 0) {
    return run_monitor(static_cast<std::uint16_t>(std::atoi(argv[2])),
                       Duration::seconds(60));
  }
  if (argc >= 5 && std::strcmp(argv[1], "heartbeater") == 0) {
    return run_heartbeater(static_cast<std::uint16_t>(std::atoi(argv[2])),
                           argv[3],
                           static_cast<std::uint16_t>(std::atoi(argv[4])),
                           Duration::seconds(60));
  }
  std::fprintf(stderr,
               "usage: %s [heartbeater <my-port> <host> <port> | monitor "
               "<my-port>]\n",
               argv[0]);
  return 2;
}
