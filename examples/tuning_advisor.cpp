// Tuning advisor: pick a detector configuration for application QoS
// requirements (paper §2.1/§5.2 — "if T_MR needs to be much higher, work on
// the safety margin until the desired T_MR is reached").
//
// Given a maximum tolerable detection time and a minimum mistake-recurrence
// target, the advisor sweeps the suite on a calibration workload, filters
// the feasible configurations and recommends the best trade-off for two
// application profiles:
//   - "group membership": accuracy first (false coordinator elections are
//     expensive), detection speed second;
//   - "interactive failover": detection speed first, accuracy second.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"

using namespace fdqos;

namespace {

struct Requirement {
  const char* profile;
  double max_td_ms;    // upper bound on mean detection time
  double min_tmr_ms;   // lower bound on mean mistake recurrence
};

void advise(const exp::QosReport& report, const Requirement& req) {
  std::printf("Profile '%s': T_D <= %.0f ms, T_MR >= %.0f ms\n", req.profile,
              req.max_td_ms, req.min_tmr_ms);
  std::vector<const exp::FdQosResult*> feasible;
  for (const auto& result : report.results) {
    const double td = result.metrics.detection_time_ms.mean;
    const double tmr = result.metrics.mistake_recurrence_ms.count > 0
                           ? result.metrics.mistake_recurrence_ms.mean
                           : 1e12;  // no mistakes at all: trivially feasible
    if (td <= req.max_td_ms && tmr >= req.min_tmr_ms) {
      feasible.push_back(&result);
    }
  }
  if (feasible.empty()) {
    std::printf("  -> no feasible configuration; relax a requirement or "
                "decrease eta.\n\n");
    return;
  }
  // Among feasible configurations prefer the highest accuracy, breaking
  // ties by detection speed.
  std::sort(feasible.begin(), feasible.end(),
            [](const exp::FdQosResult* a, const exp::FdQosResult* b) {
              if (a->metrics.query_accuracy != b->metrics.query_accuracy) {
                return a->metrics.query_accuracy > b->metrics.query_accuracy;
              }
              return a->metrics.detection_time_ms.mean <
                     b->metrics.detection_time_ms.mean;
            });
  std::printf("  %zu feasible of %zu; top 3:\n", feasible.size(),
              report.results.size());
  for (std::size_t i = 0; i < 3 && i < feasible.size(); ++i) {
    const auto& m = feasible[i]->metrics;
    std::printf("   %zu. %-16s T_D %7.1f ms  T_MR %10.1f ms  P_A %.6f\n",
                i + 1, feasible[i]->name.c_str(), m.detection_time_ms.mean,
                m.mistake_recurrence_ms.count > 0
                    ? m.mistake_recurrence_ms.mean
                    : 0.0,
                m.query_accuracy);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  exp::QosExperimentConfig config;
  config.runs = 3;
  config.num_cycles = 3000;
  config.seed = 7;
  std::printf("Calibrating the 30-detector suite on the Italy->Japan model "
              "(%zu runs x %lld cycles)...\n\n",
              config.runs, static_cast<long long>(config.num_cycles));
  const exp::QosReport report = exp::run_qos_experiment(config);

  advise(report, {"group membership (accuracy first)", 2500.0, 60000.0});
  advise(report, {"interactive failover (speed first)", 1400.0, 10000.0});
  advise(report, {"unsatisfiable (for contrast)", 300.0, 1e9});
  return 0;
}
