// WAN comparison: the paper's headline experiment in miniature.
//
// Runs the full 30-detector suite (plus the NFD-E constant-margin
// baselines) through the MultiPlexer architecture on the Italy→Japan model
// and prints a ranking by each QoS metric — the data behind Figures 4–8,
// at example scale (3 runs of ~33 min instead of 13 × ~2.8 h).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"

using namespace fdqos;

namespace {

void print_ranking(const exp::QosReport& report, exp::QosMetricKind kind,
                   std::size_t top_n) {
  std::vector<const exp::FdQosResult*> ranked;
  for (const auto& result : report.results) ranked.push_back(&result);
  const bool ascending = exp::metric_smaller_is_better(kind);
  std::sort(ranked.begin(), ranked.end(),
            [&](const exp::FdQosResult* a, const exp::FdQosResult* b) {
              const double va = exp::metric_value(*a, kind);
              const double vb = exp::metric_value(*b, kind);
              return ascending ? va < vb : va > vb;
            });
  std::printf("%s — best %zu:\n", exp::metric_name(kind), top_n);
  for (std::size_t i = 0; i < top_n && i < ranked.size(); ++i) {
    std::printf("  %zu. %-16s %10.3f %s\n", i + 1, ranked[i]->name.c_str(),
                exp::metric_value(*ranked[i], kind), exp::metric_unit(kind));
  }
  std::printf("  ...worst: %-14s %10.3f %s\n\n", ranked.back()->name.c_str(),
              exp::metric_value(*ranked.back(), kind), exp::metric_unit(kind));
}

}  // namespace

int main() {
  exp::QosExperimentConfig config;
  config.runs = 3;
  config.num_cycles = 2000;
  config.seed = 99;
  config.include_constant_baseline = true;  // NFD-E-style comparators
  config.baseline_margin_ms = 100.0;

  std::printf("Running %zu x %lld cycles with 35 detectors (30 paper + 5 "
              "constant-margin baselines)...\n\n",
              config.runs, static_cast<long long>(config.num_cycles));
  const exp::QosReport report = exp::run_qos_experiment(config);

  print_ranking(report, exp::QosMetricKind::kTd, 5);
  print_ranking(report, exp::QosMetricKind::kTdU, 5);
  print_ranking(report, exp::QosMetricKind::kTm, 5);
  print_ranking(report, exp::QosMetricKind::kTmr, 5);
  print_ranking(report, exp::QosMetricKind::kPa, 5);

  // §5.3's "no perfect detector", made precise: the speed/accuracy Pareto
  // front of this run.
  std::printf("%s\n", exp::pareto_table(report).to_ascii().c_str());

  // The paper's §5.3 conclusion, checked on this run.
  const auto* last_jac = exp::find_result(report, "Last+JAC_med");
  const auto* nfd_e = exp::find_result(report, "Mean+CONST");
  if (last_jac != nullptr && nfd_e != nullptr) {
    std::printf("LAST+SM_JAC (paper's pick)  : T_D %.1f ms, P_A %.6f\n",
                last_jac->metrics.detection_time_ms.mean,
                last_jac->metrics.query_accuracy);
    std::printf("MEAN+CONST  (NFD-E baseline): T_D %.1f ms, P_A %.6f\n",
                nfd_e->metrics.detection_time_ms.mean,
                nfd_e->metrics.query_accuracy);
  }
  return 0;
}
