// Quickstart: monitor one process with one adaptive failure detector.
//
// Builds the paper's architecture in ~60 lines: a heartbeating process with
// crash injection on one node, a LAST+SM_JAC freshness detector on another,
// a synthetic Italy→Japan WAN in between — all in virtual time, so an hour
// of monitoring runs in milliseconds.
#include <cstdio>
#include <memory>

#include "fd/freshness_detector.hpp"
#include "fd/qos_tracker.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "wan/italy_japan.hpp"

using namespace fdqos;

int main() {
  sim::Simulator simulator;
  Rng rng(2026);

  // A WAN link calibrated to the paper's Italy->Japan measurements.
  net::SimTransport transport(simulator, rng.fork("net"));
  net::SimTransport::LinkConfig link;
  link.delay = wan::make_italy_japan_delay();
  link.loss = wan::make_italy_japan_loss();
  transport.set_link(/*from=*/0, /*to=*/1, std::move(link));

  // Monitored process q: heartbeat every second, crash roughly every 5 min.
  runtime::ProcessNode monitored(transport, 0);
  auto& crash_injector = monitored.push(std::make_unique<runtime::SimCrashLayer>(
      simulator,
      runtime::SimCrashLayer::Config{Duration::seconds(300), Duration::seconds(30)},
      rng.fork("crash")));
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::seconds(1);
  hb.self = 0;
  hb.monitor = 1;
  monitored.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

  // Monitor p: the paper's most effective combination, LAST + SM_JAC.
  runtime::ProcessNode monitor(transport, 1);
  fd::FreshnessDetector::Config fd_config;
  fd_config.eta = Duration::seconds(1);
  fd_config.monitored = 0;
  auto& detector = monitor.push(std::make_unique<fd::FreshnessDetector>(
      simulator, fd_config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<fd::JacobsonSafetyMargin>(/*phi=*/2.0)));

  // Wire QoS accounting to ground truth and detector transitions.
  fd::QosTracker tracker;
  crash_injector.set_observer([&](TimePoint t, bool crashed) {
    std::printf("[%9.3fs] process %s\n", t.to_seconds_double(),
                crashed ? "CRASHED" : "restored");
    if (crashed) {
      tracker.process_crashed(t);
    } else {
      tracker.process_restored(t);
    }
  });
  detector.set_observer([&](TimePoint t, bool suspecting) {
    std::printf("[%9.3fs]   detector %s (delta=%.1fms)\n",
                t.to_seconds_double(), suspecting ? "suspects" : "trusts",
                detector.current_delta_ms());
    if (suspecting) {
      tracker.suspect_started(t);
    } else {
      tracker.suspect_ended(t);
    }
  });

  // One simulated hour.
  monitored.start();
  monitor.start();
  const TimePoint end = TimePoint::origin() + Duration::seconds(3600);
  simulator.run_until(end);
  tracker.finalize(end);

  const fd::QosMetrics m = tracker.metrics();
  std::printf("\n--- QoS over 1 simulated hour (%s) ---\n",
              detector.name().c_str());
  std::printf("crashes: %llu, detected: %llu, missed: %llu\n",
              static_cast<unsigned long long>(m.crashes_observed),
              static_cast<unsigned long long>(m.detections),
              static_cast<unsigned long long>(m.missed_detections));
  std::printf("T_D   mean %.1f ms, max %.1f ms\n", m.detection_time_ms.mean,
              m.detection_time_ms.max);
  std::printf("T_M   mean %.1f ms over %llu mistakes\n",
              m.mistake_duration_ms.mean,
              static_cast<unsigned long long>(m.mistakes));
  std::printf("P_A   %.6f, availability %.6f\n", m.query_accuracy,
              m.availability);
  return 0;
}
