#include "runtime/scripted_crash.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"

namespace fdqos::runtime {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::from_seconds_double(s);
}

TEST(ScriptedCrashTest, FollowsScheduleExactly) {
  sim::Simulator simulator;
  ScriptedCrashLayer crash(simulator, {{at_s(5.0), at_s(8.0)},
                                       {at_s(20.0), at_s(21.5)}});
  std::vector<std::pair<double, bool>> transitions;
  crash.set_observer([&](TimePoint t, bool crashed) {
    transitions.emplace_back(t.to_seconds_double(), crashed);
  });
  crash.start();
  simulator.run_until(at_s(30.0));
  ASSERT_EQ(transitions.size(), 4u);
  EXPECT_EQ(transitions[0], std::make_pair(5.0, true));
  EXPECT_EQ(transitions[1], std::make_pair(8.0, false));
  EXPECT_EQ(transitions[2], std::make_pair(20.0, true));
  EXPECT_EQ(transitions[3], std::make_pair(21.5, false));
  EXPECT_FALSE(crash.crashed());
}

TEST(ScriptedCrashTest, PermanentCrashNeverRestores) {
  sim::Simulator simulator;
  ScriptedCrashLayer crash(simulator, {{at_s(1.0), TimePoint::max()}});
  crash.start();
  simulator.run_until(at_s(1000.0));
  EXPECT_TRUE(crash.crashed());
}

TEST(ScriptedCrashTest, EmptyScheduleNeverCrashes) {
  sim::Simulator simulator;
  ScriptedCrashLayer crash(simulator, {});
  crash.start();
  simulator.run_until(at_s(100.0));
  EXPECT_FALSE(crash.crashed());
  EXPECT_EQ(crash.dropped_messages(), 0u);
}

TEST(ScriptedCrashTest, DropsTrafficExactlyDuringDownPeriods) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(1));
  ProcessNode node(transport, 0);
  auto& crash = node.push(std::make_unique<ScriptedCrashLayer>(
      simulator,
      std::vector<ScriptedCrashLayer::DownPeriod>{{at_s(3.5), at_s(6.5)}}));
  HeartbeaterLayer::Config hb;
  hb.eta = Duration::seconds(1);
  node.push(std::make_unique<HeartbeaterLayer>(simulator, hb));

  std::vector<double> arrivals;
  transport.bind(1, [&](const net::Message&) {
    arrivals.push_back(simulator.now().to_seconds_double());
  });
  node.start();
  simulator.run_until(at_s(10.0));

  // Heartbeats at 1..10 s except 4, 5, 6 (crashed in (3.5, 6.5)).
  const std::vector<double> expected{1, 2, 3, 7, 8, 9, 10};
  EXPECT_EQ(arrivals, expected);
  EXPECT_EQ(crash.dropped_messages(), 3u);
}

}  // namespace
}  // namespace fdqos::runtime
