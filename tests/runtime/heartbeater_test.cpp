#include "runtime/heartbeater.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/sim_transport.hpp"
#include "runtime/process_node.hpp"

namespace fdqos::runtime {
namespace {

struct Arrival {
  std::int64_t seq;
  double time_s;
  double send_time_s;
};

std::vector<Arrival> run_heartbeater(HeartbeaterLayer::Config config,
                                     Duration run_for) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(1));
  ProcessNode node(transport, config.self);
  node.push(std::make_unique<HeartbeaterLayer>(simulator, config));

  std::vector<Arrival> arrivals;
  transport.bind(config.monitor, [&](const net::Message& m) {
    arrivals.push_back({m.seq, simulator.now().to_seconds_double(),
                        m.send_time.to_seconds_double()});
  });
  node.start();
  simulator.run_until(TimePoint::origin() + run_for);
  return arrivals;
}

TEST(HeartbeaterTest, SendsAtMultiplesOfEta) {
  HeartbeaterLayer::Config config;
  config.eta = Duration::seconds(1);
  const auto arrivals = run_heartbeater(config, Duration::seconds(5));
  ASSERT_EQ(arrivals.size(), 5u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i].seq, static_cast<std::int64_t>(i) + 1);
    EXPECT_DOUBLE_EQ(arrivals[i].send_time_s, static_cast<double>(i + 1));
    // Instant (unconfigured) link: arrival == send.
    EXPECT_DOUBLE_EQ(arrivals[i].time_s, static_cast<double>(i + 1));
  }
}

TEST(HeartbeaterTest, SubSecondPeriod) {
  HeartbeaterLayer::Config config;
  config.eta = Duration::millis(250);
  const auto arrivals = run_heartbeater(config, Duration::seconds(2));
  EXPECT_EQ(arrivals.size(), 8u);
  EXPECT_DOUBLE_EQ(arrivals[0].send_time_s, 0.25);
}

TEST(HeartbeaterTest, MaxCyclesStopsSending) {
  HeartbeaterLayer::Config config;
  config.eta = Duration::seconds(1);
  config.max_cycles = 3;
  const auto arrivals = run_heartbeater(config, Duration::seconds(100));
  EXPECT_EQ(arrivals.size(), 3u);
}

TEST(HeartbeaterTest, EpochOffsetsSchedule) {
  HeartbeaterLayer::Config config;
  config.eta = Duration::seconds(1);
  config.epoch = TimePoint::origin() + Duration::seconds(10);
  const auto arrivals = run_heartbeater(config, Duration::seconds(13));
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(arrivals[0].send_time_s, 11.0);
}

TEST(HeartbeaterTest, NoDriftOverLongRuns) {
  HeartbeaterLayer::Config config;
  config.eta = Duration::millis(333);
  const auto arrivals = run_heartbeater(config, Duration::seconds(1000));
  ASSERT_FALSE(arrivals.empty());
  const auto& last = arrivals.back();
  // σ_i = i·η exactly, no floating-point accumulation.
  EXPECT_DOUBLE_EQ(last.send_time_s,
                   0.333 * static_cast<double>(last.seq));
}

TEST(HeartbeaterTest, CyclesSentCounter) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(2));
  ProcessNode node(transport, 0);
  HeartbeaterLayer::Config config;
  config.eta = Duration::seconds(1);
  auto& hb = node.push(std::make_unique<HeartbeaterLayer>(simulator, config));
  node.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(7));
  EXPECT_EQ(hb.cycles_sent(), 7);
}

}  // namespace
}  // namespace fdqos::runtime
