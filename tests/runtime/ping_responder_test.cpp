#include "runtime/ping_responder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/sim_transport.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"

namespace fdqos::runtime {
namespace {

net::Message ping(net::NodeId from, net::NodeId to, std::int64_t seq) {
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = net::MessageType::kPing;
  msg.seq = seq;
  return msg;
}

TEST(PingResponderTest, EchoesSequenceNumbers) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(1));
  ProcessNode node(transport, 0);
  auto& responder = node.push(std::make_unique<PingResponderLayer>(simulator, 0));

  std::vector<std::int64_t> pongs;
  transport.bind(1, [&](const net::Message& m) {
    EXPECT_EQ(m.type, net::MessageType::kPong);
    EXPECT_EQ(m.from, 0);
    pongs.push_back(m.seq);
  });
  node.start();
  for (int i = 1; i <= 5; ++i) transport.send(ping(1, 0, i));
  simulator.run();
  EXPECT_EQ(pongs, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(responder.pings_answered(), 5u);
}

TEST(PingResponderTest, IgnoresNonPings) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(2));
  ProcessNode node(transport, 0);
  auto& responder = node.push(std::make_unique<PingResponderLayer>(simulator, 0));
  int replies = 0;
  transport.bind(1, [&](const net::Message&) { ++replies; });
  node.start();
  net::Message hb;
  hb.from = 1;
  hb.to = 0;
  hb.type = net::MessageType::kHeartbeat;
  hb.seq = 7;
  transport.send(hb);
  simulator.run();
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(responder.pings_answered(), 0u);
}

TEST(PingResponderTest, ProcessingDelayDefersPong) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(3));
  ProcessNode node(transport, 0);
  node.push(std::make_unique<PingResponderLayer>(simulator, 0,
                                                 Duration::millis(40)));
  TimePoint pong_time;
  transport.bind(1, [&](const net::Message& m) {
    pong_time = simulator.now();
    EXPECT_EQ(m.send_time, simulator.now());
  });
  node.start();
  transport.send(ping(1, 0, 1));
  simulator.run();
  EXPECT_EQ(pong_time, TimePoint::origin() + Duration::millis(40));
}

TEST(PingResponderTest, SilentWhileCrashed) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(4));
  ProcessNode node(transport, 0);
  // Deterministically crash quickly: MTTC tiny, TTR long.
  auto& crash = node.push(std::make_unique<SimCrashLayer>(
      simulator,
      SimCrashLayer::Config{Duration::millis(2), Duration::seconds(1000)},
      Rng(5)));
  node.push(std::make_unique<PingResponderLayer>(simulator, 0));
  int replies = 0;
  transport.bind(1, [&](const net::Message&) { ++replies; });
  node.start();
  // Let the crash fire, then ping.
  simulator.run_until(TimePoint::origin() + Duration::seconds(1));
  ASSERT_TRUE(crash.crashed());
  transport.send(ping(1, 0, 1));
  simulator.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_EQ(replies, 0);
  EXPECT_GT(crash.dropped_messages(), 0u);
}

}  // namespace
}  // namespace fdqos::runtime
