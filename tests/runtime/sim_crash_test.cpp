#include "runtime/sim_crash.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"

namespace fdqos::runtime {
namespace {

struct Transition {
  double time_s;
  bool crashed;
};

TEST(SimCrashTest, AlternatesCrashAndRestore) {
  sim::Simulator simulator;
  SimCrashLayer crash(simulator,
                      {Duration::seconds(100), Duration::seconds(10)}, Rng(1));
  std::vector<Transition> transitions;
  crash.set_observer([&](TimePoint t, bool crashed) {
    transitions.push_back({t.to_seconds_double(), crashed});
  });
  crash.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(2000));

  ASSERT_GE(transitions.size(), 4u);
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    EXPECT_EQ(transitions[i].crashed, i % 2 == 0) << i;
  }
}

TEST(SimCrashTest, RepairTimeIsConstant) {
  sim::Simulator simulator;
  SimCrashLayer crash(simulator,
                      {Duration::seconds(100), Duration::seconds(10)}, Rng(2));
  std::vector<Transition> transitions;
  crash.set_observer([&](TimePoint t, bool crashed) {
    transitions.push_back({t.to_seconds_double(), crashed});
  });
  crash.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(3000));
  for (std::size_t i = 0; i + 1 < transitions.size(); i += 2) {
    EXPECT_NEAR(transitions[i + 1].time_s - transitions[i].time_s, 10.0, 1e-9);
  }
}

TEST(SimCrashTest, TimeToCrashWithinUniformBounds) {
  // U[MTTC/2, 3·MTTC/2] per the paper.
  sim::Simulator simulator;
  SimCrashLayer crash(simulator,
                      {Duration::seconds(100), Duration::seconds(5)}, Rng(3));
  std::vector<Transition> transitions;
  crash.set_observer([&](TimePoint t, bool crashed) {
    transitions.push_back({t.to_seconds_double(), crashed});
  });
  crash.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(50000));

  double sum = 0.0;
  int count = 0;
  double prev_restore = 0.0;
  for (const auto& tr : transitions) {
    if (tr.crashed) {
      const double ttc = tr.time_s - prev_restore;
      EXPECT_GE(ttc, 50.0 - 1e-9);
      EXPECT_LE(ttc, 150.0 + 1e-9);
      sum += ttc;
      ++count;
    } else {
      prev_restore = tr.time_s;
    }
  }
  ASSERT_GT(count, 100);
  EXPECT_NEAR(sum / count, 100.0, 10.0);
}

TEST(SimCrashTest, DropsTrafficWhileCrashed) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(4));
  ProcessNode node(transport, 0);
  auto& crash = node.push(std::make_unique<SimCrashLayer>(
      simulator,
      SimCrashLayer::Config{Duration::seconds(1000000), Duration::seconds(10)},
      Rng(5)));
  HeartbeaterLayer::Config hb_config;
  hb_config.eta = Duration::seconds(1);
  node.push(std::make_unique<HeartbeaterLayer>(simulator, hb_config));

  int received = 0;
  transport.bind(1, [&](const net::Message&) { ++received; });
  node.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(10));
  EXPECT_EQ(received, 10);

  // Force a crash manually via a second layer instance is awkward; instead
  // verify the drop counters through a crashing configuration.
  EXPECT_FALSE(crash.crashed());
  EXPECT_EQ(crash.dropped_messages(), 0u);
}

TEST(SimCrashTest, HeartbeatsStopDuringDownPeriods) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(6));
  ProcessNode node(transport, 0);
  auto& crash = node.push(std::make_unique<SimCrashLayer>(
      simulator,
      SimCrashLayer::Config{Duration::seconds(50), Duration::seconds(20)},
      Rng(7)));
  HeartbeaterLayer::Config hb_config;
  hb_config.eta = Duration::seconds(1);
  node.push(std::make_unique<HeartbeaterLayer>(simulator, hb_config));

  std::vector<double> crash_windows_start;
  std::vector<double> crash_windows_end;
  crash.set_observer([&](TimePoint t, bool crashed) {
    (crashed ? crash_windows_start : crash_windows_end)
        .push_back(t.to_seconds_double());
  });

  std::vector<double> arrivals;
  transport.bind(1, [&](const net::Message&) {
    arrivals.push_back(simulator.now().to_seconds_double());
  });
  node.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(500));

  ASSERT_FALSE(crash_windows_start.empty());
  for (double a : arrivals) {
    for (std::size_t w = 0; w < crash_windows_start.size(); ++w) {
      const double start = crash_windows_start[w];
      const double end = w < crash_windows_end.size()
                             ? crash_windows_end[w]
                             : 1e18;
      EXPECT_FALSE(a > start && a < end)
          << "heartbeat at " << a << " inside crash [" << start << "," << end
          << "]";
    }
  }
  EXPECT_GT(crash.dropped_messages(), 0u);
  EXPECT_GE(crash.crash_count(), 1u);
}

}  // namespace
}  // namespace fdqos::runtime
