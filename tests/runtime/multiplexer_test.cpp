#include "runtime/multiplexer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/sim_transport.hpp"
#include "runtime/process_node.hpp"

namespace fdqos::runtime {
namespace {

class RecordingLayer final : public Layer {
 public:
  void handle_up(const net::Message& msg) override {
    log.emplace_back(msg.seq);
  }
  std::vector<std::int64_t> log;
};

class ThrowingLayer final : public Layer {
 public:
  explicit ThrowingLayer(bool structured = true) : structured_(structured) {}
  void handle_up(const net::Message&) override {
    ++calls;
    if (structured_) throw std::runtime_error("detector diverged");
    throw 42;  // non-std::exception
  }
  int calls = 0;

 private:
  bool structured_;
};

net::Message heartbeat(std::int64_t seq) {
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = net::MessageType::kHeartbeat;
  msg.seq = seq;
  return msg;
}

TEST(MultiPlexerTest, EveryUpperLayerSeesEveryMessage) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(1));
  ProcessNode node(transport, 1);
  auto& mux = node.push(std::make_unique<MultiPlexerLayer>());
  std::vector<std::unique_ptr<RecordingLayer>> uppers;
  for (int i = 0; i < 30; ++i) {
    uppers.push_back(std::make_unique<RecordingLayer>());
    node.attach_unowned(mux, *uppers.back());
  }
  node.start();
  for (int i = 1; i <= 100; ++i) transport.send(heartbeat(i));
  simulator.run();

  EXPECT_EQ(mux.messages_seen(), 100u);
  EXPECT_EQ(mux.fan_out(), 30u);
  for (const auto& upper : uppers) {
    ASSERT_EQ(upper->log.size(), 100u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(upper->log[static_cast<std::size_t>(i)], i + 1);
    }
  }
}

TEST(MultiPlexerTest, IdenticalPerceptionAcrossUppers) {
  // The fairness property: all uppers receive the same sequence in the same
  // order (paper §4 — the basis for comparing 30 detectors fairly).
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(2));
  net::SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::UniformDelay>(Duration::millis(1),
                                                   Duration::millis(400));
  link.loss = std::make_unique<wan::BernoulliLoss>(0.1);
  transport.set_link(0, 1, std::move(link));

  ProcessNode node(transport, 1);
  auto& mux = node.push(std::make_unique<MultiPlexerLayer>());
  RecordingLayer a;
  RecordingLayer b;
  node.attach_unowned(mux, a);
  node.attach_unowned(mux, b);
  node.start();
  for (int i = 1; i <= 500; ++i) transport.send(heartbeat(i));
  simulator.run();

  EXPECT_EQ(a.log, b.log);
  EXPECT_LT(a.log.size(), 500u);  // some were lost
  EXPECT_GT(a.log.size(), 350u);
}

TEST(MultiPlexerTest, ThrowingLayerDoesNotStarveSiblings) {
  // The fairness contract under faults: one detector blowing up (e.g. an
  // estimator tripping an exception under chaos) must not cut its siblings
  // off from the shared arrival stream.
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(4));
  ProcessNode node(transport, 1);
  auto& mux = node.push(std::make_unique<MultiPlexerLayer>());
  RecordingLayer before;
  ThrowingLayer thrower;
  RecordingLayer after;
  node.attach_unowned(mux, before);
  node.attach_unowned(mux, thrower);
  node.attach_unowned(mux, after);
  node.start();
  for (int i = 1; i <= 50; ++i) transport.send(heartbeat(i));
  simulator.run();

  EXPECT_EQ(before.log.size(), 50u);
  EXPECT_EQ(after.log.size(), 50u);  // stacked *after* the thrower
  EXPECT_EQ(before.log, after.log);
  EXPECT_EQ(thrower.calls, 50);
  EXPECT_EQ(mux.dispatch_errors(), 50u);
  EXPECT_EQ(mux.messages_seen(), 50u);
}

TEST(MultiPlexerTest, NonStdExceptionIsAlsoContained) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(5));
  ProcessNode node(transport, 1);
  auto& mux = node.push(std::make_unique<MultiPlexerLayer>());
  ThrowingLayer thrower(/*structured=*/false);
  RecordingLayer sibling;
  node.attach_unowned(mux, thrower);
  node.attach_unowned(mux, sibling);
  node.start();
  transport.send(heartbeat(1));
  simulator.run();

  EXPECT_EQ(sibling.log.size(), 1u);
  EXPECT_EQ(mux.dispatch_errors(), 1u);
}

TEST(MultiPlexerTest, NoUppersIsSafe) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(3));
  ProcessNode node(transport, 1);
  auto& mux = node.push(std::make_unique<MultiPlexerLayer>());
  node.start();
  transport.send(heartbeat(1));
  simulator.run();
  EXPECT_EQ(mux.messages_seen(), 1u);
  EXPECT_EQ(mux.fan_out(), 0u);
}

}  // namespace
}  // namespace fdqos::runtime
