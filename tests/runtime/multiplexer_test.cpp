#include "runtime/multiplexer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/sim_transport.hpp"
#include "runtime/process_node.hpp"

namespace fdqos::runtime {
namespace {

class RecordingLayer final : public Layer {
 public:
  void handle_up(const net::Message& msg) override {
    log.emplace_back(msg.seq);
  }
  std::vector<std::int64_t> log;
};

net::Message heartbeat(std::int64_t seq) {
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = net::MessageType::kHeartbeat;
  msg.seq = seq;
  return msg;
}

TEST(MultiPlexerTest, EveryUpperLayerSeesEveryMessage) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(1));
  ProcessNode node(transport, 1);
  auto& mux = node.push(std::make_unique<MultiPlexerLayer>());
  std::vector<std::unique_ptr<RecordingLayer>> uppers;
  for (int i = 0; i < 30; ++i) {
    uppers.push_back(std::make_unique<RecordingLayer>());
    node.attach_unowned(mux, *uppers.back());
  }
  node.start();
  for (int i = 1; i <= 100; ++i) transport.send(heartbeat(i));
  simulator.run();

  EXPECT_EQ(mux.messages_seen(), 100u);
  EXPECT_EQ(mux.fan_out(), 30u);
  for (const auto& upper : uppers) {
    ASSERT_EQ(upper->log.size(), 100u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(upper->log[static_cast<std::size_t>(i)], i + 1);
    }
  }
}

TEST(MultiPlexerTest, IdenticalPerceptionAcrossUppers) {
  // The fairness property: all uppers receive the same sequence in the same
  // order (paper §4 — the basis for comparing 30 detectors fairly).
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(2));
  net::SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::UniformDelay>(Duration::millis(1),
                                                   Duration::millis(400));
  link.loss = std::make_unique<wan::BernoulliLoss>(0.1);
  transport.set_link(0, 1, std::move(link));

  ProcessNode node(transport, 1);
  auto& mux = node.push(std::make_unique<MultiPlexerLayer>());
  RecordingLayer a;
  RecordingLayer b;
  node.attach_unowned(mux, a);
  node.attach_unowned(mux, b);
  node.start();
  for (int i = 1; i <= 500; ++i) transport.send(heartbeat(i));
  simulator.run();

  EXPECT_EQ(a.log, b.log);
  EXPECT_LT(a.log.size(), 500u);  // some were lost
  EXPECT_GT(a.log.size(), 350u);
}

TEST(MultiPlexerTest, NoUppersIsSafe) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(3));
  ProcessNode node(transport, 1);
  auto& mux = node.push(std::make_unique<MultiPlexerLayer>());
  node.start();
  transport.send(heartbeat(1));
  simulator.run();
  EXPECT_EQ(mux.messages_seen(), 1u);
  EXPECT_EQ(mux.fan_out(), 0u);
}

}  // namespace
}  // namespace fdqos::runtime
