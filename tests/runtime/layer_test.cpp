#include "runtime/layer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/sim_transport.hpp"
#include "runtime/process_node.hpp"

namespace fdqos::runtime {
namespace {

// Records everything passing through, both directions.
class ProbeLayer final : public Layer {
 public:
  void handle_up(const net::Message& msg) override {
    up_seqs.push_back(msg.seq);
    deliver_up(msg);
  }
  void handle_down(net::Message msg) override {
    down_seqs.push_back(msg.seq);
    send_down(std::move(msg));
  }
  std::vector<std::int64_t> up_seqs;
  std::vector<std::int64_t> down_seqs;
};

// Top layer that only records (no further delivery).
class SinkLayer final : public Layer {
 public:
  void handle_up(const net::Message& msg) override { seqs.push_back(msg.seq); }
  std::vector<std::int64_t> seqs;
};

net::Message heartbeat(net::NodeId from, net::NodeId to, std::int64_t seq) {
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = net::MessageType::kHeartbeat;
  msg.seq = seq;
  return msg;
}

TEST(LayerTest, MessagesFlowUpThroughTheStack) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(1));
  ProcessNode node(transport, 1);
  auto& probe = node.push(std::make_unique<ProbeLayer>());
  auto& sink = node.push(std::make_unique<SinkLayer>());
  node.start();

  transport.send(heartbeat(0, 1, 5));
  simulator.run();
  ASSERT_EQ(probe.up_seqs, (std::vector<std::int64_t>{5}));
  ASSERT_EQ(sink.seqs, (std::vector<std::int64_t>{5}));
}

TEST(LayerTest, MessagesFlowDownToTransport) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(2));
  ProcessNode sender(transport, 0);
  auto& probe = sender.push(std::make_unique<ProbeLayer>());

  std::vector<std::int64_t> received;
  transport.bind(1, [&](const net::Message& m) { received.push_back(m.seq); });

  probe.handle_down(heartbeat(0, 1, 9));
  simulator.run();
  EXPECT_EQ(probe.down_seqs, (std::vector<std::int64_t>{9}));
  EXPECT_EQ(received, (std::vector<std::int64_t>{9}));
}

TEST(LayerTest, FanOutDeliversToAllUppers) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(3));
  ProcessNode node(transport, 1);
  auto& base = node.push(std::make_unique<ProbeLayer>());
  SinkLayer a;
  SinkLayer b;
  SinkLayer c;
  node.attach_unowned(base, a);
  node.attach_unowned(base, b);
  node.attach_unowned(base, c);

  transport.send(heartbeat(0, 1, 3));
  simulator.run();
  EXPECT_EQ(a.seqs.size(), 1u);
  EXPECT_EQ(b.seqs.size(), 1u);
  EXPECT_EQ(c.seqs.size(), 1u);
}

TEST(LayerTest, StackReportsTopology) {
  Layer lower;
  Layer upper;
  Layer::stack(lower, upper);
  EXPECT_EQ(upper.layer_below(), &lower);
  ASSERT_EQ(lower.layers_above().size(), 1u);
  EXPECT_EQ(lower.layers_above()[0], &upper);
}

TEST(ProcessNodeTest, IdAndTopTracking) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(4));
  ProcessNode node(transport, 7);
  EXPECT_EQ(node.id(), 7);
  EXPECT_EQ(&node.top(), &node.bottom());
  auto& probe = node.push(std::make_unique<ProbeLayer>());
  EXPECT_EQ(&node.top(), &probe);
}

}  // namespace
}  // namespace fdqos::runtime
