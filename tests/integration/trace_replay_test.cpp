// Record-then-replay: capturing a link's delay trace and replaying it must
// reproduce the detector's behaviour exactly — the mechanism for running
// the 30-detector comparison on delays captured from a real WAN (the
// paper's §6 "other connections" extension).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fd/freshness_detector.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"
#include "wan/italy_japan.hpp"
#include "wan/trace.hpp"

namespace fdqos {
namespace {

struct RunResult {
  std::vector<std::pair<double, bool>> transitions;
  std::size_t observations = 0;
  double final_delta_ms = 0.0;
};

RunResult run_with_delay(std::unique_ptr<wan::DelayModel> delay,
                         std::uint64_t net_seed) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(net_seed));
  net::SimTransport::LinkConfig link;
  link.delay = std::move(delay);
  transport.set_link(0, 1, std::move(link));

  runtime::ProcessNode monitored(transport, 0);
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::seconds(1);
  monitored.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

  runtime::ProcessNode monitor(transport, 1);
  fd::FreshnessDetector::Config config;
  config.eta = Duration::seconds(1);
  config.monitored = 0;
  auto& detector = monitor.push(std::make_unique<fd::FreshnessDetector>(
      simulator, config, std::make_unique<forecast::LpfPredictor>(0.125),
      std::make_unique<fd::JacobsonSafetyMargin>(1.0)));

  RunResult result;
  detector.set_observer([&](TimePoint t, bool s) {
    result.transitions.emplace_back(t.to_seconds_double(), s);
  });
  monitored.start();
  monitor.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(600));
  result.observations = detector.observations();
  result.final_delta_ms = detector.current_delta_ms();
  return result;
}

TEST(TraceReplayIntegrationTest, ReplayReproducesDetectorBehaviour) {
  auto hub = std::make_shared<wan::TraceRecorderHub>();
  const RunResult original = run_with_delay(
      std::make_unique<wan::RecordingDelay>(wan::make_italy_japan_delay(), hub,
                                            /*key=*/0),
      /*net_seed=*/5);
  const wan::TraceRecorder& recorder = hub->shard(0);
  ASSERT_GT(recorder.size(), 500u);

  // Replay through a *different* RNG seed: the trace alone must determine
  // the detector's behaviour (no loss model on this link).
  const RunResult replayed = run_with_delay(
      std::make_unique<wan::TraceReplayDelay>(recorder.delays()),
      /*net_seed=*/999);

  EXPECT_EQ(replayed.observations, original.observations);
  EXPECT_DOUBLE_EQ(replayed.final_delta_ms, original.final_delta_ms);
  ASSERT_EQ(replayed.transitions.size(), original.transitions.size());
  for (std::size_t i = 0; i < original.transitions.size(); ++i) {
    EXPECT_EQ(replayed.transitions[i], original.transitions[i]) << i;
  }
}

TEST(TraceReplayIntegrationTest, RoundTripThroughCsvFile) {
  auto hub = std::make_shared<wan::TraceRecorderHub>();
  run_with_delay(std::make_unique<wan::RecordingDelay>(
                     wan::make_italy_japan_delay(), hub, /*key=*/0),
                 5);
  const wan::TraceRecorder& recorder = hub->shard(0);
  const std::string path = ::testing::TempDir() + "/fdqos_replay_trace.csv";
  ASSERT_TRUE(recorder.save(path));
  auto loaded = wan::TraceReplayDelay::load(path);
  std::remove(path.c_str());
  ASSERT_NE(loaded, nullptr);

  const RunResult a =
      run_with_delay(std::make_unique<wan::TraceReplayDelay>(recorder.delays()), 1);
  const RunResult b = run_with_delay(std::move(loaded), 2);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.observations, b.observations);
}

}  // namespace
}  // namespace fdqos
