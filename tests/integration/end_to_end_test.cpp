// Full-stack integration: Heartbeater → SimCrash → WAN link → MultiPlexer →
// FreshnessDetector → QosTracker, exactly the paper's Figure 3 architecture,
// checked end-to-end on one detector with hand-verifiable dynamics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fd/freshness_detector.hpp"
#include "fd/qos_tracker.hpp"
#include "fd/suite.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/multiplexer.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "wan/italy_japan.hpp"

namespace fdqos {
namespace {

struct Stack {
  sim::Simulator simulator;
  std::unique_ptr<net::SimTransport> transport;
  std::unique_ptr<runtime::ProcessNode> monitored;
  std::unique_ptr<runtime::ProcessNode> monitor;
  runtime::SimCrashLayer* crash = nullptr;
  runtime::MultiPlexerLayer* mux = nullptr;
  std::vector<std::unique_ptr<fd::FreshnessDetector>> detectors;
  std::vector<fd::QosTracker> trackers;

  void build(std::size_t n_detectors, Duration mttc, Duration ttr,
             std::uint64_t seed) {
    Rng rng(seed);
    transport = std::make_unique<net::SimTransport>(simulator, rng.fork("net"));
    net::SimTransport::LinkConfig link;
    link.delay = wan::make_italy_japan_delay();
    link.loss = wan::make_italy_japan_loss();
    transport->set_link(0, 1, std::move(link));

    monitored = std::make_unique<runtime::ProcessNode>(*transport, 0);
    crash = &monitored->push(std::make_unique<runtime::SimCrashLayer>(
        simulator, runtime::SimCrashLayer::Config{mttc, ttr},
        rng.fork("crash")));
    runtime::HeartbeaterLayer::Config hb;
    hb.eta = Duration::seconds(1);
    monitored->push(
        std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

    monitor = std::make_unique<runtime::ProcessNode>(*transport, 1);
    mux = &monitor->push(std::make_unique<runtime::MultiPlexerLayer>());

    trackers.reserve(n_detectors);
    const auto suite = fd::make_paper_suite();
    for (std::size_t i = 0; i < n_detectors; ++i) {
      trackers.emplace_back();
    }
    for (std::size_t i = 0; i < n_detectors; ++i) {
      fd::FreshnessDetector::Config config;
      config.eta = Duration::seconds(1);
      config.monitored = 0;
      config.name = suite[i].name;
      auto det = std::make_unique<fd::FreshnessDetector>(
          simulator, config, suite[i].make_predictor(),
          suite[i].make_margin());
      fd::QosTracker* tracker = &trackers[i];
      det->set_observer([tracker](TimePoint t, bool s) {
        if (s) {
          tracker->suspect_started(t);
        } else {
          tracker->suspect_ended(t);
        }
      });
      monitor->attach_unowned(*mux, *det);
      detectors.push_back(std::move(det));
    }
    crash->set_observer([this](TimePoint t, bool crashed) {
      for (auto& tr : trackers) {
        if (crashed) {
          tr.process_crashed(t);
        } else {
          tr.process_restored(t);
        }
      }
    });
    monitored->start();
    monitor->start();
  }
};

TEST(EndToEndTest, SingleDetectorFullLifecycle) {
  Stack stack;
  stack.build(1, Duration::seconds(200), Duration::seconds(20), 1);
  const TimePoint end = TimePoint::origin() + Duration::seconds(2000);
  stack.simulator.run_until(end);
  stack.trackers[0].finalize(end);

  const fd::QosMetrics m = stack.trackers[0].metrics();
  EXPECT_GE(stack.crash->crash_count(), 5u);
  EXPECT_EQ(m.missed_detections, 0u);
  EXPECT_EQ(m.detections + (stack.crash->crashed() ? 1u : 0u),
            stack.crash->crash_count());
  EXPECT_GT(m.detection_time_ms.mean, 100.0);
  EXPECT_LT(m.detection_time_ms.mean, 3000.0);
  EXPECT_GT(m.availability, 0.95);
}

TEST(EndToEndTest, AllThirtyDetectorsShareThePerception) {
  Stack stack;
  stack.build(30, Duration::seconds(300), Duration::seconds(30), 2);
  const TimePoint end = TimePoint::origin() + Duration::seconds(1500);
  stack.simulator.run_until(end);
  for (auto& tracker : stack.trackers) tracker.finalize(end);

  // Identical perception: every detector observed the identical number of
  // heartbeats through the MultiPlexer.
  const std::size_t obs0 = stack.detectors[0]->observations();
  EXPECT_GT(obs0, 1000u);
  for (const auto& det : stack.detectors) {
    EXPECT_EQ(det->observations(), obs0) << det->name();
    EXPECT_EQ(det->max_seq(), stack.detectors[0]->max_seq());
  }
  // And every tracker saw the same ground-truth crash count.
  for (const auto& tracker : stack.trackers) {
    EXPECT_EQ(tracker.crash_count(), stack.crash->crash_count());
  }
}

TEST(EndToEndTest, DetectionWithinEtaPlusDeltaBound) {
  // Structural bound: T_D ≤ η + δ_max. With η = 1 s and δ well under 1.5 s
  // on this link, every sample must be below 2.5 s.
  Stack stack;
  stack.build(1, Duration::seconds(150), Duration::seconds(15), 3);
  const TimePoint end = TimePoint::origin() + Duration::seconds(3000);
  stack.simulator.run_until(end);
  stack.trackers[0].finalize(end);
  const fd::QosMetrics m = stack.trackers[0].metrics();
  ASSERT_GT(m.detection_time_ms.count, 5u);
  EXPECT_LT(m.detection_time_ms.max, 2500.0);
  EXPECT_GE(m.detection_time_ms.min, 0.0);
}

TEST(EndToEndTest, SuspicionAlwaysEndsAfterRestore) {
  // After every restore, the next heartbeat must clear the suspicion: at
  // the end of a long run with the process up, the detector trusts.
  Stack stack;
  stack.build(1, Duration::seconds(100), Duration::seconds(10), 4);
  // Choose an end instant away from crash boundaries.
  const TimePoint end = TimePoint::origin() + Duration::seconds(5000);
  stack.simulator.run_until(end);
  if (!stack.crash->crashed()) {
    // Process is up; give the detector one more cycle if it is mid-window.
    EXPECT_FALSE(stack.detectors[0]->suspecting());
  }
}

}  // namespace
}  // namespace fdqos
