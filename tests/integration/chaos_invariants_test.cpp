// The chaos invariant harness (the point of the faultx subsystem).
//
// Property-style sweep: every named fault scenario × several seeds, each
// running the full 30-detector paper suite through the QoS experiment with
// the scenario's faults injected. Individual metric values under chaos are
// unconstrained — that is the point of chaos — but the structural QoS
// invariants (exp/chaos.hpp) must hold for every detector under every
// scenario, and the parallel engine must stay byte-deterministic with
// faults active. Failures name the invariant, scenario and seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/chaos.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"
#include "faultx/scenarios.hpp"

namespace fdqos::exp {
namespace {

constexpr std::uint64_t kSeeds[] = {7, 11, 13};

QosExperimentConfig harness_config(const std::string& scenario,
                                   std::uint64_t seed) {
  QosExperimentConfig config;
  config.chaos_scenario = scenario;
  config.seed = seed;
  config.runs = 2;
  config.num_cycles = 400;
  config.mttc = Duration::seconds(90);
  config.ttr = Duration::seconds(20);
  config.warmup = Duration::seconds(60);
  config.jobs = 2;
  return config;
}

// Serialize everything the CLI prints to stdout — the determinism check
// compares these bytes across jobs values.
std::string report_bytes(const QosReport& report) {
  std::string out = chaos_table(report).to_csv();
  for (const auto kind :
       {QosMetricKind::kTd, QosMetricKind::kTdU, QosMetricKind::kTm,
        QosMetricKind::kTmr, QosMetricKind::kPa}) {
    out += qos_metric_table(report, kind).to_csv();
  }
  return out;
}

TEST(ChaosInvariantsTest, EveryScenarioEverySeedUpholdsQosInvariants) {
  for (const auto& scenario : faultx::scenario_names()) {
    for (const std::uint64_t seed : kSeeds) {
      SCOPED_TRACE("scenario=" + scenario + " seed=" + std::to_string(seed));
      const QosReport report =
          run_qos_experiment(harness_config(scenario, seed));

      ASSERT_EQ(report.results.size(), 30u);
      EXPECT_GT(report.chaos_fault_events, 0u);
      // Each detector produced *some* samples: the faults did not silently
      // stall the experiment.
      for (const auto& r : report.results) {
        EXPECT_GT(r.metrics.crashes_observed, 0u) << r.name;
      }

      for (const auto& v : qos_invariant_violations(report)) {
        ADD_FAILURE() << "invariant [" << v.invariant << "] violated under "
                      << "scenario=" << scenario << " seed=" << seed << ": "
                      << v.detail;
      }
    }
  }
}

TEST(ChaosInvariantsTest, NominalRunAlsoUpholdsInvariants) {
  // The invariants are not chaos-specific; the nominal path must satisfy
  // them too (and this pins the checker against a quiet baseline).
  QosExperimentConfig config = harness_config("", 7);
  config.chaos_scenario.clear();
  const QosReport report = run_qos_experiment(config);
  EXPECT_EQ(report.chaos_fault_events, 0u);
  EXPECT_EQ(report.chaos_dropped, 0u);
  EXPECT_EQ(report.chaos_duplicated, 0u);
  for (const auto& v : qos_invariant_violations(report)) {
    ADD_FAILURE() << "invariant [" << v.invariant << "] violated on the "
                  << "nominal link: " << v.detail;
  }
}

TEST(ChaosInvariantsTest, ChaosReportIsByteIdenticalAcrossJobs) {
  // The acceptance bar: jobs=1 (exact serial path) and jobs=8 produce the
  // same report bytes with every fault type active (kitchen_sink), because
  // fault randomness comes from per-run substreams and the reduction is
  // ordered.
  QosExperimentConfig serial = harness_config("kitchen_sink", 7);
  serial.jobs = 1;
  QosExperimentConfig parallel = harness_config("kitchen_sink", 7);
  parallel.jobs = 8;

  const std::string serial_bytes = report_bytes(run_qos_experiment(serial));
  const std::string parallel_bytes =
      report_bytes(run_qos_experiment(parallel));
  EXPECT_EQ(serial_bytes, parallel_bytes);
  EXPECT_FALSE(serial_bytes.empty());
}

TEST(ChaosInvariantsTest, PartitionScenarioAccountsItsDrops) {
  const QosReport report =
      run_qos_experiment(harness_config("partition_heal", 7));
  // Partitions eat transport-level messages and the accounting must see
  // them (400 s run with 28 s of cuts at η=1 s ≥ a dozen heartbeats).
  EXPECT_GT(report.chaos_dropped, 0u);
  EXPECT_EQ(report.chaos_duplicated, 0u);
}

TEST(ChaosInvariantsTest, DupStormInjectsDuplicates) {
  const QosReport report = run_qos_experiment(harness_config("dup_storm", 7));
  EXPECT_GT(report.chaos_duplicated, 0u);
  // Delivered can exceed sent-by-the-heartbeater under duplication; the
  // invariant checker compares against the *link's* sent count, which
  // includes the copies — delivered ≤ sent must still hold.
  EXPECT_LE(report.heartbeats_delivered, report.heartbeats_sent);
}

}  // namespace
}  // namespace fdqos::exp
