// Deployment-path integration: the FreshnessDetector over real UDP on
// loopback, driven in wall-clock time by RealTimeDriver. Mirrors the
// udp_live_monitor example at test scale (~3 s real time).
#include <gtest/gtest.h>

#include <memory>

#include "fd/freshness_detector.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/udp_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"

namespace fdqos {
namespace {

TEST(UdpDetectorIntegrationTest, MonitorsThenDetectsSilence) {
  const std::uint16_t hb_port = 45721;
  const std::uint16_t mon_port = 45722;

  sim::Simulator simulator;
  net::UdpTransport hb_transport(
      simulator, 0,
      {{0, {"127.0.0.1", hb_port}}, {1, {"127.0.0.1", mon_port}}});
  net::UdpTransport mon_transport(simulator, 1,
                                  {{1, {"127.0.0.1", mon_port}}});
  ASSERT_TRUE(hb_transport.ok());
  ASSERT_TRUE(mon_transport.ok());

  runtime::ProcessNode heartbeater(hb_transport, 0);
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::millis(100);
  hb.self = 0;
  hb.monitor = 1;
  hb.max_cycles = 12;  // the "process" dies after ~1.2 s
  heartbeater.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

  runtime::ProcessNode monitor(mon_transport, 1);
  fd::FreshnessDetector::Config config;
  config.eta = Duration::millis(100);
  config.monitored = 0;
  config.cold_start_timeout = Duration::millis(300);
  auto& detector = monitor.push(std::make_unique<fd::FreshnessDetector>(
      simulator, config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<fd::JacobsonSafetyMargin>(4.0)));

  TimePoint suspect_time;
  int suspect_events = 0;
  detector.set_observer([&](TimePoint t, bool suspecting) {
    if (suspecting) {
      suspect_time = t;
      ++suspect_events;
    }
  });

  heartbeater.start();
  monitor.start();
  net::RealTimeDriver driver(simulator, mon_transport);
  driver.run_for(Duration::millis(2500));

  // Heartbeats flowed over the real socket...
  EXPECT_GE(mon_transport.received_count(), 10u);
  EXPECT_GE(detector.max_seq(), 11);
  // ...and the silence after cycle 12 was detected, roughly one period
  // after the last heartbeat (loopback delays are tiny).
  EXPECT_TRUE(detector.suspecting());
  EXPECT_GE(suspect_events, 1);
  EXPECT_GT(suspect_time, TimePoint::origin() + Duration::millis(1200));
  EXPECT_LT(suspect_time, TimePoint::origin() + Duration::millis(2100));
}

}  // namespace
}  // namespace fdqos
