// Partition vs crash: from the detector's seat they are indistinguishable —
// the fundamental reason these are *unreliable* failure detectors (hints,
// not proofs: paper §1/[4]). A partitioned-but-alive process is suspected
// exactly like a crashed one; only healing reveals the difference.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fd/freshness_detector.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"

namespace fdqos {
namespace {

TEST(PartitionTest, PartitionLooksExactlyLikeACrash) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(1));
  net::SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(150));
  transport.set_link(0, 1, std::move(link));

  runtime::ProcessNode sender(transport, 0);
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::seconds(1);
  auto& beater =
      sender.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

  runtime::ProcessNode monitor(transport, 1);
  fd::FreshnessDetector::Config config;
  config.eta = Duration::seconds(1);
  config.monitored = 0;
  auto& detector = monitor.push(std::make_unique<fd::FreshnessDetector>(
      simulator, config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<fd::JacobsonSafetyMargin>(2.0)));
  std::vector<std::pair<double, bool>> transitions;
  detector.set_observer([&](TimePoint t, bool s) {
    transitions.push_back({t.to_seconds_double(), s});
  });

  sender.start();
  monitor.start();

  // Cut the link at t = 40 s, heal it at t = 70 s.
  simulator.schedule_at(TimePoint::origin() + Duration::seconds(40),
                        [&] { transport.set_partitioned(0, 1, true); });
  simulator.schedule_at(TimePoint::origin() + Duration::seconds(70),
                        [&] { transport.set_partitioned(0, 1, false); });
  simulator.run_until(TimePoint::origin() + Duration::seconds(100));

  // The process stayed alive and kept sending...
  EXPECT_GE(beater.cycles_sent(), 99);
  // ...yet the detector suspected it during the partition and recovered
  // only when heartbeats flowed again.
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_TRUE(transitions[0].second);
  EXPECT_GT(transitions[0].first, 40.0);
  EXPECT_LT(transitions[0].first, 42.5);
  EXPECT_FALSE(transitions[1].second);
  EXPECT_GT(transitions[1].first, 70.0);
  EXPECT_LT(transitions[1].first, 72.5);
  // Message accounting: everything sent during the cut was dropped.
  const auto& stats = transport.link_stats(0, 1);
  EXPECT_EQ(stats.dropped, 30u);
  EXPECT_EQ(stats.sent, static_cast<std::uint64_t>(beater.cycles_sent()));
}

TEST(PartitionTest, OneWayPartitionOnlyAffectsThatDirection) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(2));
  int forward = 0;
  int backward = 0;
  transport.bind(1, [&](const net::Message&) { ++forward; });
  transport.bind(0, [&](const net::Message&) { ++backward; });

  transport.set_link_enabled(0, 1, false);
  for (int i = 0; i < 5; ++i) {
    net::Message m;
    m.from = 0;
    m.to = 1;
    m.type = net::MessageType::kHeartbeat;
    m.seq = i;
    transport.send(m);
    net::Message r;
    r.from = 1;
    r.to = 0;
    r.type = net::MessageType::kHeartbeat;
    r.seq = i;
    transport.send(r);
  }
  simulator.run();
  EXPECT_EQ(forward, 0);
  EXPECT_EQ(backward, 5);
}

TEST(PartitionTest, ReenablingRestoresDelivery) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(3));
  int received = 0;
  transport.bind(1, [&](const net::Message&) { ++received; });
  transport.set_link_enabled(0, 1, false);
  net::Message m;
  m.from = 0;
  m.to = 1;
  m.type = net::MessageType::kHeartbeat;
  transport.send(m);
  transport.set_link_enabled(0, 1, true);
  transport.send(m);
  simulator.run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace fdqos
