// Differential test: the online QosTracker and the NekoStat-style post-hoc
// derive_qos() implement the same classification rules independently; on a
// full randomized run they must produce identical samples.
#include <gtest/gtest.h>

#include <memory>

#include "fd/freshness_detector.hpp"
#include "fd/qos_tracker.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "stats/event_log.hpp"
#include "wan/italy_japan.hpp"

namespace fdqos {
namespace {

class EventLogConsistencyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventLogConsistencyTest, OnlineAndPostHocAgree) {
  const std::uint64_t seed = GetParam();
  sim::Simulator simulator;
  Rng rng(seed);
  net::SimTransport transport(simulator, rng.fork("net"));
  net::SimTransport::LinkConfig link;
  link.delay = wan::make_italy_japan_delay();
  link.loss = wan::make_italy_japan_loss();
  transport.set_link(0, 1, std::move(link));

  runtime::ProcessNode monitored(transport, 0);
  auto& crash = monitored.push(std::make_unique<runtime::SimCrashLayer>(
      simulator,
      runtime::SimCrashLayer::Config{Duration::seconds(120),
                                     Duration::seconds(15)},
      rng.fork("crash")));
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::seconds(1);
  monitored.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

  runtime::ProcessNode monitor(transport, 1);
  fd::FreshnessDetector::Config config;
  config.eta = Duration::seconds(1);
  config.monitored = 0;
  auto& detector = monitor.push(std::make_unique<fd::FreshnessDetector>(
      simulator, config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<fd::JacobsonSafetyMargin>(1.0)));

  const TimePoint warmup = TimePoint::origin() + Duration::seconds(30);
  fd::QosTracker tracker(warmup);
  stats::EventLog log;

  crash.set_observer([&](TimePoint t, bool crashed) {
    log.record(t, crashed ? stats::EventKind::kCrash
                          : stats::EventKind::kRestore);
    if (crashed) {
      tracker.process_crashed(t);
    } else {
      tracker.process_restored(t);
    }
  });
  detector.set_observer([&](TimePoint t, bool suspecting) {
    log.record(t, suspecting ? stats::EventKind::kStartSuspect
                             : stats::EventKind::kEndSuspect,
               /*subject=*/1);
    if (suspecting) {
      tracker.suspect_started(t);
    } else {
      tracker.suspect_ended(t);
    }
  });

  monitored.start();
  monitor.start();
  const TimePoint end = TimePoint::origin() + Duration::seconds(1500);
  simulator.run_until(end);
  tracker.finalize(end);

  const stats::LogDerivedQos derived = stats::derive_qos(log, 1, warmup);

  // Counts agree.
  EXPECT_EQ(derived.detection_times_ms.size(), tracker.td_stats().count());
  EXPECT_EQ(derived.mistake_durations_ms.size(), tracker.tm_stats().count());
  EXPECT_EQ(derived.mistake_recurrences_ms.size(),
            tracker.tmr_stats().count());
  EXPECT_EQ(derived.missed_detections, tracker.missed_detection_count());

  // Moments agree (same samples in the same order).
  stats::RunningStats td;
  for (double v : derived.detection_times_ms) td.add(v);
  stats::RunningStats tm;
  for (double v : derived.mistake_durations_ms) tm.add(v);
  EXPECT_DOUBLE_EQ(td.mean(), tracker.td_stats().mean());
  EXPECT_DOUBLE_EQ(td.max(), tracker.td_stats().max());
  EXPECT_DOUBLE_EQ(tm.mean(), tracker.tm_stats().mean());

  // Sanity: the run actually exercised crashes and mistakes.
  EXPECT_GE(crash.crash_count(), 5u);
  EXPECT_GT(tracker.tm_stats().count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventLogConsistencyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace fdqos
