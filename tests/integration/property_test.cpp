// Randomized property tests over the full detector stack.
//
// Invariants checked across seeds and detector configurations:
//  P1  suspicion state always equals (max_seq < freshness_index) — the
//      paper's §2.3 trust condition, continuously.
//  P2  every crash is eventually detected (TTR >> timeout), and suspicion
//      holds from detection until restore (+ one heartbeat RTT).
//  P3  transitions strictly alternate and carry non-decreasing timestamps.
//  P4  the detector timeout δ stays within physical bounds: positive and
//      below the largest observed delay + margin headroom.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "fd/freshness_detector.hpp"
#include "fd/pull_detector.hpp"
#include "fd/suite.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/multiplexer.hpp"
#include "runtime/ping_responder.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "wan/italy_japan.hpp"

namespace fdqos {
namespace {

struct PropertyParam {
  std::uint64_t seed;
  const char* predictor;
  const char* margin;
};

class DetectorPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*,
                                                 const char*>> {};

TEST_P(DetectorPropertyTest, InvariantsHoldUnderRandomWorkload) {
  const auto [seed, pred_label, margin_label] = GetParam();

  sim::Simulator simulator;
  Rng rng(seed);
  net::SimTransport transport(simulator, rng.fork("net"));
  net::SimTransport::LinkConfig link;
  link.delay = wan::make_italy_japan_delay();
  link.loss = wan::make_italy_japan_loss();
  transport.set_link(0, 1, std::move(link));

  runtime::ProcessNode monitored(transport, 0);
  auto& crash = monitored.push(std::make_unique<runtime::SimCrashLayer>(
      simulator,
      runtime::SimCrashLayer::Config{Duration::seconds(100),
                                     Duration::seconds(20)},
      rng.fork("crash")));
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::seconds(1);
  monitored.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

  runtime::ProcessNode monitor(transport, 1);
  fd::FreshnessDetector::Config config;
  config.eta = Duration::seconds(1);
  config.monitored = 0;
  auto& detector = monitor.push(std::make_unique<fd::FreshnessDetector>(
      simulator, config, fd::make_paper_predictor(pred_label)(),
      fd::make_paper_margin(margin_label)()));

  struct Transition {
    TimePoint time;
    bool suspect;
  };
  std::vector<Transition> transitions;
  detector.set_observer([&](TimePoint t, bool s) {
    transitions.push_back({t, s});
    // P1 at every transition instant.
    EXPECT_EQ(s, detector.max_seq() < detector.freshness_index());
  });

  std::vector<std::pair<TimePoint, bool>> crash_log;
  crash.set_observer(
      [&](TimePoint t, bool crashed) { crash_log.emplace_back(t, crashed); });

  monitored.start();
  monitor.start();

  // Run in slices and check P1/P4 at arbitrary instants, not only at
  // transitions.
  const Duration slice = Duration::millis(1700);
  TimePoint now = TimePoint::origin();
  const TimePoint end = TimePoint::origin() + Duration::seconds(900);
  while (now < end) {
    now += slice;
    simulator.run_until(now);
    EXPECT_EQ(detector.suspecting(),
              detector.max_seq() < detector.freshness_index());  // P1
    const double delta = detector.current_delta_ms();            // P4
    EXPECT_GE(delta, 0.0);
    EXPECT_LE(delta, 340.0 + 4.0 * 340.0);  // max delay + max margin headroom
  }

  // P3: alternation and monotonic times.
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    if (i > 0) {
      EXPECT_NE(transitions[i].suspect, transitions[i - 1].suspect) << i;
      EXPECT_GE(transitions[i].time, transitions[i - 1].time) << i;
    }
  }

  // P2: for every completed crash period, some suspicion started within it
  // and no un-suspicion happened between that start and the restore.
  std::size_t detected = 0;
  for (std::size_t c = 0; c + 1 < crash_log.size(); c += 2) {
    ASSERT_TRUE(crash_log[c].second);
    const TimePoint down = crash_log[c].first;
    const TimePoint up = crash_log[c + 1].first;
    // Find the last transition at or before `up`.
    bool state_at_restore = false;
    for (const auto& tr : transitions) {
      if (tr.time <= up) state_at_restore = tr.suspect;
    }
    // TTR = 20 s dwarfs every timeout here, so suspicion must hold at
    // restore (in-flight heartbeats can defer but not prevent it).
    EXPECT_TRUE(state_at_restore)
        << "crash at " << down.to_seconds_double() << " not detected";
    if (state_at_restore) ++detected;
  }
  EXPECT_GE(detected, 3u);  // the workload actually exercised crashes
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesConfigs, DetectorPropertyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(11, 23, 47),
                       ::testing::Values("Last", "Arima", "WinMean"),
                       ::testing::Values("CI_low", "JAC_high")));

// Pull-style detector under the same randomized workload: the analogous
// invariants hold (trust condition on pongs, alternation, crash coverage).
class PullDetectorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PullDetectorPropertyTest, InvariantsHoldUnderRandomWorkload) {
  const std::uint64_t seed = GetParam();
  sim::Simulator simulator;
  Rng rng(seed);
  net::SimTransport transport(simulator, rng.fork("net"));
  for (auto [from, to] : {std::pair<int, int>{0, 1}, {1, 0}}) {
    net::SimTransport::LinkConfig link;
    link.delay = wan::make_italy_japan_delay();
    link.loss = wan::make_italy_japan_loss();
    transport.set_link(from, to, std::move(link));
  }

  runtime::ProcessNode target(transport, 0);
  auto& crash = target.push(std::make_unique<runtime::SimCrashLayer>(
      simulator,
      runtime::SimCrashLayer::Config{Duration::seconds(100),
                                     Duration::seconds(20)},
      rng.fork("crash")));
  target.push(std::make_unique<runtime::PingResponderLayer>(simulator, 0));

  runtime::ProcessNode monitor(transport, 1);
  fd::PullDetector::Config config;
  config.eta = Duration::seconds(1);
  config.self = 1;
  config.monitored = 0;
  auto& detector = monitor.push(std::make_unique<fd::PullDetector>(
      simulator, config, fd::make_paper_predictor("Last")(),
      fd::make_paper_margin("JAC_med")()));

  std::vector<std::pair<TimePoint, bool>> transitions;
  detector.set_observer([&](TimePoint t, bool s) {
    transitions.emplace_back(t, s);
  });
  std::vector<std::pair<TimePoint, bool>> crash_log;
  crash.set_observer(
      [&](TimePoint t, bool c) { crash_log.emplace_back(t, c); });

  target.start();
  monitor.start();
  const Duration slice = Duration::millis(2300);
  TimePoint now = TimePoint::origin();
  const TimePoint end = TimePoint::origin() + Duration::seconds(800);
  while (now < end) {
    now += slice;
    simulator.run_until(now);
    const double delta = detector.current_delta_ms();
    EXPECT_GE(delta, 0.0);
    EXPECT_LE(delta, 2.0 * 340.0 + 4.0 * 680.0);  // RTT scale + margin room
  }

  for (std::size_t i = 1; i < transitions.size(); ++i) {
    EXPECT_NE(transitions[i].second, transitions[i - 1].second) << i;
    EXPECT_GE(transitions[i].first, transitions[i - 1].first) << i;
  }
  // Every completed crash detected by restore time (TTR 20 s >> timeout).
  std::size_t detected = 0;
  for (std::size_t c = 0; c + 1 < crash_log.size(); c += 2) {
    bool state_at_restore = false;
    for (const auto& tr : transitions) {
      if (tr.first <= crash_log[c + 1].first) state_at_restore = tr.second;
    }
    EXPECT_TRUE(state_at_restore)
        << "crash at " << crash_log[c].first.to_seconds_double();
    if (state_at_restore) ++detected;
  }
  EXPECT_GE(detected, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PullDetectorPropertyTest,
                         ::testing::Values(5, 31, 87));

TEST(SimulatorStressTest, MillionEventsReproducible) {
  auto run_once = [] {
    sim::Simulator simulator;
    Rng rng(123);
    std::uint64_t checksum = 0;
    // Self-replicating event cascade with random fan-out.
    std::function<void(int)> spawn = [&](int depth) {
      checksum = checksum * 1315423911u + simulator.now().count_nanos() %
                                              1000003u;
      if (depth <= 0) return;
      const int fan = static_cast<int>(rng.uniform_int(0, 2));
      for (int i = 0; i < fan; ++i) {
        simulator.schedule_after(
            Duration::micros(rng.uniform_int(1, 5000)),
            [&spawn, depth] { spawn(depth - 1); });
      }
    };
    for (int i = 0; i < 2000; ++i) {
      simulator.schedule_after(Duration::micros(rng.uniform_int(0, 100000)),
                               [&spawn] { spawn(18); });
    }
    simulator.run();
    return std::make_pair(simulator.executed_events(), checksum);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.first, 10000u);
}

}  // namespace
}  // namespace fdqos
