#include "wan/loss_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fdqos::wan {
namespace {

TEST(BernoulliLossTest, ZeroAndOneAreDeterministic) {
  Rng rng(1);
  BernoulliLoss never(0.0);
  BernoulliLoss always(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.drop(rng, TimePoint::origin()));
    EXPECT_TRUE(always.drop(rng, TimePoint::origin()));
  }
}

TEST(BernoulliLossTest, RateMatches) {
  Rng rng(2);
  BernoulliLoss loss(0.05);
  int dropped = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (loss.drop(rng, TimePoint::origin())) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.05, 0.005);
}

TEST(GilbertElliottTest, StationaryLossFormula) {
  GilbertElliottLoss::Params p{0.001, 0.099, 0.0, 1.0};
  GilbertElliottLoss loss(p);
  // pi_bad = 0.001/0.1 = 0.01 -> stationary loss = 0.01.
  EXPECT_NEAR(loss.stationary_loss(), 0.01, 1e-12);
}

TEST(GilbertElliottTest, EmpiricalLossNearStationary) {
  Rng rng(3);
  GilbertElliottLoss::Params p{0.002, 0.05, 0.001, 0.4};
  GilbertElliottLoss loss(p);
  int dropped = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    if (loss.drop(rng, TimePoint::origin())) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, loss.stationary_loss(),
              loss.stationary_loss() * 0.25);
}

TEST(GilbertElliottTest, LossesAreBursty) {
  // Compare the probability of a drop immediately following a drop with the
  // marginal drop rate: the chain must make consecutive drops more likely.
  Rng rng(4);
  GilbertElliottLoss::Params p{0.002, 0.05, 0.0005, 0.5};
  GilbertElliottLoss loss(p);
  const int n = 500000;
  std::vector<bool> drops(n);
  for (int i = 0; i < n; ++i) drops[static_cast<std::size_t>(i)] = loss.drop(rng, TimePoint::origin());
  int total = 0;
  int after_drop = 0;
  int after_drop_total = 0;
  for (int i = 1; i < n; ++i) {
    total += drops[static_cast<std::size_t>(i)] ? 1 : 0;
    if (drops[static_cast<std::size_t>(i - 1)]) {
      ++after_drop_total;
      if (drops[static_cast<std::size_t>(i)]) ++after_drop;
    }
  }
  const double marginal = static_cast<double>(total) / (n - 1);
  const double conditional =
      static_cast<double>(after_drop) / std::max(after_drop_total, 1);
  EXPECT_GT(conditional, 3.0 * marginal);
}

TEST(GilbertElliottTest, DegenerateChainStaysInInitialState) {
  Rng rng(5);
  GilbertElliottLoss::Params p{0.0, 0.0, 0.0, 1.0};
  GilbertElliottLoss loss(p);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(loss.drop(rng, TimePoint::origin()));  // stuck in Good
  }
  EXPECT_FALSE(loss.in_bad_state());
}

TEST(LossModelTest, MakeFreshResetsChainState) {
  Rng rng(6);
  GilbertElliottLoss::Params p{1.0, 0.0, 0.0, 1.0};  // jump to Bad instantly
  GilbertElliottLoss loss(p);
  loss.drop(rng, TimePoint::origin());
  EXPECT_TRUE(loss.in_bad_state());
  auto fresh = loss.make_fresh();
  auto* ge = dynamic_cast<GilbertElliottLoss*>(fresh.get());
  ASSERT_NE(ge, nullptr);
  EXPECT_FALSE(ge->in_bad_state());
}

TEST(LossModelTest, NamesDescribeParameters) {
  BernoulliLoss b(0.01);
  EXPECT_NE(b.name().find("bernoulli"), std::string::npos);
  GilbertElliottLoss g({0.1, 0.2, 0.3, 0.4});
  EXPECT_NE(g.name().find("gilbert"), std::string::npos);
}

}  // namespace
}  // namespace fdqos::wan
