// wan::tracestore — format roundtrips, malformed-input corpus, replay
// policies, recorder-hub merge determinism. Runs under the `tracestore`
// ctest label (including the sanitizer CI jobs).
#include "wan/tracestore.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace fdqos::wan {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Trace random_trace(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Trace trace;
  trace.meta.source = "random_trace seed=" + std::to_string(seed);
  trace.meta.clock_base_ns = static_cast<std::int64_t>(seed) * 1'000'000;
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < n; ++i) {
    t += Duration::millis(rng.uniform_int(1, 2000));
    trace.send_times.push_back(t);
    trace.delays.push_back(Duration::nanos(rng.uniform_int(0, 400'000'000)));
  }
  return trace;
}

void expect_same_samples(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.send_times[i], b.send_times[i]) << i;
    EXPECT_EQ(a.delays[i], b.delays[i]) << i;
  }
}

// --------------------------------------------------------------------------
// Roundtrip property suite

TEST(TracestoreRoundtripTest, FdtPreservesSamplesAndMeta) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const Trace original = random_trace(seed, 1 + seed * 37);
    const std::string path = temp_path("roundtrip.fdt");
    std::string error;
    ASSERT_TRUE(save_trace_fdt(original, path, &error)) << error;

    const TraceLoadResult loaded = load_trace(path);
    std::remove(path.c_str());
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    EXPECT_EQ(loaded.trace->meta.schema_version, kTraceSchemaVersion);
    EXPECT_EQ(loaded.trace->meta.clock_base_ns, original.meta.clock_base_ns);
    EXPECT_EQ(loaded.trace->meta.source, original.meta.source);
    expect_same_samples(original, *loaded.trace);
  }
}

TEST(TracestoreRoundtripTest, CsvPreservesSamples) {
  const Trace original = random_trace(3, 200);
  const std::string path = temp_path("roundtrip.csv");
  std::string error;
  ASSERT_TRUE(save_trace_csv(original, path, &error)) << error;

  const TraceLoadResult loaded = load_trace(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  expect_same_samples(original, *loaded.trace);
}

TEST(TracestoreRoundtripTest, CsvToFdtConversionIsLossless) {
  const Trace original = random_trace(11, 150);
  const std::string csv = temp_path("convert.csv");
  const std::string fdt = temp_path("convert.fdt");
  ASSERT_TRUE(save_trace_csv(original, csv));
  const TraceLoadResult from_csv = load_trace(csv);
  ASSERT_TRUE(from_csv.ok()) << from_csv.error;
  ASSERT_TRUE(save_trace_fdt(*from_csv.trace, fdt));
  const TraceLoadResult from_fdt = load_trace(fdt);
  std::remove(csv.c_str());
  std::remove(fdt.c_str());
  ASSERT_TRUE(from_fdt.ok()) << from_fdt.error;
  expect_same_samples(original, *from_fdt.trace);
}

TEST(TracestoreRoundtripTest, StreamingWriterMatchesBatchWriter) {
  const Trace original = random_trace(5, 321);
  const std::string streamed = temp_path("streamed.fdt");
  {
    TraceFdtWriter writer(streamed, original.meta);
    ASSERT_TRUE(writer.ok()) << writer.error();
    for (std::size_t i = 0; i < original.size(); ++i) {
      ASSERT_TRUE(writer.append(original.send_times[i], original.delays[i]));
    }
    ASSERT_TRUE(writer.finalize());
    EXPECT_EQ(writer.samples_written(), original.size());
  }
  const TraceLoadResult loaded = load_trace(streamed);
  std::remove(streamed.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  expect_same_samples(original, *loaded.trace);
}

TEST(TracestoreRoundtripTest, CsvLinesLongerThanLegacyBufferParse) {
  // The old loader read lines into a 128-byte buffer; long lines silently
  // truncated mid-number. Pad with leading zeros well past that limit.
  const std::string path = temp_path("long_lines.csv");
  std::string padded(200, '0');
  write_file(path, "send_time_ns,delay_ns\n" + padded + "123," + padded +
                       "456\n7,8\n");
  const TraceLoadResult loaded = load_trace(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  ASSERT_EQ(loaded.trace->size(), 2u);
  EXPECT_EQ(loaded.trace->send_times[0].count_nanos(), 123);
  EXPECT_EQ(loaded.trace->delays[0].count_nanos(), 456);
}

TEST(TracestoreRoundtripTest, CsvSkipsCommentsAndBlankLines) {
  const std::string path = temp_path("comments.csv");
  write_file(path, "# captured on host x\nsend_time_ns,delay_ns\n\n1,2\n");
  const TraceLoadResult loaded = load_trace(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.trace->size(), 1u);
}

// --------------------------------------------------------------------------
// Malformed-input corpus: every case yields a precise error, never an abort.

TEST(TracestoreMalformedTest, MissingFile) {
  const TraceLoadResult r = load_trace("/nonexistent/trace.fdt");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("cannot open"), std::string::npos) << r.error;
}

TEST(TracestoreMalformedTest, TruncatedHeader) {
  const std::string path = temp_path("trunc_header.fdt");
  write_file(path, std::string("FDQTRCE\0", 8) + "abc");
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("truncated header"), std::string::npos) << r.error;
}

TEST(TracestoreMalformedTest, BadMagicFallsBackToCsvAndReportsLine) {
  // Binary garbage without the magic is sniffed as CSV and fails with a
  // line-numbered parse error rather than an abort.
  const std::string path = temp_path("bad_magic.fdt");
  write_file(path, std::string("NOTTRACE________garbage________", 31));
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find(":1: cannot parse"), std::string::npos) << r.error;
}

TEST(TracestoreMalformedTest, ExplicitFdtLoadRejectsBadMagic) {
  const std::string path = temp_path("bad_magic2.fdt");
  write_file(path, std::string(64, 'x'));
  const TraceLoadResult r = load_trace_fdt(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("bad magic"), std::string::npos) << r.error;
}

TEST(TracestoreMalformedTest, UnsupportedSchemaVersion) {
  Trace trace = random_trace(2, 4);
  trace.meta.schema_version = kTraceSchemaVersion + 9;
  const std::string path = temp_path("future.fdt");
  ASSERT_TRUE(save_trace_fdt(trace, path));
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unsupported schema version"), std::string::npos)
      << r.error;
}

TEST(TracestoreMalformedTest, TruncatedRecords) {
  const Trace trace = random_trace(6, 10);
  const std::string path = temp_path("trunc_records.fdt");
  ASSERT_TRUE(save_trace_fdt(trace, path));
  // Chop the last record in half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  write_file(path, bytes.substr(0, bytes.size() - 8));
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("truncated records"), std::string::npos) << r.error;
}

TEST(TracestoreMalformedTest, AbandonedStreamingWriterLeavesRejectedFile) {
  const std::string path = temp_path("abandoned.fdt");
  {
    // Simulate a crash mid-capture: records written, finalize never runs,
    // so the header still claims 0 samples.
    TraceFdtWriter writer(path, {});
    ASSERT_TRUE(writer.ok());
    writer.append(TimePoint::origin(), Duration::millis(1));
    // Deliberately bypass finalize: rewrite the file as header + partial
    // record the way a killed process would leave it.
  }
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  write_file(path, bytes.substr(0, bytes.size() - 3));
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
}

TEST(TracestoreMalformedTest, EmptyFdtTrace) {
  const std::string path = temp_path("empty.fdt");
  {
    TraceFdtWriter writer(path, {});
    writer.finalize();
  }
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("empty trace"), std::string::npos) << r.error;
}

TEST(TracestoreMalformedTest, NegativeDelayRecordNamesTheRecord) {
  const std::string path = temp_path("negative.fdt");
  {
    Trace trace = random_trace(8, 3);
    ASSERT_TRUE(save_trace_fdt(trace, path));
  }
  // Patch record 1's delay (second i64 of the record) to -1.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::size_t source_len = bytes.size() - 32 - 3 * 16;
  const std::size_t offset = 32 + source_len + 16 + 8;
  for (std::size_t i = 0; i < 8; ++i) bytes[offset + i] = '\xff';
  write_file(path, bytes);
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("record 1: negative delay"), std::string::npos)
      << r.error;
}

TEST(TracestoreMalformedTest, CsvGarbageLineReportsLineNumber) {
  const std::string path = temp_path("garbage.csv");
  write_file(path, "send_time_ns,delay_ns\n1,2\nthis is not a number\n");
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find(":3: cannot parse"), std::string::npos) << r.error;
}

TEST(TracestoreMalformedTest, CsvNegativeDelayReportsLineNumber) {
  const std::string path = temp_path("neg.csv");
  write_file(path, "send_time_ns,delay_ns\n1,-5\n");
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find(":2: negative delay"), std::string::npos) << r.error;
}

TEST(TracestoreMalformedTest, EmptyCsv) {
  const std::string path = temp_path("empty.csv");
  write_file(path, "send_time_ns,delay_ns\n# nothing captured\n");
  const TraceLoadResult r = load_trace(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("empty trace"), std::string::npos) << r.error;
}

// --------------------------------------------------------------------------
// Replay policies

TEST(ReplayPolicyTest, ParseAndName) {
  EXPECT_EQ(parse_replay_policy("truncate"), ReplayPolicy::kTruncate);
  EXPECT_EQ(parse_replay_policy("wrap"), ReplayPolicy::kWrap);
  EXPECT_EQ(parse_replay_policy("extend"), ReplayPolicy::kExtend);
  EXPECT_EQ(parse_replay_policy("loop"), std::nullopt);
  EXPECT_EQ(parse_replay_policy(""), std::nullopt);
  EXPECT_STREQ(replay_policy_name(ReplayPolicy::kTruncate), "truncate");
  EXPECT_STREQ(replay_policy_name(ReplayPolicy::kWrap), "wrap");
  EXPECT_STREQ(replay_policy_name(ReplayPolicy::kExtend), "extend");
}

TEST(ReplayPolicyTest, TruncateRepeatsLastDelayAndCountsOverruns) {
  TraceReplayDelay replay({Duration::millis(1), Duration::millis(2)},
                          ReplayPolicy::kTruncate);
  Rng rng(1);
  replay.sample(rng, TimePoint::origin());
  replay.sample(rng, TimePoint::origin());
  EXPECT_TRUE(replay.exhausted());
  EXPECT_EQ(replay.overruns(), 0u);
  EXPECT_EQ(replay.sample(rng, TimePoint::origin()), Duration::millis(2));
  EXPECT_EQ(replay.sample(rng, TimePoint::origin()), Duration::millis(2));
  EXPECT_EQ(replay.overruns(), 2u);
}

TEST(ReplayPolicyTest, WrapLoopsBackToStart) {
  TraceReplayDelay replay({Duration::millis(5), Duration::millis(6)},
                          ReplayPolicy::kWrap);
  Rng rng(2);
  replay.sample(rng, TimePoint::origin());
  replay.sample(rng, TimePoint::origin());
  EXPECT_EQ(replay.sample(rng, TimePoint::origin()), Duration::millis(5));
  EXPECT_EQ(replay.overruns(), 0u);
}

TEST(ReplayPolicyTest, ExtendSamplesFittedTailWithinObservedRange) {
  std::vector<Duration> delays;
  Rng gen(3);
  for (int i = 0; i < 400; ++i) {
    delays.push_back(Duration::millis(200) +
                     Duration::from_millis_double(gen.lognormal(2.0, 0.5)));
  }
  const Duration lo = *std::min_element(delays.begin(), delays.end());
  const Duration hi = *std::max_element(delays.begin(), delays.end());

  TraceReplayDelay replay(delays, ReplayPolicy::kExtend);
  Rng rng(4);
  for (std::size_t i = 0; i < delays.size(); ++i) {
    EXPECT_EQ(replay.sample(rng, TimePoint::origin()), delays[i]);
  }
  for (int i = 0; i < 200; ++i) {
    const Duration d = replay.sample(rng, TimePoint::origin());
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
  EXPECT_EQ(replay.extended_samples(), 200u);
  EXPECT_EQ(replay.overruns(), 0u);
}

TEST(ReplayPolicyTest, ExtendOnConstantTraceStaysConstant) {
  TraceReplayDelay replay({Duration::millis(7), Duration::millis(7)},
                          ReplayPolicy::kExtend);
  Rng rng(5);
  replay.sample(rng, TimePoint::origin());
  replay.sample(rng, TimePoint::origin());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(replay.sample(rng, TimePoint::origin()), Duration::millis(7));
  }
}

TEST(ReplayPolicyTest, MakeFreshKeepsPolicyAndRestartsCursor) {
  TraceReplayDelay replay({Duration::millis(1), Duration::millis(2)},
                          ReplayPolicy::kTruncate);
  Rng rng(6);
  replay.sample(rng, TimePoint::origin());
  auto fresh_base = replay.make_fresh();
  auto* fresh = dynamic_cast<TraceReplayDelay*>(fresh_base.get());
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->policy(), ReplayPolicy::kTruncate);
  EXPECT_EQ(fresh->position(), 0u);
  EXPECT_EQ(fresh->sample(rng, TimePoint::origin()), Duration::millis(1));
}

TEST(TraceTailModelTest, FitMatchesMoments) {
  std::vector<Duration> delays{Duration::millis(100), Duration::millis(150),
                               Duration::millis(130), Duration::millis(300)};
  const TraceTailModel model = fit_trace_tail(delays);
  EXPECT_FALSE(model.degenerate);
  EXPECT_EQ(model.floor, Duration::millis(100));
  EXPECT_EQ(model.cap, Duration::millis(300));
  EXPECT_GT(model.sigma, 0.0);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Duration d = model.sample(rng);
    EXPECT_GE(d, model.floor);
    EXPECT_LE(d, model.cap);
  }
}

// --------------------------------------------------------------------------
// Recorder hub

TEST(TraceRecorderHubTest, MergesShardsInKeyOrderRegardlessOfCreation) {
  TraceRecorderHub hub;
  // Create out of order, the way parallel runs finishing out of order would.
  hub.shard(2).record(TimePoint::from_nanos(20), Duration::millis(2));
  hub.shard(0).record(TimePoint::from_nanos(0), Duration::millis(0));
  hub.shard(1).record(TimePoint::from_nanos(10), Duration::millis(1));
  hub.shard(0).record(TimePoint::from_nanos(1), Duration::millis(10));

  EXPECT_EQ(hub.shard_count(), 3u);
  EXPECT_EQ(hub.total_samples(), 4u);

  TraceMeta meta;
  meta.source = "hub merge test";
  const Trace merged = hub.merged(meta);
  EXPECT_EQ(merged.meta.source, "hub merge test");
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.delays[0], Duration::millis(0));
  EXPECT_EQ(merged.delays[1], Duration::millis(10));
  EXPECT_EQ(merged.delays[2], Duration::millis(1));
  EXPECT_EQ(merged.delays[3], Duration::millis(2));
}

TEST(TraceRecorderHubTest, AutoShardsMergeAfterExplicitKeys) {
  TraceRecorderHub hub;
  hub.fresh_shard().record(TimePoint::origin(), Duration::millis(99));
  hub.shard(5).record(TimePoint::origin(), Duration::millis(5));
  const Trace merged = hub.merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.delays[0], Duration::millis(5));
  EXPECT_EQ(merged.delays[1], Duration::millis(99));
}

TEST(RecordingDelayTest, MakeFreshClonesRecordIntoTheirOwnShards) {
  auto hub = std::make_shared<TraceRecorderHub>();
  RecordingDelay prototype(std::make_unique<ConstantDelay>(Duration::millis(3)),
                           hub, /*key=*/0);
  auto clone_a = prototype.make_fresh();
  auto clone_b = prototype.make_fresh();
  Rng rng(1);
  prototype.sample(rng, TimePoint::origin());
  clone_a->sample(rng, TimePoint::origin());
  clone_a->sample(rng, TimePoint::origin());
  clone_b->sample(rng, TimePoint::origin());
  EXPECT_EQ(hub->shard_count(), 3u);
  EXPECT_EQ(hub->total_samples(), 4u);
  EXPECT_EQ(prototype.recorder().size(), 1u);
}

// Regression for the make_fresh() data race: the old RecordingDelay cloned
// with a reference to the *same* TraceRecorder, so concurrent runs pushed
// into one vector. Under TSan this test fails on that design; with hub
// shards every clone owns its vectors. (TSan CI runs -L tracestore.)
TEST(RecordingDelayTest, ConcurrentClonesDoNotRace) {
  auto hub = std::make_shared<TraceRecorderHub>();
  RecordingDelay prototype(std::make_unique<ConstantDelay>(Duration::millis(1)),
                           hub, /*key=*/0);
  constexpr int kThreads = 8;
  constexpr int kSamples = 2000;
  std::vector<std::unique_ptr<DelayModel>> clones;
  for (int i = 0; i < kThreads; ++i) clones.push_back(prototype.make_fresh());

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&clones, i] {
      Rng rng(static_cast<std::uint64_t>(i));
      TimePoint t = TimePoint::origin();
      for (int s = 0; s < kSamples; ++s, t += Duration::millis(1)) {
        clones[static_cast<std::size_t>(i)]->sample(rng, t);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(hub->shard_count(), 1u + kThreads);
  EXPECT_EQ(hub->total_samples(),
            static_cast<std::size_t>(kThreads) * kSamples);
}

}  // namespace
}  // namespace fdqos::wan
