// Calibration tests: the synthetic Italy–Japan link must stay inside the
// paper's Table 4 envelope (DESIGN.md §2 substitution).
#include "wan/italy_japan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/autocorrelation.hpp"

namespace fdqos::wan {
namespace {

LinkCharacteristics measure(std::uint64_t seed, std::size_t n = 200000) {
  auto delay = make_italy_japan_delay();
  auto loss = make_italy_japan_loss();
  Rng rng(seed);
  return measure_link(*delay, *loss, n, Duration::seconds(1), rng);
}

TEST(ItalyJapanTest, MeanNearTwoHundredMs) {
  const auto link = measure(1);
  EXPECT_NEAR(link.delay_ms.mean, 200.0, 4.0);
}

TEST(ItalyJapanTest, StddevNearPaperValue) {
  // Paper Table 4: 7.6 ms.
  const auto link = measure(2);
  EXPECT_GT(link.delay_ms.stddev, 4.0);
  EXPECT_LT(link.delay_ms.stddev, 12.0);
}

TEST(ItalyJapanTest, MinimumRespectsPropagationFloor) {
  const auto link = measure(3);
  EXPECT_GE(link.delay_ms.min, 192.0);
  EXPECT_LT(link.delay_ms.min, 196.0);
}

TEST(ItalyJapanTest, MaximumBoundedByCap) {
  const auto link = measure(4);
  EXPECT_LE(link.delay_ms.max, 340.0);
  EXPECT_GT(link.delay_ms.max, 230.0);  // spikes do occur
}

TEST(ItalyJapanTest, LossBelowOnePercent) {
  const auto link = measure(5, 500000);
  EXPECT_LT(link.loss_probability, 0.01);
  EXPECT_GT(link.loss_probability, 0.0005);
}

TEST(ItalyJapanTest, DelaysArePositivelyAutocorrelated) {
  // Regime switching induces positive short-lag autocorrelation, the
  // non-stationarity adaptive detectors exploit.
  auto delay = make_italy_japan_delay();
  Rng rng(6);
  std::vector<double> xs;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 100000; ++i, t += Duration::seconds(1)) {
    xs.push_back(delay->sample(rng, t).to_millis_double());
  }
  EXPECT_GT(stats::autocorrelation(xs, 1), 0.05);
}

TEST(ItalyJapanTest, CustomParamsChangeTheModel) {
  ItalyJapanParams params;
  params.floor = Duration::millis(50);
  params.spike_prob = 0.0;
  auto delay = make_italy_japan_delay(params);
  Rng rng(7);
  stats::RunningStats rs;
  for (int i = 0; i < 20000; ++i) {
    rs.add(delay->sample(rng, TimePoint::origin()).to_millis_double());
  }
  EXPECT_GE(rs.min(), 50.0);
  EXPECT_LT(rs.mean(), 100.0);
}

TEST(ItalyJapanTest, StartupTransientCanBeDisabled) {
  ItalyJapanParams params;
  params.startup_dwell = Duration::zero();
  auto delay = make_italy_japan_delay(params);
  Rng rng(9);
  stats::RunningStats early;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 200; ++i, t += Duration::seconds(1)) {
    early.add(delay->sample(rng, t).to_millis_double());
  }
  // Without the transient the first minutes already sit at the quiet level
  // (~198 ms), not the congested ~220 ms.
  EXPECT_LT(early.mean(), 208.0);
}

TEST(ItalyJapanTest, StartupTransientElevatesEarlyDelays) {
  // The startup dwell is exponential (mean 1000 s), so average the
  // early-vs-late contrast over several independent runs.
  const Rng base(10);
  stats::RunningStats early;
  stats::RunningStats late;
  for (std::uint64_t run = 0; run < 10; ++run) {
    auto delay = make_italy_japan_delay();
    Rng rng = base.fork(run);
    TimePoint t = TimePoint::origin();
    for (int i = 0; i < 6000; ++i, t += Duration::seconds(1)) {
      const double ms = delay->sample(rng, t).to_millis_double();
      (i < 120 ? early : late).add(ms);
    }
  }
  EXPECT_GT(early.mean(), late.mean() + 8.0);
}

TEST(MeasureLinkTest, CountsMessagesAndLoss) {
  auto delay = std::make_unique<ConstantDelay>(Duration::millis(10));
  BernoulliLoss loss(0.5);
  Rng rng(8);
  const auto link = measure_link(*delay, loss, 10000, Duration::seconds(1), rng);
  EXPECT_EQ(link.messages, 10000u);
  EXPECT_NEAR(link.loss_probability, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(link.delay_ms.count), 5000.0, 300.0);
}

}  // namespace
}  // namespace fdqos::wan
