#include "wan/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace fdqos::wan {
namespace {

TEST(TraceRecorderTest, RecordsSamples) {
  TraceRecorder rec;
  rec.record(TimePoint::origin(), Duration::millis(100));
  rec.record(TimePoint::origin() + Duration::seconds(1), Duration::millis(200));
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.delays()[1], Duration::millis(200));
  const auto ms = rec.delays_ms();
  EXPECT_DOUBLE_EQ(ms[0], 100.0);
}

TEST(RecordingDelayTest, CapturesEverySample) {
  auto hub = std::make_shared<TraceRecorderHub>();
  RecordingDelay model(std::make_unique<ConstantDelay>(Duration::millis(7)),
                       hub, /*key=*/0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.sample(rng, TimePoint::origin()), Duration::millis(7));
  }
  EXPECT_EQ(model.recorder().size(), 10u);
  EXPECT_EQ(hub->total_samples(), 10u);
}

TEST(TraceReplayTest, ReplaysInOrder) {
  TraceReplayDelay replay(
      {Duration::millis(1), Duration::millis(2), Duration::millis(3)});
  Rng rng(2);
  EXPECT_EQ(replay.sample(rng, TimePoint::origin()), Duration::millis(1));
  EXPECT_EQ(replay.sample(rng, TimePoint::origin()), Duration::millis(2));
  EXPECT_EQ(replay.sample(rng, TimePoint::origin()), Duration::millis(3));
}

TEST(TraceReplayTest, WrapsAround) {
  TraceReplayDelay replay({Duration::millis(5), Duration::millis(6)});
  Rng rng(3);
  replay.sample(rng, TimePoint::origin());
  replay.sample(rng, TimePoint::origin());
  EXPECT_EQ(replay.sample(rng, TimePoint::origin()), Duration::millis(5));
}

TEST(TraceTest, SaveLoadRoundTrip) {
  auto hub = std::make_shared<TraceRecorderHub>();
  RecordingDelay model(
      std::make_unique<UniformDelay>(Duration::millis(100), Duration::millis(300)),
      hub, /*key=*/0);
  Rng rng(4);
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 50; ++i, t += Duration::seconds(1)) {
    model.sample(rng, t);
  }
  const TraceRecorder& rec = model.recorder();
  const std::string path = ::testing::TempDir() + "/fdqos_trace_test.csv";
  ASSERT_TRUE(rec.save(path));

  auto replay = TraceReplayDelay::load(path);
  std::remove(path.c_str());
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(replay->size(), 50u);
  Rng rng2(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(replay->sample(rng2, TimePoint::origin()),
              rec.delays()[static_cast<std::size_t>(i)]);
  }
}

TEST(TraceReplayTest, LoadMissingFileReturnsNull) {
  EXPECT_EQ(TraceReplayDelay::load("/nonexistent/trace.csv"), nullptr);
}

TEST(TraceReplayTest, LoadRejectsMalformedFile) {
  const std::string path = ::testing::TempDir() + "/fdqos_bad_trace.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("send_time_ns,delay_ns\nthis is not a number\n", f);
  std::fclose(f);
  EXPECT_EQ(TraceReplayDelay::load(path), nullptr);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, MakeFreshRestartsFromBeginning) {
  TraceReplayDelay replay({Duration::millis(10), Duration::millis(20)});
  Rng rng(6);
  replay.sample(rng, TimePoint::origin());
  auto fresh = replay.make_fresh();
  EXPECT_EQ(fresh->sample(rng, TimePoint::origin()), Duration::millis(10));
}

}  // namespace
}  // namespace fdqos::wan
