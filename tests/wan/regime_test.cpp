#include "wan/regime.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stats/running_stats.hpp"

namespace fdqos::wan {
namespace {

RegimeSwitchingDelay make_two_regime(Duration dwell_a, Duration dwell_b) {
  std::vector<RegimeSwitchingDelay::Regime> regimes;
  regimes.push_back(
      {std::make_unique<ConstantDelay>(Duration::millis(100)), dwell_a});
  regimes.push_back(
      {std::make_unique<ConstantDelay>(Duration::millis(500)), dwell_b});
  return RegimeSwitchingDelay(std::move(regimes), {{0.0, 1.0}, {1.0, 0.0}}, 0);
}

TEST(RegimeSwitchingTest, StartsInInitialRegime) {
  auto model = make_two_regime(Duration::seconds(1000), Duration::seconds(10));
  Rng rng(1);
  EXPECT_EQ(model.current_regime(), 0u);
  EXPECT_EQ(model.sample(rng, TimePoint::origin()), Duration::millis(100));
}

TEST(RegimeSwitchingTest, SwitchesAfterDwell) {
  auto model = make_two_regime(Duration::seconds(10), Duration::seconds(10));
  Rng rng(2);
  bool saw_a = false;
  bool saw_b = false;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 1000; ++i, t += Duration::seconds(1)) {
    const Duration d = model.sample(rng, t);
    if (d == Duration::millis(100)) saw_a = true;
    if (d == Duration::millis(500)) saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(RegimeSwitchingTest, TimeShareMatchesDwellRatio) {
  auto model = make_two_regime(Duration::seconds(80), Duration::seconds(20));
  Rng rng(3);
  int in_a = 0;
  const int n = 200000;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < n; ++i, t += Duration::seconds(1)) {
    if (model.sample(rng, t) == Duration::millis(100)) ++in_a;
  }
  EXPECT_NEAR(static_cast<double>(in_a) / n, 0.8, 0.05);
}

TEST(RegimeSwitchingTest, HandlesLongGapsBetweenSamples) {
  // A gap spanning many dwell periods must not get stuck: the chain is
  // advanced through all elapsed switches.
  auto model = make_two_regime(Duration::seconds(5), Duration::seconds(5));
  Rng rng(4);
  model.sample(rng, TimePoint::origin());
  // Jump three hours ahead; must still return one of the two regimes and
  // continue switching afterwards.
  TimePoint t = TimePoint::origin() + Duration::seconds(10800);
  int seen_a = 0;
  int seen_b = 0;
  for (int i = 0; i < 200; ++i, t += Duration::seconds(1)) {
    const Duration d = model.sample(rng, t);
    (d == Duration::millis(100) ? seen_a : seen_b)++;
  }
  EXPECT_GT(seen_a, 0);
  EXPECT_GT(seen_b, 0);
}

TEST(RegimeSwitchingTest, SelfLoopTransitionStaysPut) {
  std::vector<RegimeSwitchingDelay::Regime> regimes;
  regimes.push_back(
      {std::make_unique<ConstantDelay>(Duration::millis(1)), Duration::seconds(1)});
  regimes.push_back(
      {std::make_unique<ConstantDelay>(Duration::millis(2)), Duration::seconds(1)});
  RegimeSwitchingDelay model(std::move(regimes), {{1.0, 0.0}, {0.0, 1.0}}, 0);
  Rng rng(5);
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 100; ++i, t += Duration::seconds(10)) {
    EXPECT_EQ(model.sample(rng, t), Duration::millis(1));
  }
}

TEST(RegimeSwitchingTest, MakeFreshStartsInInitialRegime) {
  auto model = make_two_regime(Duration::seconds(1), Duration::seconds(1000));
  Rng rng(6);
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 50; ++i, t += Duration::seconds(1)) {
    model.sample(rng, t);
  }
  auto fresh_base = model.make_fresh();
  auto* fresh = dynamic_cast<RegimeSwitchingDelay*>(fresh_base.get());
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->current_regime(), 0u);
  EXPECT_EQ(fresh->regime_count(), 2u);
}

}  // namespace
}  // namespace fdqos::wan
