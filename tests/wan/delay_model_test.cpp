#include "wan/delay_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/running_stats.hpp"

namespace fdqos::wan {
namespace {

stats::Summary sample_many(DelayModel& model, std::size_t n,
                           std::uint64_t seed = 1) {
  Rng rng(seed);
  stats::RunningStats rs;
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < n; ++i, t += Duration::seconds(1)) {
    rs.add(model.sample(rng, t).to_millis_double());
  }
  return rs.summary();
}

TEST(ConstantDelayTest, AlwaysSameValue) {
  ConstantDelay model(Duration::millis(42));
  const auto s = sample_many(model, 100);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(UniformDelayTest, StaysInRangeWithMatchingMoments) {
  UniformDelay model(Duration::millis(100), Duration::millis(300));
  const auto s = sample_many(model, 50000);
  EXPECT_GE(s.min, 100.0);
  EXPECT_LT(s.max, 300.0);
  EXPECT_NEAR(s.mean, 200.0, 2.0);
  // Var of U(100,300) = 200²/12.
  EXPECT_NEAR(s.variance, 200.0 * 200.0 / 12.0, 150.0);
}

TEST(ShiftedLognormalTest, RespectsFloorAndMean) {
  // Body mean = exp(mu + sigma²/2).
  const double mu = 2.0;
  const double sigma = 0.5;
  ShiftedLognormalDelay model(Duration::millis(192), mu, sigma);
  const auto s = sample_many(model, 100000);
  EXPECT_GE(s.min, 192.0);
  const double body_mean = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(s.mean, 192.0 + body_mean, 0.3);
}

TEST(ShiftedGammaTest, MomentsMatch) {
  ShiftedGammaDelay model(Duration::millis(50), 4.0, 2.5);  // body mean 10
  const auto s = sample_many(model, 100000);
  EXPECT_GE(s.min, 50.0);
  EXPECT_NEAR(s.mean, 60.0, 0.3);
  EXPECT_NEAR(s.variance, 4.0 * 2.5 * 2.5, 2.0);  // k·theta²
}

TEST(SpikeMixtureTest, SpikesAreRareAndCapped) {
  auto base = std::make_unique<ConstantDelay>(Duration::millis(200));
  SpikeMixtureDelay model(std::move(base), 0.01, Duration::millis(50), 1.5,
                          Duration::millis(340));
  Rng rng(2);
  std::size_t spiked = 0;
  const std::size_t n = 100000;
  for (std::size_t i = 0; i < n; ++i) {
    const double ms = model.sample(rng, TimePoint::origin()).to_millis_double();
    EXPECT_GE(ms, 200.0);
    EXPECT_LE(ms, 340.0);
    if (ms > 200.0) ++spiked;
  }
  EXPECT_NEAR(static_cast<double>(spiked) / static_cast<double>(n), 0.01,
              0.002);
}

TEST(SpikeMixtureTest, ZeroProbabilityNeverSpikes) {
  auto base = std::make_unique<ConstantDelay>(Duration::millis(100));
  SpikeMixtureDelay model(std::move(base), 0.0, Duration::millis(50), 1.5,
                          Duration::millis(340));
  const auto s = sample_many(model, 1000);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(DelayModelTest, MakeFreshPreservesDistribution) {
  ShiftedLognormalDelay original(Duration::millis(10), 1.5, 0.4);
  auto fresh = original.make_fresh();
  EXPECT_EQ(fresh->name(), original.name());
  const auto s1 = sample_many(original, 20000, 7);
  const auto s2 = sample_many(*fresh, 20000, 7);
  EXPECT_DOUBLE_EQ(s1.mean, s2.mean);  // identical seed -> identical stream
}

TEST(DelayModelTest, SamplesAreNonNegative) {
  UniformDelay u(Duration::zero(), Duration::millis(5));
  ShiftedGammaDelay g(Duration::zero(), 0.5, 1.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(u.sample(rng, TimePoint::origin()), Duration::zero());
    EXPECT_GE(g.sample(rng, TimePoint::origin()), Duration::zero());
  }
}

TEST(DelayModelTest, NamesDescribeParameters) {
  ConstantDelay c(Duration::millis(5));
  EXPECT_NE(c.name().find("const"), std::string::npos);
  ShiftedLognormalDelay l(Duration::millis(192), 1.7, 0.6);
  EXPECT_NE(l.name().find("lognormal"), std::string::npos);
  EXPECT_NE(l.name().find("192"), std::string::npos);
}

}  // namespace
}  // namespace fdqos::wan
