// RotatingFdtWriter coverage: segment rotation at max_samples, finalize
// semantics, deletion of empty live segments, and the load_trace round
// trip on every completed segment (each must replay independently).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <string>

#include "wan/tracestore.hpp"

namespace fdqos::wan {
namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

RotatingFdtWriter::Options make_options(std::uint64_t max_samples,
                                        const std::string& prefix) {
  RotatingFdtWriter::Options opts;
  opts.directory = testing::TempDir();
  opts.prefix = prefix;
  opts.max_samples = max_samples;
  opts.meta.source = "rotating_fdt_test";
  return opts;
}

TEST(RotatingFdtWriter, RotatesAtMaxSamplesAndEverySegmentReplays) {
  RotatingFdtWriter writer(make_options(3, "rot"));
  ASSERT_TRUE(writer.ok()) << writer.error();
  for (std::int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(writer.append(TimePoint::from_nanos(i * 1'000'000),
                              Duration::millis(10 + i)));
  }
  EXPECT_EQ(writer.samples_written(), 8u);
  // 8 samples at 3/segment: two full segments rotated out, 2 still live.
  EXPECT_EQ(writer.segments().size(), 2u);

  ASSERT_TRUE(writer.finalize());
  ASSERT_EQ(writer.segments().size(), 3u);

  std::int64_t next = 0;
  const std::size_t expected_sizes[] = {3, 3, 2};
  for (std::size_t s = 0; s < writer.segments().size(); ++s) {
    const auto loaded = load_trace(writer.segments()[s]);
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    ASSERT_EQ(loaded.trace->size(), expected_sizes[s]) << "segment " << s;
    EXPECT_EQ(loaded.trace->meta.source, "rotating_fdt_test");
    for (std::size_t i = 0; i < loaded.trace->size(); ++i, ++next) {
      EXPECT_EQ(loaded.trace->send_times[i].count_nanos(), next * 1'000'000);
      EXPECT_EQ(loaded.trace->delays[i].count_nanos(),
                Duration::millis(10 + next).count_nanos());
    }
  }
  EXPECT_EQ(next, 8);
}

TEST(RotatingFdtWriter, FinalizeWithNoSamplesLeavesNoFiles) {
  RotatingFdtWriter writer(make_options(100, "empty"));
  ASSERT_TRUE(writer.ok()) << writer.error();
  ASSERT_TRUE(writer.finalize());
  EXPECT_TRUE(writer.segments().empty());
  EXPECT_FALSE(file_exists(testing::TempDir() + "/empty-00000.fdt"));
}

TEST(RotatingFdtWriter, ExactMultipleLeavesNoTrailingEmptySegment) {
  RotatingFdtWriter writer(make_options(2, "exact"));
  ASSERT_TRUE(writer.ok()) << writer.error();
  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.append(TimePoint::from_nanos(i), Duration::millis(1)));
  }
  ASSERT_TRUE(writer.finalize());
  // Exactly two full segments; the empty live segment opened by the last
  // rotation must be deleted, not finalized as a zero-sample file.
  EXPECT_EQ(writer.segments().size(), 2u);
  for (const auto& path : writer.segments()) {
    const auto loaded = load_trace(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    EXPECT_EQ(loaded.trace->size(), 2u);
  }
}

TEST(RotatingFdtWriter, FinalizeIsIdempotentAndAppendAfterwardsFails) {
  RotatingFdtWriter writer(make_options(10, "fin"));
  ASSERT_TRUE(writer.append(TimePoint::origin(), Duration::millis(5)));
  ASSERT_TRUE(writer.finalize());
  EXPECT_TRUE(writer.finalize());
  EXPECT_FALSE(writer.append(TimePoint::origin(), Duration::millis(5)));
  EXPECT_EQ(writer.samples_written(), 1u);
  EXPECT_EQ(writer.segments().size(), 1u);
}

TEST(RotatingFdtWriter, UnwritableDirectoryFailsWithoutAborting) {
  RotatingFdtWriter::Options opts;
  opts.directory = "/nonexistent/fdqos-rotating-fdt-test";
  opts.prefix = "x";
  RotatingFdtWriter writer(std::move(opts));
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.error().empty());
  EXPECT_FALSE(writer.append(TimePoint::origin(), Duration::millis(1)));
  EXPECT_FALSE(writer.finalize());
}

}  // namespace
}  // namespace fdqos::wan
