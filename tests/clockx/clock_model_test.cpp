#include "clockx/clock_model.hpp"

#include <gtest/gtest.h>

namespace fdqos::clockx {
namespace {

TEST(ClockModelTest, PerfectClockIsIdentity) {
  ClockModel clock;
  const TimePoint t = TimePoint::origin() + Duration::seconds(100);
  EXPECT_EQ(clock.to_local(t), t);
  EXPECT_EQ(clock.to_global(t), t);
  EXPECT_EQ(clock.error_at(t), Duration::zero());
}

TEST(ClockModelTest, PureOffset) {
  ClockModel clock(Duration::millis(50), 0.0);
  const TimePoint t = TimePoint::origin() + Duration::seconds(10);
  EXPECT_EQ(clock.to_local(t), t + Duration::millis(50));
  EXPECT_EQ(clock.error_at(t), Duration::millis(50));
}

TEST(ClockModelTest, DriftGrowsLinearly) {
  // 100 ppm = 100 µs per second.
  ClockModel clock(Duration::zero(), 100.0);
  const TimePoint t1 = TimePoint::origin() + Duration::seconds(1);
  const TimePoint t100 = TimePoint::origin() + Duration::seconds(100);
  EXPECT_EQ(clock.error_at(t1), Duration::micros(100));
  EXPECT_EQ(clock.error_at(t100), Duration::micros(10000));
}

TEST(ClockModelTest, ToGlobalInvertsToLocal) {
  ClockModel clock(Duration::millis(-30), 250.0,
                   TimePoint::origin() + Duration::seconds(5));
  for (int s : {0, 10, 1000, 86400}) {
    const TimePoint t = TimePoint::origin() + Duration::seconds(s);
    const TimePoint round_trip = clock.to_global(clock.to_local(t));
    EXPECT_LE((round_trip - t).count_nanos(), 1);
    EXPECT_GE((round_trip - t).count_nanos(), -1);
  }
}

TEST(ClockModelTest, EpochShiftsDriftOrigin) {
  const TimePoint epoch = TimePoint::origin() + Duration::seconds(50);
  ClockModel clock(Duration::zero(), 1000.0, epoch);
  EXPECT_EQ(clock.error_at(epoch), Duration::zero());
  EXPECT_EQ(clock.error_at(epoch + Duration::seconds(1)), Duration::millis(1));
}

TEST(StepClockTest, EmptyClockHasNoError) {
  StepClock clock;
  EXPECT_TRUE(clock.empty());
  EXPECT_EQ(clock.step_count(), 0u);
  const TimePoint t = TimePoint::origin() + Duration::seconds(100);
  EXPECT_EQ(clock.error_at(t), Duration::zero());
  EXPECT_EQ(clock.to_local(t), t);
}

TEST(StepClockTest, StepTakesEffectAtItsInstant) {
  StepClock clock;
  const TimePoint at = TimePoint::origin() + Duration::seconds(100);
  clock.add_step(at, Duration::millis(-250));
  EXPECT_EQ(clock.error_at(at - Duration::nanos(1)), Duration::zero());
  EXPECT_EQ(clock.error_at(at), Duration::millis(-250));
  EXPECT_EQ(clock.to_local(at + Duration::seconds(5)),
            at + Duration::seconds(5) - Duration::millis(250));
}

TEST(StepClockTest, StepsAccumulate) {
  StepClock clock;
  clock.add_step(TimePoint::origin() + Duration::seconds(10),
                 Duration::millis(-250));
  clock.add_step(TimePoint::origin() + Duration::seconds(20),
                 Duration::millis(250));
  clock.add_step(TimePoint::origin() + Duration::seconds(30),
                 Duration::millis(40));
  EXPECT_EQ(clock.error_at(TimePoint::origin() + Duration::seconds(15)),
            Duration::millis(-250));
  EXPECT_EQ(clock.error_at(TimePoint::origin() + Duration::seconds(25)),
            Duration::zero());
  EXPECT_EQ(clock.error_at(TimePoint::origin() + Duration::seconds(35)),
            Duration::millis(40));
  EXPECT_EQ(clock.step_count(), 3u);
}

TEST(StepClockTest, OutOfOrderInsertionSortsByTime) {
  StepClock sorted;
  StepClock shuffled;
  const auto at = [](int s) { return TimePoint::origin() + Duration::seconds(s); };
  sorted.add_step(at(10), Duration::millis(1));
  sorted.add_step(at(20), Duration::millis(2));
  sorted.add_step(at(30), Duration::millis(4));
  shuffled.add_step(at(30), Duration::millis(4));
  shuffled.add_step(at(10), Duration::millis(1));
  shuffled.add_step(at(20), Duration::millis(2));
  for (int s = 0; s <= 40; s += 5) {
    EXPECT_EQ(sorted.error_at(at(s)), shuffled.error_at(at(s))) << s;
  }
}

TEST(DisciplinedClockTest, PerfectCorrectionZeroesResidual) {
  ClockModel raw(Duration::millis(25), 0.0);
  DisciplinedClock disciplined(raw);
  disciplined.apply_correction(Duration::millis(25));
  const TimePoint t = TimePoint::origin() + Duration::seconds(42);
  EXPECT_EQ(disciplined.residual_at(t), Duration::zero());
}

TEST(DisciplinedClockTest, ResidualReflectsCorrectionError) {
  ClockModel raw(Duration::millis(25), 0.0);
  DisciplinedClock disciplined(raw);
  disciplined.apply_correction(Duration::millis(20));  // 5 ms short
  const TimePoint t = TimePoint::origin() + Duration::seconds(1);
  EXPECT_EQ(disciplined.residual_at(t), Duration::millis(5));
}

TEST(DisciplinedClockTest, DriftLeaksBetweenCorrections) {
  ClockModel raw(Duration::zero(), 100.0);
  DisciplinedClock disciplined(raw);
  disciplined.apply_correction(Duration::zero());
  // After 1000 s of 100 ppm drift the residual is 100 ms.
  const TimePoint t = TimePoint::origin() + Duration::seconds(1000);
  EXPECT_EQ(disciplined.residual_at(t), Duration::millis(100));
}

}  // namespace
}  // namespace fdqos::clockx
