#include "clockx/ntp_estimator.hpp"

#include <gtest/gtest.h>

#include "clockx/clock_model.hpp"
#include "common/rng.hpp"
#include "wan/italy_japan.hpp"

namespace fdqos::clockx {
namespace {

// Build an exchange through a server whose clock is `offset` ahead, with
// the given one-way delays.
NtpExchange make_exchange(TimePoint t_send, Duration offset, Duration fwd,
                          Duration bwd,
                          Duration processing = Duration::millis(1)) {
  NtpExchange e;
  e.t1 = t_send;
  e.t2 = t_send + fwd + offset;
  e.t3 = e.t2 + processing;
  e.t4 = t_send + fwd + processing + bwd;
  return e;
}

TEST(NtpSampleTest, SymmetricDelaysGiveExactOffset) {
  const auto e = make_exchange(TimePoint::origin(), Duration::millis(30),
                               Duration::millis(100), Duration::millis(100));
  const NtpSample s = compute_ntp_sample(e);
  EXPECT_EQ(s.offset, Duration::millis(30));
  EXPECT_EQ(s.rtt, Duration::millis(200));
}

TEST(NtpSampleTest, AsymmetryBiasesOffsetByHalfTheDifference) {
  const auto e = make_exchange(TimePoint::origin(), Duration::zero(),
                               Duration::millis(120), Duration::millis(80));
  const NtpSample s = compute_ntp_sample(e);
  EXPECT_EQ(s.offset, Duration::millis(20));  // (120-80)/2
  EXPECT_EQ(s.rtt, Duration::millis(200));
}

TEST(NtpSampleTest, NegativeOffset) {
  const auto e = make_exchange(TimePoint::origin(), Duration::millis(-45),
                               Duration::millis(90), Duration::millis(90));
  EXPECT_EQ(compute_ntp_sample(e).offset, Duration::millis(-45));
}

TEST(NtpEstimatorTest, EmptyHasNoEstimate) {
  NtpEstimator est;
  EXPECT_FALSE(est.offset().has_value());
  EXPECT_FALSE(est.best_rtt().has_value());
}

TEST(NtpEstimatorTest, PicksMinimumRttSample) {
  NtpEstimator est(4);
  // Noisy sample: asymmetric, big rtt, wrong offset.
  est.add_exchange(make_exchange(TimePoint::origin(), Duration::millis(10),
                                 Duration::millis(300), Duration::millis(100)));
  // Clean sample: symmetric, small rtt, true offset.
  est.add_exchange(make_exchange(TimePoint::origin() + Duration::seconds(1),
                                 Duration::millis(10), Duration::millis(95),
                                 Duration::millis(95)));
  EXPECT_EQ(est.offset().value(), Duration::millis(10));
  EXPECT_EQ(est.best_rtt().value(), Duration::millis(190));
}

TEST(NtpEstimatorTest, WindowEvictsOldSamples) {
  NtpEstimator est(2);
  est.add_sample({Duration::millis(999), Duration::millis(1)});  // best rtt
  est.add_sample({Duration::millis(1), Duration::millis(50)});
  est.add_sample({Duration::millis(2), Duration::millis(60)});
  // The rtt=1 sample fell out of the window.
  EXPECT_EQ(est.sample_count(), 2u);
  EXPECT_EQ(est.offset().value(), Duration::millis(1));
}

TEST(NtpEstimatorTest, ResidualUnderWanDelaysIsSmall) {
  // End-to-end: exchanges over the Italy–Japan delay model, server clock
  // 37 ms ahead. The min-RTT filter must recover the offset well within the
  // delay jitter — the quantitative backing of the paper's NTP assumption.
  const Duration true_offset = Duration::millis(37);
  auto delay = wan::make_italy_japan_delay();
  Rng rng(9);
  NtpEstimator est(16);
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 64; ++i, t += Duration::seconds(16)) {
    const Duration fwd = delay->sample(rng, t);
    const Duration bwd = delay->sample(rng, t + fwd);
    est.add_exchange(make_exchange(t, true_offset, fwd, bwd));
  }
  const Duration err = est.offset().value() - true_offset;
  EXPECT_LT(err, Duration::millis(10));
  EXPECT_GT(err, Duration::millis(-10));
}

}  // namespace
}  // namespace fdqos::clockx
