// Identity contract of the Workload refactor (ISSUE 9): splitting
// QosExperiment into the run_workload() harness + QosWorkload must not
// change a single byte of the report. The matrix pins the refactored path
// against itself across seeds x sim engines x job counts (the fingerprint
// folds every rendered table, so equal fingerprints mean equal stdout),
// and pins the run_qos_experiment() facade against driving the workload
// object by hand through the registry.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "exp/qos_experiment.hpp"
#include "exp/qos_workload.hpp"
#include "exp/report.hpp"
#include "exp/workload.hpp"
#include "workload/leader_election.hpp"

namespace fdqos::exp {
namespace {

QosExperimentConfig small_config(std::uint64_t seed, SimEngine engine,
                                 std::size_t jobs) {
  QosExperimentConfig config;
  config.runs = 2;
  config.num_cycles = 500;
  config.seed = seed;
  config.sim_engine = engine;
  config.lps = 4;
  config.lp_jobs = 2;
  config.jobs = jobs;
  return config;
}

std::string fingerprint_for(const QosExperimentConfig& config) {
  const QosReport report = run_qos_experiment(config);
  return qos_report_fingerprint(report);
}

TEST(QosWorkloadIdentityTest, FingerprintMatrixAcrossSeedsEnginesJobs) {
  for (const std::uint64_t seed : {7ull, 11ull, 13ull}) {
    const std::string baseline =
        fingerprint_for(small_config(seed, SimEngine::kSeq, 1));
    ASSERT_FALSE(baseline.empty());
    for (const SimEngine engine : {SimEngine::kSeq, SimEngine::kLp}) {
      for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        if (engine == SimEngine::kSeq && jobs == 1) continue;
        EXPECT_EQ(baseline, fingerprint_for(small_config(seed, engine, jobs)))
            << "seed " << seed << " engine "
            << (engine == SimEngine::kLp ? "lp" : "seq") << " jobs " << jobs;
      }
    }
  }
}

TEST(QosWorkloadIdentityTest, ChaosScenarioMatrixAcrossEnginesJobs) {
  // The same identity under a faultx scenario: the chaos run path goes
  // through the identical workload, so scenario runs must hold the
  // jobs/engine byte-identity too (this is what keeps the chaos goldens
  // valid after the refactor).
  for (const std::uint64_t seed : {7ull, 13ull}) {
    QosExperimentConfig base = small_config(seed, SimEngine::kSeq, 1);
    base.chaos_scenario = "burst_loss";
    const std::string baseline = fingerprint_for(base);
    for (const SimEngine engine : {SimEngine::kSeq, SimEngine::kLp}) {
      for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        if (engine == SimEngine::kSeq && jobs == 1) continue;
        QosExperimentConfig config = small_config(seed, engine, jobs);
        config.chaos_scenario = "burst_loss";
        EXPECT_EQ(baseline, fingerprint_for(config))
            << "seed " << seed << " engine "
            << (engine == SimEngine::kLp ? "lp" : "seq") << " jobs " << jobs;
      }
    }
  }
}

TEST(QosWorkloadIdentityTest, FacadeHarnessAndRegistryAgree) {
  const QosExperimentConfig config = small_config(11, SimEngine::kSeq, 2);

  // The legacy facade (what `fdqos qos` calls).
  const std::string via_facade = qos_report_fingerprint(
      run_qos_experiment(config));

  // Driving the workload object directly through the harness.
  QosWorkload direct(config);
  run_workload(direct);
  EXPECT_EQ(via_facade, qos_report_fingerprint(direct.report()));

  // And through the name registry (what `fdqos workload --name qos` does).
  workload::register_builtin_workloads();
  std::unique_ptr<Workload> named = make_workload("qos", config);
  ASSERT_NE(named, nullptr);
  run_workload(*named);
  auto* as_qos = dynamic_cast<QosWorkload*>(named.get());
  ASSERT_NE(as_qos, nullptr);
  EXPECT_EQ(via_facade, qos_report_fingerprint(as_qos->report()));
}

TEST(QosWorkloadIdentityTest, RegistryListsBuiltinsAndRejectsUnknown) {
  workload::register_builtin_workloads();
  workload::register_builtin_workloads();  // idempotent
  const auto names = workload_names();
  ASSERT_EQ(names.size(), 2u);
  // Ordered registry: the listing never depends on registration order.
  EXPECT_EQ(names[0], "leader-election");
  EXPECT_EQ(names[1], "qos");
  EXPECT_EQ(make_workload("no_such_workload", QosExperimentConfig{}), nullptr);
}

TEST(QosWorkloadIdentityTest, SectionOrderIsFixed) {
  // Report sections are part of the determinism contract: same titles, in
  // the same order, at any job count.
  QosExperimentConfig config = small_config(7, SimEngine::kSeq, 1);
  config.chaos_scenario = "burst_loss";
  QosWorkload serial(config);
  run_workload(serial);
  config.jobs = 8;
  QosWorkload parallel(config);
  run_workload(parallel);
  const auto a = serial.report_sections();
  const auto b = parallel.report_sections();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 7u);  // chaos + 5 metric figures + totals
  EXPECT_EQ(a.front().title, "chaos");
  EXPECT_EQ(a.back().title, "totals");
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].title, b[i].title) << i;
    EXPECT_EQ(a[i].table.to_csv(), b[i].table.to_csv()) << a[i].title;
  }
}

}  // namespace
}  // namespace fdqos::exp
