// LeaderElectionWorkload contracts (ISSUE 9): the scores are a pure
// function of (seed, config) — identical across seeds x sim engines x job
// counts — and the structural invariants hold in both regimes the chaos
// harness distinguishes: nominal-no-crash (leaderless and failovers must
// be exactly zero) and crashing (every detected outage's leaderless time
// is bounded by the detector's pooled T_D sum).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "exp/qos_experiment.hpp"
#include "exp/workload.hpp"
#include "workload/leader_election.hpp"

namespace fdqos::workload {
namespace {

exp::QosExperimentConfig small_config(std::uint64_t seed,
                                      exp::SimEngine engine,
                                      std::size_t jobs) {
  exp::QosExperimentConfig config;
  config.runs = 2;
  config.num_cycles = 400;
  config.seed = seed;
  config.mttc = Duration::seconds(90);
  config.ttr = Duration::seconds(20);
  config.sim_engine = engine;
  config.lps = 4;
  config.lp_jobs = 2;
  config.jobs = jobs;
  return config;
}

LeaderReport run_leader(const exp::QosExperimentConfig& config) {
  LeaderElectionWorkload workload(config);
  exp::run_workload(workload);
  return workload.report();
}

TEST(LeaderElectionTest, FingerprintMatrixAcrossSeedsEnginesJobs) {
  for (const std::uint64_t seed : {7ull, 11ull, 13ull}) {
    const std::string baseline = leader_report_fingerprint(
        run_leader(small_config(seed, exp::SimEngine::kSeq, 1)));
    ASSERT_FALSE(baseline.empty());
    for (const exp::SimEngine engine :
         {exp::SimEngine::kSeq, exp::SimEngine::kLp}) {
      for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        if (engine == exp::SimEngine::kSeq && jobs == 1) continue;
        EXPECT_EQ(baseline, leader_report_fingerprint(
                                run_leader(small_config(seed, engine, jobs))))
            << "seed " << seed << " engine "
            << (engine == exp::SimEngine::kLp ? "lp" : "seq") << " jobs "
            << jobs;
      }
    }
  }
}

TEST(LeaderElectionTest, ChaosScenarioComposesAndStaysDeterministic) {
  // The workload inherits faultx scenarios from the embedded QosWorkload;
  // the determinism and invariant contracts must survive a hostile
  // network.
  exp::QosExperimentConfig config =
      small_config(7, exp::SimEngine::kSeq, 1);
  config.chaos_scenario = "burst_loss";
  const LeaderReport serial = run_leader(config);
  config.jobs = 8;
  config.sim_engine = exp::SimEngine::kLp;
  const LeaderReport parallel = run_leader(config);
  EXPECT_EQ(leader_report_fingerprint(serial),
            leader_report_fingerprint(parallel));
  EXPECT_TRUE(leader_invariant_violations(serial).empty());
}

TEST(LeaderElectionTest, CrashRegimeScoresAndInvariants) {
  const LeaderReport report =
      run_leader(small_config(7, exp::SimEngine::kSeq, 1));
  ASSERT_GT(report.qos.total_crashes, 0u);
  ASSERT_FALSE(report.lanes.empty());
  ASSERT_EQ(report.lanes.size(), report.qos.results.size());
  EXPECT_GT(report.downtime_ms, 0.0);
  EXPECT_GT(report.window_ms, report.downtime_ms);
  bool any_detected = false;
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const LeaderLaneScore& lane = report.lanes[i];
    EXPECT_EQ(lane.name, report.qos.results[i].name);
    // A crash makes every lane leaderless until its detector reacts.
    EXPECT_GT(lane.leaderless_ms, 0.0) << lane.name;
    EXPECT_LE(lane.leaderless_detected_ms, lane.leaderless_ms + 1e-9)
        << lane.name;
    // The workload's T_D bound, checked directly against the QoS report:
    // detected leaderless time never exceeds the pooled detection time.
    EXPECT_LE(lane.leaderless_detected_ms,
              report.qos.results[i].metrics.detection_time_ms.sum + 1e-6)
        << lane.name;
    any_detected = any_detected || lane.leaderless_detected_ms > 0.0;
  }
  EXPECT_TRUE(any_detected);
  EXPECT_TRUE(leader_invariant_violations(report).empty());
}

TEST(LeaderElectionTest, NoCrashNominalIsNeverLeaderless) {
  // With the crash process effectively disabled the preferred leader never
  // dies: any leaderless time or failover would be a scoring bug. Wrongful
  // failovers (wrong_leader_ms, flaps) may still occur — that is the
  // detector's accuracy cost, not a workload bug.
  exp::QosExperimentConfig config =
      small_config(3, exp::SimEngine::kSeq, 1);
  config.mttc = Duration::seconds(50000000);
  const LeaderReport report = run_leader(config);
  ASSERT_EQ(report.qos.total_crashes, 0u);
  EXPECT_EQ(report.downtime_ms, 0.0);
  for (const LeaderLaneScore& lane : report.lanes) {
    EXPECT_EQ(lane.leaderless_ms, 0.0) << lane.name;
    EXPECT_EQ(lane.leaderless_detected_ms, 0.0) << lane.name;
    EXPECT_EQ(lane.failovers, 0u) << lane.name;
  }
  EXPECT_TRUE(leader_invariant_violations(report).empty());
}

TEST(LeaderElectionTest, InvariantCheckerFlagsCorruptReports) {
  LeaderReport report = run_leader(small_config(7, exp::SimEngine::kSeq, 1));
  ASSERT_TRUE(leader_invariant_violations(report).empty());
  // Corrupt one lane past each bound and expect the matching verdicts.
  report.lanes[0].leaderless_ms = report.downtime_ms + 1000.0;
  report.lanes[1].wrong_leader_ms = -1.0;
  report.lanes[2].failovers = report.lanes[2].flaps + 1;
  const auto violations = leader_invariant_violations(report);
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_EQ(violations[0].invariant, "leaderless-bounded-by-downtime");
  EXPECT_EQ(violations[1].invariant, "wrong-leader-nonnegative");
  EXPECT_EQ(violations[2].invariant, "flap-failover-consistency");
}

TEST(LeaderElectionTest, RegistryFactoryBuildsTheWorkload) {
  register_builtin_workloads();
  const exp::QosExperimentConfig config =
      small_config(11, exp::SimEngine::kSeq, 2);
  std::unique_ptr<exp::Workload> named =
      exp::make_workload("leader-election", config);
  ASSERT_NE(named, nullptr);
  EXPECT_EQ(named->name(), "leader-election");
  exp::run_workload(*named);
  auto* leader = dynamic_cast<LeaderElectionWorkload*>(named.get());
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader_report_fingerprint(leader->report()),
            leader_report_fingerprint(
                run_leader(small_config(11, exp::SimEngine::kSeq, 1))));
  // The leader table leads the section list; the full detector-QoS report
  // follows in its fixed order.
  const auto sections = named->report_sections();
  ASSERT_GE(sections.size(), 7u);
  EXPECT_EQ(sections.front().title, "leader-election");
  EXPECT_EQ(sections.back().title, "totals");
}

TEST(LeaderElectionDeathTest, FleetModeIsRejected) {
  exp::QosExperimentConfig config = small_config(7, exp::SimEngine::kSeq, 1);
  config.endpoints = 4;
  config.fleet_shards = 2;
  LeaderElectionWorkload workload(config);
  EXPECT_DEATH(workload.prepare(), "fleet");
}

}  // namespace
}  // namespace fdqos::workload
