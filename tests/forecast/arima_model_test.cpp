#include "forecast/arima/arima_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fdqos::forecast {
namespace {

TEST(ArimaOrderTest, ToString) {
  EXPECT_EQ((ArimaOrder{2, 1, 1}.to_string()), "ARIMA(2,1,1)");
  EXPECT_EQ((ArimaOrder{0, 0, 0}.to_string()), "ARIMA(0,0,0)");
}

TEST(ArimaModelTest, ConstantModelForecastsIntercept) {
  ArimaCoefficients coeffs;
  coeffs.intercept = 5.0;
  ArimaModel model(ArimaOrder{0, 0, 0}, coeffs);
  model.observe(1.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 5.0);
  model.observe(100.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 5.0);
}

TEST(ArimaModelTest, Ar1ForecastRecursion) {
  // w_t = 0.5 w_{t-1} + a_t; forecast after seeing w_n is 0.5·w_n.
  ArimaCoefficients coeffs;
  coeffs.ar = {0.5};
  ArimaModel model(ArimaOrder{1, 0, 0}, coeffs);
  model.observe(8.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 4.0);
  model.observe(4.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 2.0);
}

TEST(ArimaModelTest, Ma1UsesResiduals) {
  // w_t = ma·a_{t-1} + a_t. Feed w_1 = 2: residual a_1 = 2 (first forecast
  // was 0). Forecast w_2 = 0.5·2 = 1. Feed w_2 = 1: residual 0 -> forecast 0.
  ArimaCoefficients coeffs;
  coeffs.ma = {0.5};
  ArimaModel model(ArimaOrder{0, 0, 1}, coeffs);
  model.observe(2.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 1.0);
  model.observe(1.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 0.0);
}

TEST(ArimaModelTest, RandomWalkModelIsLast) {
  // ARIMA(0,1,0) with zero intercept forecasts z_{t+1} = z_t.
  ArimaModel model(ArimaOrder{0, 1, 0}, ArimaCoefficients{});
  model.observe(10.0);
  model.observe(13.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 13.0);
  model.observe(7.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 7.0);
}

TEST(ArimaModelTest, DriftModelExtrapolatesTrend) {
  // ARIMA(0,1,0) with intercept c forecasts z_t + c.
  ArimaCoefficients coeffs;
  coeffs.intercept = 3.0;
  ArimaModel model(ArimaOrder{0, 1, 0}, coeffs);
  model.observe(10.0);
  model.observe(13.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 16.0);
}

TEST(ArimaModelTest, FallsBackToPersistenceBeforeDifferencable) {
  ArimaModel model(ArimaOrder{1, 1, 0}, ArimaCoefficients{{0.5}, {}, 0.0});
  EXPECT_DOUBLE_EQ(model.forecast(), 0.0);  // nothing seen
  model.observe(9.0);
  EXPECT_DOUBLE_EQ(model.forecast(), 9.0);  // cannot difference yet
}

TEST(ArimaModelTest, PrimeReplaysHistory) {
  ArimaCoefficients coeffs;
  coeffs.ar = {0.5};
  ArimaModel incremental(ArimaOrder{1, 1, 0}, coeffs);
  ArimaModel primed(ArimaOrder{1, 1, 0}, coeffs);
  const std::vector<double> history{4.0, 6.0, 5.0, 9.0, 11.0};
  for (double z : history) incremental.observe(z);
  primed.prime(history);
  EXPECT_DOUBLE_EQ(primed.forecast(), incremental.forecast());
  EXPECT_EQ(primed.observation_count(), incremental.observation_count());
}

TEST(ArimaModelTest, PrimeResetsPreviousState) {
  ArimaCoefficients coeffs;
  coeffs.ar = {0.9};
  ArimaModel model(ArimaOrder{1, 0, 0}, coeffs);
  model.observe(1000.0);
  model.prime(std::vector<double>{1.0, 2.0});
  ArimaModel fresh(ArimaOrder{1, 0, 0}, coeffs);
  fresh.observe(1.0);
  fresh.observe(2.0);
  EXPECT_DOUBLE_EQ(model.forecast(), fresh.forecast());
}

TEST(ArimaModelTest, Arima211ForecastIsAccurateOnItsOwnProcess) {
  // Simulate the regression-form ARIMA(2,1,1) process and check the model's
  // one-step msqerr approaches the innovation variance.
  const ArimaCoefficients truth{{0.4, 0.2}, {0.3}, 0.0};
  ArimaModel generator_state(ArimaOrder{2, 1, 1}, truth);
  Rng rng(20);
  std::vector<double> z;
  {
    // Generate with explicit recursion.
    std::vector<double> w;
    std::vector<double> a;
    double level = 500.0;
    for (int t = 0; t < 30000; ++t) {
      const double noise = rng.normal();
      double v = noise;
      for (std::size_t i = 0; i < 2 && i < w.size(); ++i) {
        v += truth.ar[i] * w[w.size() - 1 - i];
      }
      if (!a.empty()) v += truth.ma[0] * a.back();
      w.push_back(v);
      a.push_back(noise);
      level += v;
      z.push_back(level);
    }
  }
  ArimaModel model(ArimaOrder{2, 1, 1}, truth);
  double ss = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    if (i >= 10) {
      const double err = z[i] - model.forecast();
      ss += err * err;
      ++n;
    }
    model.observe(z[i]);
  }
  const double msq = ss / static_cast<double>(n);
  EXPECT_NEAR(msq, 1.0, 0.1);  // innovation variance
}

}  // namespace
}  // namespace fdqos::forecast
