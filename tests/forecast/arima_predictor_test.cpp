#include "forecast/arima/arima_predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "forecast/basic_predictors.hpp"
#include "forecast/msqerr.hpp"

namespace fdqos::forecast {
namespace {

ArimaPredictorConfig fast_config() {
  ArimaPredictorConfig config;
  config.refit_every = 200;
  config.min_fit = 64;
  config.max_history = 2048;
  return config;
}

TEST(ArimaPredictorTest, NameCarriesOrder) {
  ArimaPredictor p(ArimaOrder{2, 1, 1});
  EXPECT_EQ(p.name(), "ARIMA(2,1,1)");
}

TEST(ArimaPredictorTest, FallsBackToMeanBeforeFirstFit) {
  ArimaPredictor p(ArimaOrder{2, 1, 1}, fast_config());
  p.observe(10.0);
  p.observe(20.0);
  EXPECT_FALSE(p.has_model());
  EXPECT_DOUBLE_EQ(p.predict(), 15.0);
}

TEST(ArimaPredictorTest, FitsAfterMinObservations) {
  Rng rng(30);
  ArimaPredictor p(ArimaOrder{1, 0, 0}, fast_config());
  double x = 0.0;
  for (int i = 0; i < 100; ++i) {
    x = 0.7 * x + rng.normal();
    p.observe(x + 50.0);
  }
  EXPECT_TRUE(p.has_model());
  EXPECT_GE(p.refit_count(), 1u);
}

TEST(ArimaPredictorTest, TracksRegimeShiftViaRefit) {
  // Mean jumps mid-stream; after the next refit, predictions must follow.
  Rng rng(31);
  ArimaPredictor p(ArimaOrder{0, 1, 0}, fast_config());
  for (int i = 0; i < 500; ++i) p.observe(rng.normal(100.0, 1.0));
  for (int i = 0; i < 500; ++i) p.observe(rng.normal(200.0, 1.0));
  EXPECT_NEAR(p.predict(), 200.0, 10.0);
}

TEST(ArimaPredictorTest, BeatsMeanOnAutocorrelatedSeries) {
  Rng rng(32);
  std::vector<double> series;
  double x = 0.0;
  for (int i = 0; i < 8000; ++i) {
    x = 0.9 * x + rng.normal();
    series.push_back(x + 200.0);
  }
  ArimaPredictor arima(ArimaOrder{1, 0, 0}, fast_config());
  MeanPredictor mean;
  const double arima_err = evaluate_accuracy(arima, series).msqerr;
  MeanPredictor mean_fresh;
  const double mean_err = evaluate_accuracy(mean_fresh, series).msqerr;
  (void)mean;
  EXPECT_LT(arima_err, mean_err);
}

TEST(ArimaPredictorTest, RejectsDegenerateFitsAndKeepsWorking) {
  // A constant series gives a singular fit; the predictor must keep
  // predicting (mean fallback) and must not produce NaN.
  ArimaPredictor p(ArimaOrder{2, 1, 1}, fast_config());
  for (int i = 0; i < 1000; ++i) {
    p.observe(42.0);
    const double f = p.predict();
    EXPECT_TRUE(std::isfinite(f));
    EXPECT_NEAR(f, 42.0, 1.0);
  }
}

TEST(ArimaPredictorTest, MakeFreshProducesColdPredictor) {
  ArimaPredictor p(ArimaOrder{2, 1, 1}, fast_config());
  for (int i = 0; i < 300; ++i) p.observe(static_cast<double>(i % 7));
  auto fresh = p.make_fresh();
  EXPECT_EQ(fresh->observation_count(), 0u);
  EXPECT_EQ(fresh->name(), p.name());
  EXPECT_DOUBLE_EQ(fresh->predict(), 0.0);
}

TEST(ArimaPredictorTest, HistoryBoundDoesNotBreakPrediction) {
  ArimaPredictorConfig config = fast_config();
  config.max_history = 256;  // force several compactions
  ArimaPredictor p(ArimaOrder{1, 0, 0}, config);
  Rng rng(33);
  double x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    x = 0.5 * x + rng.normal();
    p.observe(x + 10.0);
    EXPECT_TRUE(std::isfinite(p.predict()));
  }
  EXPECT_EQ(p.observation_count(), 5000u);
}

TEST(ReplayMsqerrTest, ZeroOnSelfConsistentModel) {
  // An AR(1) model replayed over its own noiseless trajectory has zero
  // one-step error.
  ArimaCoefficients coeffs;
  coeffs.ar = {0.5};
  std::vector<double> series{16.0};
  for (int i = 0; i < 20; ++i) series.push_back(series.back() * 0.5);
  const double msq =
      replay_msqerr(ArimaModel(ArimaOrder{1, 0, 0}, coeffs), series, 1);
  EXPECT_NEAR(msq, 0.0, 1e-18);
}

TEST(ReplayMsqerrTest, InfiniteWhenNothingScored) {
  ArimaModel model(ArimaOrder{0, 0, 0}, ArimaCoefficients{});
  const double msq = replay_msqerr(model, std::vector<double>{1.0}, 5);
  EXPECT_TRUE(std::isinf(msq));
}

}  // namespace
}  // namespace fdqos::forecast
