#include "forecast/msqerr.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "forecast/basic_predictors.hpp"

namespace fdqos::forecast {
namespace {

TEST(MsqerrTest, PerfectPredictorOnConstantSeries) {
  const std::vector<double> series(100, 5.0);
  LastPredictor p;
  const AccuracyResult r = evaluate_accuracy(p, series);
  EXPECT_DOUBLE_EQ(r.msqerr, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_abs_err, 0.0);
  EXPECT_EQ(r.evaluated, 99u);
}

TEST(MsqerrTest, KnownErrorsOnAlternatingSeries) {
  // Series 0,2,0,2,...: LAST always errs by exactly 2 after warmup.
  std::vector<double> series;
  for (int i = 0; i < 10; ++i) series.push_back(i % 2 == 0 ? 0.0 : 2.0);
  LastPredictor p;
  const AccuracyResult r = evaluate_accuracy(p, series);
  EXPECT_DOUBLE_EQ(r.msqerr, 4.0);
  EXPECT_DOUBLE_EQ(r.mean_abs_err, 2.0);
}

TEST(MsqerrTest, WarmupSkipsScoring) {
  std::vector<double> series{100.0, 1.0, 1.0, 1.0};
  LastPredictor p1;
  const AccuracyResult with_warmup = evaluate_accuracy(p1, series, 2);
  // Scored pairs: predict before series[2] (=1, after seeing 100,1 -> LAST=1)
  // and before series[3].
  EXPECT_EQ(with_warmup.evaluated, 2u);
  EXPECT_DOUBLE_EQ(with_warmup.msqerr, 0.0);
}

TEST(MsqerrTest, EmptySeries) {
  LastPredictor p;
  const AccuracyResult r = evaluate_accuracy(p, std::vector<double>{});
  EXPECT_EQ(r.evaluated, 0u);
  EXPECT_DOUBLE_EQ(r.msqerr, 0.0);
}

TEST(MsqerrTest, LastBeatsMeanOnRandomWalk) {
  // On a random walk the most recent value is the optimal predictor; the
  // global mean is far worse. (The paper's Table 3 is exactly this kind of
  // ranking.)
  Rng rng(1);
  std::vector<double> series;
  double x = 100.0;
  for (int i = 0; i < 20000; ++i) {
    x += rng.normal(0.0, 1.0);
    series.push_back(x);
  }
  LastPredictor last;
  MeanPredictor mean;
  const double last_err = evaluate_accuracy(last, series).msqerr;
  const double mean_err = evaluate_accuracy(mean, series).msqerr;
  EXPECT_LT(last_err, mean_err);
}

TEST(MsqerrTest, MeanBeatsLastOnIidNoise) {
  // On iid noise around a constant, MEAN converges to the optimum while
  // LAST keeps the full noise variance (×2).
  Rng rng(2);
  std::vector<double> series;
  for (int i = 0; i < 20000; ++i) series.push_back(rng.normal(50.0, 3.0));
  LastPredictor last;
  MeanPredictor mean;
  const double last_err = evaluate_accuracy(last, series).msqerr;
  const double mean_err = evaluate_accuracy(mean, series).msqerr;
  EXPECT_LT(mean_err, last_err);
  EXPECT_NEAR(mean_err, 9.0, 0.5);
  EXPECT_NEAR(last_err, 18.0, 1.0);
}

}  // namespace
}  // namespace fdqos::forecast
