#include "forecast/basic_predictors.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace fdqos::forecast {
namespace {

TEST(LastPredictorTest, TracksLastObservation) {
  LastPredictor p;
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);  // cold start
  p.observe(10.0);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
  EXPECT_EQ(p.observation_count(), 2u);
  EXPECT_EQ(p.name(), "LAST");
}

TEST(MeanPredictorTest, RunningMean) {
  MeanPredictor p;
  p.observe(2.0);
  p.observe(4.0);
  p.observe(6.0);
  EXPECT_DOUBLE_EQ(p.predict(), 4.0);
  EXPECT_EQ(p.name(), "MEAN");
}

TEST(WinMeanPredictorTest, EqualsMeanBeforeWindowFills) {
  // Paper: if n < N, WINMEAN(N) = MEAN.
  WinMeanPredictor w(5);
  MeanPredictor m;
  for (double x : {1.0, 7.0, 4.0}) {
    w.observe(x);
    m.observe(x);
    EXPECT_DOUBLE_EQ(w.predict(), m.predict());
  }
}

TEST(WinMeanPredictorTest, SlidesOverWindow) {
  WinMeanPredictor w(3);
  for (double x : {1.0, 2.0, 3.0}) w.observe(x);
  EXPECT_DOUBLE_EQ(w.predict(), 2.0);
  w.observe(10.0);  // window now {2, 3, 10}
  EXPECT_DOUBLE_EQ(w.predict(), 5.0);
  w.observe(14.0);  // window now {3, 10, 14}
  EXPECT_DOUBLE_EQ(w.predict(), 9.0);
}

TEST(WinMeanPredictorTest, NameIncludesWindow) {
  WinMeanPredictor w(10);
  EXPECT_EQ(w.name(), "WINMEAN(10)");
  EXPECT_EQ(w.window(), 10u);
}

TEST(LpfPredictorTest, FirstObservationInitializes) {
  LpfPredictor p(0.125);
  p.observe(80.0);
  EXPECT_DOUBLE_EQ(p.predict(), 80.0);
}

TEST(LpfPredictorTest, ExponentialSmoothingRecursion) {
  // pred_{k+1} = (1-beta) pred_k + beta obs.
  LpfPredictor p(0.5);
  p.observe(10.0);
  p.observe(20.0);
  EXPECT_DOUBLE_EQ(p.predict(), 15.0);
  p.observe(5.0);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
}

TEST(LpfPredictorTest, ConvergesToConstantInput) {
  LpfPredictor p(0.125);
  for (int i = 0; i < 500; ++i) p.observe(42.0);
  EXPECT_NEAR(p.predict(), 42.0, 1e-9);
}

TEST(LpfPredictorTest, BetaOneIsLast) {
  LpfPredictor lpf(1.0);
  LastPredictor last;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    lpf.observe(x);
    last.observe(x);
    EXPECT_DOUBLE_EQ(lpf.predict(), last.predict());
  }
}

TEST(BasicPredictorsTest, MakeFreshResetsState) {
  WinMeanPredictor w(4);
  w.observe(100.0);
  auto fresh = w.make_fresh();
  EXPECT_EQ(fresh->observation_count(), 0u);
  EXPECT_DOUBLE_EQ(fresh->predict(), 0.0);
  EXPECT_EQ(fresh->name(), w.name());
}

// Parameterized property: every basic predictor's forecast lies within the
// range of observations seen so far (they are all averages/selections).
class RangePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RangePropertyTest, PredictionWithinObservedRange) {
  std::unique_ptr<Predictor> p;
  switch (GetParam()) {
    case 0: p = std::make_unique<LastPredictor>(); break;
    case 1: p = std::make_unique<MeanPredictor>(); break;
    case 2: p = std::make_unique<WinMeanPredictor>(7); break;
    default: p = std::make_unique<LpfPredictor>(0.3); break;
  }
  Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
  double lo = 1e300;
  double hi = -1e300;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.lognormal(2.0, 0.7);
    p->observe(x);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    EXPECT_GE(p->predict(), lo - 1e-9);
    EXPECT_LE(p->predict(), hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBasicPredictors, RangePropertyTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace fdqos::forecast
