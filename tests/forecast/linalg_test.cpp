#include "forecast/arima/linalg.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace fdqos::forecast {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(MatrixTest, IdentityAndMultiply) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const Matrix i = Matrix::identity(2);
  const Matrix ai = a * i;
  EXPECT_DOUBLE_EQ(ai.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(ai.at(1, 0), 3.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 1);
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a.at(r, c) = v++;
  b.at(0, 0) = 1.0;
  b.at(1, 0) = 0.0;
  b.at(2, 0) = -1.0;
  const Matrix ab = a * b;
  EXPECT_DOUBLE_EQ(ab.at(0, 0), 1.0 - 3.0);
  EXPECT_DOUBLE_EQ(ab.at(1, 0), 4.0 - 6.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 3);
  a.at(0, 2) = 9.0;
  a.at(1, 0) = -4.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 9.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), -4.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 0.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const std::vector<double> x{1.0, 2.0};
  const auto y = a * std::span<const double>(x);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(CholeskySolveTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  Matrix a(2, 2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 3.0;
  std::vector<double> x;
  ASSERT_TRUE(cholesky_solve(a, std::vector<double>{6.0, 5.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(CholeskySolveTest, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;  // eigenvalues 3 and -1
  std::vector<double> x;
  EXPECT_FALSE(cholesky_solve(a, std::vector<double>{1.0, 1.0}, x));
}

TEST(CholeskySolveTest, RandomSpdRoundTrip) {
  Rng rng(3);
  const std::size_t n = 6;
  // A = B·Bᵀ + I is SPD.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b.at(r, c) = rng.normal();
  Matrix a = b * b.transposed();
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) += 1.0;
  std::vector<double> truth(n);
  for (auto& v : truth) v = rng.uniform(-2.0, 2.0);
  const auto rhs = a * std::span<const double>(truth);
  std::vector<double> x;
  ASSERT_TRUE(cholesky_solve(a, rhs, x));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-9);
}

TEST(LeastSquaresTest, ExactFitWhenConsistent) {
  // y = 2 + 3x fit from noiseless data.
  const int n = 20;
  Matrix design(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    design.at(i, 0) = 1.0;
    design.at(i, 1) = i;
    y[static_cast<std::size_t>(i)] = 2.0 + 3.0 * i;
  }
  std::vector<double> beta;
  ASSERT_TRUE(least_squares(design, y, beta));
  EXPECT_NEAR(beta[0], 2.0, 1e-6);
  EXPECT_NEAR(beta[1], 3.0, 1e-6);
}

TEST(LeastSquaresTest, RecoversCoefficientsUnderNoise) {
  Rng rng(4);
  const int n = 5000;
  Matrix design(n, 3);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    const double x1 = rng.normal();
    const double x2 = rng.normal();
    design.at(i, 0) = 1.0;
    design.at(i, 1) = x1;
    design.at(i, 2) = x2;
    y[static_cast<std::size_t>(i)] =
        1.0 - 2.0 * x1 + 0.5 * x2 + rng.normal(0.0, 0.1);
  }
  std::vector<double> beta;
  ASSERT_TRUE(least_squares(design, y, beta));
  EXPECT_NEAR(beta[0], 1.0, 0.02);
  EXPECT_NEAR(beta[1], -2.0, 0.02);
  EXPECT_NEAR(beta[2], 0.5, 0.02);
}

TEST(LeastSquaresTest, UnderdeterminedFails) {
  Matrix design(1, 2, 1.0);
  std::vector<double> beta;
  EXPECT_FALSE(least_squares(design, std::vector<double>{1.0}, beta));
}

TEST(LeastSquaresTest, SurvivesCollinearRegressors) {
  // Two identical columns: the ridge keeps the normal equations solvable.
  const int n = 50;
  Matrix design(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    design.at(i, 0) = i;
    design.at(i, 1) = i;
    y[static_cast<std::size_t>(i)] = 2.0 * i;
  }
  std::vector<double> beta;
  ASSERT_TRUE(least_squares(design, y, beta));
  EXPECT_NEAR(beta[0] + beta[1], 2.0, 1e-3);
}

}  // namespace
}  // namespace fdqos::forecast
