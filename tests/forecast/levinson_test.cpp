#include "forecast/arima/levinson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "forecast/arima/acf.hpp"

namespace fdqos::forecast {
namespace {

std::vector<double> simulate_ar(std::span<const double> phi, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    double v = rng.normal();
    for (std::size_t i = 0; i < phi.size() && i < t; ++i) {
      v += phi[i] * xs[t - 1 - i];
    }
    xs[t] = v;
  }
  return xs;
}

TEST(LevinsonTest, OrderZero) {
  const std::vector<double> rho{1.0};
  const ArFit fit = levinson_durbin(rho, 0);
  EXPECT_TRUE(fit.phi.empty());
  EXPECT_DOUBLE_EQ(fit.noise_variance, 1.0);
}

TEST(LevinsonTest, Ar1ClosedForm) {
  // For AR(1): phi_1 = rho_1, noise variance = 1 - rho_1².
  const std::vector<double> rho{1.0, 0.6};
  const ArFit fit = levinson_durbin(rho, 1);
  ASSERT_EQ(fit.phi.size(), 1u);
  EXPECT_NEAR(fit.phi[0], 0.6, 1e-12);
  EXPECT_NEAR(fit.noise_variance, 1.0 - 0.36, 1e-12);
}

TEST(LevinsonTest, Ar2ClosedForm) {
  // Yule–Walker for AR(2) has the closed form
  //   phi1 = rho1(1-rho2)/(1-rho1²), phi2 = (rho2-rho1²)/(1-rho1²).
  const double rho1 = 0.5;
  const double rho2 = 0.4;
  const std::vector<double> rho{1.0, rho1, rho2};
  const ArFit fit = levinson_durbin(rho, 2);
  const double denom = 1.0 - rho1 * rho1;
  EXPECT_NEAR(fit.phi[0], rho1 * (1.0 - rho2) / denom, 1e-12);
  EXPECT_NEAR(fit.phi[1], (rho2 - rho1 * rho1) / denom, 1e-12);
}

TEST(LevinsonTest, ReflectionCoefficientsArePacf) {
  // For an AR(1) process the PACF cuts off after lag 1.
  const auto xs = simulate_ar(std::vector<double>{0.7}, 40000, 7);
  const auto pacf = sample_pacf(xs, 5);
  EXPECT_NEAR(pacf[0], 0.7, 0.03);
  for (std::size_t k = 1; k < 5; ++k) {
    EXPECT_NEAR(pacf[k], 0.0, 0.03) << "lag " << k + 1;
  }
}

TEST(LevinsonTest, RecoversAr2FromSimulation) {
  const std::vector<double> truth{0.5, 0.3};
  const auto xs = simulate_ar(truth, 60000, 8);
  const ArFit fit = fit_ar_yule_walker(xs, 2);
  EXPECT_NEAR(fit.phi[0], truth[0], 0.03);
  EXPECT_NEAR(fit.phi[1], truth[1], 0.03);
}

TEST(LevinsonTest, NoiseVarianceDecreasesWithOrderOnArProcess) {
  const auto xs = simulate_ar(std::vector<double>{0.6, 0.2}, 30000, 9);
  const ArFit fit1 = fit_ar_yule_walker(xs, 1);
  const ArFit fit2 = fit_ar_yule_walker(xs, 2);
  EXPECT_LE(fit2.noise_variance, fit1.noise_variance + 1e-9);
}

TEST(LevinsonTest, ConstantSeriesDegeneratesGracefully) {
  const std::vector<double> xs(100, 3.0);
  const ArFit fit = fit_ar_yule_walker(xs, 3);
  ASSERT_EQ(fit.phi.size(), 3u);
  for (double p : fit.phi) EXPECT_TRUE(std::isfinite(p));
}

TEST(LevinsonTest, WhiteNoiseGivesNearZeroCoefficients) {
  Rng rng(10);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal());
  const ArFit fit = fit_ar_yule_walker(xs, 4);
  for (double p : fit.phi) EXPECT_NEAR(p, 0.0, 0.03);
  EXPECT_NEAR(fit.noise_variance, 1.0, 0.05);
}

}  // namespace
}  // namespace fdqos::forecast
