#include "forecast/arima/order_selection.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace fdqos::forecast {
namespace {

TEST(OrderSelectionTest, GridIsFullyEnumerated) {
  Rng rng(40);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal());
  OrderSelectionConfig config;
  config.max_order = ArimaOrder{2, 1, 2};
  const auto result = select_arima_order(xs, config);
  EXPECT_EQ(result.candidates.size(), 3u * 2u * 3u);
}

TEST(OrderSelectionTest, RandomWalkWinnerTracksTheWalk) {
  // On a random walk, the winner must achieve close-to-innovation-variance
  // holdout error (ARIMA(0,1,0) and AR(1) with phi ≈ 1 both qualify), and
  // must crush the trivial constant model.
  Rng rng(41);
  std::vector<double> xs;
  double level = 0.0;
  for (int i = 0; i < 4000; ++i) {
    level += rng.normal();
    xs.push_back(level);
  }
  OrderSelectionConfig config;
  config.max_order = ArimaOrder{1, 1, 1};
  const auto result = select_arima_order(xs, config);
  EXPECT_LT(result.best_msqerr, 1.5);  // innovation variance is 1
  double trivial = 0.0;
  for (const auto& cand : result.candidates) {
    if (cand.order == ArimaOrder{0, 0, 0}) trivial = cand.holdout_msqerr;
  }
  EXPECT_LT(result.best_msqerr, trivial / 10.0);
}

TEST(OrderSelectionTest, WhiteNoisePrefersNoDifferencing) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.normal(100.0, 1.0));
  OrderSelectionConfig config;
  config.max_order = ArimaOrder{1, 1, 1};
  const auto result = select_arima_order(xs, config);
  EXPECT_EQ(result.best.d, 0u);
}

TEST(OrderSelectionTest, BestMsqerrIsMinimumOverCandidates) {
  Rng rng(43);
  std::vector<double> xs;
  double x = 0.0;
  for (int i = 0; i < 2000; ++i) {
    x = 0.6 * x + rng.normal();
    xs.push_back(x);
  }
  const auto result = select_arima_order(xs, {});
  for (const auto& cand : result.candidates) {
    if (cand.fitted) {
      EXPECT_GE(cand.holdout_msqerr, result.best_msqerr - 1e-12);
    }
  }
}

TEST(OrderSelectionTest, Ar2ProcessSelectsHelpfulOrder) {
  // The winner must beat the trivial ARIMA(0,0,0) on an AR(2) process.
  Rng rng(44);
  std::vector<double> xs;
  double x1 = 0.0;
  double x2 = 0.0;
  for (int i = 0; i < 6000; ++i) {
    const double v = 0.5 * x1 + 0.3 * x2 + rng.normal();
    x2 = x1;
    x1 = v;
    xs.push_back(v);
  }
  OrderSelectionConfig config;
  config.max_order = ArimaOrder{3, 1, 2};
  const auto result = select_arima_order(xs, config);
  double trivial = 0.0;
  for (const auto& cand : result.candidates) {
    if (cand.order == ArimaOrder{0, 0, 0}) trivial = cand.holdout_msqerr;
  }
  EXPECT_LT(result.best_msqerr, trivial * 0.75);
  EXPECT_GE(result.best.p + result.best.q + result.best.d, 1u);
}

}  // namespace
}  // namespace fdqos::forecast
