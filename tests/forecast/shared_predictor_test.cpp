#include "forecast/shared_predictor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "forecast/basic_predictors.hpp"

namespace fdqos::forecast {
namespace {

TEST(SharedPredictorTest, ForwardsObservationsAndForecasts) {
  SharedPredictor shared(std::make_unique<LastPredictor>());
  LastPredictor reference;
  for (double obs : {12.0, 7.5, 30.0, 18.25}) {
    shared.observe(obs);
    reference.observe(obs);
    EXPECT_DOUBLE_EQ(shared.predict(), reference.predict());
  }
  EXPECT_EQ(shared.observation_count(), reference.observation_count());
  EXPECT_EQ(shared.name(), reference.name());
}

TEST(SharedPredictorTest, MemoizesPredictUntilNextObservation) {
  SharedPredictor shared(std::make_unique<MeanPredictor>());
  shared.observe(10.0);
  EXPECT_EQ(shared.predict_evals(), 0u);
  const double first = shared.predict();
  EXPECT_EQ(shared.predict_evals(), 1u);
  // N lanes calling predict() between heartbeats pay one real evaluation.
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(shared.predict(), first);
  EXPECT_EQ(shared.predict_evals(), 1u);

  shared.observe(20.0);
  EXPECT_DOUBLE_EQ(shared.predict(), 15.0);
  EXPECT_EQ(shared.predict_evals(), 2u);
  EXPECT_EQ(shared.observe_calls(), 2u);
}

TEST(SharedPredictorTest, MatchesPrivateCopiesAcrossAWholeSeries) {
  // The bank's equivalence guarantee in miniature: one shared instance
  // queried 6 times per observation must produce exactly the forecasts 6
  // private copies would.
  SharedPredictor shared(std::make_unique<LpfPredictor>(0.125));
  std::vector<std::unique_ptr<Predictor>> lanes;
  for (int i = 0; i < 6; ++i) {
    lanes.push_back(std::make_unique<LpfPredictor>(0.125));
  }
  double obs = 3.0;
  for (int step = 0; step < 50; ++step, obs = obs * 1.1 + 1.0) {
    for (auto& lane : lanes) {
      EXPECT_DOUBLE_EQ(shared.predict(), lane->predict());
    }
    shared.observe(obs);
    for (auto& lane : lanes) lane->observe(obs);
  }
  EXPECT_EQ(shared.predict_evals(), 50u);  // not 300
}

TEST(SharedPredictorTest, MakeFreshYieldsIndependentSharedInstance) {
  SharedPredictor shared(std::make_unique<LastPredictor>());
  shared.observe(42.0);
  auto fresh = shared.make_fresh();
  ASSERT_NE(dynamic_cast<SharedPredictor*>(fresh.get()), nullptr);
  EXPECT_EQ(fresh->observation_count(), 0u);
  fresh->observe(1.0);
  EXPECT_DOUBLE_EQ(shared.predict(), 42.0);
  EXPECT_DOUBLE_EQ(fresh->predict(), 1.0);
}

TEST(SharedPredictorDeathTest, NullUnderlyingPredictorAborts) {
  EXPECT_DEATH(SharedPredictor{nullptr}, "precondition");
}

}  // namespace
}  // namespace fdqos::forecast
