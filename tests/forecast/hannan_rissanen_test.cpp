#include "forecast/arima/hannan_rissanen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fdqos::forecast {
namespace {

// Simulate ARMA in regression form: w_t = c + Σ ar·w_lag + Σ ma·a_lag + a_t.
std::vector<double> simulate_arma(double c, std::span<const double> ar,
                                  std::span<const double> ma, std::size_t n,
                                  std::uint64_t seed, double noise_sd = 1.0) {
  Rng rng(seed);
  std::vector<double> w(n, 0.0);
  std::vector<double> a(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    a[t] = rng.normal(0.0, noise_sd);
    double v = c + a[t];
    for (std::size_t i = 0; i < ar.size() && i < t; ++i) {
      v += ar[i] * w[t - 1 - i];
    }
    for (std::size_t j = 0; j < ma.size() && j < t; ++j) {
      v += ma[j] * a[t - 1 - j];
    }
    w[t] = v;
  }
  return w;
}

TEST(HannanRissanenTest, PureMeanModel) {
  Rng rng(11);
  std::vector<double> w;
  for (int i = 0; i < 1000; ++i) w.push_back(rng.normal(7.0, 0.5));
  const ArmaFitResult fit = fit_arma_hannan_rissanen(w, 0, 0);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coeffs.intercept, 7.0, 0.1);
  EXPECT_TRUE(fit.coeffs.ar.empty());
  EXPECT_TRUE(fit.coeffs.ma.empty());
  EXPECT_NEAR(fit.residual_variance, 0.25, 0.05);
}

TEST(HannanRissanenTest, RecoversAr1) {
  const auto w = simulate_arma(0.0, std::vector<double>{0.7}, {}, 40000, 12);
  const ArmaFitResult fit = fit_arma_hannan_rissanen(w, 1, 0);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coeffs.ar[0], 0.7, 0.03);
  EXPECT_NEAR(fit.residual_variance, 1.0, 0.05);
}

TEST(HannanRissanenTest, RecoversMa1) {
  const auto w = simulate_arma(0.0, {}, std::vector<double>{0.5}, 60000, 13);
  const ArmaFitResult fit = fit_arma_hannan_rissanen(w, 0, 1);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coeffs.ma[0], 0.5, 0.05);
}

TEST(HannanRissanenTest, RecoversArma11) {
  const auto w = simulate_arma(0.5, std::vector<double>{0.6},
                               std::vector<double>{0.3}, 80000, 14);
  const ArmaFitResult fit = fit_arma_hannan_rissanen(w, 1, 1);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coeffs.ar[0], 0.6, 0.05);
  EXPECT_NEAR(fit.coeffs.ma[0], 0.3, 0.07);
  // Implied process mean: c/(1-ar) = 0.5/0.4 = 1.25.
  EXPECT_NEAR(fit.coeffs.intercept / (1.0 - fit.coeffs.ar[0]), 1.25, 0.1);
}

TEST(HannanRissanenTest, RecoversAr2) {
  const auto w =
      simulate_arma(0.0, std::vector<double>{0.5, 0.25}, {}, 80000, 15);
  const ArmaFitResult fit = fit_arma_hannan_rissanen(w, 2, 0);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coeffs.ar[0], 0.5, 0.04);
  EXPECT_NEAR(fit.coeffs.ar[1], 0.25, 0.04);
}

TEST(HannanRissanenTest, TooShortSeriesFails) {
  const std::vector<double> w(10, 1.0);
  const ArmaFitResult fit = fit_arma_hannan_rissanen(w, 2, 1);
  EXPECT_FALSE(fit.ok);
}

TEST(HannanRissanenTest, ReportsRegressionRows) {
  const auto w = simulate_arma(0.0, std::vector<double>{0.4}, {}, 2000, 16);
  const ArmaFitResult fit = fit_arma_hannan_rissanen(w, 1, 1);
  ASSERT_TRUE(fit.ok);
  EXPECT_GT(fit.rows, 1500u);
  EXPECT_LT(fit.rows, 2000u);
}

TEST(FitArimaTest, DifferencesBeforeFitting) {
  // Random walk with AR(1) increments: ARIMA(1,1,0).
  Rng rng(17);
  std::vector<double> z;
  double level = 100.0;
  double w = 0.0;
  for (int i = 0; i < 60000; ++i) {
    w = 0.6 * w + rng.normal();
    level += w;
    z.push_back(level);
  }
  const ArmaFitResult fit = fit_arima(z, ArimaOrder{1, 1, 0});
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coeffs.ar[0], 0.6, 0.04);
}

TEST(FitArimaTest, FailsWhenSeriesShorterThanD) {
  const std::vector<double> z{1.0, 2.0};
  EXPECT_FALSE(fit_arima(z, ArimaOrder{0, 3, 0}).ok);
}

TEST(HannanRissanenTest, CoefficientsAreFinite) {
  // Adversarial input: long stretches of identical values plus jumps.
  std::vector<double> w;
  for (int i = 0; i < 3000; ++i) {
    w.push_back(i % 500 == 0 ? 100.0 : 1.0);
  }
  const ArmaFitResult fit = fit_arma_hannan_rissanen(w, 2, 1);
  if (fit.ok) {
    for (double v : fit.coeffs.ar) EXPECT_TRUE(std::isfinite(v));
    for (double v : fit.coeffs.ma) EXPECT_TRUE(std::isfinite(v));
    EXPECT_TRUE(std::isfinite(fit.coeffs.intercept));
  }
}

}  // namespace
}  // namespace fdqos::forecast
