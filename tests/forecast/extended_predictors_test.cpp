#include "forecast/extended_predictors.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "forecast/basic_predictors.hpp"
#include "forecast/msqerr.hpp"

namespace fdqos::forecast {
namespace {

TEST(HoltPredictorTest, ColdStartBehaviour) {
  HoltPredictor p(0.5, 0.3);
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
  p.observe(10.0);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);  // level = obs, no trend yet
}

TEST(HoltPredictorTest, LearnsLinearTrendExactly) {
  // On a noiseless ramp, Holt converges to zero one-step error.
  HoltPredictor p(0.5, 0.5);
  double err = 1e9;
  for (int i = 0; i < 200; ++i) {
    const double obs = 100.0 + 3.0 * i;
    if (i > 150) err = obs - p.predict();
    p.observe(obs);
  }
  EXPECT_NEAR(err, 0.0, 1e-6);
  EXPECT_NEAR(p.trend(), 3.0, 1e-6);
}

TEST(HoltPredictorTest, BeatsLpfOnRamp) {
  // LPF lags a ramp by roughly slope/beta; Holt tracks it.
  std::vector<double> ramp;
  for (int i = 0; i < 2000; ++i) ramp.push_back(50.0 + 0.5 * i);
  HoltPredictor holt(0.125, 0.125);
  LpfPredictor lpf(0.125);
  const double holt_err = evaluate_accuracy(holt, ramp).msqerr;
  LpfPredictor lpf_fresh(0.125);
  const double lpf_err = evaluate_accuracy(lpf_fresh, ramp).msqerr;
  (void)lpf;
  EXPECT_LT(holt_err, lpf_err / 4.0);
}

TEST(HoltPredictorTest, StableOnStationaryNoise) {
  HoltPredictor p(0.125, 0.05);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) p.observe(rng.normal(200.0, 3.0));
  EXPECT_NEAR(p.predict(), 200.0, 3.0);
  EXPECT_NEAR(p.trend(), 0.0, 0.5);
}

TEST(WinMedianPredictorTest, MedianOfPartialWindow) {
  WinMedianPredictor p(5);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
  p.observe(9.0);
  EXPECT_DOUBLE_EQ(p.predict(), 6.0);  // even count: midpoint
  p.observe(1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
}

TEST(WinMedianPredictorTest, SlidingEviction) {
  WinMedianPredictor p(3);
  for (double x : {1.0, 2.0, 3.0}) p.observe(x);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
  p.observe(100.0);  // window {2, 3, 100}
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
  p.observe(101.0);  // window {3, 100, 101}
  EXPECT_DOUBLE_EQ(p.predict(), 100.0);
}

TEST(WinMedianPredictorTest, DuplicateValuesEvictCorrectly) {
  WinMedianPredictor p(3);
  for (double x : {5.0, 5.0, 5.0, 7.0, 7.0, 7.0}) p.observe(x);
  EXPECT_DOUBLE_EQ(p.predict(), 7.0);
  EXPECT_EQ(p.observation_count(), 6u);
}

TEST(WinMedianPredictorTest, RobustToSpikesWhereMeanIsNot) {
  // 10% huge spikes: the window median ignores them, the window mean moves.
  Rng rng(2);
  WinMedianPredictor median(11);
  WinMeanPredictor mean(11);
  std::vector<double> series;
  for (int i = 0; i < 5000; ++i) {
    series.push_back(rng.bernoulli(0.1) ? 1000.0 : rng.normal(200.0, 2.0));
  }
  const double median_err = evaluate_accuracy(median, series).mean_abs_err;
  WinMeanPredictor mean_fresh(11);
  const double mean_err = evaluate_accuracy(mean_fresh, series).mean_abs_err;
  (void)mean;
  EXPECT_LT(median_err, mean_err);
}

TEST(WinMedianPredictorTest, AgreesWithBruteForceMedian) {
  Rng rng(3);
  WinMedianPredictor p(7);
  std::vector<double> history;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    p.observe(x);
    history.push_back(x);
    std::vector<double> window(
        history.end() - std::min<std::size_t>(history.size(), 7),
        history.end());
    std::sort(window.begin(), window.end());
    const std::size_t m = window.size();
    const double expected = m % 2 == 1
                                ? window[m / 2]
                                : 0.5 * (window[m / 2 - 1] + window[m / 2]);
    ASSERT_DOUBLE_EQ(p.predict(), expected) << "step " << i;
  }
}

TEST(ExtendedPredictorsTest, NamesAndFreshCopies) {
  HoltPredictor holt(0.25, 0.125);
  EXPECT_EQ(holt.name(), "HOLT(0.25,0.125)");
  WinMedianPredictor median(9);
  EXPECT_EQ(median.name(), "WINMEDIAN(9)");
  holt.observe(5.0);
  auto fresh = holt.make_fresh();
  EXPECT_EQ(fresh->observation_count(), 0u);
  EXPECT_EQ(fresh->name(), holt.name());
}

}  // namespace
}  // namespace fdqos::forecast
