#include "forecast/arima/difference.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace fdqos::forecast {
namespace {

TEST(DifferenceTest, OrderZeroIsIdentity) {
  const std::vector<double> xs{1.0, 4.0, 9.0};
  EXPECT_EQ(difference(xs, 0), xs);
}

TEST(DifferenceTest, FirstDifference) {
  const std::vector<double> xs{1.0, 4.0, 9.0, 16.0};
  const auto d = difference(xs, 1);
  EXPECT_EQ(d, (std::vector<double>{3.0, 5.0, 7.0}));
}

TEST(DifferenceTest, SecondDifferenceOfQuadraticIsConstant) {
  std::vector<double> xs;
  for (int t = 0; t < 10; ++t) xs.push_back(static_cast<double>(t * t));
  const auto d2 = difference(xs, 2);
  ASSERT_EQ(d2.size(), 8u);
  for (double v : d2) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(DifferenceTest, LinearTrendVanishesUnderFirstDifference) {
  std::vector<double> xs;
  for (int t = 0; t < 20; ++t) xs.push_back(5.0 + 3.0 * t);
  for (double v : difference(xs, 1)) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(DifferenceStateTest, OrderZeroPassThrough) {
  DifferenceState s(0);
  EXPECT_DOUBLE_EQ(s.push(7.0), 7.0);
  EXPECT_TRUE(s.ready());
  EXPECT_DOUBLE_EQ(s.integrate_forecast(3.0), 3.0);
}

TEST(DifferenceStateTest, FirstOrderIncrementalMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  const auto batch = difference(xs, 1);

  DifferenceState s(1);
  std::vector<double> incremental;
  for (double x : xs) {
    const double w = s.push(x);
    if (s.ready()) incremental.push_back(w);
  }
  ASSERT_EQ(incremental.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(incremental[i], batch[i]) << i;
  }
}

TEST(DifferenceStateTest, SecondOrderIncrementalMatchesBatch) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(rng.normal(0.0, 2.0));
  const auto batch = difference(xs, 2);

  DifferenceState s(2);
  std::vector<double> incremental;
  for (double x : xs) {
    const double w = s.push(x);
    if (s.ready()) incremental.push_back(w);
  }
  ASSERT_EQ(incremental.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(incremental[i], batch[i], 1e-12) << i;
  }
}

TEST(DifferenceStateTest, ReadyOnlyAfterDPlusOnePushes) {
  DifferenceState s(2);
  s.push(1.0);
  EXPECT_FALSE(s.ready());
  s.push(2.0);
  EXPECT_FALSE(s.ready());
  s.push(3.0);
  EXPECT_TRUE(s.ready());
  EXPECT_EQ(s.count(), 3u);
}

TEST(DifferenceStateTest, IntegrateForecastInvertsDifferencing) {
  // For d = 1: forecasting w_hat for the next step must give z_hat = z_n +
  // w_hat. Verify by actually pushing that z and comparing the realized w.
  DifferenceState s(1);
  s.push(10.0);
  s.push(12.0);  // w = 2
  const double z_hat = s.integrate_forecast(5.0);
  EXPECT_DOUBLE_EQ(z_hat, 17.0);
  const double realized_w = s.push(17.0);
  EXPECT_DOUBLE_EQ(realized_w, 5.0);
}

TEST(DifferenceStateTest, IntegrateSecondOrder) {
  DifferenceState s(2);
  s.push(1.0);
  s.push(3.0);
  s.push(7.0);  // levels: z=7, dz=4, d2z=2
  // Forecast d²z = 2 -> dz = 6 -> z = 13.
  EXPECT_DOUBLE_EQ(s.integrate_forecast(2.0), 13.0);
}

TEST(DifferenceStateTest, ResetRestoresColdState) {
  DifferenceState s(1);
  s.push(1.0);
  s.push(2.0);
  s.reset();
  EXPECT_FALSE(s.ready());
  EXPECT_EQ(s.count(), 0u);
}

}  // namespace
}  // namespace fdqos::forecast
