#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/trace.hpp"

namespace fdqos::obs {
namespace {

std::uint64_t g_fake_now_ns = 0;
std::uint64_t fake_clock() { return g_fake_now_ns; }

class FakeClockScope {
 public:
  FakeClockScope() {
    g_fake_now_ns = 0;
    set_clock(&fake_clock);
  }
  ~FakeClockScope() { set_clock(nullptr); }
};

std::string read_all(std::FILE* f) {
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return out;
}

TEST(ProgressEmitterTest, FirstCallIsAlwaysDue) {
  FakeClockScope clock;
  ProgressEmitter emitter;
  EXPECT_TRUE(emitter.due());
}

TEST(ProgressEmitterTest, RateLimitsOnWallClock) {
  FakeClockScope clock;
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  ProgressEmitter::Options opts;
  opts.interval_s = 5.0;
  opts.out = out;
  opts.prefix = "[test]";
  ProgressEmitter emitter(std::move(opts));

  ASSERT_TRUE(emitter.due());
  emitter.emit("line %d", 1);
  EXPECT_FALSE(emitter.due());  // just emitted

  g_fake_now_ns += 4'999'000'000;  // 4.999 s: still below the interval
  EXPECT_FALSE(emitter.due());
  g_fake_now_ns += 2'000'000;  // cross 5 s
  EXPECT_TRUE(emitter.due());
  emitter.emit("line %d", 2);
  EXPECT_FALSE(emitter.due());
  EXPECT_EQ(emitter.lines_emitted(), 2u);

  const std::string text = read_all(out);
  EXPECT_NE(text.find("[test] line 1\n"), std::string::npos);
  EXPECT_NE(text.find("[test] line 2\n"), std::string::npos);
  std::fclose(out);
}

TEST(ProgressEmitterTest, EmitWithoutDueStillRearms) {
  FakeClockScope clock;
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  ProgressEmitter::Options opts;
  opts.interval_s = 1.0;
  opts.out = out;
  ProgressEmitter emitter(std::move(opts));

  emitter.emit("final summary");  // callers may force a line (end of run)
  EXPECT_EQ(emitter.lines_emitted(), 1u);
  EXPECT_FALSE(emitter.due());
  g_fake_now_ns += 1'000'000'000;
  EXPECT_TRUE(emitter.due());
  std::fclose(out);
}

}  // namespace
}  // namespace fdqos::obs
