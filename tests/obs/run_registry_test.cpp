// RunRegistry finalization on early-abort runs: an experiment that unwinds
// mid-run (a throwing predictor factory, an exception rethrown out of the
// worker pool) must still mark its /runs row finished and clear the
// process-wide run context — otherwise a scrape forever shows a zombie
// in-flight run and the next experiment inherits stale labels. The
// RunFinalizer RAII guard in run_qos_experiment carries this contract;
// these tests pin it at the unit level and through the real experiment
// entry point, on both the single-endpoint and the fleet engine.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "fd/suite.hpp"
#include "obs/metrics.hpp"
#include "obs/runs.hpp"

namespace fdqos::obs {
namespace {

// Every test here mutates process-wide obs state; scope it tightly.
class RunRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RunRegistry::global().clear();
    clear_run_context();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    clear_run_context();
    RunRegistry::global().clear();
  }

  static const RunStatus* find_row(const std::vector<RunStatus>& rows,
                                   const std::string& id) {
    for (const RunStatus& row : rows) {
      if (row.id == id) return &row;
    }
    return nullptr;
  }
};

TEST_F(RunRegistryTest, FinalizerFinishesRowAndClearsContextOnUnwind) {
  RunStatus st;
  st.id = "rf-unit";
  st.verb = "qos";
  st.runs_total = 5;
  st.runs_done = 2;
  RunRegistry::global().update(st);
  set_run_context("rf-unit", "paper");

  try {
    RunFinalizer guard("rf-unit");
    EXPECT_EQ(run_id(), "rf-unit");
    throw std::runtime_error("mid-run failure");
  } catch (const std::runtime_error&) {
  }

  const auto rows = RunRegistry::global().snapshot();
  const RunStatus* row = find_row(rows, "rf-unit");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->finished);
  EXPECT_EQ(row->runs_done, row->runs_total);
  EXPECT_EQ(run_id(), "");
  EXPECT_EQ(run_suite(), "");
}

TEST_F(RunRegistryTest, FinalizerIsIdempotentAndHarmlessOnMissingRow) {
  // A guard for a row that was never registered (or already removed) must
  // not invent one.
  { RunFinalizer guard("never-registered"); }
  EXPECT_EQ(RunRegistry::global().size(), 0u);

  // Finishing twice keeps the row's totals stable.
  RunStatus st;
  st.id = "rf-twice";
  st.runs_total = 3;
  RunRegistry::global().update(st);
  { RunFinalizer guard("rf-twice"); }
  { RunFinalizer guard("rf-twice"); }
  const auto rows = RunRegistry::global().snapshot();
  const RunStatus* row = find_row(rows, "rf-twice");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->finished);
  EXPECT_EQ(row->runs_done, 3u);
}

// An extra spec whose predictor factory throws: factories run during bank
// assembly, outside the per-lane isolation (a broken factory is a setup
// bug, not a lane fault), so the exception unwinds out of the worker pool
// and out of run_qos_experiment.
exp::QosExperimentConfig aborting_config(std::uint64_t seed) {
  exp::QosExperimentConfig config;
  config.runs = 2;
  config.num_cycles = 50;
  config.seed = seed;
  config.jobs = 1;
  config.include_paper_suite = true;
  fd::FdSpec broken;
  broken.name = "Broken+CI_low";
  broken.predictor_label = "Broken";
  broken.margin_label = "CI_low";
  broken.make_predictor = []() -> std::unique_ptr<forecast::Predictor> {
    throw std::runtime_error("predictor factory exploded");
  };
  broken.make_margin = fd::make_paper_margin("CI_low");
  config.extra_specs.push_back(std::move(broken));
  return config;
}

TEST_F(RunRegistryTest, ExperimentAbortingMidRunStillFinalizesItsRow) {
  exp::QosExperimentConfig config = aborting_config(21);
  EXPECT_THROW(exp::run_qos_experiment(config), std::runtime_error);

  const auto rows = RunRegistry::global().snapshot();
  const RunStatus* row = find_row(rows, "qos-seed21");
  ASSERT_NE(row, nullptr) << "aborted run never registered its /runs row";
  EXPECT_TRUE(row->finished) << "aborted run left a zombie in-flight row";
  // The context is cleared, so the next experiment starts unlabeled.
  EXPECT_EQ(run_id(), "");
  EXPECT_EQ(run_suite(), "");
}

TEST_F(RunRegistryTest, FleetExperimentAbortingMidRunStillFinalizesItsRow) {
  exp::QosExperimentConfig config = aborting_config(22);
  config.endpoints = 3;
  config.fleet_shards = 2;
  EXPECT_THROW(exp::run_qos_experiment(config), std::runtime_error);

  const auto rows = RunRegistry::global().snapshot();
  const RunStatus* row = find_row(rows, "qos-seed22");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->finished);
  EXPECT_EQ(run_id(), "");
}

TEST_F(RunRegistryTest, SuccessfulRunEndsFinishedWithFinalTotals) {
  exp::QosExperimentConfig config;
  config.runs = 1;
  config.num_cycles = 30;
  config.seed = 23;
  config.jobs = 1;
  const exp::QosReport report = exp::run_qos_experiment(config);

  const auto rows = RunRegistry::global().snapshot();
  const RunStatus* row = find_row(rows, "qos-seed23");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->finished);
  EXPECT_EQ(row->runs_done, 1u);
  EXPECT_EQ(row->crashes, report.total_crashes);
  EXPECT_EQ(row->heartbeats_sent, report.heartbeats_sent);
  EXPECT_EQ(run_id(), "");
}

}  // namespace
}  // namespace fdqos::obs
