#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "exp/qos_experiment.hpp"
#include "obs/instruments.hpp"

namespace fdqos::obs {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(HistogramTest, BucketBoundariesAreLeInclusive) {
  Histogram h;
  // Exactly on a bound lands in that bound's bucket (Prometheus le).
  h.observe(1.0);    // bucket 0 (le 1)
  h.observe(2.0);    // bucket 1 (le 2)
  h.observe(2.001);  // bucket 2 (le 5)
  h.observe(5e6);    // last finite bucket
  h.observe(5e6 + 1);  // +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kBucketCount - 1), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kBucketCount), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 1.0 + 2.0 + 2.001 + 5e6 + 5e6 + 1, 1e-6);
}

TEST(HistogramTest, BoundsAreStrictlyAscending) {
  const auto& bounds = Histogram::bucket_bounds();
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(RegistryTest, SameNameAndLabelsYieldSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x_total", "help", {{"k", "v"}});
  Counter& b = reg.counter("x_total", "help", {{"k", "v"}});
  Counter& c = reg.counter("x_total", "help", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.family_count(), 1u);
}

TEST(RegistryTest, LabelOrderDoesNotMatter) {
  Registry reg;
  Counter& a = reg.counter("y_total", "", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("y_total", "", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(RegistryTest, ConcurrentIncrementsOnOneFamilyLoseNothing) {
  Registry reg;
  constexpr int kPerThread = 100000;
  auto bump = [&reg] {
    // Registration is lock-protected; both threads resolve to the same
    // counter and then race on the relaxed atomic.
    Counter& c = reg.counter("fdqos_test_concurrent_total", "two writers",
                             {{"site", "shared"}});
    for (int i = 0; i < kPerThread; ++i) c.inc();
  };
  std::thread t1(bump);
  std::thread t2(bump);
  t1.join();
  t2.join();
  Counter& c = reg.counter("fdqos_test_concurrent_total", "two writers",
                           {{"site", "shared"}});
  EXPECT_EQ(c.value(), 2u * kPerThread);
}

TEST(RegistryTest, PrometheusExpositionGolden) {
  Registry reg;
  reg.counter("fdqos_demo_total", "demo counter").inc(3);
  reg.counter("fdqos_demo_labeled_total", "labeled", {{"dir", "tx"}}).inc(7);
  reg.gauge("fdqos_demo_gauge", "demo gauge").set(1.5);
  Histogram& h = reg.histogram("fdqos_demo_duration_us", "demo histogram");
  h.observe(1.0);
  h.observe(3.0);
  h.observe(1e9);

  const std::string text = reg.to_prometheus();
  const std::string expected =
      "# HELP fdqos_demo_duration_us demo histogram\n"
      "# TYPE fdqos_demo_duration_us histogram\n"
      "fdqos_demo_duration_us_bucket{le=\"1\"} 1\n"
      "fdqos_demo_duration_us_bucket{le=\"2\"} 1\n"
      "fdqos_demo_duration_us_bucket{le=\"5\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"10\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"20\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"50\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"100\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"200\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"500\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"1000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"2000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"5000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"10000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"20000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"50000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"100000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"200000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"500000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"1000000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"5000000\"} 2\n"
      "fdqos_demo_duration_us_bucket{le=\"+Inf\"} 3\n"
      "fdqos_demo_duration_us_sum 1000000004\n"
      "fdqos_demo_duration_us_count 3\n"
      "# HELP fdqos_demo_duration_us_p50 Streaming P\xc2\xb2 quantile "
      "estimate over fdqos_demo_duration_us observations\n"
      "# TYPE fdqos_demo_duration_us_p50 gauge\n"
      "fdqos_demo_duration_us_p50 3\n"
      "# HELP fdqos_demo_duration_us_p95 Streaming P\xc2\xb2 quantile "
      "estimate over fdqos_demo_duration_us observations\n"
      "# TYPE fdqos_demo_duration_us_p95 gauge\n"
      "fdqos_demo_duration_us_p95 900000000\n"
      "# HELP fdqos_demo_duration_us_p99 Streaming P\xc2\xb2 quantile "
      "estimate over fdqos_demo_duration_us observations\n"
      "# TYPE fdqos_demo_duration_us_p99 gauge\n"
      "fdqos_demo_duration_us_p99 980000000\n"
      "# HELP fdqos_demo_gauge demo gauge\n"
      "# TYPE fdqos_demo_gauge gauge\n"
      "fdqos_demo_gauge 1.5\n"
      "# HELP fdqos_demo_labeled_total labeled\n"
      "# TYPE fdqos_demo_labeled_total counter\n"
      "fdqos_demo_labeled_total{dir=\"tx\"} 7\n"
      "# HELP fdqos_demo_total demo counter\n"
      "# TYPE fdqos_demo_total counter\n"
      "fdqos_demo_total 3\n";
  EXPECT_EQ(text, expected);
}

TEST(RegistryTest, JsonlHasOneObjectPerInstrument) {
  Registry reg;
  reg.counter("a_total", "h").inc(2);
  reg.gauge("b", "h", {{"k", "v"}}).set(0.25);
  reg.histogram("c_us", "h").observe(10.0);

  const std::string jsonl = reg.to_jsonl();
  std::istringstream in(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(jsonl.find("{\"metric\":\"a_total\",\"type\":\"counter\","
                       "\"labels\":{},\"value\":2}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"labels\":{\"k\":\"v\"},\"value\":0.25"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":1"), std::string::npos);
}

TEST(RegistryTest, SaveWritesFiles) {
  Registry reg;
  reg.counter("saved_total", "h").inc();
  const std::string prom = ::testing::TempDir() + "/fdqos_metrics.prom";
  const std::string jsonl = ::testing::TempDir() + "/fdqos_metrics.jsonl";
  ASSERT_TRUE(reg.save_prometheus(prom));
  ASSERT_TRUE(reg.save_jsonl(jsonl));
  std::ifstream in(prom);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("saved_total 1"), std::string::npos);
  std::remove(prom.c_str());
  std::remove(jsonl.c_str());
  EXPECT_FALSE(reg.save_prometheus("/nonexistent-dir/x.prom"));
}

TEST(RenderLabelsTest, CanonicalAndEscaped) {
  EXPECT_EQ(render_labels({}), "");
  EXPECT_EQ(render_labels({{"b", "2"}, {"a", "1"}}), "a=\"1\",b=\"2\"");
  EXPECT_EQ(render_labels({{"k", "a\"b\\c\nd"}}),
            "k=\"a\\\"b\\\\c\\nd\"");
}

// The acceptance check behind `fdqos qos --metrics-out`: after an
// instrumented experiment the global exposition carries the built-in
// instrument families with live values.
TEST(InstrumentsTest, QosExperimentPopulatesGlobalRegistry) {
  const bool was_enabled = enabled();
  set_enabled(true);
  const std::uint64_t sent_before = instruments().heartbeats_sent.value();
  const std::uint64_t mux_before = instruments().mux_dispatch_total.value();

  exp::QosExperimentConfig config;
  config.runs = 1;
  config.num_cycles = 400;
  config.include_paper_suite = false;
  config.include_constant_baseline = true;
  exp::run_qos_experiment(config);
  set_enabled(was_enabled);

  EXPECT_GT(instruments().heartbeats_sent.value(), sent_before);
  EXPECT_GT(instruments().mux_dispatch_total.value(), mux_before);

  const std::string text = Registry::global().to_prometheus();
  for (const char* name :
       {"fdqos_heartbeats_sent_total", "fdqos_heartbeats_delivered_total",
        "fdqos_mux_dispatch_duration_us_bucket",
        "fdqos_arima_refit_duration_us_bucket", "fdqos_crash_events_total",
        "fdqos_qos_detections_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace fdqos::obs
