#include "obs/http_exporter.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/runs.hpp"

namespace fdqos::obs {
namespace {

// Minimal blocking HTTP client: one GET, read to EOF (the exporter always
// answers Connection: close). Empty string = connect/IO failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpExporterTest, ServesMetricsOnEphemeralPort) {
  Registry reg;
  reg.counter("fdqos_http_test_total", "scrape me").inc(5);

  HttpExporter::Options opts;
  opts.registry = &reg;
  HttpExporter exporter(std::move(opts));
  ASSERT_TRUE(exporter.start());
  ASSERT_TRUE(exporter.running());
  ASSERT_NE(exporter.port(), 0);

  const std::string response = http_get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE fdqos_http_test_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("fdqos_http_test_total 5"), std::string::npos);
  EXPECT_GE(exporter.requests_served(), 1u);
}

TEST(HttpExporterTest, HealthzAndNotFoundAndMethod) {
  HttpExporter::Options opts;
  Registry reg;
  opts.registry = &reg;
  HttpExporter exporter(std::move(opts));
  ASSERT_TRUE(exporter.start());

  EXPECT_EQ(body_of(http_get(exporter.port(), "/healthz")), "ok\n");
  EXPECT_NE(http_get(exporter.port(), "/nope").find("404 Not Found"),
            std::string::npos);
  // Query strings are ignored for routing.
  EXPECT_EQ(body_of(http_get(exporter.port(), "/healthz?x=1")), "ok\n");
}

TEST(HttpExporterTest, RunsEndpointServesSnapshot) {
  HttpExporter::Options opts;
  Registry reg;
  opts.registry = &reg;
  opts.runs_snapshot = [] {
    RunRegistry local;
    RunStatus st;
    st.id = "qos-seed7";
    st.verb = "qos";
    st.suite = "paper";
    st.runs_total = 13;
    st.runs_done = 4;
    local.update(st);
    return local.to_json();
  };
  HttpExporter exporter(std::move(opts));
  ASSERT_TRUE(exporter.start());

  const std::string response = http_get(exporter.port(), "/runs");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("\"id\":\"qos-seed7\""), std::string::npos);
  EXPECT_NE(body.find("\"runs_total\":13"), std::string::npos);
  EXPECT_NE(body.find("\"runs_done\":4"), std::string::npos);
  EXPECT_NE(body.find("\"finished\":false"), std::string::npos);
}

// The acceptance property behind `--serve-metrics`: scrapes arriving while
// instruments are being hammered from other threads always get a complete,
// parseable exposition — and never stall the writers.
TEST(HttpExporterTest, ConcurrentScrapesDuringWrites) {
  Registry reg;
  Counter& c = reg.counter("fdqos_http_race_total", "writer target");
  Histogram& h = reg.histogram("fdqos_http_race_us", "writer target");

  HttpExporter::Options opts;
  opts.registry = &reg;
  HttpExporter exporter(std::move(opts));
  ASSERT_TRUE(exporter.start());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      c.inc();
      h.observe(static_cast<double>(i % 1000));
      ++i;
    }
  });

  constexpr int kScrapes = 25;
  for (int i = 0; i < kScrapes; ++i) {
    const std::string response = http_get(exporter.port(), "/metrics");
    ASSERT_NE(response.find("200 OK"), std::string::npos);
    const std::string body = body_of(response);
    // Complete exposition: both families, and the summary gauges, present.
    EXPECT_NE(body.find("fdqos_http_race_total"), std::string::npos);
    EXPECT_NE(body.find("fdqos_http_race_us_count"), std::string::npos);
    EXPECT_NE(body.find("fdqos_http_race_us_p99"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GE(exporter.requests_served(),
            static_cast<std::uint64_t>(kScrapes));
}

TEST(HttpExporterTest, StopIsPromptAndRestartable) {
  Registry reg;
  HttpExporter::Options opts;
  opts.registry = &reg;
  HttpExporter exporter(std::move(opts));
  ASSERT_TRUE(exporter.start());
  const std::uint16_t first_port = exporter.port();
  EXPECT_NE(first_port, 0);
  exporter.stop();
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(exporter.port(), 0);
  // A stopped exporter refuses connections (or the port is reusable).
  ASSERT_TRUE(exporter.start());
  EXPECT_TRUE(exporter.running());
  EXPECT_EQ(body_of(http_get(exporter.port(), "/healthz")), "ok\n");
  exporter.stop();
}

TEST(HttpExporterTest, GarbageRequestGetsBadRequest) {
  Registry reg;
  HttpExporter::Options opts;
  opts.registry = &reg;
  HttpExporter exporter(std::move(opts));
  ASSERT_TRUE(exporter.start());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(exporter.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "NONSENSE\r\n\r\n";
  ASSERT_EQ(::write(fd, garbage, sizeof garbage - 1),
            static_cast<ssize_t>(sizeof garbage - 1));
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);

  // POST to a real route is rejected by method, not path.
  const int fd2 = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const char post[] = "POST /metrics HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::write(fd2, post, sizeof post - 1),
            static_cast<ssize_t>(sizeof post - 1));
  response.clear();
  while ((n = ::read(fd2, buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd2);
  EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos);
}

}  // namespace
}  // namespace fdqos::obs
