#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fdqos::obs {
namespace {

// Deterministic clock for span tests: advances only when told to.
std::uint64_t g_fake_now_ns = 0;
std::uint64_t fake_clock() { return g_fake_now_ns; }

class FakeClockScope {
 public:
  explicit FakeClockScope(std::uint64_t start_ns = 0) {
    g_fake_now_ns = start_ns;
    set_clock(&fake_clock);
  }
  ~FakeClockScope() { set_clock(nullptr); }
};

class EnabledScope {
 public:
  EnabledScope() : was_(enabled()) { set_enabled(true); }
  ~EnabledScope() { set_enabled(was_); }

 private:
  bool was_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ClockTest, DefaultClockIsMonotone) {
  const std::uint64_t a = clock_now_ns();
  const std::uint64_t b = clock_now_ns();
  EXPECT_LE(a, b);
}

TEST(ObsSpanTest, DisabledSpanIsInert) {
  set_enabled(false);
  Histogram h;
  {
    ObsSpan span("inert", &h);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.elapsed_us(), 0u);
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsSpanTest, MeasuresFakeClockDuration) {
  EnabledScope on;
  FakeClockScope clock(1000);
  Histogram h;
  {
    ObsSpan span("timed", &h);
    g_fake_now_ns += 7'000;  // 7 µs
    EXPECT_EQ(span.elapsed_us(), 7u);
    g_fake_now_ns += 5'000'000;  // + 5 ms
  }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5007.0);
}

TEST(ObsSpanTest, ElapsedIsMonotoneUnderAdvancingClock) {
  EnabledScope on;
  FakeClockScope clock;
  ObsSpan span("mono");
  std::uint64_t prev = span.elapsed_us();
  for (int i = 0; i < 10; ++i) {
    g_fake_now_ns += 1500;
    const std::uint64_t cur = span.elapsed_us();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(ObsSpanTest, BackwardsClockClampsToZero) {
  EnabledScope on;
  FakeClockScope clock(1'000'000);
  ObsSpan span("backwards");
  g_fake_now_ns = 0;  // a broken clock must not underflow the duration
  EXPECT_EQ(span.elapsed_us(), 0u);
}

TEST(TraceWriterTest, WritesChromeTracingEvents) {
  EnabledScope on;
  FakeClockScope clock(2'000'000);  // spans start at ts = 2000 µs
  const std::string path = ::testing::TempDir() + "/fdqos_trace.json";
  {
    TraceWriter writer(path);
    ASSERT_TRUE(writer.ok());
    set_trace_writer(&writer);
    {
      ObsSpan span("unit_span");
      g_fake_now_ns += 3'000;
    }
    writer.write("manual", 10, 20, {{"k", "v"}});
    set_trace_writer(nullptr);
    EXPECT_EQ(writer.events_written(), 2u);
  }
  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("[\n", 0), 0u);  // opens as a JSON array
  EXPECT_NE(text.find("{\"name\":\"unit_span\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":1,\"ts\":2000,\"dur\":3,\"args\":{}},"),
            std::string::npos);
  EXPECT_NE(text.find("{\"name\":\"manual\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":1,\"ts\":10,\"dur\":20,"
                      "\"args\":{\"k\":\"v\"}},"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceWriterTest, UnwritablePathIsNotOk) {
  TraceWriter writer("/nonexistent-dir/trace.json");
  EXPECT_FALSE(writer.ok());
  writer.write("ignored", 0, 0);  // must not crash
  EXPECT_EQ(writer.events_written(), 0u);
}

TEST(TraceWriterTest, NoSinkInstalledMeansNoWrite) {
  EnabledScope on;
  ASSERT_EQ(trace_writer(), nullptr);
  ObsSpan span("no_sink");  // dtor must tolerate the null sink
}

}  // namespace
}  // namespace fdqos::obs
