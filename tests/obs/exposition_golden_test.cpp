// Golden-file regression for the Prometheus text exposition writer.
//
// The registry built here is deliberately hostile: label values carrying
// backslashes, quotes, newlines and tabs, HELP text with a backslash and a
// newline, non-finite gauge values, and a histogram (which drags in the
// bucket rows plus the _p50/_p95/_p99 streaming summary families). Any
// change to the escaping rules or family layout shows up as a golden diff
// instead of a quietly corrupted scrape.
//
// Regenerate intentionally with:
//   FDQOS_UPDATE_GOLDEN=1 ./fdqos_obs_tests \
//       --gtest_filter=ExpositionGoldenTest.*
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"

namespace fdqos::obs {
namespace {

const char* golden_path() {
  return FDQOS_SOURCE_DIR "/tests/obs/golden/exposition.prom";
}

std::string render_exposition() {
  Registry reg;
  reg.counter("fdqos_golden_total", "plain counter").inc(42);
  reg.counter("fdqos_golden_escaped_total",
              "HELP with a back\\slash and a\nnewline",
              {{"path", "C:\\temp\\x"}, {"quote", "say \"hi\""}})
      .inc(1);
  reg.counter("fdqos_golden_escaped_total", "HELP with a back\\slash and a\nnewline",
              {{"path", "line1\nline2"}, {"quote", "tab\there"}})
      .inc(2);
  reg.gauge("fdqos_golden_nan", "not a number").set(std::nan(""));
  reg.gauge("fdqos_golden_inf", "positive infinity")
      .set(std::numeric_limits<double>::infinity());
  reg.gauge("fdqos_golden_neg_inf", "negative infinity")
      .set(-std::numeric_limits<double>::infinity());
  Histogram& h =
      reg.histogram("fdqos_golden_us", "histogram with sketch summaries",
                    {{"suite", "paper"}, {"run", "qos-seed42"}});
  for (int i = 1; i <= 10; ++i) h.observe(static_cast<double>(i) * 10.0);
  return reg.to_prometheus();
}

TEST(ExpositionGoldenTest, HostileLabelsMatchGoldenFile) {
  const std::string actual = render_exposition();
  ASSERT_FALSE(actual.empty());

  if (std::getenv("FDQOS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden updated: " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << golden_path()
      << " — run once with FDQOS_UPDATE_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(actual, buf.str());
}

// The escaping rules themselves, pinned independently of the golden file
// (a wrong regeneration cannot silently bless corrupt output).
TEST(ExpositionGoldenTest, LabelEscapingRules) {
  Registry reg;
  reg.counter("e_total", "", {{"v", "a\\b\"c\nd"}}).inc(1);
  const std::string text = reg.to_prometheus();
  // backslash -> \\, quote -> \", newline -> \n; nothing else escaped.
  EXPECT_NE(text.find("e_total{v=\"a\\\\b\\\"c\\nd\"} 1"), std::string::npos)
      << text;
}

TEST(ExpositionGoldenTest, HelpEscapingRules) {
  Registry reg;
  reg.counter("h_total", "back\\slash and\nnewline").inc(1);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP h_total back\\\\slash and\\nnewline\n"),
            std::string::npos)
      << text;
}

TEST(ExpositionGoldenTest, NonFiniteValuesUseCanonicalSpellings) {
  Registry reg;
  reg.gauge("g_nan", "").set(std::nan(""));
  reg.gauge("g_inf", "").set(std::numeric_limits<double>::infinity());
  reg.gauge("g_ninf", "").set(-std::numeric_limits<double>::infinity());
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos);
  EXPECT_NE(text.find("g_inf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("g_ninf -Inf\n"), std::string::npos);
}

// Every family gets exactly one TYPE line, HELP precedes TYPE, and no
// sample line appears before its family's TYPE — the structural rules a
// Prometheus scraper enforces.
TEST(ExpositionGoldenTest, FamilyStructureIsWellFormed) {
  const std::string text = render_exposition();
  std::istringstream in(text);
  std::string line;
  std::string last_comment_name;
  while (std::getline(in, line)) {
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const std::size_t start = 7;
      const std::size_t end = line.find(' ', start);
      ASSERT_NE(end, std::string::npos) << line;
      last_comment_name = line.substr(start, end - start);
      continue;
    }
    ASSERT_FALSE(line.empty());
    // Sample lines belong to the most recent HELP/TYPE family (histogram
    // samples append _bucket/_sum/_count to it).
    EXPECT_EQ(line.rfind(last_comment_name, 0), 0u)
        << "sample '" << line << "' outside family '" << last_comment_name
        << "'";
  }
}

}  // namespace
}  // namespace fdqos::obs
