// JsonlSink atomic-append regression: many unsynchronized writers must
// never tear or interleave records, because each line leaves the process
// as exactly one write(2) on an O_APPEND descriptor.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/progress.hpp"

namespace fdqos::obs {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(JsonlSinkTest, WritesOneLinePerRecord) {
  const std::string path = ::testing::TempDir() + "/fdqos_jsonl_basic.jsonl";
  JsonlSink sink;
  ASSERT_TRUE(sink.open(path));
  EXPECT_TRUE(sink.is_open());
  EXPECT_TRUE(sink.write_line("{\"a\":1}"));
  EXPECT_TRUE(sink.write_line("{\"b\":2}"));
  sink.close();
  EXPECT_FALSE(sink.is_open());
  EXPECT_EQ(sink.lines_written(), 2u);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"b\":2}");
  std::remove(path.c_str());
}

TEST(JsonlSinkTest, WriteToClosedSinkFails) {
  JsonlSink sink;
  EXPECT_FALSE(sink.write_line("{}"));
  EXPECT_EQ(sink.lines_written(), 0u);
}

TEST(JsonlSinkTest, OpenTruncatesExistingFile) {
  const std::string path = ::testing::TempDir() + "/fdqos_jsonl_trunc.jsonl";
  {
    JsonlSink sink;
    ASSERT_TRUE(sink.open(path));
    ASSERT_TRUE(sink.write_line("{\"old\":true}"));
  }
  JsonlSink sink;
  ASSERT_TRUE(sink.open(path));
  ASSERT_TRUE(sink.write_line("{\"new\":true}"));
  sink.close();
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"new\":true}");
  std::remove(path.c_str());
}

// The regression this sink exists for: 8 threads hammering one sink, every
// record arrives whole — no torn lines, no interleaving, none lost.
TEST(JsonlSinkTest, EightConcurrentWritersNeverTearRecords) {
  const std::string path = ::testing::TempDir() + "/fdqos_jsonl_race.jsonl";
  JsonlSink sink;
  ASSERT_TRUE(sink.open(path));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct payload sizes per thread make torn writes detectable:
        // a partial record cannot parse back to a valid (t, i, pad) line.
        const std::string pad(static_cast<std::size_t>(8 + 16 * t), 'x');
        const std::string rec = "{\"t\":" + std::to_string(t) +
                                ",\"i\":" + std::to_string(i) + ",\"pad\":\"" +
                                pad + "\"}";
        ASSERT_TRUE(sink.write_line(rec));
      }
    });
  }
  for (auto& th : threads) th.join();
  sink.close();
  EXPECT_EQ(sink.lines_written(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::pair<int, int>> seen;
  for (const auto& line : lines) {
    // Structural integrity: one whole record per line.
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    int t = -1, i = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"t\":%d,\"i\":%d,", &t, &i), 2)
        << line;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    // The pad length must match the writing thread — a spliced line fails.
    const std::string expected_pad(static_cast<std::size_t>(8 + 16 * t), 'x');
    ASSERT_NE(line.find("\"pad\":\"" + expected_pad + "\"}"),
              std::string::npos)
        << line;
    EXPECT_TRUE(seen.emplace(t, i).second) << "duplicate " << line;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::remove(path.c_str());
}

// ProgressEmitter mirrors each emitted line into the sink as one JSON
// record carrying the run id, a timestamp and a sequence number.
TEST(ProgressEmitterJsonlTest, EmitWritesRunStampedRecord) {
  const std::string path = ::testing::TempDir() + "/fdqos_progress.jsonl";
  JsonlSink sink;
  ASSERT_TRUE(sink.open(path));

  ProgressEmitter::Options opts;
  opts.interval_s = 1e-9;
  opts.out = std::tmpfile();  // keep stderr quiet
  opts.jsonl = &sink;
  opts.run_id = "qos-seed42";
  ASSERT_NE(opts.out, nullptr);
  std::FILE* captured = opts.out;
  {
    ProgressEmitter emitter(std::move(opts));
    emitter.emit("run %d/%d crashes=%d", 1, 13, 4);
    emitter.emit("quoted \"msg\" with backslash \\");
    EXPECT_EQ(emitter.lines_emitted(), 2u);
  }
  std::fclose(captured);
  sink.close();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"run\":\"qos-seed42\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"t_ns\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"msg\":\"run 1/13 crashes=4\""),
            std::string::npos);
  // The message lands JSON-escaped, one record per line.
  EXPECT_NE(lines[1].find("\"seq\":2"), std::string::npos);
  EXPECT_NE(
      lines[1].find("\"msg\":\"quoted \\\"msg\\\" with backslash \\\\\""),
      std::string::npos);
  std::remove(path.c_str());
}

TEST(ProgressEmitterJsonlTest, NoSinkMeansStderrOnly) {
  ProgressEmitter::Options opts;
  opts.interval_s = 1e-9;
  opts.out = std::tmpfile();
  ASSERT_NE(opts.out, nullptr);
  std::FILE* captured = opts.out;
  ProgressEmitter emitter(std::move(opts));
  emitter.emit("no jsonl configured");
  EXPECT_EQ(emitter.lines_emitted(), 1u);
  std::fclose(captured);
}

}  // namespace
}  // namespace fdqos::obs
