#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fdqos::sim {
namespace {

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::millis(ms);
}

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_ms(30), [&] { order.push_back(3); });
  q.schedule(at_ms(10), [&] { order.push_back(1); });
  q.schedule(at_ms(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    auto fired = q.pop();
    fired.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at_ms(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeTracksEarliest) {
  EventQueue q;
  q.schedule(at_ms(50), [] {});
  EXPECT_EQ(q.next_time(), at_ms(50));
  q.schedule(at_ms(20), [] {});
  EXPECT_EQ(q.next_time(), at_ms(20));
  q.pop();
  EXPECT_EQ(q.next_time(), at_ms(50));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(at_ms(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), TimePoint::max());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(at_ms(10), [] {});
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, CancelAfterFireIsSafeNoop) {
  EventQueue q;
  EventHandle h = q.schedule(at_ms(10), [] {});
  q.pop().fn();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, CancelledHeadSkippedByPop) {
  EventQueue q;
  bool first = false;
  bool second = false;
  EventHandle h = q.schedule(at_ms(10), [&] { first = true; });
  q.schedule(at_ms(20), [&] { second = true; });
  h.cancel();
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DefaultConstructedHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
  EXPECT_EQ(h.time(), TimePoint::max());
}

TEST(EventQueueTest, TimeReportsDeadlineWhileLive) {
  EventQueue q;
  EventHandle h = q.schedule(at_ms(40), [] {});
  EXPECT_EQ(h.time(), at_ms(40));
  // Once the event fires (pop releases the node) the handle reads idle;
  // the DetectorBank relies on this to treat max() as "no armed timer".
  q.pop().fn();
  EXPECT_EQ(h.time(), TimePoint::max());
}

TEST(EventQueueTest, TimeIsMaxAfterCancel) {
  EventQueue q;
  EventHandle h = q.schedule(at_ms(15), [] {});
  h.cancel();
  EXPECT_EQ(h.time(), TimePoint::max());
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  EventHandle a = q.schedule(at_ms(1), [] {});
  q.schedule(at_ms(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  a.cancel();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace fdqos::sim
