#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fdqos::sim {
namespace {

TEST(SimulatorTest, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(Duration::millis(250), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + Duration::millis(250));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_after(Duration::seconds(i), [&] { ++fired; });
  }
  const auto count = sim.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(sim.pending_events(), 5u);
}

TEST(SimulatorTest, EventAtExactDeadlineFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::seconds(5), [&] { fired = true; });
  sim.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(TimePoint::origin() + Duration::seconds(7));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(7));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now().to_seconds_double());
    if (times.size() < 3) {
      sim.schedule_after(Duration::seconds(1), tick);
    }
  };
  sim.schedule_after(Duration::seconds(1), tick);
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(times[2], 3.0);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::millis(1), [&] { ++fired; });
  sim.schedule_after(Duration::millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, ExecutedEventsAccumulates) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) sim.schedule_after(Duration::millis(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 4u);
}

TEST(SimulatorTest, NextEventTimeVisible) {
  Simulator sim;
  sim.schedule_after(Duration::seconds(3), [] {});
  EXPECT_EQ(sim.next_event_time(), TimePoint::origin() + Duration::seconds(3));
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_after(Duration::seconds(1), [&] { fired = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, DeterministicInterleavingAtSameTimestamp) {
  // Two runs with identical schedules produce identical orderings.
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      sim.schedule_at(TimePoint::origin() + Duration::seconds(1),
                      [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fdqos::sim
