// Unit coverage for the conservative parallel simulation core: horizon
// arithmetic and the min-plus closure, deterministic mailbox tie-breaking,
// the zero-lookahead stall rule, window capping, and the DelayModel
// min_delay() contract the channel lookaheads are derived from (including
// the faultx clock-jump shrink).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "faultx/fault_models.hpp"
#include "faultx/fault_schedule.hpp"
#include "sim/horizon.hpp"
#include "sim/lp.hpp"
#include "sim/parallel_simulator.hpp"
#include "wan/delay_model.hpp"
#include "wan/italy_japan.hpp"
#include "wan/tracestore.hpp"

namespace fdqos::sim {
namespace {

TEST(SaturatingAddTest, SaturatesAtMax) {
  EXPECT_EQ(saturating_add(TimePoint::max(), Duration::seconds(1)),
            TimePoint::max());
  EXPECT_EQ(saturating_add(TimePoint::max() - Duration::nanos(1),
                           Duration::seconds(5)),
            TimePoint::max());
  EXPECT_EQ(saturating_add(TimePoint::origin(), Duration::seconds(1)),
            TimePoint::origin() + Duration::seconds(1));
}

TEST(ChannelGraphTest, DirectLookaheadKeepsMinimum) {
  ChannelGraph graph(2);
  graph.set_lookahead(0, 1, Duration::millis(10));
  graph.set_lookahead(0, 1, Duration::millis(4));
  graph.set_lookahead(0, 1, Duration::millis(7));
  graph.finalize();
  EXPECT_EQ(graph.path_lookahead(0, 1), Duration::millis(4));
  EXPECT_FALSE(graph.has_path(1, 0));
  EXPECT_EQ(graph.path_lookahead(1, 0), Duration::max());
}

TEST(ChannelGraphTest, ClosureComposesPaths) {
  // 0→1 (5ms), 1→2 (7ms), and a worse direct 0→2 (20ms): the closure must
  // pick the relayed 12ms bound, or a message forwarded through LP1 could
  // arrive below LP2's horizon.
  ChannelGraph graph(3);
  graph.set_lookahead(0, 1, Duration::millis(5));
  graph.set_lookahead(1, 2, Duration::millis(7));
  graph.set_lookahead(0, 2, Duration::millis(20));
  graph.finalize();
  EXPECT_EQ(graph.path_lookahead(0, 2), Duration::millis(12));
  EXPECT_EQ(graph.path_lookahead(0, 1), Duration::millis(5));
}

TEST(ChannelGraphTest, BoundsUseTightestIncomingPath) {
  ChannelGraph graph(3);
  graph.set_lookahead(0, 2, Duration::millis(30));
  graph.set_lookahead(1, 2, Duration::millis(10));
  graph.finalize();
  const std::vector<TimePoint> next = {
      TimePoint::origin() + Duration::millis(100),
      TimePoint::origin() + Duration::millis(50),
      TimePoint::origin() + Duration::millis(200),
  };
  std::vector<TimePoint> bounds;
  graph.bounds(next, bounds);
  // LP2's bound: min(next0 + 30ms, next1 + 10ms) = 60ms.
  EXPECT_EQ(bounds[2], TimePoint::origin() + Duration::millis(60));
  // Nothing feeds LP0 or LP1.
  EXPECT_EQ(bounds[0], TimePoint::max());
  EXPECT_EQ(bounds[1], TimePoint::max());
}

TEST(LpTest, MailboxDrainsInTimeSourceSeqOrder) {
  Lp lp(3, "sink");
  std::vector<int> order;
  const TimePoint t1 = TimePoint::origin() + Duration::millis(1);
  const TimePoint t2 = TimePoint::origin() + Duration::millis(2);
  // Same-timestamp posts from different sources arrive in "wall" order
  // 2-then-1; the drain must reorder them to source order 1-then-2, and a
  // later timestamp must sort last no matter when it was posted.
  lp.post(/*src_lp=*/2, t1, [&order] { order.push_back(21); });
  lp.post(/*src_lp=*/1, t1, [&order] { order.push_back(11); });
  lp.post(/*src_lp=*/1, t2, [&order] { order.push_back(12); });
  lp.post(/*src_lp=*/1, t1, [&order] { order.push_back(91); });  // seq 2nd
  lp.drain_mailbox();
  lp.run_until(t2);
  EXPECT_EQ(order, (std::vector<int>{11, 91, 21, 12}));
  EXPECT_EQ(lp.mail_received(), 4u);
}

TEST(ParallelSimulatorTest, CrossLpPostDeliversAndSettlesClocks) {
  ParallelSimulator::Options options;
  options.lps = 2;
  sim::ParallelSimulator psim(options);
  psim.set_lookahead(0, 1, Duration::millis(5));

  std::vector<std::string> log;
  psim.lp(0).schedule_at(TimePoint::origin() + Duration::millis(10), [&] {
    psim.post(0, 1, psim.lp(0).now() + Duration::millis(5),
              [&log] { log.push_back("delivered"); });
  });
  const TimePoint deadline = TimePoint::origin() + Duration::millis(100);
  psim.run_until(deadline);

  EXPECT_EQ(log, std::vector<std::string>{"delivered"});
  EXPECT_EQ(psim.lp(0).now(), deadline);
  EXPECT_EQ(psim.lp(1).now(), deadline);
  EXPECT_EQ(psim.stats().cross_lp_messages, 1u);
  EXPECT_GE(psim.stats().rounds, 1u);
}

TEST(ParallelSimulatorTest, ZeroLookaheadPingPongStaysOrdered) {
  // A two-LP ping-pong over zero-lookahead channels: the idle side's queue
  // is always empty, so each hop still executes in strict timestamp order.
  ParallelSimulator::Options options;
  options.lps = 2;
  sim::ParallelSimulator psim(options);
  psim.set_lookahead(0, 1, Duration::zero());
  psim.set_lookahead(1, 0, Duration::zero());

  std::vector<std::pair<std::size_t, std::int64_t>> hits;
  std::function<void(std::size_t, int)> bounce = [&](std::size_t self,
                                                     int remaining) {
    hits.emplace_back(self, (psim.lp(self).now() - TimePoint::origin())
                                .count_nanos());
    if (remaining == 0) return;
    const std::size_t other = 1 - self;
    psim.post(self, other, psim.lp(self).now() + Duration::millis(1),
              [&, other, remaining] { bounce(other, remaining - 1); });
  };
  psim.lp(0).schedule_at(TimePoint::origin() + Duration::millis(1),
                         [&] { bounce(0, 6); });
  psim.run_until(TimePoint::origin() + Duration::millis(100));

  ASSERT_EQ(hits.size(), 7u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].first, i % 2);
    EXPECT_EQ(hits[i].second, static_cast<std::int64_t>((i + 1) * 1000000));
  }
}

TEST(ParallelSimulatorTest, ZeroLookaheadContentionStallsAndSerializes) {
  // Both LPs hold events at the same timestamps over mutual zero-lookahead
  // channels: no window is ever non-empty, so every equal-time pair goes
  // through the stall rule — lowest-id LP first, one event per grant.
  // Slow, never wrong.
  ParallelSimulator::Options options;
  options.lps = 2;
  sim::ParallelSimulator psim(options);
  psim.set_lookahead(0, 1, Duration::zero());
  psim.set_lookahead(1, 0, Duration::zero());

  std::vector<std::pair<std::size_t, int>> order;
  for (int i = 1; i <= 5; ++i) {
    psim.lp(0).schedule_at(TimePoint::origin() + Duration::millis(i),
                           [&order, i] { order.emplace_back(0, i); });
    psim.lp(1).schedule_at(TimePoint::origin() + Duration::millis(i),
                           [&order, i] { order.emplace_back(1, i); });
  }
  psim.run_until(TimePoint::origin() + Duration::millis(10));

  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order[2 * i], std::make_pair(std::size_t{0}, i + 1));
    EXPECT_EQ(order[2 * i + 1], std::make_pair(std::size_t{1}, i + 1));
  }
  EXPECT_GE(psim.stats().stalls, 5u);
}

TEST(ParallelSimulatorTest, IdenticalExecutionAtEveryJobsValue) {
  // The same 3-LP workload, run inline and on 4 workers: every LP must
  // observe the identical event sequence.
  auto run_workload = [](std::size_t jobs) {
    ParallelSimulator::Options options;
    options.lps = 3;
    options.jobs = jobs;
    options.max_window = Duration::millis(20);
    sim::ParallelSimulator psim(options);
    psim.set_lookahead(0, 1, Duration::millis(3));
    psim.set_lookahead(0, 2, Duration::millis(3));
    psim.set_lookahead(1, 2, Duration::millis(1));

    std::vector<std::vector<std::int64_t>> seen(3);
    for (int i = 1; i <= 40; ++i) {
      psim.lp(0).schedule_at(TimePoint::origin() + Duration::millis(i), [&,
                                                                         i] {
        const TimePoint now = psim.lp(0).now();
        seen[0].push_back(now.count_nanos());
        psim.post(0, 1, now + Duration::millis(3), [&, i] {
          const TimePoint t1 = psim.lp(1).now();
          seen[1].push_back(t1.count_nanos());
          if (i % 2 == 0) {
            psim.post(1, 2, t1 + Duration::millis(1),
                      [&] { seen[2].push_back(psim.lp(2).now().count_nanos()); });
          }
        });
        psim.post(0, 2, now + Duration::millis(3),
                  [&] { seen[2].push_back(psim.lp(2).now().count_nanos()); });
      });
    }
    psim.run_until(TimePoint::origin() + Duration::millis(200));
    return seen;
  };

  const auto serial = run_workload(1);
  const auto parallel = run_workload(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial[0].size(), 40u);
  EXPECT_EQ(serial[1].size(), 40u);
  EXPECT_EQ(serial[2].size(), 60u);
}

TEST(ParallelSimulatorTest, MaxWindowBoundsEachRound) {
  // An unconstrained source LP (no incoming channels) would otherwise run
  // to the deadline in a single window; the cap slices it into rounds.
  ParallelSimulator::Options options;
  options.lps = 2;
  options.max_window = Duration::millis(10);
  sim::ParallelSimulator psim(options);
  psim.set_lookahead(0, 1, Duration::millis(1));

  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    psim.lp(0).schedule_at(TimePoint::origin() + Duration::millis(i),
                           [&fired] { ++fired; });
  }
  psim.run_until(TimePoint::origin() + Duration::millis(100));
  EXPECT_EQ(fired, 100);
  EXPECT_GE(psim.stats().rounds, 9u);
  EXPECT_LE(psim.stats().max_window_seen, Duration::millis(10));
}

TEST(MinDelayTest, BasicModelsExposeTheirFloor) {
  Rng rng(1);
  wan::ConstantDelay constant(Duration::millis(25));
  EXPECT_EQ(constant.min_delay(), Duration::millis(25));

  wan::UniformDelay uniform(Duration::millis(10), Duration::millis(30));
  EXPECT_EQ(uniform.min_delay(), Duration::millis(10));

  wan::ShiftedLognormalDelay lognormal(Duration::millis(192), 1.0, 0.5);
  EXPECT_EQ(lognormal.min_delay(), Duration::millis(192));

  wan::ShiftedGammaDelay gamma(Duration::millis(100), 2.0, 3.0);
  EXPECT_EQ(gamma.min_delay(), Duration::millis(100));

  // The spike cap bounds the whole mixture, so it can undercut the base.
  wan::SpikeMixtureDelay capped(
      std::make_unique<wan::ConstantDelay>(Duration::millis(200)), 0.1,
      Duration::millis(50), 1.5, Duration::millis(120));
  EXPECT_EQ(capped.min_delay(), Duration::millis(120));

  wan::SpikeMixtureDelay uncapped(
      std::make_unique<wan::ConstantDelay>(Duration::millis(200)), 0.1,
      Duration::millis(50), 1.5, Duration::millis(500));
  EXPECT_EQ(uncapped.min_delay(), Duration::millis(200));

  // The default is the always-safe zero.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(capped.sample(rng, TimePoint::origin()), capped.min_delay());
  }
}

TEST(MinDelayTest, ItalyJapanFloorMatchesTable4) {
  wan::ItalyJapanParams params;
  auto model = wan::make_italy_japan_delay(params);
  EXPECT_EQ(model->min_delay(), std::min(params.floor, params.spike_cap));
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(model->sample(rng, TimePoint::origin() + Duration::seconds(i)),
              model->min_delay());
  }
}

TEST(MinDelayTest, TraceReplayUsesTraceMinimumExceptUnderExtend) {
  const std::vector<Duration> delays = {Duration::millis(210),
                                        Duration::millis(195),
                                        Duration::millis(260)};
  wan::TraceReplayDelay truncate(delays, wan::ReplayPolicy::kTruncate);
  EXPECT_EQ(truncate.min_delay(), Duration::millis(195));
  wan::TraceReplayDelay wrap(delays, wan::ReplayPolicy::kWrap);
  EXPECT_EQ(wrap.min_delay(), Duration::millis(195));
  // kExtend resamples the tail from a fitted model — no floor promise.
  wan::TraceReplayDelay extend(delays, wan::ReplayPolicy::kExtend);
  EXPECT_EQ(extend.min_delay(), Duration::zero());
}

TEST(MinDelayTest, FaultyDelayShrinksByMaxClockAdvance) {
  auto faults = std::make_shared<faultx::FaultSchedule>();
  // Forward 80ms at t=10s, back 30ms at t=20s: the cumulative error peaks
  // at +80ms, which is the most any delay can be shortened.
  faults->clock_jump(TimePoint::origin() + Duration::seconds(10),
                     Duration::millis(80));
  faults->clock_jump(TimePoint::origin() + Duration::seconds(20),
                     Duration::millis(-30));
  EXPECT_EQ(faults->max_clock_advance(), Duration::millis(80));

  faultx::FaultyDelay faulty(
      std::make_unique<wan::ConstantDelay>(Duration::millis(200)), faults);
  EXPECT_EQ(faulty.min_delay(), Duration::millis(120));

  // A backwards-only schedule never advances the clock: no shrink.
  auto backwards = std::make_shared<faultx::FaultSchedule>();
  backwards->clock_jump(TimePoint::origin() + Duration::seconds(5),
                        Duration::millis(-250));
  EXPECT_EQ(backwards->max_clock_advance(), Duration::zero());
  faultx::FaultyDelay unshrunk(
      std::make_unique<wan::ConstantDelay>(Duration::millis(200)), backwards);
  EXPECT_EQ(unshrunk.min_delay(), Duration::millis(200));

  // A jump bigger than the floor clamps the promise at zero, mirroring
  // sample()'s physical clamp.
  auto huge = std::make_shared<faultx::FaultSchedule>();
  huge->clock_jump(TimePoint::origin() + Duration::seconds(1),
                   Duration::millis(500));
  faultx::FaultyDelay clamped(
      std::make_unique<wan::ConstantDelay>(Duration::millis(200)), huge);
  EXPECT_EQ(clamped.min_delay(), Duration::zero());
}

}  // namespace
}  // namespace fdqos::sim
