// Bank-vs-legacy equivalence property: the batched DetectorBank engine and
// N independent FreshnessDetectors must be observably identical — same
// suspect-transition streams per (run, detector), same pooled QoS metrics
// (compared through the full rendered report) — on the complete 30-detector
// paper suite, under the nominal link and under fault injection, at every
// jobs value. This is the refactor's load-bearing guarantee; the chaos
// golden CSVs pin the same property against a fixed historical output.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"

namespace fdqos::exp {
namespace {

struct Event {
  std::size_t detector;
  std::int64_t t_ns;
  bool suspect;

  bool operator==(const Event&) const = default;
};

// Per-run transition streams, captured via the experiment's probe hook.
// Runs execute concurrently, but the probe only races across distinct run
// indices, so a pre-sized per-run vector needs no locking.
struct Capture {
  std::vector<std::vector<Event>> runs;

  explicit Capture(std::size_t n) : runs(n) {}

  auto probe() {
    return [this](std::size_t run, std::size_t detector, TimePoint t,
                  bool suspecting) {
      runs[run].push_back({detector, t.count_nanos(), suspecting});
    };
  }

  // Streams keyed by (run, detector): cross-detector interleaving at equal
  // timestamps is presentation order, per-detector order is semantics.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<Event>> by_lane()
      const {
    std::map<std::pair<std::size_t, std::size_t>, std::vector<Event>> out;
    for (std::size_t run = 0; run < runs.size(); ++run) {
      for (const Event& e : runs[run]) {
        out[{run, e.detector}].push_back(e);
      }
    }
    return out;
  }
};

QosExperimentConfig base_config(std::uint64_t seed,
                                const std::string& scenario) {
  QosExperimentConfig config;
  config.runs = 2;
  config.num_cycles = 300;
  config.seed = seed;
  config.mttc = Duration::seconds(90);
  config.ttr = Duration::seconds(20);
  config.warmup = Duration::seconds(60);
  config.chaos_scenario = scenario;
  return config;
}

class BankEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::string>> {
};

TEST_P(BankEquivalenceTest, BankAndLegacyAreObservablyIdentical) {
  const auto [seed, scenario] = GetParam();

  QosExperimentConfig config = base_config(seed, scenario);
  Capture legacy_capture(config.runs);
  config.use_detector_bank = false;
  config.jobs = 1;
  config.transition_probe = legacy_capture.probe();
  const QosReport legacy_report = run_qos_experiment(config);

  Capture bank_capture(config.runs);
  config.use_detector_bank = true;
  config.transition_probe = bank_capture.probe();
  const QosReport bank_report = run_qos_experiment(config);

  // Pooled QoS metrics, via the full rendered report (all five figures
  // plus crash/heartbeat tallies).
  EXPECT_EQ(qos_report_fingerprint(legacy_report),
            qos_report_fingerprint(bank_report));

  // Identical per-(run, detector) suspect-transition streams, to the
  // nanosecond.
  const auto legacy_lanes = legacy_capture.by_lane();
  const auto bank_lanes = bank_capture.by_lane();
  ASSERT_EQ(legacy_lanes.size(), bank_lanes.size());
  for (const auto& [key, stream] : legacy_lanes) {
    const auto it = bank_lanes.find(key);
    ASSERT_NE(it, bank_lanes.end())
        << "run " << key.first << " detector " << key.second;
    EXPECT_EQ(stream, it->second)
        << "run " << key.first << " detector " << key.second;
  }

  // The bank engine must also stay jobs-invariant (the legacy engine's
  // invariance is pinned by parallel_determinism_test).
  Capture bank8_capture(config.runs);
  config.jobs = 8;
  config.transition_probe = bank8_capture.probe();
  const QosReport bank8_report = run_qos_experiment(config);
  EXPECT_EQ(qos_report_fingerprint(bank_report),
            qos_report_fingerprint(bank8_report));
  EXPECT_EQ(bank_capture.by_lane(), bank8_capture.by_lane());

  // And it must actually have shared: 5 predictor groups serving 30 lanes.
  EXPECT_EQ(bank_report.bank.predictor_updates * 6,
            bank_report.bank.lane_updates);
  EXPECT_EQ(legacy_report.bank.predictor_updates,
            legacy_report.bank.lane_updates);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesScenarios, BankEquivalenceTest,
    ::testing::Combine(::testing::Values(std::uint64_t{7}, std::uint64_t{11},
                                         std::uint64_t{13}),
                       ::testing::Values(std::string{},  // nominal link
                                         std::string{"spike_storm"},
                                         std::string{"burst_loss"})),
    [](const auto& info) {
      const std::string& scenario = std::get<1>(info.param);
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             (scenario.empty() ? "nominal" : scenario);
    });

}  // namespace
}  // namespace fdqos::exp
