// Regression pins on the *reproduction itself*: the paper's headline
// qualitative findings must keep holding when anyone touches the link
// model, the detectors, or the experiment harness. Runs a mid-scale QoS
// experiment (3 × 4000 cycles, fixed seed — deterministic) and asserts the
// orderings EXPERIMENTS.md reports.
#include <gtest/gtest.h>

#include "exp/accuracy_experiment.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"

namespace fdqos::exp {
namespace {

class ReproductionShapeTest : public ::testing::Test {
 protected:
  static const QosReport& report() {
    static const QosReport kReport = [] {
      QosExperimentConfig config;
      config.runs = 3;
      config.num_cycles = 4000;
      config.seed = 42;
      return run_qos_experiment(config);
    }();
    return kReport;
  }
};

TEST_F(ReproductionShapeTest, MeanHasTheLongestDetectionTimeEverywhere) {
  // Paper Figures 4/5: MEAN is the worst predictor with every margin.
  for (const auto& margin : fd::paper_margin_labels()) {
    const auto* mean = find_result(report(), "Mean+" + margin);
    ASSERT_NE(mean, nullptr);
    for (const auto& pred : fd::paper_predictor_labels()) {
      if (pred == "Mean") continue;
      const auto* other = find_result(report(), pred + "+" + margin);
      ASSERT_NE(other, nullptr);
      EXPECT_GT(mean->metrics.detection_time_ms.mean,
                other->metrics.detection_time_ms.mean)
          << "Mean vs " << pred << " at " << margin;
    }
  }
}

TEST_F(ReproductionShapeTest, AccuracyIsBoughtWithDetectionTime) {
  // Paper Figures 6/7: within a margin family, raising the parameter
  // raises both T_MR (good) and T_D (the price).
  for (const auto& pred : fd::paper_predictor_labels()) {
    const auto* ci_low = find_result(report(), pred + "+CI_low");
    const auto* ci_high = find_result(report(), pred + "+CI_high");
    EXPECT_GT(ci_high->metrics.mistake_recurrence_ms.mean,
              ci_low->metrics.mistake_recurrence_ms.mean)
        << pred;
    EXPECT_GT(ci_high->metrics.detection_time_ms.mean,
              ci_low->metrics.detection_time_ms.mean)
        << pred;
    const auto* jac_low = find_result(report(), pred + "+JAC_low");
    const auto* jac_high = find_result(report(), pred + "+JAC_high");
    EXPECT_GT(jac_high->metrics.mistake_recurrence_ms.mean,
              jac_low->metrics.mistake_recurrence_ms.mean)
        << pred;
  }
}

TEST_F(ReproductionShapeTest, AccuratePredictorsAreInaccurateUnderJac) {
  // Paper §5.2/§6: the most accurate predictors (ARIMA, LAST here) get the
  // smallest error-driven margins, hence the *worst* accuracy under SM_JAC
  // — "a better predictor does not imply a better detector".
  // The 0.7 factor asserts a clear gap, not a precise ratio: with T_MR
  // sequences restarting at each crash (docs/qos_accounting.md) the crash-
  // spanning gaps that used to pad every detector's mean are gone, which
  // compresses the spread relative to the pre-fix 2x.
  const auto* arima = find_result(report(), "Arima+JAC_high");
  const auto* last = find_result(report(), "Last+JAC_high");
  const auto* mean = find_result(report(), "Mean+JAC_high");
  EXPECT_LT(arima->metrics.mistake_recurrence_ms.mean,
            mean->metrics.mistake_recurrence_ms.mean * 0.7);
  EXPECT_LT(last->metrics.mistake_recurrence_ms.mean,
            mean->metrics.mistake_recurrence_ms.mean * 0.7);
}

TEST_F(ReproductionShapeTest, LastJacIsTheFastestFamily) {
  // Paper §5.3: LAST+SM_JAC offers the best delay; its T_MR is the price.
  const auto* last_jac = find_result(report(), "Last+JAC_low");
  for (const auto& result : report().results) {
    EXPECT_GE(result.metrics.detection_time_ms.mean,
              last_jac->metrics.detection_time_ms.mean - 3.0)
        << result.name;
  }
}

TEST_F(ReproductionShapeTest, EveryCrashDetectedNoMistakesMissed) {
  for (const auto& result : report().results) {
    EXPECT_EQ(result.metrics.missed_detections, 0u) << result.name;
    EXPECT_GT(result.metrics.query_accuracy, 0.97) << result.name;
  }
}

TEST(ReproductionAccuracyShapeTest, ArimaIsTheMostAccuratePredictor) {
  // Paper Table 3's headline.
  AccuracyExperimentConfig config;
  config.n_oneway = 30000;
  config.seed = 42;
  const auto acc = run_accuracy_experiment(config);
  ASSERT_FALSE(acc.rows.empty());
  EXPECT_EQ(acc.rows.front().predictor, "ARIMA(2,1,1)");
  // MEAN and LAST trail the windowed predictors on this link.
  EXPECT_EQ(acc.rows.back().predictor == "MEAN" ||
                acc.rows.back().predictor == "LAST",
            true);
}

}  // namespace
}  // namespace fdqos::exp
