#include "exp/accuracy_experiment.hpp"

#include <gtest/gtest.h>

namespace fdqos::exp {
namespace {

AccuracyExperimentConfig small_config() {
  AccuracyExperimentConfig config;
  config.n_oneway = 8000;  // fast test-sized run
  config.seed = 7;
  return config;
}

TEST(AccuracyExperimentTest, GeneratesSeriesWithLoss) {
  const auto config = small_config();
  const auto series = generate_delay_series(config);
  EXPECT_LT(series.size(), config.n_oneway);      // some heartbeats lost
  EXPECT_GT(series.size(), config.n_oneway * 9 / 10);
  for (double d : series) {
    EXPECT_GE(d, 192.0);
    EXPECT_LE(d, 340.0);
  }
}

TEST(AccuracyExperimentTest, SeriesIsSeedDeterministic) {
  const auto a = generate_delay_series(small_config());
  const auto b = generate_delay_series(small_config());
  EXPECT_EQ(a, b);
  AccuracyExperimentConfig other = small_config();
  other.seed = 8;
  EXPECT_NE(generate_delay_series(other), a);
}

TEST(AccuracyExperimentTest, ScoresAllFivePredictors) {
  const auto report = run_accuracy_experiment(small_config());
  ASSERT_EQ(report.rows.size(), 5u);
  EXPECT_EQ(report.heartbeats_sent, 8000u);
  EXPECT_GT(report.delays_collected, 0u);
  for (const auto& row : report.rows) {
    EXPECT_GT(row.msqerr, 0.0) << row.predictor;
    EXPECT_GT(row.mean_abs_err, 0.0) << row.predictor;
  }
}

TEST(AccuracyExperimentTest, RowsSortedByAccuracy) {
  const auto report = run_accuracy_experiment(small_config());
  for (std::size_t i = 1; i < report.rows.size(); ++i) {
    EXPECT_LE(report.rows[i - 1].msqerr, report.rows[i].msqerr);
  }
}

TEST(AccuracyExperimentTest, DelaySummaryMatchesTable4Envelope) {
  const auto report = run_accuracy_experiment(small_config());
  EXPECT_NEAR(report.delays_ms.mean, 200.0, 5.0);
  EXPECT_GE(report.delays_ms.min, 192.0);
  EXPECT_LE(report.delays_ms.max, 340.0);
}

TEST(AccuracyExperimentTest, MsqerrValuesInPlausibleRange) {
  // The paper's Table 3 msqerr values are tens of ms² on a link with
  // σ = 7.6 ms; ours must be the same order of magnitude.
  const auto report = run_accuracy_experiment(small_config());
  for (const auto& row : report.rows) {
    EXPECT_LT(row.msqerr, 500.0) << row.predictor;
    EXPECT_GT(row.msqerr, 1.0) << row.predictor;
  }
}

}  // namespace
}  // namespace fdqos::exp
