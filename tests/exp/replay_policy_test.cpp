// Replay-policy and capture semantics of the QoS experiment:
//  * truncate: replaying a prefix trace ≡ running fewer cycles on the full
//    trace — the experiment ends with the trace, byte for byte.
//  * record_hub: per-run shard capture is deterministic at any jobs value
//    (and, under TSan, race-free — the make_fresh() clones of the old
//    shared-recorder design raced here).
//  * a recorded trace replays to byte-identical reports at jobs 1 and 8
//    (the paper's premise: the trace alone determines every detector).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"
#include "wan/italy_japan.hpp"
#include "wan/tracestore.hpp"

namespace fdqos::exp {
namespace {

QosExperimentConfig replay_config(const std::string& trace_path,
                                  std::size_t jobs) {
  QosExperimentConfig config;
  config.runs = 2;
  config.num_cycles = 600;
  config.seed = 7;
  config.jobs = jobs;
  config.trace_path = trace_path;
  config.replay_policy = wan::ReplayPolicy::kTruncate;
  return config;
}

// A trace captured the way `fdqos record` does it: the paper-default link
// model sampled once per heartbeat cycle.
wan::Trace paper_link_trace(std::size_t n, std::uint64_t seed) {
  auto hub = std::make_shared<wan::TraceRecorderHub>();
  wan::RecordingDelay model(wan::make_italy_japan_delay(), hub, /*key=*/0);
  Rng rng(seed);
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < n; ++i, t += Duration::seconds(1)) {
    model.sample(rng, t);
  }
  return hub->merged();
}

TEST(ReplayPolicyExperimentTest, TruncatePrefixEquivalence) {
  const wan::Trace full = paper_link_trace(1200, 21);
  wan::Trace prefix;
  prefix.send_times.assign(full.send_times.begin(),
                           full.send_times.begin() + 500);
  prefix.delays.assign(full.delays.begin(), full.delays.begin() + 500);

  const std::string full_path = ::testing::TempDir() + "/full_trace.fdt";
  const std::string prefix_path = ::testing::TempDir() + "/prefix_trace.csv";
  ASSERT_TRUE(save_trace_fdt(full, full_path));
  ASSERT_TRUE(save_trace_csv(prefix, prefix_path));

  // Full trace, explicitly stopped after 500 cycles...
  QosExperimentConfig on_full = replay_config(full_path, 1);
  on_full.num_cycles = 500;
  // ...must equal the 500-sample prefix trace with the cycle count left to
  // the truncate clamp (num_cycles 600 > trace length 500).
  const QosExperimentConfig on_prefix = replay_config(prefix_path, 1);

  const QosReport a = run_qos_experiment(on_full);
  const QosReport b = run_qos_experiment(on_prefix);
  std::remove(full_path.c_str());
  std::remove(prefix_path.c_str());
  EXPECT_EQ(qos_report_fingerprint(a), qos_report_fingerprint(b));
}

TEST(ReplayPolicyExperimentTest, RecordedTraceReplayIsByteIdenticalAcrossJobs) {
  const wan::Trace trace = paper_link_trace(700, 42);
  const std::string path = ::testing::TempDir() + "/recorded_replay.fdt";
  ASSERT_TRUE(save_trace_fdt(trace, path));

  const QosReport serial = run_qos_experiment(replay_config(path, 1));
  const QosReport parallel = run_qos_experiment(replay_config(path, 8));
  std::remove(path.c_str());

  EXPECT_EQ(qos_report_fingerprint(serial), qos_report_fingerprint(parallel));
  // The summary line names the trace and the policy.
  const std::string summary = qos_config_summary(serial.config);
  EXPECT_NE(summary.find("trace=" + path), std::string::npos) << summary;
  EXPECT_NE(summary.find("policy=truncate"), std::string::npos) << summary;
}

TEST(ReplayPolicyExperimentTest, RecordHubCaptureIsDeterministicAcrossJobs) {
  auto run_recorded = [](std::size_t jobs) {
    QosExperimentConfig config;
    config.runs = 4;
    config.num_cycles = 400;
    config.seed = 11;
    config.jobs = jobs;
    config.record_hub = std::make_shared<wan::TraceRecorderHub>();
    run_qos_experiment(config);
    return config.record_hub->merged();
  };

  const wan::Trace serial = run_recorded(1);
  const wan::Trace parallel = run_recorded(8);  // 4 runs race for 8 workers

  ASSERT_GT(serial.size(), 0u);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial.send_times[i], parallel.send_times[i]) << i;
    ASSERT_EQ(serial.delays[i], parallel.delays[i]) << i;
  }
}

TEST(ReplayPolicyExperimentTest, ChaosCaptureReplaysAsAnArtifact) {
  // Record the *faulted* delay stream of a chaos run, then drive a clean
  // replay experiment from it: the scenario becomes a portable artifact.
  QosExperimentConfig capture;
  capture.runs = 1;
  capture.num_cycles = 400;
  capture.seed = 7;
  capture.jobs = 1;
  capture.chaos_scenario = "spike_storm";
  capture.record_hub = std::make_shared<wan::TraceRecorderHub>();
  const QosReport chaos_report = run_qos_experiment(capture);

  const wan::Trace faulted = capture.record_hub->merged();
  ASSERT_GT(faulted.size(), 0u);
  // Recording wraps the outermost (faulted) delay model: one sample per
  // non-dropped heartbeat send.
  EXPECT_LE(faulted.size(),
            static_cast<std::size_t>(chaos_report.heartbeats_sent));

  const std::string path = ::testing::TempDir() + "/chaos_capture.fdt";
  ASSERT_TRUE(save_trace_fdt(faulted, path));
  const QosExperimentConfig replay = replay_config(path, 1);
  const QosReport replayed = run_qos_experiment(replay);
  std::remove(path.c_str());
  EXPECT_EQ(replayed.results.size(), 30u);
  // The replayed link has no loss model: everything sent is delivered.
  EXPECT_EQ(replayed.heartbeats_delivered, replayed.heartbeats_sent);
}

}  // namespace
}  // namespace fdqos::exp
