// PDES determinism suite: the conservative parallel engine (--sim-engine lp)
// must reproduce the sequential reference byte for byte — same report
// fingerprint at every LP count, every worker count and every seed, for the
// nominal experiment, for chaos (clock_step exercises the faultx lookahead
// shrink) and for trace replay. Runs under `ctest -L pdes` (and the TSan CI
// job, where the cross-LP handoffs are also race-checked).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"
#include "wan/italy_japan.hpp"
#include "wan/tracestore.hpp"

namespace fdqos::exp {
namespace {

constexpr std::uint64_t kSeeds[] = {7, 11, 13};
constexpr std::size_t kLpCounts[] = {1, 2, 8};
constexpr std::size_t kJobCounts[] = {1, 8};

// Reduced-scale config: short runs but with crashes guaranteed to be
// frequent relative to the horizon, so the detection/mistake tables carry
// real samples and a divergence anywhere in the pipeline changes bytes.
QosExperimentConfig small_config(std::uint64_t seed) {
  QosExperimentConfig config;
  config.runs = 2;
  config.num_cycles = 300;
  config.seed = seed;
  config.mttc = Duration::seconds(120);
  config.ttr = Duration::seconds(20);
  config.warmup = Duration::seconds(30);
  config.jobs = 1;
  return config;
}

std::string fingerprint(const QosExperimentConfig& config) {
  return qos_report_fingerprint(run_qos_experiment(config));
}

// For one base config: take the sequential fingerprint, then sweep the LP
// engine over the full lps × lp_jobs grid and demand byte identity.
void expect_lp_matches_seq(const QosExperimentConfig& base) {
  QosExperimentConfig seq = base;
  seq.sim_engine = SimEngine::kSeq;
  const std::string reference = fingerprint(seq);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t lps : kLpCounts) {
    for (const std::size_t lp_jobs : kJobCounts) {
      QosExperimentConfig lp = base;
      lp.sim_engine = SimEngine::kLp;
      lp.lps = lps;
      lp.lp_jobs = lp_jobs;
      EXPECT_EQ(fingerprint(lp), reference)
          << "lp engine diverged from seq at lps=" << lps
          << " lp_jobs=" << lp_jobs << " seed=" << base.seed
          << " chaos=" << base.chaos_scenario
          << " trace=" << base.trace_path;
    }
  }
}

TEST(PdesDeterminismTest, QosMatchesSequentialAcrossLpsJobsSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    expect_lp_matches_seq(small_config(seed));
  }
}

TEST(PdesDeterminismTest, ChaosClockStepMatchesSequential) {
  // clock_step makes the monitored clock jump forward: FaultyDelay's floor
  // shrinks by max_clock_advance() and the engine must stay conservative
  // (an optimistic lookahead here shows up as a byte diff or a debug
  // assert, and as a race under TSan).
  for (const std::uint64_t seed : kSeeds) {
    QosExperimentConfig config = small_config(seed);
    config.chaos_scenario = "clock_step";
    expect_lp_matches_seq(config);
  }
}

TEST(PdesDeterminismTest, TraceReplayMatchesSequential) {
  // A trace captured the way `fdqos record` does it: the paper-default
  // link model sampled once per heartbeat cycle.
  auto hub = std::make_shared<wan::TraceRecorderHub>();
  wan::RecordingDelay model(wan::make_italy_japan_delay(), hub, /*key=*/0);
  Rng rng(99);
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < 400; ++i, t += Duration::seconds(1)) {
    model.sample(rng, t);
  }
  const std::string path = ::testing::TempDir() + "/pdes_replay.fdt";
  ASSERT_TRUE(save_trace_fdt(hub->merged(), path));

  for (const std::uint64_t seed : kSeeds) {
    QosExperimentConfig config = small_config(seed);
    config.trace_path = path;
    config.replay_policy = wan::ReplayPolicy::kTruncate;
    expect_lp_matches_seq(config);
  }
  std::remove(path.c_str());
}

TEST(PdesDeterminismTest, OuterAndInnerParallelismCompose) {
  // Both nesting levels at once: concurrent runs (jobs) each driving a
  // multi-worker LP engine (lp_jobs). Still byte-identical to fully-serial.
  QosExperimentConfig serial = small_config(7);
  serial.runs = 4;
  const std::string reference = fingerprint(serial);

  QosExperimentConfig nested = serial;
  nested.jobs = 4;
  nested.sim_engine = SimEngine::kLp;
  nested.lps = 4;
  nested.lp_jobs = 2;
  EXPECT_EQ(fingerprint(nested), reference);
}

TEST(PdesDeterminismTest, LegacyDetectorEngineAlsoMatches) {
  // The per-spec FreshnessDetector layout shards differently (every lane
  // its own group) — the deferred-tracker merge must not care.
  QosExperimentConfig seq = small_config(11);
  seq.use_detector_bank = false;
  const std::string reference = fingerprint(seq);

  QosExperimentConfig lp = seq;
  lp.sim_engine = SimEngine::kLp;
  lp.lps = 8;
  lp.lp_jobs = 8;
  EXPECT_EQ(fingerprint(lp), reference);
}

TEST(PdesDeterminismTest, LpEngineReportsCoordinatorCounters) {
  QosExperimentConfig config = small_config(7);
  config.sim_engine = SimEngine::kLp;
  config.lps = 4;
  config.lp_jobs = 1;
  const QosReport report = run_qos_experiment(config);
  // Observability-only fields: populated under kLp...
  EXPECT_GT(report.sim_rounds, 0u);
  EXPECT_GT(report.sim_cross_lp_messages, 0u);
  // ...and absent from the fingerprint (asserted structurally above by the
  // seq-vs-lp identity; here just pin the seq side to zero).
  QosExperimentConfig seq = small_config(7);
  const QosReport seq_report = run_qos_experiment(seq);
  EXPECT_EQ(seq_report.sim_rounds, 0u);
  EXPECT_EQ(seq_report.sim_cross_lp_messages, 0u);
}

}  // namespace
}  // namespace fdqos::exp
