#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fdqos::exp {
namespace {

QosReport fake_report() {
  QosReport report;
  int k = 0;
  for (const auto& pred : fd::paper_predictor_labels()) {
    for (const auto& margin : fd::paper_margin_labels()) {
      FdQosResult result;
      result.name = pred + "+" + margin;
      result.predictor_label = pred;
      result.margin_label = margin;
      result.metrics.detection_time_ms.mean = 1000.0 + k;
      result.metrics.detection_time_ms.max = 2000.0 + k;
      result.metrics.mistake_duration_ms.mean = 300.0 + k;
      result.metrics.mistake_recurrence_ms.mean = 30000.0 + k;
      result.metrics.query_accuracy = 0.99;
      report.results.push_back(result);
      ++k;
    }
  }
  return report;
}

TEST(ReportTest, MetricValueSelectsRightField) {
  const auto report = fake_report();
  const auto& r = report.results[0];
  EXPECT_DOUBLE_EQ(metric_value(r, QosMetricKind::kTd), 1000.0);
  EXPECT_DOUBLE_EQ(metric_value(r, QosMetricKind::kTdU), 2000.0);
  EXPECT_DOUBLE_EQ(metric_value(r, QosMetricKind::kTm), 300.0);
  EXPECT_DOUBLE_EQ(metric_value(r, QosMetricKind::kTmr), 30000.0);
  EXPECT_DOUBLE_EQ(metric_value(r, QosMetricKind::kPa), 0.99);
}

TEST(ReportTest, MetricMetadata) {
  EXPECT_STREQ(metric_figure(QosMetricKind::kTd), "Figure 4");
  EXPECT_STREQ(metric_figure(QosMetricKind::kPa), "Figure 8");
  EXPECT_TRUE(metric_smaller_is_better(QosMetricKind::kTm));
  EXPECT_FALSE(metric_smaller_is_better(QosMetricKind::kPa));
  EXPECT_STREQ(metric_unit(QosMetricKind::kTd), "ms");
  EXPECT_STREQ(metric_unit(QosMetricKind::kPa), "");
}

TEST(ReportTest, QosTableHasMarginRowsAndPredictorColumns) {
  const auto table = qos_metric_table(fake_report(), QosMetricKind::kTd);
  const std::string ascii = table.to_ascii();
  for (const auto& margin : fd::paper_margin_labels()) {
    EXPECT_NE(ascii.find(margin), std::string::npos) << margin;
  }
  for (const auto& pred : fd::paper_predictor_labels()) {
    EXPECT_NE(ascii.find(pred), std::string::npos) << pred;
  }
  EXPECT_NE(ascii.find("Figure 4"), std::string::npos);
  EXPECT_EQ(table.row_count(), 6u);
}

TEST(ReportTest, QosTableCellsMatchResults) {
  const auto report = fake_report();
  const auto csv = qos_metric_table(report, QosMetricKind::kTd).to_csv();
  // First result is Arima+CI_low with T_D = 1000.0.
  EXPECT_NE(csv.find("CI_low,1000.0"), std::string::npos);
}

TEST(ReportTest, AccuracyTableListsPredictors) {
  AccuracyReport acc;
  acc.rows.push_back({"ARIMA(2,1,1)", 10.0, 2.0});
  acc.rows.push_back({"MEAN", 30.0, 4.0});
  const std::string ascii = accuracy_table(acc).to_ascii();
  EXPECT_NE(ascii.find("ARIMA(2,1,1)"), std::string::npos);
  EXPECT_NE(ascii.find("Table 3"), std::string::npos);
  EXPECT_NE(ascii.find("10.000"), std::string::npos);
}

TEST(ReportTest, LinkTableEchoesCharacteristics) {
  wan::LinkCharacteristics link;
  link.delay_ms.mean = 201.5;
  link.delay_ms.stddev = 7.6;
  link.delay_ms.min = 192.0;
  link.delay_ms.max = 338.0;
  link.loss_probability = 0.005;
  const std::string ascii = link_table(link).to_ascii();
  EXPECT_NE(ascii.find("201.5"), std::string::npos);
  EXPECT_NE(ascii.find("7.6"), std::string::npos);
  EXPECT_NE(ascii.find("0.50 %"), std::string::npos);
  EXPECT_NE(ascii.find("18"), std::string::npos);  // modelled hop count
}

TEST(ParetoFrontTest, DominatedResultsExcluded) {
  QosReport report;
  auto add = [&](const char* name, double td, double pa) {
    FdQosResult r;
    r.name = name;
    r.metrics.detection_time_ms.mean = td;
    r.metrics.query_accuracy = pa;
    report.results.push_back(r);
  };
  add("fast-sloppy", 600.0, 0.990);
  add("slow-accurate", 800.0, 0.999);
  add("balanced", 700.0, 0.995);
  add("dominated", 750.0, 0.992);   // worse than balanced on both
  add("duplicate-worse", 900.0, 0.990);  // dominated by everyone useful

  const auto front =
      pareto_front(report, QosMetricKind::kTd, QosMetricKind::kPa);
  std::vector<std::string> names;
  for (const auto* r : front) names.push_back(r->name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"fast-sloppy", "balanced",
                                      "slow-accurate"}));
}

TEST(ParetoFrontTest, SingleResultIsItsOwnFront) {
  QosReport report;
  FdQosResult r;
  r.name = "only";
  report.results.push_back(r);
  EXPECT_EQ(pareto_front(report, QosMetricKind::kTd, QosMetricKind::kPa).size(),
            1u);
}

TEST(ParetoFrontTest, TableListsFrontMembers) {
  const auto report = fake_report();
  const auto table = pareto_table(report);
  EXPECT_GE(table.row_count(), 1u);
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("Pareto front"), std::string::npos);
}

TEST(ParetoFrontTest, PaperSuiteFrontIsNotASingleton) {
  // The paper's §5.3 claim: no detector is best at both speed and
  // accuracy. Verified on a real (small) experiment.
  exp::QosExperimentConfig config;
  config.runs = 2;
  config.num_cycles = 2000;
  config.seed = 11;
  const auto report = run_qos_experiment(config);
  const auto front =
      pareto_front(report, QosMetricKind::kTd, QosMetricKind::kPa);
  EXPECT_GE(front.size(), 2u) << "a single detector dominated the grid";
  EXPECT_LT(front.size(), report.results.size());
}

TEST(ReportTest, VariabilityTableShowsPerRunSpread) {
  QosReport report;
  FdQosResult r;
  r.name = "Last+JAC_low";
  r.per_run_td_mean_ms.count = 3;
  r.per_run_td_mean_ms.mean = 680.0;
  r.per_run_td_mean_ms.stddev = 12.5;
  r.per_run_availability.count = 3;
  r.per_run_availability.mean = 0.995;
  r.per_run_availability.stddev = 0.0002;
  report.results.push_back(r);
  const std::string ascii = qos_variability_table(report).to_ascii();
  EXPECT_NE(ascii.find("680.0 ± 12.5"), std::string::npos);
  EXPECT_NE(ascii.find("0.995000 ± 0.000200"), std::string::npos);
  EXPECT_NE(ascii.find("Last+JAC_low"), std::string::npos);
}

TEST(ReportTest, ConfigSummaryMentionsPaperParameters) {
  QosExperimentConfig config;
  const std::string s = qos_config_summary(config);
  EXPECT_NE(s.find("runs=13"), std::string::npos);
  EXPECT_NE(s.find("NumCycles=10000"), std::string::npos);
  EXPECT_NE(s.find("MTTC=300"), std::string::npos);
  EXPECT_NE(s.find("TTR=30"), std::string::npos);
}

}  // namespace
}  // namespace fdqos::exp
