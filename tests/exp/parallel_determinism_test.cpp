// Determinism contract of the parallel experiment engine: every jobs value
// must produce the same bytes. Runs fork their RNG from (seed, run) and the
// pooled statistics are merged in run order after the join, so jobs = 1 and
// jobs = 8 walk the exact same arithmetic (see docs/parallelism.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/accuracy_experiment.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"
#include "forecast/arima/order_selection.hpp"
#include "wan/italy_japan.hpp"
#include "wan/trace.hpp"

namespace fdqos::exp {
namespace {

QosExperimentConfig small_config(std::size_t jobs) {
  QosExperimentConfig config;
  config.runs = 4;
  config.num_cycles = 800;
  config.seed = 7;
  config.jobs = jobs;
  return config;
}

void expect_identical_summaries(const stats::Summary& a,
                                const stats::Summary& b,
                                const std::string& what) {
  EXPECT_EQ(a.count, b.count) << what;
  // Bit-identical, not approximately equal: the merge order is fixed.
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.variance, b.variance) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
  EXPECT_EQ(a.sum, b.sum) << what;
  if (a.count > 0) {
    EXPECT_EQ(a.min, b.min) << what;
    EXPECT_EQ(a.max, b.max) << what;
  }
}

void expect_identical_reports(const QosReport& serial,
                              const QosReport& parallel) {
  EXPECT_EQ(serial.total_crashes, parallel.total_crashes);
  EXPECT_EQ(serial.heartbeats_sent, parallel.heartbeats_sent);
  EXPECT_EQ(serial.heartbeats_delivered, parallel.heartbeats_delivered);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    const FdQosResult& s = serial.results[i];
    const FdQosResult& p = parallel.results[i];
    EXPECT_EQ(s.name, p.name);
    expect_identical_summaries(s.metrics.detection_time_ms,
                               p.metrics.detection_time_ms, s.name + " T_D");
    expect_identical_summaries(s.metrics.mistake_duration_ms,
                               p.metrics.mistake_duration_ms, s.name + " T_M");
    expect_identical_summaries(s.metrics.mistake_recurrence_ms,
                               p.metrics.mistake_recurrence_ms,
                               s.name + " T_MR");
    EXPECT_EQ(s.metrics.query_accuracy, p.metrics.query_accuracy) << s.name;
    EXPECT_EQ(s.metrics.availability, p.metrics.availability) << s.name;
    EXPECT_EQ(s.metrics.crashes_observed, p.metrics.crashes_observed)
        << s.name;
    EXPECT_EQ(s.metrics.detections, p.metrics.detections) << s.name;
    EXPECT_EQ(s.metrics.missed_detections, p.metrics.missed_detections)
        << s.name;
    EXPECT_EQ(s.metrics.mistakes, p.metrics.mistakes) << s.name;
    expect_identical_summaries(s.per_run_td_mean_ms, p.per_run_td_mean_ms,
                               s.name + " per-run T_D");
    expect_identical_summaries(s.per_run_availability, p.per_run_availability,
                               s.name + " per-run P_A");
  }
  // And the user-facing rendering, byte for byte.
  for (const auto kind :
       {QosMetricKind::kTd, QosMetricKind::kTdU, QosMetricKind::kTm,
        QosMetricKind::kTmr, QosMetricKind::kPa}) {
    EXPECT_EQ(qos_metric_table(serial, kind).to_csv(),
              qos_metric_table(parallel, kind).to_csv());
  }
}

TEST(ParallelDeterminismTest, QosReportIsIdenticalAcrossJobCounts) {
  const QosReport serial = run_qos_experiment(small_config(1));
  const QosReport parallel = run_qos_experiment(small_config(8));
  expect_identical_reports(serial, parallel);
}

TEST(ParallelDeterminismTest, QosTraceReplayIsIdenticalAcrossJobCounts) {
  // Shared immutable trace data (loaded once, one replay cursor per run)
  // must not perturb determinism either.
  const std::string path =
      ::testing::TempDir() + "/parallel_determinism_trace.csv";
  {
    auto hub = std::make_shared<wan::TraceRecorderHub>();
    wan::RecordingDelay model(wan::make_italy_japan_delay(), hub, /*key=*/0);
    Rng rng(99);
    TimePoint t = TimePoint::origin();
    for (int i = 0; i < 2000; ++i, t += Duration::seconds(1)) {
      model.sample(rng, t);
    }
    ASSERT_TRUE(model.recorder().save(path));
  }
  QosExperimentConfig config = small_config(1);
  config.runs = 2;
  config.trace_path = path;
  const QosReport serial = run_qos_experiment(config);
  config.jobs = 8;
  const QosReport parallel = run_qos_experiment(config);
  expect_identical_reports(serial, parallel);
  std::remove(path.c_str());
}

TEST(ParallelDeterminismTest, AccuracyReportIsIdenticalAcrossJobCounts) {
  AccuracyExperimentConfig config;
  config.n_oneway = 4000;
  config.seed = 5;
  config.jobs = 1;
  const AccuracyReport serial = run_accuracy_experiment(config);
  config.jobs = 8;
  const AccuracyReport parallel = run_accuracy_experiment(config);
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].predictor, parallel.rows[i].predictor);
    EXPECT_EQ(serial.rows[i].msqerr, parallel.rows[i].msqerr);
    EXPECT_EQ(serial.rows[i].mean_abs_err, parallel.rows[i].mean_abs_err);
  }
}

TEST(ParallelDeterminismTest, OrderSelectionBestIsIdenticalAcrossJobCounts) {
  AccuracyExperimentConfig acc;
  acc.n_oneway = 3000;
  acc.seed = 42;
  const auto series = generate_delay_series(acc);

  forecast::OrderSelectionConfig selection;
  selection.max_order = forecast::ArimaOrder{2, 1, 2};
  selection.jobs = 1;
  const auto serial = forecast::select_arima_order(series, selection);
  selection.jobs = 8;
  const auto parallel = forecast::select_arima_order(series, selection);

  EXPECT_TRUE(serial.best == parallel.best)
      << serial.best.to_string() << " vs " << parallel.best.to_string();
  EXPECT_EQ(serial.best_msqerr, parallel.best_msqerr);
  ASSERT_EQ(serial.candidates.size(), parallel.candidates.size());
  for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
    EXPECT_TRUE(serial.candidates[i].order == parallel.candidates[i].order);
    EXPECT_EQ(serial.candidates[i].fitted, parallel.candidates[i].fitted);
    EXPECT_EQ(serial.candidates[i].holdout_msqerr,
              parallel.candidates[i].holdout_msqerr);
  }
}

TEST(ParallelDeterminismTest, GridScanOrderAndFailReasonsPreserved) {
  // The flat-indexed parallel grid must keep the serial loop's (p, d, q)
  // scan order, and candidates that fail to fit must say why.
  std::vector<double> tiny;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) tiny.push_back(rng.normal());
  forecast::OrderSelectionConfig selection;
  selection.max_order = forecast::ArimaOrder{2, 1, 2};
  // A 16-point train split cannot support the larger (p, q) fits.
  selection.train_fraction = 0.4;
  selection.jobs = 4;
  const auto result = forecast::select_arima_order(tiny, selection);
  ASSERT_EQ(result.candidates.size(), 3u * 2u * 3u);
  std::size_t idx = 0;
  bool saw_failure = false;
  for (std::size_t p = 0; p <= 2; ++p) {
    for (std::size_t d = 0; d <= 1; ++d) {
      for (std::size_t q = 0; q <= 2; ++q, ++idx) {
        const auto& cand = result.candidates[idx];
        EXPECT_TRUE((cand.order == forecast::ArimaOrder{p, d, q}));
        if (!cand.fitted) {
          saw_failure = true;
          EXPECT_NE(cand.fail_reason, nullptr) << cand.order.to_string();
        } else {
          EXPECT_EQ(cand.fail_reason, nullptr) << cand.order.to_string();
        }
      }
    }
  }
  EXPECT_TRUE(saw_failure);
}

}  // namespace
}  // namespace fdqos::exp
