#include "exp/qos_experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "wan/trace.hpp"

namespace fdqos::exp {
namespace {

// Small but statistically meaningful configuration: 2 runs × 2000 cycles
// gives ~12 crashes — enough to check structure, not paper-grade stats.
QosExperimentConfig small_config() {
  QosExperimentConfig config;
  config.runs = 2;
  config.num_cycles = 2000;
  config.seed = 11;
  return config;
}

class QosExperimentTest : public ::testing::Test {
 protected:
  static const QosReport& report() {
    static const QosReport kReport = run_qos_experiment(small_config());
    return kReport;
  }
};

TEST_F(QosExperimentTest, ProducesThirtyResults) {
  EXPECT_EQ(report().results.size(), 30u);
}

TEST_F(QosExperimentTest, CrashesInjectedAtExpectedRate) {
  // ~2000 s per run, MTTC+TTR = 330 s -> ~6 crashes per run.
  const auto crashes_per_run =
      static_cast<double>(report().total_crashes) / 2.0;
  EXPECT_GT(crashes_per_run, 3.0);
  EXPECT_LT(crashes_per_run, 9.0);
}

TEST_F(QosExperimentTest, EveryDetectorDetectsEveryCrash) {
  // TTR = 30 s >> any timeout here, so no detector may miss a crash.
  for (const auto& result : report().results) {
    EXPECT_EQ(result.metrics.missed_detections, 0u) << result.name;
    EXPECT_GT(result.metrics.detections, 0u) << result.name;
  }
}

TEST_F(QosExperimentTest, DetectionTimesAreInPlausibleBand) {
  // T_D is bounded below by the post-crash residual of the current cycle
  // and above by η + δ; with η = 1 s and δ ≈ 0.2–1 s the mean must fall
  // in (200 ms, 2.5 s).
  for (const auto& result : report().results) {
    const double td = result.metrics.detection_time_ms.mean;
    EXPECT_GT(td, 200.0) << result.name;
    EXPECT_LT(td, 2500.0) << result.name;
  }
}

TEST_F(QosExperimentTest, AvailabilityIsHighForAllDetectors) {
  for (const auto& result : report().results) {
    EXPECT_GT(result.metrics.availability, 0.9) << result.name;
    EXPECT_LE(result.metrics.availability, 1.0) << result.name;
    EXPECT_GE(result.metrics.query_accuracy, 0.0) << result.name;
    EXPECT_LE(result.metrics.query_accuracy, 1.0) << result.name;
  }
}

TEST_F(QosExperimentTest, HeartbeatsFlowed) {
  EXPECT_GT(report().heartbeats_sent, 3000u);
  EXPECT_GT(report().heartbeats_delivered, 3000u);
  EXPECT_LE(report().heartbeats_delivered, report().heartbeats_sent);
}

TEST_F(QosExperimentTest, FindResultLookup) {
  EXPECT_NE(find_result(report(), "Last+JAC_low"), nullptr);
  EXPECT_NE(find_result(report(), "Arima+CI_high"), nullptr);
  EXPECT_EQ(find_result(report(), "NoSuch+FD"), nullptr);
}

TEST_F(QosExperimentTest, HigherGammaNeverSpeedsDetection) {
  // Within a predictor, CI_high has a strictly larger margin than CI_low,
  // so its detection time cannot be smaller.
  for (const char* pred : {"Arima", "Last", "LPF", "Mean", "WinMean"}) {
    const auto* low = find_result(report(), std::string(pred) + "+CI_low");
    const auto* high = find_result(report(), std::string(pred) + "+CI_high");
    ASSERT_NE(low, nullptr);
    ASSERT_NE(high, nullptr);
    EXPECT_GE(high->metrics.detection_time_ms.mean,
              low->metrics.detection_time_ms.mean - 1.0)
        << pred;
  }
}

TEST_F(QosExperimentTest, HigherGammaImprovesOrMaintainsAccuracy) {
  for (const char* pred : {"Arima", "Last", "LPF", "Mean", "WinMean"}) {
    const auto* low = find_result(report(), std::string(pred) + "+CI_low");
    const auto* high = find_result(report(), std::string(pred) + "+CI_high");
    EXPECT_GE(high->metrics.availability, low->metrics.availability - 1e-3)
        << pred;
  }
}

TEST_F(QosExperimentTest, PerRunStatsCoverEveryRun) {
  for (const auto& result : report().results) {
    EXPECT_EQ(result.per_run_td_mean_ms.count, 2u) << result.name;
    EXPECT_EQ(result.per_run_availability.count, 2u) << result.name;
    // The pooled mean must lie within the per-run spread.
    EXPECT_GE(result.metrics.detection_time_ms.mean,
              result.per_run_td_mean_ms.min - 1e-9);
    EXPECT_LE(result.metrics.detection_time_ms.mean,
              result.per_run_td_mean_ms.max + 1e-9);
  }
}

TEST(QosExperimentDeterminismTest, SameSeedSameResults) {
  QosExperimentConfig config;
  config.runs = 1;
  config.num_cycles = 600;
  config.seed = 3;
  const QosReport a = run_qos_experiment(config);
  const QosReport b = run_qos_experiment(config);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.results[i].metrics.detection_time_ms.mean,
                     b.results[i].metrics.detection_time_ms.mean);
    EXPECT_DOUBLE_EQ(a.results[i].metrics.availability,
                     b.results[i].metrics.availability);
  }
}

TEST(QosExperimentTraceTest, RunsOnRecordedTrace) {
  // Record a short trace from the synthetic link, then drive the whole
  // experiment from it: same architecture, replayed delays, no loss model.
  auto hub = std::make_shared<wan::TraceRecorderHub>();
  {
    wan::RecordingDelay model(wan::make_italy_japan_delay(), hub, /*key=*/0);
    Rng rng(5);
    TimePoint t = TimePoint::origin();
    for (int i = 0; i < 1500; ++i, t += Duration::seconds(1)) {
      model.sample(rng, t);
    }
  }
  const std::string path = ::testing::TempDir() + "/fdqos_qos_trace.csv";
  ASSERT_TRUE(hub->shard(0).save(path));

  QosExperimentConfig config;
  config.runs = 1;
  config.num_cycles = 1200;
  config.seed = 9;
  config.trace_path = path;
  const QosReport report = run_qos_experiment(config);
  std::remove(path.c_str());

  EXPECT_EQ(report.results.size(), 30u);
  // No loss model on the replayed link: every sent heartbeat that predates
  // the crash windows is delivered.
  EXPECT_EQ(report.heartbeats_delivered, report.heartbeats_sent);
  for (const auto& result : report.results) {
    EXPECT_GT(result.metrics.detections, 0u) << result.name;
  }
}

TEST(QosExperimentProgressTest, EmitsTelemetryLines) {
  QosExperimentConfig config;
  config.runs = 1;
  config.num_cycles = 400;
  config.include_paper_suite = false;
  config.include_constant_baseline = true;
  config.progress_interval_s = 0.001;  // every tick is due at this interval
  ::testing::internal::CaptureStderr();
  run_qos_experiment(config);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[fdqos qos] run 1/1"), std::string::npos);
  EXPECT_NE(err.find("suspecting="), std::string::npos);
  EXPECT_NE(err.find("[fdqos qos] done: 1 runs"), std::string::npos);
}

TEST(QosExperimentSuiteDeathTest, DuplicateDetectorNameAborts) {
  // extra_specs share one namespace with the paper suite: a spec reusing
  // "Last+CI_low" would silently alias the paper's detector in figures and
  // in the bank's lanes. The experiment must refuse loudly instead.
  QosExperimentConfig config;
  config.runs = 1;
  config.num_cycles = 100;
  fd::FdSpec dup;
  dup.name = "Last+CI_low";
  dup.predictor_label = "Last";
  dup.margin_label = "CI_low";
  dup.make_predictor = fd::make_paper_predictor("Last");
  dup.make_margin = fd::make_paper_margin("CI_low");
  config.extra_specs.push_back(dup);
  EXPECT_DEATH(run_qos_experiment(config), "duplicate detector name");

  // Two extra specs colliding with each other die the same way.
  QosExperimentConfig config2;
  config2.runs = 1;
  config2.num_cycles = 100;
  config2.include_paper_suite = false;
  fd::FdSpec a = dup;
  a.name = "mine";
  config2.extra_specs.push_back(a);
  config2.extra_specs.push_back(a);
  EXPECT_DEATH(run_qos_experiment(config2), "duplicate detector name");

  // As do unnamed specs.
  QosExperimentConfig config3;
  config3.runs = 1;
  config3.num_cycles = 100;
  config3.include_paper_suite = false;
  fd::FdSpec unnamed = dup;
  unnamed.name.clear();
  config3.extra_specs.push_back(unnamed);
  EXPECT_DEATH(run_qos_experiment(config3), "empty name");
}

TEST(QosExperimentBaselineTest, ConstantBaselineAppended) {
  QosExperimentConfig config;
  config.runs = 1;
  config.num_cycles = 600;
  config.seed = 5;
  config.include_constant_baseline = true;
  config.baseline_margin_ms = 100.0;
  const QosReport report = run_qos_experiment(config);
  EXPECT_EQ(report.results.size(), 35u);
  EXPECT_NE(find_result(report, "Mean+CONST"), nullptr);  // NFD-E
}

}  // namespace
}  // namespace fdqos::exp
