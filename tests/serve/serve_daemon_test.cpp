// In-process end-to-end coverage for serve::ServeDaemon: a real loopback
// socket feeds single "FDQ1" heartbeats, a packed "FDQB" batch, capacity
// overflow and garbage at a running daemon; stats, fleet counters and the
// captured .fdt segments (via load_trace) must all agree on what happened.
// Stats are only read after run() returns — the daemon thread owns them
// while it runs.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/codec.hpp"
#include "serve/daemon.hpp"
#include "wan/tracestore.hpp"

namespace fdqos::serve {
namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class LoopbackSender {
 public:
  explicit LoopbackSender(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    std::memset(&dest_, 0, sizeof dest_);
    dest_.sin_family = AF_INET;
    dest_.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &dest_.sin_addr);
  }
  ~LoopbackSender() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::vector<std::uint8_t>& bytes) {
    ASSERT_GE(fd_, 0);
    const ssize_t n =
        ::sendto(fd_, bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dest_), sizeof dest_);
    ASSERT_EQ(n, static_cast<ssize_t>(bytes.size()));
  }

  void send_heartbeat(net::NodeId from, std::int64_t seq) {
    net::Message msg;
    msg.from = from;
    msg.to = 0;
    msg.type = net::MessageType::kHeartbeat;
    msg.seq = seq;
    msg.send_time = TimePoint::from_nanos(wall_ns());
    send(net::encode_message(msg));
  }

 private:
  int fd_ = -1;
  sockaddr_in dest_{};
};

ServeConfig test_config(const std::string& prefix) {
  ServeConfig config;
  config.port = 0;
  config.max_endpoints = 4;
  config.eta = Duration::millis(50);
  config.batch = 8;
  config.capture_dir = testing::TempDir();
  config.capture_prefix = prefix;
  config.segment_samples = 16;
  config.run_id = "serve-test-" + prefix;
  return config;
}

// Polls the daemon-side predicate from the sender thread. Reading Stats
// while run() is live is a benign test-only race on plain uint64 counters;
// assertions only ever run on post-join values.
template <typename Pred>
bool wait_for(Pred pred, std::chrono::milliseconds limit) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(ServeDaemon, IngestsSinglePackedOverflowAndGarbage) {
  ServeDaemon daemon(test_config("e2e"));
  ASSERT_TRUE(daemon.init());
  ASSERT_NE(daemon.udp_port(), 0);

  std::thread runner([&] { EXPECT_EQ(daemon.run(), 0); });

  LoopbackSender sender(daemon.udp_port());
  // 3 sources × 5 single-frame heartbeats.
  for (std::int64_t seq = 1; seq <= 5; ++seq) {
    for (net::NodeId src = 101; src <= 103; ++src) {
      sender.send_heartbeat(src, seq);
    }
  }
  // One packed batch: source 104 takes the last slot, 105 overflows.
  std::vector<std::uint8_t> packed;
  net::begin_packed_batch(packed);
  for (std::int64_t seq = 1; seq <= 3; ++seq) {
    net::append_packed_heartbeat(packed, 104, seq,
                                 TimePoint::from_nanos(wall_ns()));
    net::append_packed_heartbeat(packed, 105, seq,
                                 TimePoint::from_nanos(wall_ns()));
  }
  net::finish_packed_batch(packed);
  sender.send(packed);
  // Garbage datagram: a decode drop, never a crash.
  sender.send({0xba, 0xad, 0xf0, 0x0d});

  // 15 singles + 3 admitted from the packed batch.
  EXPECT_TRUE(wait_for([&] { return daemon.stats().heartbeats >= 18; },
                       std::chrono::seconds(5)));
  daemon.request_stop();
  runner.join();

  const ServeDaemon::Stats& stats = daemon.stats();
  EXPECT_EQ(stats.heartbeats, 18u);
  EXPECT_EQ(stats.datagrams, 17u);  // 15 singles + packed + garbage
  EXPECT_EQ(stats.drops_decode, 1u);
  EXPECT_EQ(stats.drops_capacity, 3u);  // source 105, three times
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.captured, stats.heartbeats);

  EXPECT_EQ(daemon.ingest().admitted(), 4u);
  EXPECT_EQ(daemon.fleet().counters().heartbeats, stats.heartbeats);

  // Rotation at 16 samples: 18 captured ⇒ one rotated + one final segment,
  // and each must load as a valid trace on its own.
  const auto segments = daemon.capture_segments();
  ASSERT_EQ(segments.size(), 2u);
  std::uint64_t loaded_samples = 0;
  for (const auto& path : segments) {
    const auto loaded = wan::load_trace(path);
    ASSERT_TRUE(loaded.ok()) << path << ": " << loaded.error;
    loaded_samples += loaded.trace->size();
    for (const Duration delay : loaded.trace->delays) {
      EXPECT_GE(delay.count_nanos(), 0);
      EXPECT_LT(delay.to_seconds_double(), 10.0);  // loopback, same clock
    }
  }
  EXPECT_EQ(loaded_samples, stats.captured);
}

TEST(ServeDaemon, DurationBoundedRunFinishesByItself) {
  ServeConfig config = test_config("bounded");
  config.capture = false;
  config.duration = Duration::millis(150);
  ServeDaemon daemon(std::move(config));
  ASSERT_TRUE(daemon.init());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(daemon.run(), 0);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(140));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_TRUE(daemon.capture_segments().empty());
}

TEST(ServeDaemon, StopBeforeAnyTrafficShutsDownCleanly) {
  ServeDaemon daemon(test_config("idle"));
  ASSERT_TRUE(daemon.init());
  std::thread runner([&] { EXPECT_EQ(daemon.run(), 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  daemon.request_stop();
  runner.join();
  EXPECT_EQ(daemon.stats().heartbeats, 0u);
  // No samples ⇒ the empty live segment was deleted, not finalized.
  EXPECT_TRUE(daemon.capture_segments().empty());
}

TEST(ServeDaemon, InitFailsOnUnknownSuite) {
  ServeConfig config = test_config("badsuite");
  config.suite = "no-such-suite";
  ServeDaemon daemon(std::move(config));
  EXPECT_FALSE(daemon.init());
  EXPECT_EQ(daemon.run(), 1);
}

TEST(ServeDaemon, InitFailsOnHostnameBindAddress) {
  ServeConfig config = test_config("badhost");
  config.host = "serve.example.com";
  ServeDaemon daemon(std::move(config));
  EXPECT_FALSE(daemon.init());
}

TEST(ServeDaemon, SingleRecvPathBehavesLikeRecvmmsg) {
  ServeConfig config = test_config("single");
  config.force_single_recv = true;
  ServeDaemon daemon(std::move(config));
  ASSERT_TRUE(daemon.init());
  std::thread runner([&] { EXPECT_EQ(daemon.run(), 0); });

  LoopbackSender sender(daemon.udp_port());
  for (std::int64_t seq = 1; seq <= 4; ++seq) sender.send_heartbeat(7, seq);

  EXPECT_TRUE(wait_for([&] { return daemon.stats().heartbeats >= 4; },
                       std::chrono::seconds(5)));
  daemon.request_stop();
  runner.join();
  EXPECT_EQ(daemon.stats().heartbeats, 4u);
  EXPECT_EQ(daemon.ingest().admitted(), 1u);
}

}  // namespace
}  // namespace fdqos::serve
