#include "faultx/fault_schedule.hpp"

#include <gtest/gtest.h>

namespace fdqos::faultx {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::from_millis_double(s * 1000.0);
}

TEST(FaultScheduleTest, EmptyScheduleIsInert) {
  FaultSchedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.event_count(), 0u);
  EXPECT_EQ(s.deterministic_extra_delay(at_s(10)), Duration::zero());
  EXPECT_EQ(s.clock_hold(at_s(10)), Duration::zero());
  EXPECT_FALSE(s.link_down(at_s(10)));
  EXPECT_EQ(s.duplicate_prob(at_s(10)), 0.0);
  Rng rng(1);
  EXPECT_EQ(s.reorder_extra(rng, at_s(10)), Duration::zero());
  EXPECT_TRUE(s.describe().empty());
}

TEST(FaultScheduleTest, SpikeWindowIsHalfOpen) {
  FaultSchedule s;
  s.spike(at_s(100), Duration::seconds(10), Duration::millis(500));
  EXPECT_EQ(s.deterministic_extra_delay(at_s(99.999)), Duration::zero());
  EXPECT_EQ(s.deterministic_extra_delay(at_s(100)), Duration::millis(500));
  EXPECT_EQ(s.deterministic_extra_delay(at_s(109.999)), Duration::millis(500));
  EXPECT_EQ(s.deterministic_extra_delay(at_s(110)), Duration::zero());
}

TEST(FaultScheduleTest, OverlappingSpikesAdd) {
  FaultSchedule s;
  s.spike(at_s(0), Duration::seconds(20), Duration::millis(100))
      .spike(at_s(10), Duration::seconds(20), Duration::millis(50));
  EXPECT_EQ(s.deterministic_extra_delay(at_s(5)), Duration::millis(100));
  EXPECT_EQ(s.deterministic_extra_delay(at_s(15)), Duration::millis(150));
  EXPECT_EQ(s.deterministic_extra_delay(at_s(25)), Duration::millis(50));
}

TEST(FaultScheduleTest, RampRisesLinearlyThenVanishes) {
  FaultSchedule s;
  s.ramp(at_s(100), Duration::seconds(100), Duration::millis(2000));
  EXPECT_EQ(s.deterministic_extra_delay(at_s(100)), Duration::zero());
  EXPECT_NEAR(s.deterministic_extra_delay(at_s(150)).to_millis_double(),
              1000.0, 1e-6);
  EXPECT_NEAR(s.deterministic_extra_delay(at_s(175)).to_millis_double(),
              1500.0, 1e-6);
  // The window is half-open: at start+duration the queue has drained.
  EXPECT_EQ(s.deterministic_extra_delay(at_s(200)), Duration::zero());
}

TEST(FaultScheduleTest, PartitionAndFlapDriveLinkDown) {
  FaultSchedule s;
  s.partition(at_s(50), Duration::seconds(10));
  // Flap: 4 s period, down the first half of each period.
  s.flap(at_s(100), Duration::seconds(20), Duration::seconds(4), 0.5);

  EXPECT_FALSE(s.link_down(at_s(49.9)));
  EXPECT_TRUE(s.link_down(at_s(50)));
  EXPECT_TRUE(s.link_down(at_s(59.9)));
  EXPECT_FALSE(s.link_down(at_s(60)));

  EXPECT_TRUE(s.link_down(at_s(100.0)));   // phase 0.0 < 0.5
  EXPECT_TRUE(s.link_down(at_s(101.9)));   // phase 0.475
  EXPECT_FALSE(s.link_down(at_s(102.0)));  // phase 0.5: up half
  EXPECT_FALSE(s.link_down(at_s(103.9)));
  EXPECT_TRUE(s.link_down(at_s(104.1)));   // next period, down again
  EXPECT_FALSE(s.link_down(at_s(120.0)));  // flap window over
}

TEST(FaultScheduleTest, DuplicateProbCombinesAsIndependentCoins) {
  FaultSchedule s;
  s.duplicate(at_s(0), Duration::seconds(100), 0.5)
      .duplicate(at_s(50), Duration::seconds(100), 0.5);
  EXPECT_DOUBLE_EQ(s.duplicate_prob(at_s(10)), 0.5);
  EXPECT_DOUBLE_EQ(s.duplicate_prob(at_s(75)), 0.75);  // 1 - 0.5*0.5
  EXPECT_DOUBLE_EQ(s.duplicate_prob(at_s(120)), 0.5);
  EXPECT_DOUBLE_EQ(s.duplicate_prob(at_s(200)), 0.0);
}

TEST(FaultScheduleTest, ReorderDrawsRngOnlyInsideWindows) {
  FaultSchedule s;
  s.reorder(at_s(100), Duration::seconds(10), 1.0, Duration::millis(700));

  // Outside the window no randomness is consumed: the stream must be
  // untouched so nominal stretches of a chaos run match a nominal run.
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(s.reorder_extra(a, at_s(50)), Duration::zero());
  EXPECT_EQ(a.bernoulli(0.5), b.bernoulli(0.5));
  EXPECT_EQ(a.bernoulli(0.5), b.bernoulli(0.5));

  // Inside, prob=1.0 always shuffles.
  Rng c(7);
  EXPECT_EQ(s.reorder_extra(c, at_s(105)), Duration::millis(700));
}

TEST(FaultScheduleTest, ClockJumpBecomesDelayHold) {
  FaultSchedule s;
  // Clock set back 250 ms at t=100, healed (stepped forward) at t=200.
  s.clock_jump(at_s(100), Duration::millis(-250));
  s.clock_jump(at_s(200), Duration::millis(250));

  EXPECT_EQ(s.clock_hold(at_s(50)), Duration::zero());
  // Error is -250 ms => heartbeats leave 250 ms late on the global line.
  EXPECT_EQ(s.clock_hold(at_s(150)), Duration::millis(250));
  EXPECT_EQ(s.clock_hold(at_s(250)), Duration::zero());
  EXPECT_EQ(s.clock().step_count(), 2u);
}

TEST(FaultScheduleTest, EventCountAndDescribeCoverEveryKind) {
  FaultSchedule s;
  s.spike(at_s(1), Duration::seconds(1), Duration::millis(10))
      .ramp(at_s(2), Duration::seconds(1), Duration::millis(10))
      .burst_loss(at_s(3), Duration::seconds(1), {})
      .reorder(at_s(4), Duration::seconds(1), 0.5, Duration::millis(10))
      .duplicate(at_s(5), Duration::seconds(1), 0.5)
      .partition(at_s(6), Duration::seconds(1))
      .flap(at_s(7), Duration::seconds(1), Duration::millis(100), 0.5)
      .clock_jump(at_s(8), Duration::millis(-5));
  EXPECT_EQ(s.event_count(), 8u);
  EXPECT_FALSE(s.empty());
  const std::string text = s.describe();
  for (const char* kind : {"spike", "ramp", "burst-loss", "reorder",
                           "duplicate", "partition", "flap", "clock-jump"}) {
    EXPECT_NE(text.find(kind), std::string::npos) << kind << "\n" << text;
  }
}

}  // namespace
}  // namespace fdqos::faultx
