// Golden-file regression: the chaos QoS summary for a pinned
// (scenario, seed, runs, cycles) must reproduce byte-for-byte.
//
// This freezes the entire deterministic pipeline — scenario construction,
// fault wrappers, RNG substream layout, simulator event ordering, QoS
// tracking, pooling, table formatting. Any refactor that silently changes
// one of them shows up as a golden diff instead of an unnoticed shift in
// every published number.
//
// Regenerate intentionally with:
//   FDQOS_UPDATE_GOLDEN=1 ./fdqos_chaos_tests \
//       --gtest_filter=ChaosGoldenTest.*
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/chaos.hpp"
#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"

namespace fdqos::exp {
namespace {

const char* golden_path() {
  return FDQOS_SOURCE_DIR "/tests/faultx/golden/chaos_spike_storm_seed7.csv";
}

std::string render_report() {
  QosExperimentConfig config;
  config.chaos_scenario = "spike_storm";
  config.seed = 7;
  config.runs = 2;
  config.num_cycles = 300;
  config.mttc = Duration::seconds(90);
  config.ttr = Duration::seconds(20);
  config.warmup = Duration::seconds(60);
  config.jobs = 2;
  const QosReport report = run_qos_experiment(config);

  std::string out = chaos_table(report).to_csv() + "\n";
  for (const auto kind :
       {QosMetricKind::kTd, QosMetricKind::kTm, QosMetricKind::kPa}) {
    out += qos_metric_table(report, kind).to_csv() + "\n";
  }
  return out;
}

TEST(ChaosGoldenTest, SpikeStormSeed7MatchesGoldenCsv) {
  const std::string actual = render_report();
  ASSERT_FALSE(actual.empty());

  if (std::getenv("FDQOS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    out.close();
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " — generate it with FDQOS_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();

  EXPECT_EQ(actual, expected.str())
      << "chaos pipeline output drifted from the golden file; if the "
         "change is intentional, regenerate with FDQOS_UPDATE_GOLDEN=1 "
         "and review the diff";
}

}  // namespace
}  // namespace fdqos::exp
