#include "faultx/fault_models.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"
#include "wan/italy_japan.hpp"

namespace fdqos::faultx {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::from_millis_double(s * 1000.0);
}

std::shared_ptr<const FaultSchedule> share(FaultSchedule s) {
  return std::make_shared<const FaultSchedule>(std::move(s));
}

net::Message heartbeat(std::int64_t seq, TimePoint sent) {
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = net::MessageType::kHeartbeat;
  msg.seq = seq;
  msg.send_time = sent;
  return msg;
}

TEST(FaultyDelayTest, AddsSpikeOnTopOfBase) {
  FaultSchedule s;
  s.spike(at_s(100), Duration::seconds(10), Duration::millis(500));
  FaultyDelay model(
      std::make_unique<wan::ConstantDelay>(Duration::millis(200)), share(s));
  Rng rng(1);
  EXPECT_EQ(model.sample(rng, at_s(50)), Duration::millis(200));
  EXPECT_EQ(model.sample(rng, at_s(105)), Duration::millis(700));
  EXPECT_EQ(model.sample(rng, at_s(115)), Duration::millis(200));
}

TEST(FaultyDelayTest, ForwardClockJumpClampsAtZero) {
  // Clock jumped forward 10 s: heartbeats appear to leave 10 s early. The
  // physical constraint wins — total delay clamps at zero, never negative.
  FaultSchedule s;
  s.clock_jump(at_s(0), Duration::seconds(10));
  FaultyDelay model(
      std::make_unique<wan::ConstantDelay>(Duration::millis(200)), share(s));
  Rng rng(1);
  EXPECT_EQ(model.sample(rng, at_s(5)), Duration::zero());
}

TEST(FaultyDelayTest, BackwardClockJumpDelaysHeartbeats) {
  FaultSchedule s;
  s.clock_jump(at_s(10), Duration::millis(-250));
  FaultyDelay model(
      std::make_unique<wan::ConstantDelay>(Duration::millis(200)), share(s));
  Rng rng(1);
  EXPECT_EQ(model.sample(rng, at_s(5)), Duration::millis(200));
  EXPECT_EQ(model.sample(rng, at_s(15)), Duration::millis(450));
}

TEST(FaultyDelayTest, IdenticalToBaseOutsideWindowsSameRngStream) {
  // A chaos run outside every fault window must consume randomness exactly
  // like the nominal run: same seed, same samples.
  FaultSchedule s;
  s.reorder(at_s(5000), Duration::seconds(10), 0.5, Duration::millis(100));
  auto nominal = wan::make_italy_japan_delay();
  FaultyDelay faulty(wan::make_italy_japan_delay(), share(s));
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(nominal->sample(a, at_s(i)), faulty.sample(b, at_s(i))) << i;
  }
}

TEST(FaultyLossTest, NullBaseDropsOnlyInsideBurstWindows) {
  FaultSchedule s;
  // loss 1.0 in both chain states: every message in the window drops.
  s.burst_loss(at_s(100), Duration::seconds(10), {0.5, 0.5, 1.0, 1.0});
  FaultyLoss model(nullptr, share(s));
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(model.drop(rng, at_s(i)));
  }
  for (int i = 100; i < 110; ++i) {
    EXPECT_TRUE(model.drop(rng, at_s(i)));
  }
  EXPECT_FALSE(model.drop(rng, at_s(110)));
}

TEST(FaultyLossTest, BaseModelStillAppliesEverywhere) {
  FaultSchedule s;
  s.burst_loss(at_s(100), Duration::seconds(5), {0.0, 1.0, 0.0, 0.0});
  FaultyLoss model(std::make_unique<wan::BernoulliLoss>(1.0), share(s));
  Rng rng(4);
  EXPECT_TRUE(model.drop(rng, at_s(1)));
  EXPECT_TRUE(model.drop(rng, at_s(102)));
  EXPECT_TRUE(model.drop(rng, at_s(200)));
}

TEST(FaultyLossTest, MakeFreshResetsBurstChains) {
  FaultSchedule s;
  s.burst_loss(at_s(0), Duration::seconds(100), {1.0, 0.0, 0.0, 1.0});
  FaultyLoss model(nullptr, share(s));
  auto replay = [](wan::LossModel& m, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<bool> out;
    for (int i = 0; i < 100; ++i) out.push_back(m.drop(rng, at_s(i)));
    return out;
  };
  const auto first = replay(model, 5);
  auto fresh = model.make_fresh();
  const auto second = replay(*fresh, 5);
  EXPECT_EQ(first, second);
}

TEST(FaultyTransportTest, PartitionEatsMessagesAndCountsThem) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, Rng(1));
  FaultSchedule s;
  s.partition(at_s(10), Duration::seconds(10));
  FaultyTransport transport(inner, share(s), Rng(2));

  std::vector<std::int64_t> received;
  transport.bind(1, [&](const net::Message& m) { received.push_back(m.seq); });

  transport.send(heartbeat(1, simulator.now()));
  simulator.schedule_at(at_s(15), [&] {
    transport.send(heartbeat(2, simulator.now()));
  });
  simulator.schedule_at(at_s(25), [&] {
    transport.send(heartbeat(3, simulator.now()));
  });
  simulator.run();

  EXPECT_EQ(received, (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(transport.stats().sent, 3u);
  EXPECT_EQ(transport.stats().fault_dropped, 1u);
  EXPECT_EQ(transport.stats().duplicated, 0u);
}

TEST(FaultyTransportTest, DuplicationSendsTwoCopies) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, Rng(1));
  FaultSchedule s;
  s.duplicate(at_s(0), Duration::seconds(100), 1.0);
  FaultyTransport transport(inner, share(s), Rng(2));

  int copies = 0;
  transport.bind(1, [&](const net::Message&) { ++copies; });
  transport.send(heartbeat(1, simulator.now()));
  simulator.run();

  EXPECT_EQ(copies, 2);
  EXPECT_EQ(transport.stats().duplicated, 1u);
}

TEST(FaultyTransportTest, StampsSendTimeWithJumpedClock) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, Rng(1));
  FaultSchedule s;
  s.clock_jump(at_s(0), Duration::millis(-250));
  FaultyTransport transport(inner, share(s), Rng(2));

  TimePoint stamped;
  transport.bind(1, [&](const net::Message& m) { stamped = m.send_time; });
  simulator.schedule_at(at_s(5), [&] {
    transport.send(heartbeat(1, simulator.now()));
  });
  simulator.run();

  EXPECT_EQ(stamped, at_s(5) - Duration::millis(250));
}

}  // namespace
}  // namespace fdqos::faultx
