// SampleSet backend parameterization of the chaos harness: the streaming
// (t-digest) backend was never exercised on a chaos-produced stream — only
// on synthetic generators in the sketch property suite. This drives the
// actual faulted delay stream of a GE-burst-loss chaos experiment (captured
// via record_hub, the same path `fdqos record` uses) through both backends
// and pins the streaming contract where it will be used (ROADMAP §5,
// fleet-scale per-endpoint stats): rank error bounded at every requested
// quantile, exact min/max, and the exact backend staying bit-faithful to
// the sorted samples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "stats/quantiles.hpp"
#include "wan/tracestore.hpp"

namespace fdqos::exp {
namespace {

// Empirical CDF of `value` in the exact sorted sample — the rank a
// quantile estimate actually lands on. Rank bounds are distribution-free;
// value bounds are meaningless on heavy-tailed WAN delays.
double rank_of(const std::vector<double>& sorted, double value) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), value);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

// The faulted delay stream of a burst_loss chaos run: Gilbert–Elliott loss
// bursts punch gaps in the stream and the spike wrappers stretch the tail,
// so this is exactly the shape a long-running monitor would feed the
// streaming backend. Captured once, shared by both backend params.
const std::vector<double>& chaos_delays_ms() {
  static const std::vector<double> delays = [] {
    QosExperimentConfig config;
    config.chaos_scenario = "burst_loss";
    config.seed = 7;
    config.runs = 2;
    config.num_cycles = 500;
    config.mttc = Duration::seconds(90);
    config.ttr = Duration::seconds(20);
    config.warmup = Duration::seconds(60);
    config.jobs = 2;
    config.record_hub = std::make_shared<wan::TraceRecorderHub>();
    run_qos_experiment(config);
    return config.record_hub->merged().delays_ms();
  }();
  return delays;
}

class ChaosSampleSetTest
    : public ::testing::TestWithParam<stats::SampleSet::Backend> {};

TEST_P(ChaosSampleSetTest, QuantileRankErrorBoundedOnFaultedStream) {
  const stats::SampleSet::Backend backend = GetParam();
  const std::vector<double>& delays = chaos_delays_ms();
  ASSERT_GT(delays.size(), 500u) << "chaos capture produced too few samples";

  stats::SampleSet set(backend);
  for (double d : delays) set.add(d);
  ASSERT_EQ(set.size(), delays.size());

  std::vector<double> sorted = delays;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());

  // Exact: the estimate must sit within one sample of the requested rank
  // (interpolation lands between neighbours). Streaming: t-digest at
  // compression 100 — 2% rank error mid-range, tighter at the tails (the
  // digest's centroids concentrate there by construction).
  for (const double q : {0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double estimate = set.quantile(q);
    const double err = std::abs(rank_of(sorted, estimate) - q);
    const bool tail = q <= 0.05 || q >= 0.95;
    const double eps = backend == stats::SampleSet::Backend::kExact
                           ? 1.5 / n
                           : (tail ? 0.01 : 0.02);
    EXPECT_LE(err, eps) << "q=" << q << " estimate=" << estimate;
  }

  // Both backends keep exact extremes.
  EXPECT_EQ(set.min(), sorted.front());
  EXPECT_EQ(set.max(), sorted.back());

  if (backend == stats::SampleSet::Backend::kExact) {
    // The exact backend still holds every sample, bit-for-bit.
    std::vector<double> held = set.samples();
    std::sort(held.begin(), held.end());
    EXPECT_EQ(held, sorted);
  } else {
    // The streaming backend dropped per-sample storage — that is the point.
    EXPECT_TRUE(set.samples().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ChaosSampleSetTest,
    ::testing::Values(stats::SampleSet::Backend::kExact,
                      stats::SampleSet::Backend::kStreaming),
    [](const auto& info) {
      return info.param == stats::SampleSet::Backend::kExact ? "exact"
                                                             : "streaming";
    });

}  // namespace
}  // namespace fdqos::exp
