#include "faultx/scenarios.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fdqos::faultx {
namespace {

ScenarioParams params_s(double start_s, double horizon_s) {
  ScenarioParams p;
  p.active_start = TimePoint::origin() + Duration::seconds(
                       static_cast<std::int64_t>(start_s));
  p.horizon = TimePoint::origin() + Duration::seconds(
                  static_cast<std::int64_t>(horizon_s));
  return p;
}

TEST(ScenariosTest, CatalogueIsNonTrivialAndConsistent) {
  const auto& catalogue = scenario_catalogue();
  ASSERT_GE(catalogue.size(), 8u);
  std::set<std::string> names;
  for (const auto& info : catalogue) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.summary.empty());
    EXPECT_TRUE(is_scenario(info.name)) << info.name;
    names.insert(info.name);
  }
  EXPECT_EQ(names.size(), catalogue.size()) << "duplicate scenario names";
  EXPECT_EQ(scenario_names().size(), catalogue.size());
  EXPECT_FALSE(is_scenario("no_such_scenario"));
}

TEST(ScenariosTest, EveryScenarioBuildsNonEmptyInsideTheWindow) {
  const auto params = params_s(60, 500);
  for (const auto& name : scenario_names()) {
    const FaultSchedule s = make_scenario(name, params);
    EXPECT_FALSE(s.empty()) << name;
    EXPECT_GE(s.event_count(), 1u) << name;
  }
}

TEST(ScenariosTest, FaultsLandAfterActiveStart) {
  // Nothing may perturb the warmup: before active_start every query of
  // every scenario must be inert.
  const auto params = params_s(60, 500);
  for (const auto& name : scenario_names()) {
    const FaultSchedule s = make_scenario(name, params);
    Rng rng(1);
    for (double t_s = 0.0; t_s < 60.0; t_s += 1.0) {
      const TimePoint t = TimePoint::origin() + Duration::from_millis_double(
                              t_s * 1000.0);
      EXPECT_EQ(s.deterministic_extra_delay(t), Duration::zero())
          << name << " t=" << t_s;
      EXPECT_EQ(s.reorder_extra(rng, t), Duration::zero())
          << name << " t=" << t_s;
      EXPECT_EQ(s.clock_hold(t), Duration::zero()) << name << " t=" << t_s;
      EXPECT_FALSE(s.link_down(t)) << name << " t=" << t_s;
      EXPECT_EQ(s.duplicate_prob(t), 0.0) << name << " t=" << t_s;
    }
  }
}

TEST(ScenariosTest, PlacementScalesWithTheWindow) {
  // The same scenario on a 10x longer run keeps the same event count: the
  // recipe scales placement, not density.
  for (const auto& name : scenario_names()) {
    const FaultSchedule small = make_scenario(name, params_s(60, 500));
    const FaultSchedule large = make_scenario(name, params_s(60, 5000));
    EXPECT_EQ(small.event_count(), large.event_count()) << name;
  }
}

TEST(ScenariosTest, DescribeListsEveryEvent) {
  const FaultSchedule s = make_scenario("kitchen_sink", params_s(60, 500));
  const std::string text = s.describe();
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, s.event_count());
}

}  // namespace
}  // namespace fdqos::faultx
