#include "net/sim_transport.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fdqos::net {
namespace {

Message heartbeat(NodeId from, NodeId to, std::int64_t seq, TimePoint sent) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = MessageType::kHeartbeat;
  msg.seq = seq;
  msg.send_time = sent;
  return msg;
}

TEST(SimTransportTest, UnconfiguredLinkDeliversInstantly) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(1));
  std::vector<std::int64_t> received;
  transport.bind(1, [&](const Message& m) { received.push_back(m.seq); });
  transport.send(heartbeat(0, 1, 7, simulator.now()));
  simulator.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 7);
}

TEST(SimTransportTest, ConstantDelayIsApplied) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(2));
  SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(200));
  transport.set_link(0, 1, std::move(link));
  TimePoint arrival;
  transport.bind(1, [&](const Message&) { arrival = simulator.now(); });
  transport.send(heartbeat(0, 1, 1, simulator.now()));
  simulator.run();
  EXPECT_EQ(arrival, TimePoint::origin() + Duration::millis(200));
}

TEST(SimTransportTest, LossDropsApproximatelyAtRate) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(3));
  SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(1));
  link.loss = std::make_unique<wan::BernoulliLoss>(0.25);
  transport.set_link(0, 1, std::move(link));
  int received = 0;
  transport.bind(1, [&](const Message&) { ++received; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    transport.send(heartbeat(0, 1, i, simulator.now()));
  }
  simulator.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.75, 0.01);
  const auto& stats = transport.link_stats(0, 1);
  EXPECT_EQ(stats.sent, static_cast<std::uint64_t>(n));
  EXPECT_EQ(stats.dropped + stats.delivered, static_cast<std::uint64_t>(n));
}

TEST(SimTransportTest, NeverDuplicatesMessages) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(4));
  SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::UniformDelay>(Duration::millis(0),
                                                   Duration::millis(100));
  link.loss = std::make_unique<wan::BernoulliLoss>(0.1);
  transport.set_link(0, 1, std::move(link));
  std::vector<int> count(1000, 0);
  transport.bind(1, [&](const Message& m) {
    ++count[static_cast<std::size_t>(m.seq)];
  });
  for (int i = 0; i < 1000; ++i) {
    transport.send(heartbeat(0, 1, i, simulator.now()));
  }
  simulator.run();
  for (int c : count) EXPECT_LE(c, 1);
}

TEST(SimTransportTest, IndependentDelaysReorderMessages) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(5));
  SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::UniformDelay>(Duration::millis(0),
                                                   Duration::millis(500));
  transport.set_link(0, 1, std::move(link));
  std::vector<std::int64_t> arrival_order;
  transport.bind(1, [&](const Message& m) { arrival_order.push_back(m.seq); });
  for (int i = 0; i < 200; ++i) {
    transport.send(heartbeat(0, 1, i, simulator.now()));
  }
  simulator.run();
  ASSERT_EQ(arrival_order.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 1; i < arrival_order.size(); ++i) {
    if (arrival_order[i] < arrival_order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(SimTransportTest, MessageToUnboundNodeIsDropped) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(6));
  transport.send(heartbeat(0, 99, 1, simulator.now()));
  simulator.run();  // must not crash
  EXPECT_EQ(transport.link_stats(0, 99).delivered, 0u);
}

TEST(SimTransportTest, LinksAreDirectional) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(7));
  SimTransport::LinkConfig forward;
  forward.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(10));
  transport.set_link(0, 1, std::move(forward));
  SimTransport::LinkConfig backward;
  backward.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(99));
  transport.set_link(1, 0, std::move(backward));

  TimePoint fwd_arrival;
  TimePoint bwd_arrival;
  transport.bind(1, [&](const Message&) { fwd_arrival = simulator.now(); });
  transport.bind(0, [&](const Message&) { bwd_arrival = simulator.now(); });
  transport.send(heartbeat(0, 1, 1, simulator.now()));
  transport.send(heartbeat(1, 0, 1, simulator.now()));
  simulator.run();
  EXPECT_EQ(fwd_arrival, TimePoint::origin() + Duration::millis(10));
  EXPECT_EQ(bwd_arrival, TimePoint::origin() + Duration::millis(99));
}

TEST(SimTransportTest, DisabledLinkCountsPartitionDrops) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(9));
  SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(1));
  transport.set_link(0, 1, std::move(link));
  int received = 0;
  transport.bind(1, [&](const Message&) { ++received; });

  transport.send(heartbeat(0, 1, 1, simulator.now()));
  transport.set_link_enabled(0, 1, false);
  transport.send(heartbeat(0, 1, 2, simulator.now()));
  transport.send(heartbeat(0, 1, 3, simulator.now()));
  transport.set_link_enabled(0, 1, true);
  transport.send(heartbeat(0, 1, 4, simulator.now()));
  simulator.run();

  EXPECT_EQ(received, 2);
  const auto& stats = transport.link_stats(0, 1);
  EXPECT_EQ(stats.sent, 4u);
  EXPECT_EQ(stats.delivered, 2u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.partition_dropped, 2u);
}

TEST(SimTransportTest, PartitionDropsAreDisjointFromLossDrops) {
  // Stochastic loss and partition drops both land in `dropped`, but only
  // the partition's share lands in `partition_dropped`.
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(10));
  SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(1));
  link.loss = std::make_unique<wan::BernoulliLoss>(1.0);  // drop everything
  transport.set_link(0, 1, std::move(link));
  transport.bind(1, [&](const Message&) {});

  transport.send(heartbeat(0, 1, 1, simulator.now()));  // loss-model drop
  transport.set_link_enabled(0, 1, false);
  transport.send(heartbeat(0, 1, 2, simulator.now()));  // partition drop
  simulator.run();

  const auto& stats = transport.link_stats(0, 1);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.partition_dropped, 1u);
}

TEST(SimTransportTest, StatsStayConsistentUnderLossAndReorder) {
  // sent = delivered + dropped must hold exactly even while independent
  // delays reorder deliveries and the loss model thins the stream.
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(11));
  SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::UniformDelay>(Duration::millis(0),
                                                   Duration::millis(400));
  link.loss = std::make_unique<wan::BernoulliLoss>(0.2);
  transport.set_link(0, 1, std::move(link));
  int received = 0;
  transport.bind(1, [&](const Message&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    transport.send(heartbeat(0, 1, i, simulator.now()));
  }
  simulator.run();

  const auto& stats = transport.link_stats(0, 1);
  EXPECT_EQ(stats.sent, static_cast<std::uint64_t>(n));
  EXPECT_EQ(stats.delivered + stats.dropped, stats.sent);
  EXPECT_EQ(stats.delivered, static_cast<std::uint64_t>(received));
  EXPECT_EQ(stats.partition_dropped, 0u);  // link never disabled
  EXPECT_GT(stats.dropped, 0u);
}

TEST(SimTransportTest, SymmetricPartitionCutsBothDirectionsOnly) {
  sim::Simulator simulator;
  SimTransport transport(simulator, Rng(12));
  int to_b = 0;
  int to_c = 0;
  transport.bind(1, [&](const Message&) { ++to_b; });
  transport.bind(2, [&](const Message&) { ++to_c; });

  transport.set_partitioned(0, 1, true);
  transport.send(heartbeat(0, 1, 1, simulator.now()));
  transport.send(heartbeat(1, 0, 1, simulator.now()));
  transport.send(heartbeat(0, 2, 1, simulator.now()));  // unrelated pair
  simulator.run();
  EXPECT_EQ(to_b, 0);
  EXPECT_EQ(to_c, 1);
  EXPECT_EQ(transport.link_stats(0, 1).partition_dropped, 1u);
  EXPECT_EQ(transport.link_stats(1, 0).partition_dropped, 1u);

  transport.set_partitioned(0, 1, false);
  transport.send(heartbeat(0, 1, 2, simulator.now()));
  simulator.run();
  EXPECT_EQ(to_b, 1);
}

TEST(SimTransportTest, SameSeedSameDeliverySchedule) {
  auto run_once = [] {
    sim::Simulator simulator;
    SimTransport transport(simulator, Rng(8));
    SimTransport::LinkConfig link;
    link.delay = std::make_unique<wan::UniformDelay>(Duration::millis(1),
                                                     Duration::millis(300));
    link.loss = std::make_unique<wan::BernoulliLoss>(0.05);
    transport.set_link(0, 1, std::move(link));
    std::vector<std::pair<std::int64_t, std::int64_t>> log;
    transport.bind(1, [&](const Message& m) {
      log.emplace_back(m.seq, simulator.now().count_nanos());
    });
    for (int i = 0; i < 500; ++i) {
      transport.send(heartbeat(0, 1, i, simulator.now()));
    }
    simulator.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fdqos::net
