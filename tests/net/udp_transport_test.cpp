// Loopback integration tests for the real UDP transport and the real-time
// driver. These exercise the deployment path on 127.0.0.1 with short
// real-time budgets so the suite stays fast.
#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <vector>

namespace fdqos::net {
namespace {

std::map<NodeId, UdpEndpoint> two_nodes(std::uint16_t port_a,
                                        std::uint16_t port_b) {
  return {{0, {"127.0.0.1", port_a}}, {1, {"127.0.0.1", port_b}}};
}

TEST(UdpTransportTest, BindsEphemeralPort) {
  sim::Simulator simulator;
  UdpTransport t(simulator, 0, two_nodes(0, 0));
  ASSERT_TRUE(t.ok());
  EXPECT_GT(t.local_port(), 0);
}

TEST(UdpTransportTest, FailsGracefullyWhenSelfMissing) {
  sim::Simulator simulator;
  UdpTransport t(simulator, 42, two_nodes(0, 0));
  EXPECT_FALSE(t.ok());
}

TEST(UdpTransportTest, FailsGracefullyOnBadAddress) {
  sim::Simulator simulator;
  UdpTransport t(simulator, 0, {{0, {"not-an-ip", 0}}});
  EXPECT_FALSE(t.ok());
}

TEST(UdpTransportTest, LoopbackMessageRoundTrip) {
  // Fixed loopback ports; chosen high to avoid collisions in CI sandboxes.
  const auto peers = two_nodes(45613, 45614);
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  UdpTransport a(sim_a, 0, peers);
  UdpTransport b(sim_b, 1, peers);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  std::vector<std::int64_t> got;
  b.bind(1, [&](const Message& m) { got.push_back(m.seq); });

  Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = MessageType::kHeartbeat;
  msg.seq = 77;
  msg.send_time = sim_a.now();
  a.send(msg);

  // Drive b briefly in real time to pick the datagram up.
  RealTimeDriver driver(sim_b, b);
  driver.run_for(Duration::millis(200));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 77);
  EXPECT_EQ(b.received_count(), 1u);
  EXPECT_EQ(a.sent_count(), 1u);
}

TEST(UdpTransportTest, GarbageDatagramCountsAsDecodeFailure) {
  sim::Simulator simulator;
  UdpTransport receiver(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(receiver.ok());
  receiver.bind(0, [](const Message&) { FAIL() << "garbage was delivered"; });

  // Raw socket sends junk to the receiver.
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(receiver.local_port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const char junk[] = "definitely not a message";
  ::sendto(fd, junk, sizeof junk, 0, reinterpret_cast<sockaddr*>(&addr),
           sizeof addr);
  ::close(fd);

  RealTimeDriver driver(simulator, receiver);
  driver.run_for(Duration::millis(100));
  EXPECT_EQ(receiver.decode_failures(), 1u);
  EXPECT_EQ(receiver.received_count(), 0u);
}

TEST(RealTimeDriverTest, ExecutesTimersApproximatelyOnWallClock) {
  sim::Simulator simulator;
  UdpTransport transport(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(transport.ok());
  int fired = 0;
  simulator.schedule_after(Duration::millis(20), [&] { ++fired; });
  simulator.schedule_after(Duration::millis(40), [&] { ++fired; });
  simulator.schedule_after(Duration::seconds(10), [&] { ++fired; });  // beyond
  RealTimeDriver driver(simulator, transport);
  driver.run_for(Duration::millis(120));
  EXPECT_EQ(fired, 2);
  EXPECT_GE(simulator.now(), TimePoint::origin() + Duration::millis(120));
}

TEST(ClampPollTimeoutTest, NeverNegativeAndCapped) {
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::zero()), 0);
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::millis(-5)), 0);
  // Rounds up: a partial millisecond still sleeps a full one.
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::nanos(1)), 1);
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::millis(3)), 4);
  // The old int cast of (ns / 1e6 + 1) went negative past ~24.8 days and
  // handed poll() an infinite timeout. Any huge wait now caps at a minute.
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::seconds(25L * 24 * 3600)), 60'000);
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::seconds(400L * 24 * 3600)),
            60'000);
}

TEST(RealTimeDriverTest, StopFromCallbackEndsRun) {
  sim::Simulator simulator;
  UdpTransport transport(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(transport.ok());
  RealTimeDriver driver(simulator, transport);
  simulator.schedule_after(Duration::millis(5), [&] { driver.stop(); });
  bool late_fired = false;
  simulator.schedule_after(Duration::seconds(5), [&] { late_fired = true; });
  driver.run_for(Duration::seconds(6));
  EXPECT_FALSE(late_fired);
}

}  // namespace
}  // namespace fdqos::net
