// Loopback integration tests for the real UDP transport and the real-time
// driver. These exercise the deployment path on 127.0.0.1 with short
// real-time budgets so the suite stays fast.
#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "net/codec.hpp"

namespace fdqos::net {
namespace {

std::map<NodeId, UdpEndpoint> two_nodes(std::uint16_t port_a,
                                        std::uint16_t port_b) {
  return {{0, {"127.0.0.1", port_a}}, {1, {"127.0.0.1", port_b}}};
}

TEST(UdpTransportTest, BindsEphemeralPort) {
  sim::Simulator simulator;
  UdpTransport t(simulator, 0, two_nodes(0, 0));
  ASSERT_TRUE(t.ok());
  EXPECT_GT(t.local_port(), 0);
}

TEST(UdpTransportTest, FailsGracefullyWhenSelfMissing) {
  sim::Simulator simulator;
  UdpTransport t(simulator, 42, two_nodes(0, 0));
  EXPECT_FALSE(t.ok());
}

TEST(UdpTransportTest, FailsGracefullyOnBadAddress) {
  sim::Simulator simulator;
  UdpTransport t(simulator, 0, {{0, {"not-an-ip", 0}}});
  EXPECT_FALSE(t.ok());
}

TEST(UdpTransportTest, LoopbackMessageRoundTrip) {
  // Fixed loopback ports; chosen high to avoid collisions in CI sandboxes.
  const auto peers = two_nodes(45613, 45614);
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  UdpTransport a(sim_a, 0, peers);
  UdpTransport b(sim_b, 1, peers);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  std::vector<std::int64_t> got;
  b.bind(1, [&](const Message& m) { got.push_back(m.seq); });

  Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = MessageType::kHeartbeat;
  msg.seq = 77;
  msg.send_time = sim_a.now();
  a.send(msg);

  // Drive b briefly in real time to pick the datagram up.
  RealTimeDriver driver(sim_b, b);
  driver.run_for(Duration::millis(200));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 77);
  EXPECT_EQ(b.received_count(), 1u);
  EXPECT_EQ(a.sent_count(), 1u);
}

TEST(UdpTransportTest, GarbageDatagramCountsAsDecodeFailure) {
  sim::Simulator simulator;
  UdpTransport receiver(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(receiver.ok());
  receiver.bind(0, [](const Message&) { FAIL() << "garbage was delivered"; });

  // Raw socket sends junk to the receiver.
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(receiver.local_port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const char junk[] = "definitely not a message";
  ::sendto(fd, junk, sizeof junk, 0, reinterpret_cast<sockaddr*>(&addr),
           sizeof addr);
  ::close(fd);

  RealTimeDriver driver(simulator, receiver);
  driver.run_for(Duration::millis(100));
  EXPECT_EQ(receiver.decode_failures(), 1u);
  EXPECT_EQ(receiver.received_count(), 0u);
}

TEST(RealTimeDriverTest, ExecutesTimersApproximatelyOnWallClock) {
  sim::Simulator simulator;
  UdpTransport transport(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(transport.ok());
  int fired = 0;
  simulator.schedule_after(Duration::millis(20), [&] { ++fired; });
  simulator.schedule_after(Duration::millis(40), [&] { ++fired; });
  simulator.schedule_after(Duration::seconds(10), [&] { ++fired; });  // beyond
  RealTimeDriver driver(simulator, transport);
  driver.run_for(Duration::millis(120));
  EXPECT_EQ(fired, 2);
  EXPECT_GE(simulator.now(), TimePoint::origin() + Duration::millis(120));
}

TEST(ClampPollTimeoutTest, NeverNegativeAndCapped) {
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::zero()), 0);
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::millis(-5)), 0);
  // Rounds up: a partial millisecond still sleeps a full one.
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::nanos(1)), 1);
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::millis(3)), 4);
  // The old int cast of (ns / 1e6 + 1) went negative past ~24.8 days and
  // handed poll() an infinite timeout. Any huge wait now caps at a minute.
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::seconds(25L * 24 * 3600)), 60'000);
  EXPECT_EQ(clamp_poll_timeout_ms(Duration::seconds(400L * 24 * 3600)),
            60'000);
}

// --------------------------------------------------------------------------
// Syscall-shim regression tests: EINTR retry and short-write/error
// accounting (see UdpSyscalls in net/udp_transport.hpp). Hooks are plain
// function pointers, so the injected state lives in file-scope globals.

int g_recv_eintr_remaining = 0;
ssize_t eintr_then_real_recv(int fd, void* buf, std::size_t len, int flags) {
  if (g_recv_eintr_remaining > 0) {
    --g_recv_eintr_remaining;
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, len, flags);
}

int g_sendto_eintr_remaining = 0;
ssize_t eintr_then_real_sendto(int fd, const void* buf, std::size_t len,
                               int flags, const sockaddr* addr,
                               socklen_t addrlen) {
  if (g_sendto_eintr_remaining > 0) {
    --g_sendto_eintr_remaining;
    errno = EINTR;
    return -1;
  }
  return ::sendto(fd, buf, len, flags, addr, addrlen);
}

ssize_t short_write_sendto(int fd, const void* buf, std::size_t len,
                           int flags, const sockaddr* addr,
                           socklen_t addrlen) {
  const std::size_t truncated = len > 0 ? len - 1 : 0;
  ::sendto(fd, buf, truncated, flags, addr, addrlen);
  return static_cast<ssize_t>(truncated);
}

ssize_t failing_sendto(int, const void*, std::size_t, int, const sockaddr*,
                       socklen_t) {
  errno = EPERM;
  return -1;
}

// Restores the real syscalls when a test scope exits, pass or fail.
struct SyscallGuard {
  explicit SyscallGuard(UdpSyscalls hooks)
      : previous(set_udp_syscalls_for_test(hooks)) {}
  ~SyscallGuard() { set_udp_syscalls_for_test(previous); }
  UdpSyscalls previous;
};

TEST(UdpTransportTest, DrainRetriesOnEintr) {
  // Regression: drain() used to treat EINTR as a hard error and abandon
  // the queue, so a signal landing mid-drain delayed delivery by a full
  // poll tick (or forever, for a stopped driver).
  sim::Simulator simulator;
  UdpTransport receiver(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(receiver.ok());
  std::vector<std::int64_t> got;
  receiver.bind(0, [&](const Message& m) { got.push_back(m.seq); });

  Message msg;
  msg.from = 0;
  msg.to = 0;
  msg.type = MessageType::kHeartbeat;
  msg.seq = 9;
  const std::vector<std::uint8_t> wire = encode_message(msg);
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(receiver.local_port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::sendto(fd, wire.data(), wire.size(), 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            static_cast<ssize_t>(wire.size()));
  ::close(fd);
  // Datagram delivery on loopback is asynchronous; wait for it to be
  // queued so the first (interrupted) recv has something behind it.
  for (int i = 0; i < 200 && got.empty(); ++i) {
    g_recv_eintr_remaining = 2;
    SyscallGuard guard(UdpSyscalls{eintr_then_real_recv, nullptr});
    receiver.drain();
    if (got.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 9);
  EXPECT_EQ(receiver.decode_failures(), 0u);
}

TEST(UdpTransportTest, SendRetriesOnEintr) {
  sim::Simulator simulator;
  UdpTransport t(simulator, 0, {{0, {"127.0.0.1", 0}}, {1, {"127.0.0.1", 45617}}});
  ASSERT_TRUE(t.ok());
  g_sendto_eintr_remaining = 2;
  SyscallGuard guard(UdpSyscalls{nullptr, eintr_then_real_sendto});
  Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = MessageType::kHeartbeat;
  t.send(msg);
  EXPECT_EQ(g_sendto_eintr_remaining, 0);  // both interruptions consumed
  EXPECT_EQ(t.sent_count(), 1u);
  EXPECT_EQ(t.send_failures(), 0u);
}

TEST(UdpTransportTest, ShortWriteCountsAsSendFailureNotSent) {
  // Regression: a short sendto() used to increment sent_ as if the
  // message went out whole; the peer sees a truncated datagram that
  // cannot decode, so the send must count as a failure instead.
  sim::Simulator simulator;
  UdpTransport t(simulator, 0,
                 {{0, {"127.0.0.1", 0}}, {1, {"127.0.0.1", 45618}}});
  ASSERT_TRUE(t.ok());
  SyscallGuard guard(UdpSyscalls{nullptr, short_write_sendto});
  Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = MessageType::kHeartbeat;
  t.send(msg);
  EXPECT_EQ(t.sent_count(), 0u);
  EXPECT_EQ(t.send_failures(), 1u);
}

TEST(UdpTransportTest, SendErrorCountsAsSendFailure) {
  sim::Simulator simulator;
  UdpTransport t(simulator, 0,
                 {{0, {"127.0.0.1", 0}}, {1, {"127.0.0.1", 45619}}});
  ASSERT_TRUE(t.ok());
  SyscallGuard guard(UdpSyscalls{nullptr, failing_sendto});
  Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = MessageType::kHeartbeat;
  t.send(msg);
  t.send(msg);
  EXPECT_EQ(t.sent_count(), 0u);
  EXPECT_EQ(t.send_failures(), 2u);
}

TEST(UdpTransportTest, FailsFastOnHostnamePeer) {
  // Regression: a hostname PEER (self fine) used to pass construction and
  // then silently drop every send to it; now any non-IPv4-literal
  // endpoint fails construction with a log line naming it.
  sim::Simulator simulator;
  UdpTransport t(simulator, 0,
                 {{0, {"127.0.0.1", 0}}, {1, {"peer.example.com", 4567}}});
  EXPECT_FALSE(t.ok());
}

TEST(UdpTransportTest, HostileDatagramCorpusCountsDecodeFailures) {
  sim::Simulator simulator;
  UdpTransport receiver(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(receiver.ok());
  std::size_t delivered = 0;
  receiver.bind(0, [&](const Message&) { ++delivered; });

  Message msg;
  msg.from = 0;
  msg.to = 0;
  msg.type = MessageType::kHeartbeat;
  msg.seq = 1;
  std::vector<std::uint8_t> good = encode_message(msg);

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back({});                                    // empty datagram
  corpus.push_back({0x00});                                // 1 byte
  corpus.push_back({'F', 'D', 'Q', '2'});                  // wrong magic
  corpus.emplace_back(good.begin(), good.begin() + 20);    // truncated body
  std::vector<std::uint8_t> inflated = good;
  inflated[32] = 0xff;  // payload_len lies about the remaining bytes
  corpus.push_back(inflated);
  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0xab);  // trailing garbage (reader not exhausted)
  corpus.push_back(trailing);

  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(receiver.local_port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  for (const auto& hostile : corpus) {
    ::sendto(fd, hostile.data(), hostile.size(), 0,
             reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  }
  ::sendto(fd, good.data(), good.size(), 0,
           reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  ::close(fd);

  RealTimeDriver driver(simulator, receiver);
  driver.run_for(Duration::millis(200));
  EXPECT_EQ(receiver.decode_failures(), corpus.size());
  EXPECT_EQ(receiver.received_count(), 1u);
  EXPECT_EQ(delivered, 1u);
}

TEST(RealTimeDriverTest, StopFromAnotherThreadEndsRun) {
  // stopped_ is an atomic exactly so a signal handler or another thread
  // can end the loop; a run with a far deadline must return promptly
  // after a cross-thread stop() instead of sleeping out its budget.
  sim::Simulator simulator;
  UdpTransport transport(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(transport.ok());
  RealTimeDriver driver(simulator, transport);
  // A recurring tick keeps the poll timeout short, as any live deployment
  // has (detector timers); the loop rechecks stop() between ticks.
  std::function<void()> tick = [&] {
    simulator.schedule_after(Duration::millis(10), tick);
  };
  simulator.schedule_after(Duration::millis(10), tick);
  const auto start = std::chrono::steady_clock::now();
  std::thread stopper([&driver] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    driver.stop();
  });
  driver.run_for(Duration::seconds(30));
  stopper.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

TEST(RealTimeDriverTest, StopFromCallbackEndsRun) {
  sim::Simulator simulator;
  UdpTransport transport(simulator, 0, {{0, {"127.0.0.1", 0}}});
  ASSERT_TRUE(transport.ok());
  RealTimeDriver driver(simulator, transport);
  simulator.schedule_after(Duration::millis(5), [&] { driver.stop(); });
  bool late_fired = false;
  simulator.schedule_after(Duration::seconds(5), [&] { late_fired = true; });
  driver.run_for(Duration::seconds(6));
  EXPECT_FALSE(late_fired);
}

}  // namespace
}  // namespace fdqos::net
