// UdpIngestSocket loopback coverage, parameterized over both drain paths
// (recvmmsg and the portable single-recv fallback) so they stay
// behaviourally identical.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/udp_ingest.hpp"

namespace fdqos::net {
namespace {

// A plain blocking UDP sender aimed at the ingest socket under test.
class LoopbackSender {
 public:
  explicit LoopbackSender(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    std::memset(&dest_, 0, sizeof dest_);
    dest_.sin_family = AF_INET;
    dest_.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &dest_.sin_addr);
  }
  ~LoopbackSender() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::vector<std::uint8_t>& bytes) {
    ASSERT_GE(fd_, 0);
    const ssize_t n =
        ::sendto(fd_, bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dest_), sizeof dest_);
    ASSERT_EQ(n, static_cast<ssize_t>(bytes.size()));
  }

 private:
  int fd_ = -1;
  sockaddr_in dest_{};
};

// Drains until `want` datagrams arrived or ~2s elapsed, appending each
// datagram's bytes to `out`.
std::size_t drain_until(UdpIngestSocket& sock, std::size_t want,
                        std::vector<std::vector<std::uint8_t>>& out) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (out.size() < want && std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = sock.recv_batch();
    for (std::size_t i = 0; i < n; ++i) {
      const auto view = sock.datagram(i);
      out.emplace_back(view.begin(), view.end());
    }
    if (n == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return out.size();
}

class UdpIngestSocketTest : public testing::TestWithParam<bool> {};

TEST_P(UdpIngestSocketTest, DrainsDatagramsWithContentIntact) {
  UdpIngestSocket::Options opts;
  opts.batch = 8;
  opts.force_single_recv = GetParam();
  UdpIngestSocket sock(opts);
  ASSERT_TRUE(sock.ok());
  ASSERT_NE(sock.local_port(), 0);
  if (!GetParam()) {
#ifdef __linux__
    EXPECT_TRUE(sock.using_recvmmsg());
#endif
  } else {
    EXPECT_FALSE(sock.using_recvmmsg());
  }

  LoopbackSender sender(sock.local_port());
  std::vector<std::vector<std::uint8_t>> sent;
  for (std::uint8_t i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> payload(1 + i, i);  // distinct length + fill
    sender.send(payload);
    sent.push_back(std::move(payload));
  }

  std::vector<std::vector<std::uint8_t>> got;
  ASSERT_EQ(drain_until(sock, sent.size(), got), sent.size());
  // Loopback preserves order; every datagram arrives byte-identical.
  EXPECT_EQ(got, sent);
}

TEST_P(UdpIngestSocketTest, RespectsBatchCap) {
  UdpIngestSocket::Options opts;
  opts.batch = 4;
  opts.force_single_recv = GetParam();
  UdpIngestSocket sock(opts);
  ASSERT_TRUE(sock.ok());

  LoopbackSender sender(sock.local_port());
  for (int i = 0; i < 10; ++i) sender.send({static_cast<std::uint8_t>(i)});

  // Give loopback a moment, then every drain returns at most `batch`.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::size_t total = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (total < 10 && std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = sock.recv_batch();
    EXPECT_LE(n, opts.batch);
    total += n;
    if (n == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(total, 10u);
}

TEST_P(UdpIngestSocketTest, EmptySocketDrainsZeroWithoutBlocking) {
  UdpIngestSocket::Options opts;
  opts.force_single_recv = GetParam();
  UdpIngestSocket sock(opts);
  ASSERT_TRUE(sock.ok());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(sock.recv_batch(), 0u);
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(100));
}

TEST_P(UdpIngestSocketTest, OversizedDatagramArrivesTruncatedNotFatal) {
  UdpIngestSocket::Options opts;
  opts.datagram_bytes = 64;  // tiny slots
  opts.force_single_recv = GetParam();
  UdpIngestSocket sock(opts);
  ASSERT_TRUE(sock.ok());

  LoopbackSender sender(sock.local_port());
  sender.send(std::vector<std::uint8_t>(256, 0xab));

  std::vector<std::vector<std::uint8_t>> got;
  ASSERT_EQ(drain_until(sock, 1, got), 1u);
  // Truncated to slot capacity — downstream decode fails, nothing crashes.
  EXPECT_LE(got[0].size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(BothDrainPaths, UdpIngestSocketTest,
                         testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "SingleRecv" : "Recvmmsg";
                         });

TEST(UdpIngestSocket, FailsFastOnHostnameBindAddress) {
  UdpIngestSocket::Options opts;
  opts.host = "ingest.example.com";  // not an IPv4 literal
  UdpIngestSocket sock(opts);
  EXPECT_FALSE(sock.ok());
  EXPECT_EQ(sock.recv_batch(), 0u);
}

}  // namespace
}  // namespace fdqos::net
