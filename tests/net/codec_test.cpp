#include "net/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fdqos::net {
namespace {

Message sample_message() {
  Message msg;
  msg.from = 3;
  msg.to = 9;
  msg.type = MessageType::kHeartbeat;
  msg.seq = 123456789;
  msg.send_time = TimePoint::from_nanos(987654321012345);
  msg.payload = {0x01, 0x02, 0xff, 0x00, 0x7f};
  return msg;
}

TEST(ByteCodecTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEF);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodecTest, BytesRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint8_t> data{1, 2, 3};
  w.bytes(data);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.bytes().value(), data);
}

TEST(ByteCodecTest, EmptyBytes) {
  ByteWriter w;
  w.bytes({});
  ByteReader r(w.buffer());
  EXPECT_EQ(r.bytes().value().size(), 0u);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodecTest, TruncationFailsAndStaysFailed) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.buffer());
  EXPECT_FALSE(r.u64().has_value());
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.u8().has_value());  // reader is sticky-failed
}

TEST(ByteCodecTest, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.buffer().size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x04);
  EXPECT_EQ(w.buffer()[3], 0x01);
}

TEST(MessageCodecTest, RoundTrip) {
  const Message msg = sample_message();
  const auto wire = encode_message(msg);
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->from, msg.from);
  EXPECT_EQ(decoded->to, msg.to);
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->seq, msg.seq);
  EXPECT_EQ(decoded->send_time, msg.send_time);
  EXPECT_EQ(decoded->payload, msg.payload);
}

TEST(MessageCodecTest, EmptyPayloadRoundTrip) {
  Message msg = sample_message();
  msg.payload.clear();
  const auto decoded = decode_message(encode_message(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(MessageCodecTest, RejectsBadMagic) {
  auto wire = encode_message(sample_message());
  wire[0] ^= 0xFF;
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(MessageCodecTest, RejectsTruncation) {
  const auto wire = encode_message(sample_message());
  for (std::size_t cut = 1; cut < wire.size(); cut += 3) {
    EXPECT_FALSE(
        decode_message(std::span(wire.data(), wire.size() - cut)).has_value())
        << "cut " << cut;
  }
}

TEST(MessageCodecTest, RejectsTrailingGarbage) {
  auto wire = encode_message(sample_message());
  wire.push_back(0x00);
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(MessageCodecTest, RejectsOversizedLengthPrefix) {
  // Corrupt the payload length to exceed the datagram.
  Message msg = sample_message();
  auto wire = encode_message(msg);
  // Payload length is the u32 right before the payload bytes.
  const std::size_t len_pos = wire.size() - msg.payload.size() - 4;
  wire[len_pos] = 0xFF;
  wire[len_pos + 1] = 0xFF;
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(MessageCodecTest, FuzzRandomBuffersDoNotCrash) {
  Rng rng(50);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)decode_message(junk);  // must not crash; result usually nullopt
  }
}

TEST(MessageTypeTest, Names) {
  EXPECT_STREQ(message_type_name(MessageType::kHeartbeat), "heartbeat");
  EXPECT_STREQ(message_type_name(MessageType::kPing), "ping");
  EXPECT_STREQ(message_type_name(MessageType::kPong), "pong");
  EXPECT_STREQ(message_type_name(MessageType::kUser), "user");
}

TEST(MessageTest, ToStringMentionsKeyFields) {
  const Message msg = sample_message();
  const std::string s = msg.to_string();
  EXPECT_NE(s.find("heartbeat"), std::string::npos);
  EXPECT_NE(s.find("#123456789"), std::string::npos);
  EXPECT_NE(s.find("3->9"), std::string::npos);
}

}  // namespace
}  // namespace fdqos::net
