// Heartbeat fast-path codec coverage (net/codec.hpp): the zero-allocation
// single-frame decoder must accept exactly what encode_message() produces
// for heartbeats and reject everything decode_message() rejects; the packed
// "FDQB" batch format must round-trip and survive a hostile corpus.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "net/codec.hpp"
#include "net/message.hpp"

namespace fdqos::net {
namespace {

Message make_heartbeat(NodeId from, std::int64_t seq, std::int64_t send_ns) {
  Message msg;
  msg.from = from;
  msg.to = 1;
  msg.type = MessageType::kHeartbeat;
  msg.seq = seq;
  msg.send_time = TimePoint::from_nanos(send_ns);
  return msg;
}

TEST(HeartbeatFrame, DecodesExactlyWhatEncodeMessageProduces) {
  const Message msg = make_heartbeat(42, 1234, 987'654'321);
  const std::vector<std::uint8_t> wire = encode_message(msg);

  HeartbeatFrame frame;
  ASSERT_TRUE(decode_heartbeat_frame(wire, frame));
  EXPECT_EQ(frame.from, msg.from);
  EXPECT_EQ(frame.to, msg.to);
  EXPECT_EQ(frame.seq, msg.seq);
  EXPECT_EQ(frame.send_time.count_nanos(), msg.send_time.count_nanos());

  // The slow path agrees on every field.
  const auto slow = decode_message(wire);
  ASSERT_TRUE(slow.has_value());
  EXPECT_EQ(slow->from, frame.from);
  EXPECT_EQ(slow->seq, frame.seq);
  EXPECT_EQ(slow->send_time.count_nanos(), frame.send_time.count_nanos());
}

TEST(HeartbeatFrame, AcceptsHeartbeatWithPayload) {
  Message msg = make_heartbeat(7, 9, 100);
  msg.payload = {0xde, 0xad, 0xbe, 0xef};
  const auto wire = encode_message(msg);
  HeartbeatFrame frame;
  EXPECT_TRUE(decode_heartbeat_frame(wire, frame));
  EXPECT_EQ(frame.from, 7);
}

TEST(HeartbeatFrame, RejectsNonHeartbeatTypes) {
  for (MessageType type :
       {MessageType::kPing, MessageType::kPong, MessageType::kUser}) {
    Message msg = make_heartbeat(3, 5, 10);
    msg.type = type;
    const auto wire = encode_message(msg);
    HeartbeatFrame frame;
    EXPECT_FALSE(decode_heartbeat_frame(wire, frame));
    // ...even though the generic decoder accepts them.
    EXPECT_TRUE(decode_message(wire).has_value());
  }
}

// The fast path must never accept bytes the generic decoder rejects: every
// corpus entry fails both decoders.
TEST(HeartbeatFrame, HostileCorpusRejectedConsistentlyWithDecodeMessage) {
  const std::vector<std::uint8_t> good =
      encode_message(make_heartbeat(1, 2, 3));

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back({});                          // empty datagram
  corpus.push_back({0x46});                      // one byte
  corpus.push_back({'F', 'D', 'Q', '1'});        // magic only
  {
    auto bad_magic = good;                       // "GDQ1"
    bad_magic[0] = 'G';
    corpus.push_back(std::move(bad_magic));
  }
  {
    auto truncated = good;                       // body cut mid-seq
    truncated.resize(20);
    corpus.push_back(std::move(truncated));
  }
  {
    auto inflated = good;                        // payload_len > actual bytes
    inflated[32] = 0xff;
    corpus.push_back(std::move(inflated));
  }
  {
    auto trailing = good;                        // garbage after payload
    trailing.push_back(0x00);
    corpus.push_back(std::move(trailing));
  }

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    HeartbeatFrame frame;
    EXPECT_FALSE(decode_heartbeat_frame(corpus[i], frame))
        << "corpus entry " << i;
    EXPECT_FALSE(decode_message(corpus[i]).has_value())
        << "corpus entry " << i;
  }
}

TEST(PackedBatch, RoundTripsRecords) {
  std::vector<std::uint8_t> buf;
  begin_packed_batch(buf);
  for (int i = 0; i < 5; ++i) {
    append_packed_heartbeat(buf, static_cast<NodeId>(100 + i), 1000 + i,
                            TimePoint::from_nanos(7'000 + i));
  }
  EXPECT_EQ(finish_packed_batch(buf), 5u);
  EXPECT_EQ(buf.size(), kPackedBatchHeaderBytes + 5 * kPackedRecordBytes);

  PackedBatchView view;
  ASSERT_TRUE(decode_packed_batch(buf, view));
  ASSERT_EQ(view.count(), 5u);
  HeartbeatFrame frame;
  for (std::uint32_t i = 0; i < view.count(); ++i) {
    view.get(i, frame);
    EXPECT_EQ(frame.from, static_cast<NodeId>(100 + i));
    EXPECT_EQ(frame.seq, 1000 + i);
    EXPECT_EQ(frame.send_time.count_nanos(), 7'000 + i);
  }
}

TEST(PackedBatch, EmptyBatchIsValid) {
  std::vector<std::uint8_t> buf;
  begin_packed_batch(buf);
  EXPECT_EQ(finish_packed_batch(buf), 0u);
  PackedBatchView view;
  ASSERT_TRUE(decode_packed_batch(buf, view));
  EXPECT_EQ(view.count(), 0u);
}

TEST(PackedBatch, BufferReuseAcrossBatches) {
  std::vector<std::uint8_t> buf;
  begin_packed_batch(buf);
  append_packed_heartbeat(buf, 1, 2, TimePoint::from_nanos(3));
  finish_packed_batch(buf);

  // begin resets the buffer; the second batch must not see the first.
  begin_packed_batch(buf);
  append_packed_heartbeat(buf, 9, 8, TimePoint::from_nanos(7));
  EXPECT_EQ(finish_packed_batch(buf), 1u);
  PackedBatchView view;
  ASSERT_TRUE(decode_packed_batch(buf, view));
  ASSERT_EQ(view.count(), 1u);
  HeartbeatFrame frame;
  view.get(0, frame);
  EXPECT_EQ(frame.from, 9);
  EXPECT_EQ(frame.seq, 8);
}

TEST(PackedBatch, HostileCorpusRejected) {
  std::vector<std::uint8_t> good;
  begin_packed_batch(good);
  append_packed_heartbeat(good, 1, 2, TimePoint::from_nanos(3));
  finish_packed_batch(good);

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back({});                       // empty
  corpus.push_back({'F', 'D', 'Q'});          // shorter than the header
  {
    auto bad_magic = good;                    // "FDQC"
    bad_magic[3] = 'C';
    corpus.push_back(std::move(bad_magic));
  }
  {
    auto short_body = good;                   // body not a whole record
    short_body.resize(good.size() - 1);
    corpus.push_back(std::move(short_body));
  }
  {
    auto count_lie = good;                    // header claims 2 records
    count_lie[4] = 2;
    corpus.push_back(std::move(count_lie));
  }
  {
    auto extra_record = good;                 // whole extra record, count 1
    extra_record.resize(good.size() + kPackedRecordBytes, 0);
    corpus.push_back(std::move(extra_record));
  }
  // A single-message heartbeat is not a packed batch.
  corpus.push_back(encode_message(make_heartbeat(1, 2, 3)));

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    PackedBatchView view;
    EXPECT_FALSE(decode_packed_batch(corpus[i], view))
        << "corpus entry " << i;
  }
}

// Every truncation of a valid batch must be rejected (the count/length
// consistency check is what makes PackedBatchView::get() bounds-safe).
TEST(PackedBatch, AllTruncationsRejected) {
  std::vector<std::uint8_t> good;
  begin_packed_batch(good);
  for (int i = 0; i < 3; ++i) {
    append_packed_heartbeat(good, i, i, TimePoint::from_nanos(i));
  }
  finish_packed_batch(good);

  for (std::size_t len = 0; len < good.size(); ++len) {
    PackedBatchView view;
    EXPECT_FALSE(decode_packed_batch(
        std::span<const std::uint8_t>(good.data(), len), view))
        << "truncated to " << len << " bytes";
  }
}

}  // namespace
}  // namespace fdqos::net
