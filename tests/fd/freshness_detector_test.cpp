#include "fd/freshness_detector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"

namespace fdqos::fd {
namespace {

struct Transition {
  double time_s;
  bool suspect;
};

struct Harness {
  sim::Simulator simulator;
  std::unique_ptr<net::SimTransport> transport;
  std::unique_ptr<runtime::ProcessNode> sender;
  std::unique_ptr<runtime::ProcessNode> monitor;
  FreshnessDetector* detector = nullptr;
  std::vector<Transition> transitions;

  // eta = 1 s; the heartbeat link uses the given delay model.
  void build(std::unique_ptr<wan::DelayModel> delay,
             std::unique_ptr<SafetyMargin> margin,
             std::unique_ptr<forecast::Predictor> predictor,
             std::int64_t max_cycles = 0) {
    transport = std::make_unique<net::SimTransport>(simulator, Rng(1));
    net::SimTransport::LinkConfig link;
    link.delay = std::move(delay);
    transport->set_link(0, 1, std::move(link));

    sender = std::make_unique<runtime::ProcessNode>(*transport, 0);
    runtime::HeartbeaterLayer::Config hb;
    hb.eta = Duration::seconds(1);
    hb.max_cycles = max_cycles;
    sender->push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

    monitor = std::make_unique<runtime::ProcessNode>(*transport, 1);
    FreshnessDetector::Config config;
    config.eta = Duration::seconds(1);
    config.monitored = 0;
    config.cold_start_timeout = Duration::seconds(1);
    auto det = std::make_unique<FreshnessDetector>(
        simulator, config, std::move(predictor), std::move(margin));
    det->set_observer([this](TimePoint t, bool suspect) {
      transitions.push_back({t.to_seconds_double(), suspect});
    });
    detector = &monitor->push(std::move(det));

    sender->start();
    monitor->start();
  }

  void run_for(Duration d) {
    simulator.run_until(TimePoint::origin() + d);
  }
};

TEST(FreshnessDetectorTest, NoSuspicionUnderStableDelays) {
  Harness h;
  h.build(std::make_unique<wan::ConstantDelay>(Duration::millis(200)),
          std::make_unique<CiSafetyMargin>(2.0),
          std::make_unique<forecast::LastPredictor>());
  h.run_for(Duration::seconds(100));
  EXPECT_TRUE(h.transitions.empty());
  EXPECT_FALSE(h.detector->suspecting());
  EXPECT_EQ(h.detector->max_seq(), 99);  // heartbeat 100 in flight at t=100
  EXPECT_EQ(h.detector->observations(), 99u);
}

TEST(FreshnessDetectorTest, PermanentSuspicionWhenHeartbeatsStop) {
  Harness h;
  h.build(std::make_unique<wan::ConstantDelay>(Duration::millis(200)),
          std::make_unique<CiSafetyMargin>(2.0),
          std::make_unique<forecast::LastPredictor>(),
          /*max_cycles=*/10);  // process "crashes" after cycle 10
  h.run_for(Duration::seconds(60));
  ASSERT_EQ(h.transitions.size(), 1u);
  EXPECT_TRUE(h.transitions[0].suspect);
  // Last heartbeat sent at t=10; the freshness point for cycle 11 is at
  // 11 + delta, with delta ≈ 0.2 s + margin.
  EXPECT_GT(h.transitions[0].time_s, 11.0);
  EXPECT_LT(h.transitions[0].time_s, 12.5);
  EXPECT_TRUE(h.detector->suspecting());
}

TEST(FreshnessDetectorTest, DelaySpikesCauseMistakeThenRecovery) {
  // Constant 100 ms delay with one 900 ms spike at cycle 50: τ_50 passes
  // before m_50 arrives -> brief suspicion corrected by the late arrival.
  class SpikeAtFifty final : public wan::DelayModel {
   public:
    Duration sample(Rng&, TimePoint) override {
      ++count_;
      return count_ == 50 ? Duration::millis(900) : Duration::millis(100);
    }
    const std::string& name() const override { return name_; }
    std::unique_ptr<wan::DelayModel> make_fresh() const override {
      return std::make_unique<SpikeAtFifty>();
    }

   private:
    std::string name_ = "spike@50";
    int count_ = 0;
  };

  Harness h;
  h.build(std::make_unique<SpikeAtFifty>(),
          std::make_unique<CiSafetyMargin>(2.0),
          std::make_unique<forecast::LastPredictor>());
  h.run_for(Duration::seconds(100));
  ASSERT_EQ(h.transitions.size(), 2u);
  EXPECT_TRUE(h.transitions[0].suspect);
  EXPECT_FALSE(h.transitions[1].suspect);
  // Suspicion starts at τ_50 ≈ 50 + 0.1 + margin, ends at arrival 50.9.
  EXPECT_GT(h.transitions[0].time_s, 50.1);
  EXPECT_LT(h.transitions[0].time_s, 50.9);
  EXPECT_NEAR(h.transitions[1].time_s, 50.9, 1e-6);
}

TEST(FreshnessDetectorTest, LostHeartbeatRecoveredByNextOne) {
  // Drop exactly heartbeat 30; the detector suspects at τ_30 and trusts
  // again when m_31 arrives (seq 31 ≥ window index).
  class DropThirty final : public wan::LossModel {
   public:
    bool drop(Rng&, TimePoint) override { return ++count_ == 30; }
    const std::string& name() const override { return name_; }
    std::unique_ptr<wan::LossModel> make_fresh() const override {
      return std::make_unique<DropThirty>();
    }

   private:
    std::string name_ = "drop@30";
    int count_ = 0;
  };

  Harness h;
  h.transport = nullptr;  // rebuilt below with loss
  h.transport = std::make_unique<net::SimTransport>(h.simulator, Rng(2));
  net::SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(100));
  link.loss = std::make_unique<DropThirty>();
  h.transport->set_link(0, 1, std::move(link));

  h.sender = std::make_unique<runtime::ProcessNode>(*h.transport, 0);
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::seconds(1);
  h.sender->push(std::make_unique<runtime::HeartbeaterLayer>(h.simulator, hb));

  h.monitor = std::make_unique<runtime::ProcessNode>(*h.transport, 1);
  FreshnessDetector::Config config;
  config.eta = Duration::seconds(1);
  config.monitored = 0;
  auto det = std::make_unique<FreshnessDetector>(
      h.simulator, config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<CiSafetyMargin>(2.0));
  det->set_observer([&h](TimePoint t, bool suspect) {
    h.transitions.push_back({t.to_seconds_double(), suspect});
  });
  h.detector = &h.monitor->push(std::move(det));
  h.sender->start();
  h.monitor->start();
  h.run_for(Duration::seconds(60));

  ASSERT_EQ(h.transitions.size(), 2u);
  EXPECT_TRUE(h.transitions[0].suspect);
  EXPECT_GT(h.transitions[0].time_s, 30.0);
  EXPECT_FALSE(h.transitions[1].suspect);
  EXPECT_NEAR(h.transitions[1].time_s, 31.1, 1e-6);  // arrival of m_31
}

TEST(FreshnessDetectorTest, StaleHeartbeatDoesNotRestoreTrust) {
  // Heartbeats 20..22 are hugely delayed so they arrive during suspicion
  // with sequence numbers below the current window: trust must NOT return
  // until a sufficiently fresh heartbeat arrives.
  class LateWindow final : public wan::DelayModel {
   public:
    Duration sample(Rng&, TimePoint) override {
      ++count_;
      if (count_ >= 20 && count_ <= 22) return Duration::seconds(10);
      return Duration::millis(100);
    }
    const std::string& name() const override { return name_; }
    std::unique_ptr<wan::DelayModel> make_fresh() const override {
      return std::make_unique<LateWindow>();
    }

   private:
    std::string name_ = "late20-22";
    int count_ = 0;
  };

  Harness h;
  h.build(std::make_unique<LateWindow>(), std::make_unique<CiSafetyMargin>(2.0),
          std::make_unique<forecast::LastPredictor>());
  h.run_for(Duration::seconds(60));

  // Suspicion starts shortly after t=20 (m_20 missing). m_20 arrives at
  // t=30 with seq 20 while the window is ~29: stale, no trust. m_23 arrives
  // at 23.1 — that's the first fresh one, restoring trust.
  ASSERT_GE(h.transitions.size(), 2u);
  EXPECT_TRUE(h.transitions[0].suspect);
  EXPECT_GT(h.transitions[0].time_s, 20.0);
  EXPECT_FALSE(h.transitions[1].suspect);
  EXPECT_NEAR(h.transitions[1].time_s, 23.1, 1e-6);
}

TEST(FreshnessDetectorTest, ColdStartTimeoutCoversFirstCycle) {
  // With a 1 s cold-start timeout and 200 ms delay, τ_1 = 2.0 > first
  // arrival 1.2: no false suspicion at startup.
  Harness h;
  h.build(std::make_unique<wan::ConstantDelay>(Duration::millis(200)),
          std::make_unique<CiSafetyMargin>(1.0),
          std::make_unique<forecast::LastPredictor>());
  h.run_for(Duration::seconds(5));
  EXPECT_TRUE(h.transitions.empty());
}

TEST(FreshnessDetectorTest, DeltaTracksPredictorPlusMargin) {
  Harness h;
  h.build(std::make_unique<wan::ConstantDelay>(Duration::millis(250)),
          std::make_unique<CiSafetyMargin>(2.0),
          std::make_unique<forecast::LastPredictor>());
  h.run_for(Duration::seconds(20));
  // Constant delays: predictor = 250, margin ≈ 0 (zero variance).
  EXPECT_NEAR(h.detector->current_delta_ms(), 250.0, 1.0);
}

TEST(FreshnessDetectorTest, NameDefaultsToComponents) {
  sim::Simulator simulator;
  FreshnessDetector det(simulator, {}, std::make_unique<forecast::LastPredictor>(),
                        std::make_unique<CiSafetyMargin>(2.0));
  EXPECT_EQ(det.name(), "LAST+CI(2)");
}

TEST(FreshnessDetectorTest, IgnoresForeignMessages) {
  Harness h;
  h.build(std::make_unique<wan::ConstantDelay>(Duration::millis(100)),
          std::make_unique<CiSafetyMargin>(2.0),
          std::make_unique<forecast::LastPredictor>());
  // Inject a heartbeat from a different node and a non-heartbeat message.
  net::Message foreign;
  foreign.from = 5;
  foreign.to = 1;
  foreign.type = net::MessageType::kHeartbeat;
  foreign.seq = 1000;
  h.transport->send(foreign);
  net::Message ping;
  ping.from = 0;
  ping.to = 1;
  ping.type = net::MessageType::kPing;
  ping.seq = 1;
  h.transport->send(ping);
  h.run_for(Duration::seconds(5));
  EXPECT_EQ(h.detector->max_seq(), 4);  // only real heartbeats counted
  EXPECT_EQ(h.detector->observations(), 4u);
}

}  // namespace
}  // namespace fdqos::fd
