// Fleet equivalence suite (`ctest -L fleet`): the FleetBank engine must be
// observably identical to M independent single-endpoint experiments — per
// endpoint, byte-for-byte. Endpoint e of a fleet run seeded S equals a
// standalone run seeded fleet_endpoint_seed(S, e): same rendered report
// (all five figures plus crash/heartbeat tallies, via
// fleet_endpoint_view()), same nanosecond-exact suspect-transition streams.
// The matrix pins seeds {7, 11, 13} × {nominal, spike_storm, burst_loss}
// at shards {1, 4, 7}, plus jobs = 1 ≡ jobs = 8, seq ≡ lp, and the M = 1
// identity (a forced 1-endpoint fleet reproduces the plain engine's bytes
// at every jobs/engine combination).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "exp/report.hpp"

namespace fdqos::exp {
namespace {

// The paper suite is 5 predictors × 6 margins; the fleet detector index is
// endpoint·width + lane.
constexpr std::size_t kSuiteWidth = 30;

struct Event {
  std::size_t lane;
  std::int64_t t_ns;
  bool suspect;

  bool operator==(const Event&) const = default;
};

// Fleet transition streams keyed by (run, endpoint). Shards of one run
// execute concurrently, but a shard owns a contiguous endpoint block and
// per-(run, endpoint) streams are single-threaded, so pre-sized
// per-(run, endpoint) vectors race nowhere.
struct FleetCapture {
  std::size_t endpoints;
  std::vector<std::vector<Event>> streams;  // run-major: run·M + endpoint

  FleetCapture(std::size_t runs, std::size_t endpoints_)
      : endpoints(endpoints_), streams(runs * endpoints_) {}

  auto probe() {
    return [this](std::size_t run, std::size_t detector, TimePoint t,
                  bool suspecting) {
      streams[run * endpoints + detector / kSuiteWidth].push_back(
          {detector % kSuiteWidth, t.count_nanos(), suspecting});
    };
  }

  const std::vector<Event>& at(std::size_t run, std::size_t e) const {
    return streams[run * endpoints + e];
  }
};

QosExperimentConfig base_config(std::uint64_t seed,
                                const std::string& scenario) {
  QosExperimentConfig config;
  config.runs = 1;
  config.num_cycles = 200;
  config.seed = seed;
  config.mttc = Duration::seconds(90);
  config.ttr = Duration::seconds(20);
  config.warmup = Duration::seconds(60);
  config.chaos_scenario = scenario;
  config.jobs = 1;
  return config;
}

class FleetEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::string>> {
};

TEST_P(FleetEquivalenceTest, FleetEqualsStandaloneEndpointsAtEveryShardCount) {
  const auto [seed, scenario] = GetParam();
  constexpr std::size_t kEndpoints = 7;

  QosExperimentConfig fleet = base_config(seed, scenario);
  fleet.endpoints = kEndpoints;
  fleet.fleet_shards = 4;
  FleetCapture fleet_capture(fleet.runs, kEndpoints);
  fleet.transition_probe = fleet_capture.probe();
  const QosReport fleet_report = run_qos_experiment(fleet);

  ASSERT_EQ(fleet_report.endpoint_results.size(), kEndpoints);
  ASSERT_EQ(fleet_report.endpoint_crashes.size(), kEndpoints);

  // Per endpoint: the fleet's slice reproduces a standalone run seeded with
  // the endpoint's derived seed — report bytes and transition streams.
  for (std::size_t e = 0; e < kEndpoints; ++e) {
    QosExperimentConfig solo =
        base_config(fleet_endpoint_seed(seed, e), scenario);
    FleetCapture solo_capture(solo.runs, 1);
    solo.transition_probe = solo_capture.probe();
    const QosReport solo_report = run_qos_experiment(solo);

    const QosReport view = fleet_endpoint_view(fleet_report, e);
    EXPECT_EQ(qos_report_fingerprint(view), qos_report_fingerprint(solo_report))
        << "endpoint " << e;
    // The rewritten view config describes exactly the standalone run.
    EXPECT_EQ(qos_config_summary(view.config), qos_config_summary(solo))
        << "endpoint " << e;
    for (std::size_t run = 0; run < fleet.runs; ++run) {
      EXPECT_EQ(fleet_capture.at(run, e), solo_capture.at(run, 0))
          << "endpoint " << e << " run " << run;
    }
  }

  // Fleet tallies are exactly the per-endpoint tallies, summed.
  std::uint64_t crashes = 0, sent = 0, delivered = 0;
  for (std::size_t e = 0; e < kEndpoints; ++e) {
    crashes += fleet_report.endpoint_crashes[e];
    sent += fleet_report.endpoint_hb_sent[e];
    delivered += fleet_report.endpoint_hb_delivered[e];
  }
  EXPECT_EQ(crashes, fleet_report.total_crashes);
  EXPECT_EQ(sent, fleet_report.heartbeats_sent);
  EXPECT_EQ(delivered, fleet_report.heartbeats_delivered);

  // The shard tick and shard timer actually coalesced member events, and
  // every delivered heartbeat went through the fleet's routed fast path.
  EXPECT_GT(fleet_report.fleet.coalesced_events, 0u);
  EXPECT_EQ(fleet_report.fleet.heartbeats, fleet_report.heartbeats_delivered);
  EXPECT_EQ(fleet_report.fleet.malformed, 0u);
  EXPECT_EQ(fleet_report.fleet.unroutable, 0u);

  // Shard-count invariance: 1 (everything on one shard) and 7 (one
  // endpoint per shard) produce the same bytes and the same streams as 4.
  const std::string fingerprint4 = qos_report_fingerprint(fleet_report);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{7}}) {
    QosExperimentConfig again = fleet;
    again.fleet_shards = shards;
    FleetCapture again_capture(again.runs, kEndpoints);
    again.transition_probe = again_capture.probe();
    const QosReport again_report = run_qos_experiment(again);
    EXPECT_EQ(qos_report_fingerprint(again_report), fingerprint4)
        << "shards " << shards;
    EXPECT_EQ(again_capture.streams, fleet_capture.streams)
        << "shards " << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesScenarios, FleetEquivalenceTest,
    ::testing::Combine(::testing::Values(std::uint64_t{7}, std::uint64_t{11},
                                         std::uint64_t{13}),
                       ::testing::Values(std::string{},  // nominal link
                                         std::string{"spike_storm"},
                                         std::string{"burst_loss"})),
    [](const auto& info) {
      const std::string& scenario = std::get<1>(info.param);
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             (scenario.empty() ? "nominal" : scenario);
    });

// The fleet engine is jobs-invariant (the seq engine parallelizes over a
// flattened (run, shard) grid; the merge happens in deterministic order).
TEST(FleetParallelismTest, JobsInvariant) {
  QosExperimentConfig config = base_config(7, "burst_loss");
  config.runs = 2;
  config.endpoints = 5;
  config.fleet_shards = 3;
  FleetCapture serial_capture(config.runs, config.endpoints);
  config.transition_probe = serial_capture.probe();
  const QosReport serial = run_qos_experiment(config);

  config.jobs = 8;
  FleetCapture parallel_capture(config.runs, config.endpoints);
  config.transition_probe = parallel_capture.probe();
  const QosReport parallel = run_qos_experiment(config);

  EXPECT_EQ(qos_report_fingerprint(serial), qos_report_fingerprint(parallel));
  EXPECT_EQ(serial_capture.streams, parallel_capture.streams);
}

// Under SimEngine::kLp each endpoint shard becomes one LP; the reports stay
// byte-identical to the sequential engine.
TEST(FleetParallelismTest, SeqAndLpEnginesAreIdentical) {
  QosExperimentConfig config = base_config(7, "spike_storm");
  config.runs = 2;
  config.endpoints = 5;
  config.fleet_shards = 3;
  config.jobs = 2;
  FleetCapture seq_capture(config.runs, config.endpoints);
  config.transition_probe = seq_capture.probe();
  const QosReport seq = run_qos_experiment(config);

  config.sim_engine = SimEngine::kLp;
  config.lp_jobs = 2;
  FleetCapture lp_capture(config.runs, config.endpoints);
  config.transition_probe = lp_capture.probe();
  const QosReport lp = run_qos_experiment(config);

  EXPECT_EQ(qos_report_fingerprint(seq), qos_report_fingerprint(lp));
  EXPECT_EQ(seq_capture.streams, lp_capture.streams);
}

// M = 1 identity: a forced 1-endpoint fleet reports byte-identically to the
// plain single-endpoint engine at every jobs/engine combination.
TEST(FleetIdentityTest, SingleEndpointFleetMatchesPlainEngineEverywhere) {
  QosExperimentConfig plain = base_config(7, "burst_loss");
  plain.runs = 2;
  FleetCapture plain_capture(plain.runs, 1);
  plain.transition_probe = plain_capture.probe();
  const QosReport plain_report = run_qos_experiment(plain);
  const std::string plain_fingerprint = qos_report_fingerprint(plain_report);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    for (const SimEngine engine : {SimEngine::kSeq, SimEngine::kLp}) {
      QosExperimentConfig fleet = base_config(7, "burst_loss");
      fleet.runs = 2;
      fleet.force_fleet_engine = true;
      fleet.jobs = jobs;
      fleet.sim_engine = engine;
      FleetCapture fleet_capture(fleet.runs, 1);
      fleet.transition_probe = fleet_capture.probe();
      const QosReport fleet_report = run_qos_experiment(fleet);
      EXPECT_EQ(qos_report_fingerprint(fleet_report), plain_fingerprint)
          << "jobs " << jobs << " engine "
          << (engine == SimEngine::kLp ? "lp" : "seq");
      EXPECT_EQ(fleet_capture.streams, plain_capture.streams)
          << "jobs " << jobs << " engine "
          << (engine == SimEngine::kLp ? "lp" : "seq");
      // The single endpoint's view is the whole report.
      EXPECT_EQ(qos_report_fingerprint(fleet_endpoint_view(fleet_report, 0)),
                plain_fingerprint);
    }
  }
}

// The endpoint-seed ladder itself: endpoint 0 IS the experiment seed (the
// M = 1 identity depends on it), every other endpoint gets a distinct
// derived stream.
TEST(FleetSeedTest, EndpointZeroKeepsTheExperimentSeed) {
  EXPECT_EQ(fleet_endpoint_seed(42, 0), 42u);
  EXPECT_EQ(fleet_endpoint_seed(7, 0), 7u);
  EXPECT_NE(fleet_endpoint_seed(42, 1), 42u);
  EXPECT_NE(fleet_endpoint_seed(42, 1), fleet_endpoint_seed(42, 2));
  EXPECT_NE(fleet_endpoint_seed(42, 1), fleet_endpoint_seed(43, 1));
}

}  // namespace
}  // namespace fdqos::exp
