#include "fd/qos_tracker.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fdqos::fd {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::from_seconds_double(s);
}

TEST(QosTrackerTest, CleanDetectionYieldsTd) {
  QosTracker tracker;
  tracker.process_crashed(at_s(100.0));
  tracker.suspect_started(at_s(101.3));
  tracker.process_restored(at_s(130.0));
  tracker.suspect_ended(at_s(130.4));  // detection tail, not a mistake
  tracker.finalize(at_s(200.0));

  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.detections, 1u);
  EXPECT_EQ(m.crashes_observed, 1u);
  EXPECT_EQ(m.missed_detections, 0u);
  EXPECT_EQ(m.detection_time_ms.count, 1u);
  EXPECT_NEAR(m.detection_time_ms.mean, 1300.0, 1e-6);
  EXPECT_EQ(m.mistakes, 0u);
  EXPECT_DOUBLE_EQ(m.availability, 1.0);
}

TEST(QosTrackerTest, MistakeDurationAndRecurrence) {
  QosTracker tracker;
  tracker.suspect_started(at_s(10.0));
  tracker.suspect_ended(at_s(10.5));
  tracker.suspect_started(at_s(40.0));
  tracker.suspect_ended(at_s(41.0));
  tracker.finalize(at_s(100.0));

  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.mistakes, 2u);
  EXPECT_NEAR(m.mistake_duration_ms.mean, 750.0, 1e-6);   // (500+1000)/2
  EXPECT_EQ(m.mistake_recurrence_ms.count, 1u);
  EXPECT_NEAR(m.mistake_recurrence_ms.mean, 30000.0, 1e-6);
  // P_A = (30000 - 750)/30000.
  EXPECT_NEAR(m.query_accuracy, 0.975, 1e-9);
  // availability = 1 - 1.5/100.
  EXPECT_NEAR(m.availability, 0.985, 1e-9);
}

TEST(QosTrackerTest, SuspicionAtCrashGivesZeroTd) {
  QosTracker tracker;
  tracker.suspect_started(at_s(50.0));  // mistake begins
  tracker.process_crashed(at_s(52.0));  // ...but then q actually crashes
  tracker.process_restored(at_s(80.0));
  tracker.finalize(at_s(100.0));

  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.detections, 1u);
  EXPECT_NEAR(m.detection_time_ms.mean, 0.0, 1e-9);
  // The open mistake was clipped at the crash: T_M = 2 s.
  EXPECT_EQ(m.mistakes, 1u);
  EXPECT_NEAR(m.mistake_duration_ms.mean, 2000.0, 1e-6);
}

TEST(QosTrackerTest, InFlightHeartbeatResetsPermanence) {
  // Crash at 100; a heartbeat sent pre-crash un-suspects the FD at 100.8;
  // it re-suspects at 102.1 — the permanent start is 102.1.
  QosTracker tracker;
  tracker.process_crashed(at_s(100.0));
  tracker.suspect_started(at_s(100.4));
  tracker.suspect_ended(at_s(100.8));
  tracker.suspect_started(at_s(102.1));
  tracker.process_restored(at_s(130.0));
  tracker.finalize(at_s(200.0));

  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.detections, 1u);
  EXPECT_NEAR(m.detection_time_ms.mean, 2100.0, 1e-6);
  EXPECT_EQ(m.mistakes, 0u);
}

TEST(QosTrackerTest, MissedDetectionCounted) {
  QosTracker tracker;
  tracker.process_crashed(at_s(10.0));
  tracker.process_restored(at_s(12.0));  // detector never suspected
  tracker.finalize(at_s(20.0));
  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.detections, 0u);
  EXPECT_EQ(m.missed_detections, 1u);
  EXPECT_EQ(m.detection_time_ms.count, 0u);
}

TEST(QosTrackerTest, TdUIsMaxOfSamples) {
  QosTracker tracker;
  for (double base : {100.0, 500.0, 900.0}) {
    tracker.process_crashed(at_s(base));
    tracker.suspect_started(at_s(base + base / 1000.0));  // 0.1/0.5/0.9 s
    tracker.process_restored(at_s(base + 30.0));
    tracker.suspect_ended(at_s(base + 30.2));
  }
  tracker.finalize(at_s(1000.0));
  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.detection_time_ms.count, 3u);
  EXPECT_NEAR(m.detection_time_ms.max, 900.0, 1e-6);
  EXPECT_NEAR(m.detection_time_ms.min, 100.0, 1e-6);
}

TEST(QosTrackerTest, WarmupExcludesEarlySamples) {
  QosTracker tracker(at_s(60.0));
  // Mistake entirely inside warmup: not recorded.
  tracker.suspect_started(at_s(10.0));
  tracker.suspect_ended(at_s(11.0));
  // Crash inside warmup: detection not recorded (restore in warmup too).
  tracker.process_crashed(at_s(20.0));
  tracker.suspect_started(at_s(21.0));
  tracker.process_restored(at_s(50.0));
  tracker.suspect_ended(at_s(50.1));
  // Post-warmup mistake: recorded.
  tracker.suspect_started(at_s(70.0));
  tracker.suspect_ended(at_s(71.0));
  tracker.finalize(at_s(100.0));

  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.mistakes, 1u);
  EXPECT_EQ(m.detection_time_ms.count, 0u);
  EXPECT_NEAR(m.mistake_duration_ms.mean, 1000.0, 1e-6);
}

TEST(QosTrackerTest, CensoredMistakeCountsForAvailabilityOnly) {
  QosTracker tracker;
  tracker.suspect_started(at_s(90.0));
  tracker.finalize(at_s(100.0));  // still suspecting at the end
  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.mistakes, 0u);  // no T_M sample
  EXPECT_NEAR(m.availability, 0.9, 1e-9);
}

TEST(QosTrackerTest, PaFallsBackToAvailabilityWithoutRecurrence) {
  QosTracker tracker;
  tracker.suspect_started(at_s(10.0));
  tracker.suspect_ended(at_s(20.0));
  tracker.finalize(at_s(110.0));
  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.mistake_recurrence_ms.count, 0u);
  EXPECT_NEAR(m.query_accuracy, m.availability, 1e-12);
  EXPECT_NEAR(m.availability, 1.0 - 10.0 / 110.0, 1e-9);
}

TEST(QosTrackerTest, MultipleCrashCyclesAccumulate) {
  QosTracker tracker;
  double t = 100.0;
  for (int i = 0; i < 5; ++i) {
    tracker.process_crashed(at_s(t));
    tracker.suspect_started(at_s(t + 1.0));
    tracker.process_restored(at_s(t + 30.0));
    tracker.suspect_ended(at_s(t + 30.3));
    t += 300.0;
  }
  tracker.finalize(at_s(t));
  const QosMetrics m = tracker.metrics();
  EXPECT_EQ(m.crashes_observed, 5u);
  EXPECT_EQ(m.detections, 5u);
  EXPECT_NEAR(m.detection_time_ms.mean, 1000.0, 1e-6);
}

// Fuzz: arbitrary interleavings of valid detector/injector event sequences
// must keep every derived quantity inside its physical bounds.
class QosTrackerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QosTrackerFuzzTest, InvariantsUnderRandomEventStreams) {
  Rng rng(GetParam());
  QosTracker tracker(at_s(rng.uniform(0.0, 50.0)));
  bool up = true;
  bool suspecting = false;
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    t += rng.exponential(3.0);
    // Pick a random *valid* next event for the current state.
    switch (rng.uniform_int(0, 2)) {
      case 0:  // toggle process state
        if (up) {
          tracker.process_crashed(at_s(t));
          up = false;
        } else {
          tracker.process_restored(at_s(t));
          up = true;
        }
        break;
      default:  // toggle suspicion (down periods allow both directions too:
                // in-flight heartbeats can end suspicion while down)
        if (suspecting) {
          tracker.suspect_ended(at_s(t));
          suspecting = false;
        } else {
          tracker.suspect_started(at_s(t));
          suspecting = true;
        }
        break;
    }
  }
  if (!up) tracker.process_restored(at_s(t + 1.0));
  tracker.finalize(at_s(t + 2.0));

  const QosMetrics m = tracker.metrics();
  EXPECT_GE(m.availability, 0.0);
  EXPECT_LE(m.availability, 1.0 + 1e-12);
  EXPECT_GE(m.query_accuracy, 0.0);
  EXPECT_LE(m.query_accuracy, 1.0 + 1e-12);
  EXPECT_LE(m.detections + m.missed_detections, m.crashes_observed + 1);
  if (m.detection_time_ms.count > 0) {
    EXPECT_GE(m.detection_time_ms.min, 0.0);
  }
  if (m.mistake_duration_ms.count > 0) {
    EXPECT_GE(m.mistake_duration_ms.min, 0.0);
  }
  EXPECT_GE(tracker.observed_up_time(), tracker.wrong_suspicion_time());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QosTrackerFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(QosTrackerTest, TmrSequenceRestartsAtCrash) {
  // Two mistakes inside one up-interval pair up; a crash/restore cycle
  // between mistakes must NOT produce a T_MR sample spanning the down
  // period (docs/qos_accounting.md).
  QosTracker tracker;
  tracker.suspect_started(at_s(10.0));   // mistake 1
  tracker.suspect_ended(at_s(11.0));
  tracker.suspect_started(at_s(40.0));   // mistake 2: T_MR sample of 30 s
  tracker.suspect_ended(at_s(41.0));

  tracker.process_crashed(at_s(100.0));
  tracker.suspect_started(at_s(101.0));  // detection, not a mistake
  tracker.process_restored(at_s(130.0));
  tracker.suspect_ended(at_s(130.5));    // detection tail

  tracker.suspect_started(at_s(200.0));  // first mistake of the new interval:
  tracker.suspect_ended(at_s(201.0));    // no pairing with the 40 s mistake
  tracker.suspect_started(at_s(250.0));  // pairs within the interval: 50 s
  tracker.suspect_ended(at_s(251.0));
  tracker.finalize(at_s(300.0));

  const QosMetrics m = tracker.metrics();
  ASSERT_EQ(m.mistake_recurrence_ms.count, 2u);
  EXPECT_DOUBLE_EQ(m.mistake_recurrence_ms.min, 30'000.0);
  EXPECT_DOUBLE_EQ(m.mistake_recurrence_ms.max, 50'000.0);
}

TEST(QosTrackerTest, StateQueries) {
  QosTracker tracker;
  EXPECT_TRUE(tracker.process_up());
  EXPECT_FALSE(tracker.detector_suspecting());
  tracker.process_crashed(at_s(1.0));
  EXPECT_FALSE(tracker.process_up());
  tracker.suspect_started(at_s(2.0));
  EXPECT_TRUE(tracker.detector_suspecting());
}

}  // namespace
}  // namespace fdqos::fd
