// FleetIngest coverage: first-sight slot admission, stable mapping,
// capacity refusal accounting, and the columnar flush into the FleetBank.
#include <gtest/gtest.h>

#include <cstdint>

#include "fd/fleet_bank.hpp"
#include "fd/fleet_ingest.hpp"
#include "fd/suite.hpp"
#include "sim/simulator.hpp"

namespace fdqos::fd {
namespace {

constexpr std::size_t kCapacity = 3;

class FleetIngestTest : public testing::Test {
 protected:
  FleetIngestTest() {
    FleetBank::Config config;
    config.eta = Duration::millis(100);
    config.cold_start_timeout = Duration::millis(100);
    config.expected_endpoints = kCapacity;
    fleet_ = std::make_unique<FleetBank>(simulator_, config);
    for (std::size_t slot = 0; slot < kCapacity; ++slot) {
      DetectorBank& member = fleet_->add_member(static_cast<net::NodeId>(slot));
      const std::size_t group =
          member.add_group(make_paper_predictor("Last")());
      member.add_lane("Last+CI_low", group, make_paper_margin("CI_low")());
    }
    fleet_->start();
    ingest_ = std::make_unique<FleetIngest>(*fleet_, kCapacity);
  }

  sim::Simulator simulator_;
  std::unique_ptr<FleetBank> fleet_;
  std::unique_ptr<FleetIngest> ingest_;
};

TEST_F(FleetIngestTest, AdmitsSourcesOntoSlotsInFirstSightOrder) {
  EXPECT_TRUE(ingest_->offer(500, 1));
  EXPECT_TRUE(ingest_->offer(900, 1));
  EXPECT_TRUE(ingest_->offer(700, 1));
  EXPECT_EQ(ingest_->admitted(), 3u);
  EXPECT_EQ(ingest_->slot_of(500), 0u);
  EXPECT_EQ(ingest_->slot_of(900), 1u);
  EXPECT_EQ(ingest_->slot_of(700), 2u);
}

TEST_F(FleetIngestTest, KnownSourceKeepsItsSlot) {
  ingest_->offer(500, 1);
  ingest_->offer(900, 1);
  ingest_->offer(500, 2);
  ingest_->offer(500, 3);
  EXPECT_EQ(ingest_->admitted(), 2u);
  EXPECT_EQ(ingest_->slot_of(500), 0u);
  EXPECT_EQ(ingest_->pending(), 4u);
}

TEST_F(FleetIngestTest, RefusesAndCountsBeyondCapacity) {
  for (net::NodeId src = 0; src < static_cast<net::NodeId>(kCapacity); ++src) {
    EXPECT_TRUE(ingest_->offer(100 + src, 1));
  }
  EXPECT_FALSE(ingest_->offer(999, 1));
  EXPECT_FALSE(ingest_->offer(998, 1));
  EXPECT_EQ(ingest_->counters().dropped_capacity, 2u);
  EXPECT_EQ(ingest_->admitted(), kCapacity);
  EXPECT_EQ(ingest_->slot_of(999), kCapacity);  // never admitted
  // Known sources still land after the refusals.
  EXPECT_TRUE(ingest_->offer(100, 2));
}

TEST_F(FleetIngestTest, FlushHandsBatchToFleetAndClears) {
  ingest_->offer(500, 1);
  ingest_->offer(900, 1);
  ingest_->offer(500, 2);
  ASSERT_EQ(ingest_->pending(), 3u);

  ingest_->flush();
  EXPECT_EQ(ingest_->pending(), 0u);
  EXPECT_EQ(fleet_->counters().heartbeats, 3u);
  EXPECT_EQ(fleet_->counters().batches, 1u);

  // An empty flush is a no-op, not an empty batch.
  ingest_->flush();
  EXPECT_EQ(fleet_->counters().batches, 1u);
}

TEST_F(FleetIngestTest, DroppedHeartbeatsNeverReachTheFleet) {
  for (net::NodeId src = 0; src < 10; ++src) ingest_->offer(src, 1);
  ingest_->flush();
  EXPECT_EQ(fleet_->counters().heartbeats, kCapacity);
  EXPECT_EQ(ingest_->counters().dropped_capacity, 10 - kCapacity);
}

}  // namespace
}  // namespace fdqos::fd
