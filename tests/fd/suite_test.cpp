#include "fd/suite.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fdqos::fd {
namespace {

TEST(SuiteTest, ThirtyDistinctDetectors) {
  const auto suite = make_paper_suite();
  EXPECT_EQ(suite.size(), 30u);
  std::set<std::string> names;
  for (const auto& spec : suite) names.insert(spec.name);
  EXPECT_EQ(names.size(), 30u);
}

TEST(SuiteTest, CoversFullCartesianProduct) {
  const auto suite = make_paper_suite();
  const auto predictors = paper_predictor_labels();
  const auto margins = paper_margin_labels();
  EXPECT_EQ(predictors.size(), 5u);
  EXPECT_EQ(margins.size(), 6u);
  for (const auto& p : predictors) {
    for (const auto& m : margins) {
      bool found = false;
      for (const auto& spec : suite) {
        if (spec.predictor_label == p && spec.margin_label == m) found = true;
      }
      EXPECT_TRUE(found) << p << "+" << m;
    }
  }
}

TEST(SuiteTest, FactoriesProduceWorkingComponents) {
  const auto suite = make_paper_suite();
  for (const auto& spec : suite) {
    auto predictor = spec.make_predictor();
    auto margin = spec.make_margin();
    ASSERT_NE(predictor, nullptr) << spec.name;
    ASSERT_NE(margin, nullptr) << spec.name;
    predictor->observe(100.0);
    margin->observe(100.0, 95.0);
    EXPECT_GE(margin->margin(), 0.0) << spec.name;
    EXPECT_EQ(predictor->observation_count(), 1u);
  }
}

TEST(SuiteTest, FactoriesAreIndependent) {
  const auto suite = make_paper_suite();
  auto p1 = suite[0].make_predictor();
  auto p2 = suite[0].make_predictor();
  p1->observe(50.0);
  EXPECT_EQ(p2->observation_count(), 0u);
}

TEST(SuiteTest, PaperParameterDefaultsMatchTables) {
  const PaperParams params;
  // Table 1.
  EXPECT_DOUBLE_EQ(params.gammas[0], 1.0);
  EXPECT_DOUBLE_EQ(params.gammas[1], 2.0);
  EXPECT_DOUBLE_EQ(params.gammas[2], 3.31);
  EXPECT_DOUBLE_EQ(params.phis[0], 1.0);
  EXPECT_DOUBLE_EQ(params.phis[1], 2.0);
  EXPECT_DOUBLE_EQ(params.phis[2], 4.0);
  EXPECT_DOUBLE_EQ(params.jacobson_alpha, 0.25);
  // Table 2.
  EXPECT_EQ(params.winmean_window, 10u);
  EXPECT_DOUBLE_EQ(params.lpf_beta, 0.125);
  EXPECT_EQ(params.arima_order, (forecast::ArimaOrder{2, 1, 1}));
  EXPECT_EQ(params.n_arima, 1000u);
}

TEST(SuiteTest, PredictorLabelsMapToRightTypes) {
  const PaperParams params;
  EXPECT_EQ(make_paper_predictor("Arima", params)()->name(), "ARIMA(2,1,1)");
  EXPECT_EQ(make_paper_predictor("Last", params)()->name(), "LAST");
  EXPECT_EQ(make_paper_predictor("LPF", params)()->name(), "LPF(0.125)");
  EXPECT_EQ(make_paper_predictor("Mean", params)()->name(), "MEAN");
  EXPECT_EQ(make_paper_predictor("WinMean", params)()->name(), "WINMEAN(10)");
}

TEST(SuiteTest, MarginLabelsMapToRightParameters) {
  const PaperParams params;
  auto ci_high = make_paper_margin("CI_high", params)();
  auto* ci = dynamic_cast<CiSafetyMargin*>(ci_high.get());
  ASSERT_NE(ci, nullptr);
  EXPECT_DOUBLE_EQ(ci->gamma(), 3.31);

  auto jac_med = make_paper_margin("JAC_med", params)();
  auto* jac = dynamic_cast<JacobsonSafetyMargin*>(jac_med.get());
  ASSERT_NE(jac, nullptr);
  EXPECT_DOUBLE_EQ(jac->phi(), 2.0);
  EXPECT_DOUBLE_EQ(jac->alpha(), 0.25);
}

TEST(SuiteTest, ConstantMarginBaselines) {
  const auto baselines = make_constant_margin_suite(150.0);
  EXPECT_EQ(baselines.size(), 5u);
  for (const auto& spec : baselines) {
    EXPECT_EQ(spec.margin_label, "CONST");
    auto margin = spec.make_margin();
    EXPECT_DOUBLE_EQ(margin->margin(), 150.0);
  }
}

}  // namespace
}  // namespace fdqos::fd
