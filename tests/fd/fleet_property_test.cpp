// FleetBank property and fuzz coverage (`ctest -L fleet`), at the raw
// bank-of-banks layer (no experiment harness):
//
//  * per-member semantics equal a standalone DetectorBank fed the same
//    stream, under randomized arrival schedules with loss, duplication and
//    reordering;
//  * ingestion is endpoint-local — interleaving order across endpoints at
//    equal timestamps never changes any member's state;
//  * columnar batches are exactly the equivalent singles;
//  * a malformed/duplicate/out-of-order heartbeat corpus (and a randomized
//    message fuzz stream) is counted and dropped, never aborted — network
//    input is data. Death tests cover contract violations only (caller
//    bugs: out-of-range member index, assembly after start, a start that
//    missed the first cycle boundary).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fd/detector_bank.hpp"
#include "fd/fleet_bank.hpp"
#include "fd/suite.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace fdqos::fd {
namespace {

constexpr Duration kEta = Duration::seconds(1);
constexpr std::size_t kCycles = 60;

// Two predictor groups × six margins — wide enough to exercise group
// sharing and the expiry heap, cheap enough to run many schedules.
std::vector<FdSpec> small_suite() {
  std::vector<FdSpec> out;
  for (FdSpec& spec : make_paper_suite()) {
    if (spec.predictor_label == "Last" || spec.predictor_label == "LPF") {
      out.push_back(std::move(spec));
    }
  }
  return out;
}

void configure_bank(DetectorBank& bank, const std::vector<FdSpec>& suite) {
  std::unordered_map<std::string, std::size_t> group_by_key;
  for (const FdSpec& spec : suite) {
    const auto it = spec.predictor_key.empty()
                        ? group_by_key.end()
                        : group_by_key.find(spec.predictor_key);
    std::size_t group;
    if (it != group_by_key.end()) {
      group = it->second;
    } else {
      group = bank.add_group(spec.make_predictor());
      if (!spec.predictor_key.empty()) {
        group_by_key.emplace(spec.predictor_key, group);
      }
    }
    bank.add_lane(spec.name, group, spec.make_margin());
  }
}

struct Arrival {
  Duration at;        // delivery instant (never on a σ boundary)
  std::size_t endpoint;
  std::int64_t seq;
};

// A lossy, duplicating, reordering delivery schedule for one endpoint:
// heartbeat i leaves at σ_i = i·η and lands after a random delay that can
// overshoot the next cycle (out-of-order arrivals and suspicions for free).
std::vector<Arrival> endpoint_schedule(Rng rng, std::size_t endpoint) {
  std::vector<Arrival> out;
  for (std::size_t i = 1; i <= kCycles; ++i) {
    if (rng.bernoulli(0.08)) continue;  // lost
    const double delay_ms = rng.uniform(20.0, 1800.0);
    const Duration at = kEta * static_cast<std::int64_t>(i) +
                        Duration::from_millis_double(delay_ms) + Duration::nanos(1);
    out.push_back({at, endpoint, static_cast<std::int64_t>(i)});
    if (rng.bernoulli(0.05)) {  // duplicated, a bit later
      out.push_back({at + Duration::from_millis_double(rng.uniform(1.0, 500.0)), endpoint,
                     static_cast<std::int64_t>(i)});
    }
  }
  return out;
}

struct Transition {
  std::size_t lane;
  std::int64_t t_ns;
  bool suspect;

  bool operator==(const Transition&) const = default;
};

DetectorBank::LaneObserver recording(std::vector<Transition>& into) {
  return [&into](std::size_t lane, TimePoint t, bool suspecting) {
    into.push_back({lane, t.count_nanos(), suspecting});
  };
}

// One fleet shard plus its drive schedule, ready to run to the horizon.
struct FleetHarness {
  sim::Simulator sim;
  FleetBank fleet;
  std::vector<std::vector<Transition>> streams;

  FleetHarness(std::size_t endpoints, const std::vector<FdSpec>& suite)
      : fleet(sim, {.eta = kEta,
                    .epoch = TimePoint::origin(),
                    .cold_start_timeout = Duration::seconds(1),
                    .name = "fleet-test",
                    .expected_endpoints = endpoints}),
        streams(endpoints) {
    for (std::size_t e = 0; e < endpoints; ++e) {
      DetectorBank& member =
          fleet.add_member(static_cast<net::NodeId>(100 + e));
      configure_bank(member, suite);
      member.set_observer(recording(streams[e]));
    }
  }

  void run(Duration horizon) {
    fleet.start();
    sim.run_until(TimePoint::origin() + horizon);
  }
};

// Index-aligned lane state, comparable across banks.
struct LaneState {
  bool suspecting;
  std::int64_t freshness_index;
  double delta_ms;

  bool operator==(const LaneState&) const = default;
};

std::vector<LaneState> lane_states(const DetectorBank& bank) {
  std::vector<LaneState> out;
  for (std::size_t lane = 0; lane < bank.width(); ++lane) {
    out.push_back({bank.lane_suspecting(lane), bank.lane_freshness_index(lane),
                   bank.lane_delta_ms(lane)});
  }
  return out;
}

class FleetScheduleTest : public ::testing::TestWithParam<std::uint64_t> {};

// Every member equals a standalone DetectorBank fed the identical stream —
// the bank-of-banks shares timer plumbing, never detector state.
TEST_P(FleetScheduleTest, MembersMatchStandaloneBanks) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kEndpoints = 4;
  const auto suite = small_suite();
  const Rng base(seed);

  FleetHarness fleet(kEndpoints, suite);
  for (std::size_t e = 0; e < kEndpoints; ++e) {
    for (const Arrival& a : endpoint_schedule(base.fork(e), e)) {
      fleet.sim.schedule_at(TimePoint::origin() + a.at, [&fleet, a] {
        fleet.fleet.ingest(a.endpoint, a.seq);
      });
    }
  }
  fleet.run(kEta * static_cast<std::int64_t>(kCycles + 5));

  for (std::size_t e = 0; e < kEndpoints; ++e) {
    sim::Simulator solo_sim;
    DetectorBank solo(solo_sim, {.eta = kEta,
                                 .monitored = 0,
                                 .epoch = TimePoint::origin(),
                                 .cold_start_timeout = Duration::seconds(1),
                                 .name = "solo"});
    configure_bank(solo, suite);
    std::vector<Transition> solo_stream;
    solo.set_observer(recording(solo_stream));
    for (const Arrival& a : endpoint_schedule(base.fork(e), e)) {
      solo_sim.schedule_at(TimePoint::origin() + a.at,
                           [&solo, a] { solo.observe_heartbeat(a.seq); });
    }
    solo.start();
    solo_sim.run_until(TimePoint::origin() + kEta * static_cast<std::int64_t>(kCycles + 5));

    EXPECT_EQ(lane_states(fleet.fleet.member(e)), lane_states(solo))
        << "endpoint " << e;
    EXPECT_EQ(fleet.fleet.member(e).max_seq(), solo.max_seq());
    EXPECT_EQ(fleet.fleet.member(e).observations(), solo.observations());
    EXPECT_EQ(fleet.streams[e], solo_stream) << "endpoint " << e;
  }

  // The shard-level coalescing actually replaced per-member events: member
  // banks wanted more timer fires than the shard's single armed event paid.
  EXPECT_GT(fleet.fleet.counters().coalesced_events, 0u);
  EXPECT_GE(fleet.fleet.counters().member_checks,
            fleet.fleet.counters().timer_events);
}

// Ingestion is endpoint-local: delivering the same instant's arrivals in
// ascending vs descending endpoint order changes nothing anywhere.
TEST_P(FleetScheduleTest, InterleavingOrderAcrossEndpointsIsIrrelevant) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kEndpoints = 5;
  const auto suite = small_suite();
  // One shared delay stream → every cycle's arrivals share a timestamp, so
  // insertion order across endpoints is genuinely exercised.
  const auto shared = endpoint_schedule(Rng(seed), 0);

  FleetHarness asc(kEndpoints, suite), desc(kEndpoints, suite);
  for (const Arrival& a : shared) {
    for (std::size_t e = 0; e < kEndpoints; ++e) {
      asc.sim.schedule_at(TimePoint::origin() + a.at, [&asc, a, e] {
        asc.fleet.ingest(e, a.seq);
      });
    }
    for (std::size_t e = kEndpoints; e-- > 0;) {
      desc.sim.schedule_at(TimePoint::origin() + a.at, [&desc, a, e] {
        desc.fleet.ingest(e, a.seq);
      });
    }
  }
  asc.run(kEta * static_cast<std::int64_t>(kCycles + 5));
  desc.run(kEta * static_cast<std::int64_t>(kCycles + 5));

  for (std::size_t e = 0; e < kEndpoints; ++e) {
    EXPECT_EQ(lane_states(asc.fleet.member(e)), lane_states(desc.fleet.member(e)))
        << "endpoint " << e;
    EXPECT_EQ(asc.streams[e], desc.streams[e]) << "endpoint " << e;
  }
  EXPECT_EQ(asc.fleet.counters().heartbeats, desc.fleet.counters().heartbeats);
}

// ingest_columns(batch) ≡ the same entries through ingest(), one by one.
TEST_P(FleetScheduleTest, ColumnarBatchesMatchSingles) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kEndpoints = 4;
  const auto suite = small_suite();
  const Rng base(seed);

  std::vector<Arrival> all;
  for (std::size_t e = 0; e < kEndpoints; ++e) {
    const auto sched = endpoint_schedule(base.fork(e), e);
    all.insert(all.end(), sched.begin(), sched.end());
  }
  // Batch by delivery instant, endpoint-ascending within a batch (the
  // coordinator's scatter order).
  std::map<Duration, FleetBank::HeartbeatColumns> batches;
  for (const Arrival& a : all) {
    auto& batch = batches[a.at];
    batch.endpoint.push_back(static_cast<std::uint32_t>(a.endpoint));
    batch.seq.push_back(a.seq);
  }

  FleetHarness singles(kEndpoints, suite), columnar(kEndpoints, suite);
  for (const auto& [at, batch] : batches) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      singles.sim.schedule_at(
          TimePoint::origin() + at,
          [&singles, e = batch.endpoint[i], s = batch.seq[i]] {
            singles.fleet.ingest(e, s);
          });
    }
    columnar.sim.schedule_at(TimePoint::origin() + at, [&columnar, &batch] {
      columnar.fleet.ingest_columns(batch);
    });
  }
  singles.run(kEta * static_cast<std::int64_t>(kCycles + 5));
  columnar.run(kEta * static_cast<std::int64_t>(kCycles + 5));

  for (std::size_t e = 0; e < kEndpoints; ++e) {
    EXPECT_EQ(lane_states(singles.fleet.member(e)),
              lane_states(columnar.fleet.member(e)))
        << "endpoint " << e;
    EXPECT_EQ(singles.streams[e], columnar.streams[e]) << "endpoint " << e;
  }
  EXPECT_EQ(singles.fleet.counters().heartbeats,
            columnar.fleet.counters().heartbeats);
  EXPECT_EQ(columnar.fleet.counters().batches, batches.size());
  EXPECT_EQ(singles.fleet.counters().batches, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetScheduleTest,
                         ::testing::Values(std::uint64_t{7}, std::uint64_t{11},
                                           std::uint64_t{13}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

net::Message heartbeat_from(net::NodeId from, std::int64_t seq) {
  net::Message msg;
  msg.from = from;
  msg.to = 1;
  msg.type = net::MessageType::kHeartbeat;
  msg.seq = seq;
  return msg;
}

// The routed path: malformed, duplicate, unroutable and non-heartbeat
// traffic is counted and dropped (or forwarded), never aborted, and never
// perturbs member state it shouldn't reach.
TEST(FleetCorpusTest, MalformedAndHostileHeartbeatsAreDataNotContractViolations) {
  const auto suite = small_suite();
  FleetHarness h(2, suite);
  h.fleet.start();
  h.sim.run_until(TimePoint::origin() + Duration::millis(3500));
  const auto states_before = lane_states(h.fleet.member(1));

  // Well-formed traffic for endpoint 0 (node 100), including a duplicate
  // and an out-of-order pair — all legal.
  h.fleet.handle_up(heartbeat_from(100, 3));
  h.fleet.handle_up(heartbeat_from(100, 3));  // duplicate
  h.fleet.handle_up(heartbeat_from(100, 1));  // out of order
  h.fleet.handle_up(heartbeat_from(100, 0));  // seq 0: σ_0 itself, legal
  EXPECT_EQ(h.fleet.counters().heartbeats, 4u);
  EXPECT_EQ(h.fleet.member(0).max_seq(), 3);
  EXPECT_EQ(h.fleet.member(0).observations(), 4u);

  // Malformed sequence numbers: counted, dropped, member untouched.
  h.fleet.handle_up(heartbeat_from(100, -1));
  h.fleet.handle_up(heartbeat_from(100, std::numeric_limits<std::int64_t>::min()));
  h.fleet.handle_up(heartbeat_from(100, std::numeric_limits<std::int64_t>::max()));
  EXPECT_EQ(h.fleet.counters().malformed, 3u);
  EXPECT_EQ(h.fleet.member(0).observations(), 4u);

  // Direct-ingest malformed seq follows the same rule (data, not REQUIRE).
  h.fleet.ingest(0, -5);
  EXPECT_EQ(h.fleet.counters().malformed, 4u);

  // Heartbeats from a source no member registered: counted unroutable and
  // forwarded up (here: to nobody), members untouched.
  h.fleet.handle_up(heartbeat_from(999, 2));
  EXPECT_EQ(h.fleet.counters().unroutable, 1u);

  // Non-heartbeat traffic passes through untouched and uncounted.
  net::Message ping = heartbeat_from(100, 7);
  ping.type = net::MessageType::kPing;
  h.fleet.handle_up(ping);
  EXPECT_EQ(h.fleet.counters().heartbeats, 4u);
  EXPECT_EQ(h.fleet.counters().unroutable, 1u);

  // Endpoint 1 never saw any of it.
  EXPECT_EQ(h.fleet.member(1).observations(), 0u);
  EXPECT_EQ(lane_states(h.fleet.member(1)), states_before);
}

// Randomized hostile stream: whatever arrives, the fleet accounts for every
// message and keeps running.
TEST(FleetCorpusTest, RandomizedMessageFuzzNeverAborts) {
  const auto suite = small_suite();
  FleetHarness h(3, suite);
  Rng rng(20260808);

  std::uint64_t expect_ok = 0, expect_malformed = 0, expect_unroutable = 0;
  for (int i = 0; i < 500; ++i) {
    net::Message msg;
    const double roll = rng.next_double();
    msg.type = roll < 0.8 ? net::MessageType::kHeartbeat
               : roll < 0.9 ? net::MessageType::kUser
                            : net::MessageType::kPong;
    msg.from = static_cast<net::NodeId>(rng.uniform_int(98, 104));
    const double seq_roll = rng.next_double();
    msg.seq = seq_roll < 0.6 ? rng.uniform_int(0, kCycles)
              : seq_roll < 0.8
                  ? rng.uniform_int(-1000, -1)
                  : std::numeric_limits<std::int64_t>::max() -
                        rng.uniform_int(0, 1000);
    h.sim.schedule_at(
        TimePoint::origin() + Duration::from_millis_double(rng.uniform(1.0, 50000.0)),
        [&h, msg] { h.fleet.handle_up(msg); });
    if (msg.type != net::MessageType::kHeartbeat) continue;
    const bool routable = msg.from >= 100 && msg.from <= 102;
    if (!routable) {
      ++expect_unroutable;
    } else if (msg.seq < 0 ||
               msg.seq > std::numeric_limits<std::int64_t>::max() /
                             kEta.count_nanos()) {
      ++expect_malformed;
    } else {
      ++expect_ok;
    }
  }
  h.run(Duration::seconds(60));

  EXPECT_EQ(h.fleet.counters().heartbeats, expect_ok);
  EXPECT_EQ(h.fleet.counters().malformed, expect_malformed);
  EXPECT_EQ(h.fleet.counters().unroutable, expect_unroutable);
  // Every lane's state is still a sane value (the walk itself would trip
  // ASan/UBSan on corruption).
  for (std::size_t e = 0; e < 3; ++e) {
    for (const LaneState& s : lane_states(h.fleet.member(e))) {
      EXPECT_GE(s.freshness_index, 0);
    }
  }
}

// Contract violations — caller bugs, not data — do abort.
TEST(FleetBankDeathTest, OutOfRangeMemberIndexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto suite = small_suite();
  FleetHarness h(2, suite);
  h.fleet.start();
  EXPECT_DEATH(h.fleet.ingest(2, 1), "endpoint < members_");
}

TEST(FleetBankDeathTest, AssemblyAfterStartAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto suite = small_suite();
  FleetHarness h(2, suite);
  h.fleet.start();
  EXPECT_DEATH(h.fleet.add_member(300), "!started_");
  EXPECT_DEATH(h.fleet.start(), "!started_");
}

TEST(FleetBankDeathTest, StartAfterFirstCycleBoundaryAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto suite = small_suite();
  FleetHarness h(1, suite);
  h.sim.schedule_at(TimePoint::origin() + Duration::seconds(5), [] {});
  h.sim.run();
  EXPECT_DEATH(h.fleet.start(), "epoch");
}

TEST(FleetBankDeathTest, MisalignedColumnsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto suite = small_suite();
  FleetHarness h(1, suite);
  h.fleet.start();
  FleetBank::HeartbeatColumns bad;
  bad.endpoint = {0, 0};
  bad.seq = {1};
  EXPECT_DEATH(h.fleet.ingest_columns(bad), "endpoint.size");
}

}  // namespace
}  // namespace fdqos::fd
