#include "fd/safety_margin.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace fdqos::fd {
namespace {

TEST(CiSafetyMarginTest, ZeroBeforeTwoObservations) {
  CiSafetyMargin sm(2.0);
  EXPECT_DOUBLE_EQ(sm.margin(), 0.0);
  sm.observe(100.0, 0.0);
  EXPECT_DOUBLE_EQ(sm.margin(), 0.0);
}

TEST(CiSafetyMarginTest, MatchesClosedFormOnSmallSample) {
  // obs = {10, 14}: mean 12, sigma = sqrt(8), m2 = 8, last dev = 2.
  CiSafetyMargin sm(1.0);
  sm.observe(10.0, 0.0);
  sm.observe(14.0, 0.0);
  const double sigma = std::sqrt(8.0);
  const double expected = sigma * std::sqrt(1.0 + 0.5 + 4.0 / 8.0);
  EXPECT_NEAR(sm.margin(), expected, 1e-12);
}

TEST(CiSafetyMarginTest, ScalesLinearlyWithGamma) {
  CiSafetyMargin lo(1.0);
  CiSafetyMargin hi(3.31);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double obs = rng.normal(200.0, 5.0);
    lo.observe(obs, 0.0);
    hi.observe(obs, 0.0);
  }
  EXPECT_NEAR(hi.margin(), 3.31 * lo.margin(), 1e-9);
}

TEST(CiSafetyMarginTest, IndependentOfPrediction) {
  // The CI margin must ignore the predictor entirely (paper §3.2).
  CiSafetyMargin a(2.0);
  CiSafetyMargin b(2.0);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const double obs = rng.uniform(100.0, 120.0);
    a.observe(obs, 0.0);
    b.observe(obs, 99999.0);
  }
  EXPECT_DOUBLE_EQ(a.margin(), b.margin());
}

TEST(CiSafetyMarginTest, GrowsWithOutlierObservation) {
  CiSafetyMargin sm(1.0);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) sm.observe(rng.normal(200.0, 2.0), 0.0);
  const double calm = sm.margin();
  sm.observe(400.0, 0.0);  // outlier inflates both sigma and the dev term
  EXPECT_GT(sm.margin(), 2.0 * calm);
}

TEST(CiSafetyMarginTest, ConvergesForStationaryInput) {
  // As n grows the inflation term approaches 1 and the margin approaches
  // gamma·sigma (modulated by the last deviation).
  CiSafetyMargin sm(2.0);
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) sm.observe(rng.normal(100.0, 3.0), 0.0);
  EXPECT_NEAR(sm.margin(), 2.0 * 3.0, 3.0);
  EXPECT_GT(sm.margin(), 3.0);
}

TEST(JacobsonSafetyMarginTest, StartsAtZero) {
  JacobsonSafetyMargin sm(4.0);
  EXPECT_DOUBLE_EQ(sm.margin(), 0.0);
}

TEST(JacobsonSafetyMarginTest, EwmaRecursion) {
  // v <- v + 0.25(|err| - v); margin = phi·v.
  JacobsonSafetyMargin sm(2.0, 0.25);
  sm.observe(110.0, 100.0);  // |err| = 10 -> v = 2.5
  EXPECT_DOUBLE_EQ(sm.deviation(), 2.5);
  EXPECT_DOUBLE_EQ(sm.margin(), 5.0);
  sm.observe(100.0, 102.5);  // |err| = 2.5 -> v = 2.5
  EXPECT_DOUBLE_EQ(sm.deviation(), 2.5);
}

TEST(JacobsonSafetyMarginTest, ConvergesToMeanAbsError) {
  JacobsonSafetyMargin sm(1.0, 0.25);
  for (int i = 0; i < 500; ++i) sm.observe(107.0, 100.0);  // |err| = 7 always
  EXPECT_NEAR(sm.deviation(), 7.0, 1e-6);
}

TEST(JacobsonSafetyMarginTest, DoesNotDivergeWithHighPhi) {
  // The phi = 4 configuration must stay bounded under bounded errors — the
  // reason the scaling sits outside the recursion (see DESIGN.md).
  JacobsonSafetyMargin sm(4.0, 0.25);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    sm.observe(rng.normal(200.0, 5.0), 200.0);
  }
  EXPECT_LT(sm.margin(), 4.0 * 20.0);
  EXPECT_GT(sm.margin(), 0.0);
}

TEST(JacobsonSafetyMarginTest, AccuratePredictorGivesSmallMargin) {
  // The JAC margin tracks predictor error: a perfect predictor yields a
  // vanishing margin, a bad one a large margin (paper: phi matters only
  // with less accurate predictors).
  JacobsonSafetyMargin good(4.0);
  JacobsonSafetyMargin bad(4.0);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double obs = rng.normal(200.0, 5.0);
    good.observe(obs, obs);          // zero error
    bad.observe(obs, obs + 50.0);    // systematic 50 ms error
  }
  EXPECT_NEAR(good.margin(), 0.0, 1e-9);
  EXPECT_NEAR(bad.margin(), 4.0 * 50.0, 10.0);
}

TEST(RmsMarginTest, ConvergesToGammaSigmaOfErrors) {
  RmsSafetyMargin sm(2.0, 0.05);
  Rng rng(71);
  for (int i = 0; i < 20000; ++i) {
    sm.observe(200.0 + rng.normal(0.0, 3.0), 200.0);  // err ~ N(0, 3)
  }
  EXPECT_NEAR(sm.margin(), 2.0 * 3.0, 0.8);
  EXPECT_NEAR(sm.error_variance(), 9.0, 2.0);
}

TEST(RmsMarginTest, ConstantErrorClosedForm) {
  RmsSafetyMargin sm(1.0, 0.25);
  sm.observe(110.0, 100.0);  // err 10 -> v = 25
  EXPECT_DOUBLE_EQ(sm.error_variance(), 25.0);
  EXPECT_DOUBLE_EQ(sm.margin(), 5.0);
  for (int i = 0; i < 200; ++i) sm.observe(110.0, 100.0);
  EXPECT_NEAR(sm.margin(), 10.0, 1e-6);  // v -> 100
}

TEST(RmsMarginTest, PenalizesSpikesHarderThanJacobson) {
  // Same error stream: tiny errors plus rare 100 ms misses. RMS weights the
  // misses quadratically, producing the larger margin.
  RmsSafetyMargin rms(1.0, 0.25);
  JacobsonSafetyMargin jac(1.0, 0.25);
  Rng rng(72);
  for (int i = 0; i < 20000; ++i) {
    const double err = rng.bernoulli(0.02) ? 100.0 : 1.0;
    rms.observe(200.0 + err, 200.0);
    jac.observe(200.0 + err, 200.0);
  }
  EXPECT_GT(rms.margin(), 2.0 * jac.margin());
}

TEST(RmsMarginTest, NameAndFresh) {
  RmsSafetyMargin sm(3.0, 0.25, "med");
  EXPECT_EQ(sm.name(), "RMS_med");
  sm.observe(50.0, 0.0);
  auto fresh = sm.make_fresh();
  EXPECT_DOUBLE_EQ(fresh->margin(), 0.0);
}

TEST(WindowedCiMarginTest, MatchesFullCiWhileWindowUnfilled) {
  CiSafetyMargin full(2.0);
  WindowedCiSafetyMargin windowed(2.0, 100);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const double obs = rng.normal(200.0, 5.0);
    full.observe(obs, 0.0);
    windowed.observe(obs, 0.0);
    EXPECT_NEAR(windowed.margin(), full.margin(), 1e-6) << i;
  }
}

TEST(WindowedCiMarginTest, AdaptsToRegimeDropWhereFullCiDoesNot) {
  // 5000 samples at sd 20, then the link calms to sd 2: the windowed margin
  // shrinks toward the new regime; the full-history margin stays inflated.
  CiSafetyMargin full(2.0);
  WindowedCiSafetyMargin windowed(2.0, 50);
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const double obs = rng.normal(200.0, 20.0);
    full.observe(obs, 0.0);
    windowed.observe(obs, 0.0);
  }
  for (int i = 0; i < 500; ++i) {
    const double obs = rng.normal(200.0, 2.0);
    full.observe(obs, 0.0);
    windowed.observe(obs, 0.0);
  }
  EXPECT_LT(windowed.margin(), full.margin() / 2.0);
  EXPECT_NEAR(windowed.margin(), 2.0 * 2.0, 3.0);
}

TEST(WindowedCiMarginTest, EvictionKeepsMomentsExact) {
  WindowedCiSafetyMargin windowed(1.0, 4);
  // Window after all observes: {10, 10, 14, 14} -> mean 12, m2 = 16,
  // sigma = sqrt(16/3), dev = 2.
  for (double obs : {100.0, 100.0, 10.0, 10.0, 14.0, 14.0}) {
    windowed.observe(obs, 0.0);
  }
  const double sigma = std::sqrt(16.0 / 3.0);
  const double expected = sigma * std::sqrt(1.0 + 0.25 + 4.0 / 16.0);
  EXPECT_NEAR(windowed.margin(), expected, 1e-9);
}

TEST(WindowedCiMarginTest, NameVariants) {
  WindowedCiSafetyMargin a(3.31, 64);
  EXPECT_EQ(a.name(), "WCI(3.31,64)");
  WindowedCiSafetyMargin b(2.0, 64, "med");
  EXPECT_EQ(b.name(), "WCI_med");
  EXPECT_EQ(b.window(), 64u);
}

TEST(MaxSafetyMarginTest, TracksTheLargerComponent) {
  MaxSafetyMargin sm(std::make_unique<ConstantSafetyMargin>(10.0),
                     std::make_unique<JacobsonSafetyMargin>(1.0, 0.25));
  // JAC starts at 0: the constant dominates.
  EXPECT_DOUBLE_EQ(sm.margin(), 10.0);
  // Grow JAC above the constant: |err| = 100 repeatedly.
  for (int i = 0; i < 50; ++i) sm.observe(300.0, 200.0);
  EXPECT_NEAR(sm.margin(), 100.0, 1.0);
}

TEST(MaxSafetyMarginTest, FeedsBothComponents) {
  auto ci = std::make_unique<CiSafetyMargin>(2.0);
  auto* ci_raw = ci.get();
  MaxSafetyMargin sm(std::move(ci),
                     std::make_unique<ConstantSafetyMargin>(0.0));
  Rng rng(88);
  for (int i = 0; i < 100; ++i) sm.observe(rng.normal(200.0, 5.0), 200.0);
  EXPECT_GT(ci_raw->margin(), 0.0);
  EXPECT_DOUBLE_EQ(sm.margin(), ci_raw->margin());
}

TEST(MaxSafetyMarginTest, NameAndFreshCopy) {
  MaxSafetyMargin sm(std::make_unique<CiSafetyMargin>(1.0, "low"),
                     std::make_unique<JacobsonSafetyMargin>(2.0, 0.25, "med"));
  EXPECT_EQ(sm.name(), "MAX(CI_low,JAC_med)");
  sm.observe(100.0, 90.0);
  auto fresh = sm.make_fresh();
  EXPECT_DOUBLE_EQ(fresh->margin(), 0.0);
  EXPECT_EQ(fresh->name(), sm.name());
}

TEST(ConstantSafetyMarginTest, NeverChanges) {
  ConstantSafetyMargin sm(123.0);
  EXPECT_DOUBLE_EQ(sm.margin(), 123.0);
  sm.observe(1e9, -1e9);
  EXPECT_DOUBLE_EQ(sm.margin(), 123.0);
}

TEST(SafetyMarginTest, NamesAndFreshCopies) {
  CiSafetyMargin ci(3.31, "high");
  EXPECT_EQ(ci.name(), "CI_high");
  JacobsonSafetyMargin jac(2.0, 0.25, "med");
  EXPECT_EQ(jac.name(), "JAC_med");
  ConstantSafetyMargin c(10.0);
  EXPECT_NE(c.name().find("CONST"), std::string::npos);

  ci.observe(5.0, 0.0);
  ci.observe(6.0, 0.0);
  auto fresh = ci.make_fresh();
  EXPECT_DOUBLE_EQ(fresh->margin(), 0.0);
  EXPECT_EQ(fresh->name(), ci.name());
}

// Property sweep: margins are always non-negative and finite under mixed
// workloads, for every paper configuration.
class MarginPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MarginPropertyTest, NonNegativeAndFinite) {
  const auto [family, param] = GetParam();
  std::unique_ptr<SafetyMargin> sm;
  if (family == 0) {
    sm = std::make_unique<CiSafetyMargin>(param);
  } else {
    sm = std::make_unique<JacobsonSafetyMargin>(param);
  }
  Rng rng(77);
  double pred = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double obs = rng.lognormal(5.3, 0.03) + (rng.bernoulli(0.01) ? 120.0 : 0.0);
    sm->observe(obs, pred);
    pred = obs;  // LAST-style prediction
    EXPECT_GE(sm->margin(), 0.0);
    EXPECT_TRUE(std::isfinite(sm->margin()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, MarginPropertyTest,
    ::testing::Values(std::make_tuple(0, 1.0), std::make_tuple(0, 2.0),
                      std::make_tuple(0, 3.31), std::make_tuple(1, 1.0),
                      std::make_tuple(1, 2.0), std::make_tuple(1, 4.0)));

}  // namespace
}  // namespace fdqos::fd
