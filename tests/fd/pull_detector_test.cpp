#include "fd/pull_detector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/ping_responder.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"

namespace fdqos::fd {
namespace {

struct Transition {
  double time_s;
  bool suspect;
};

struct PullHarness {
  sim::Simulator simulator;
  std::unique_ptr<net::SimTransport> transport;
  std::unique_ptr<runtime::ProcessNode> target;
  std::unique_ptr<runtime::ProcessNode> monitor;
  runtime::PingResponderLayer* responder = nullptr;
  runtime::SimCrashLayer* crash = nullptr;
  PullDetector* detector = nullptr;
  std::vector<Transition> transitions;

  // eta = 1 s; symmetric links with the given one-way delay model.
  void build(Duration one_way, Duration mttc = Duration::seconds(1000000),
             Duration ttr = Duration::seconds(10)) {
    transport = std::make_unique<net::SimTransport>(simulator, Rng(1));
    for (auto [from, to] : {std::pair<int, int>{0, 1}, {1, 0}}) {
      net::SimTransport::LinkConfig link;
      link.delay = std::make_unique<wan::ConstantDelay>(one_way);
      transport->set_link(from, to, std::move(link));
    }

    target = std::make_unique<runtime::ProcessNode>(*transport, 0);
    crash = &target->push(std::make_unique<runtime::SimCrashLayer>(
        simulator, runtime::SimCrashLayer::Config{mttc, ttr}, Rng(2)));
    responder = &target->push(
        std::make_unique<runtime::PingResponderLayer>(simulator, 0));

    monitor = std::make_unique<runtime::ProcessNode>(*transport, 1);
    PullDetector::Config config;
    config.eta = Duration::seconds(1);
    config.self = 1;
    config.monitored = 0;
    config.cold_start_timeout = Duration::seconds(1);
    auto det = std::make_unique<PullDetector>(
        simulator, config, std::make_unique<forecast::LastPredictor>(),
        std::make_unique<CiSafetyMargin>(2.0));
    det->set_observer([this](TimePoint t, bool suspect) {
      transitions.push_back({t.to_seconds_double(), suspect});
    });
    detector = &monitor->push(std::move(det));

    target->start();
    monitor->start();
  }

  void run_for(Duration d) { simulator.run_until(TimePoint::origin() + d); }
};

TEST(PullDetectorTest, NoSuspicionWhileResponderAlive) {
  PullHarness h;
  h.build(Duration::millis(100));
  h.run_for(Duration::seconds(100));
  EXPECT_TRUE(h.transitions.empty());
  EXPECT_FALSE(h.detector->suspecting());
  EXPECT_EQ(h.detector->pings_sent(), 100);
  EXPECT_EQ(h.responder->pings_answered(), 99u);  // ping 100 still in flight
  // RTT observations = 200 ms each.
  EXPECT_NEAR(h.detector->predictor().predict(), 200.0, 1e-9);
}

TEST(PullDetectorTest, DetectsCrashPermanently) {
  PullHarness h;
  h.build(Duration::millis(100), /*mttc=*/Duration::seconds(40),
          /*ttr=*/Duration::seconds(20));
  h.run_for(Duration::seconds(200));
  ASSERT_FALSE(h.transitions.empty());
  EXPECT_TRUE(h.transitions[0].suspect);
  // Suspicions and corrections alternate with the crash/restore cycle.
  for (std::size_t i = 0; i < h.transitions.size(); ++i) {
    EXPECT_EQ(h.transitions[i].suspect, i % 2 == 0) << i;
  }
  EXPECT_GE(h.crash->crash_count(), 2u);
}

TEST(PullDetectorTest, UsesTwoMessagesPerCycle) {
  PullHarness h;
  h.build(Duration::millis(50));
  h.run_for(Duration::seconds(50));
  const auto& ping_stats = h.transport->link_stats(1, 0);
  const auto& pong_stats = h.transport->link_stats(0, 1);
  EXPECT_EQ(ping_stats.sent, 50u);
  EXPECT_EQ(pong_stats.sent, 49u);  // last pong still pending at t=50
}

TEST(PullDetectorTest, RttNeedsNoRemoteClock) {
  // Shift the target's schedule: pings/pongs carry no timestamps that the
  // detector reads; RTT comes purely from the monitor's own clock. A large
  // asymmetry (unequal one-way delays) must not break detection.
  PullHarness h;
  h.transport = std::make_unique<net::SimTransport>(h.simulator, Rng(3));
  net::SimTransport::LinkConfig fwd;
  fwd.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(30));
  h.transport->set_link(1, 0, std::move(fwd));
  net::SimTransport::LinkConfig bwd;
  bwd.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(170));
  h.transport->set_link(0, 1, std::move(bwd));

  h.target = std::make_unique<runtime::ProcessNode>(*h.transport, 0);
  h.responder = &h.target->push(
      std::make_unique<runtime::PingResponderLayer>(h.simulator, 0));
  h.monitor = std::make_unique<runtime::ProcessNode>(*h.transport, 1);
  PullDetector::Config config;
  config.eta = Duration::seconds(1);
  config.self = 1;
  config.monitored = 0;
  auto det = std::make_unique<PullDetector>(
      h.simulator, config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<CiSafetyMargin>(2.0));
  h.detector = &h.monitor->push(std::move(det));
  h.target->start();
  h.monitor->start();
  h.run_for(Duration::seconds(30));
  EXPECT_FALSE(h.detector->suspecting());
  EXPECT_NEAR(h.detector->predictor().predict(), 200.0, 1e-9);
}

TEST(PullDetectorTest, ResponderProcessingDelayAddsToRtt) {
  PullHarness h;
  h.transport = std::make_unique<net::SimTransport>(h.simulator, Rng(4));
  for (auto [from, to] : {std::pair<int, int>{0, 1}, {1, 0}}) {
    net::SimTransport::LinkConfig link;
    link.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(100));
    h.transport->set_link(from, to, std::move(link));
  }
  h.target = std::make_unique<runtime::ProcessNode>(*h.transport, 0);
  h.responder = &h.target->push(std::make_unique<runtime::PingResponderLayer>(
      h.simulator, 0, /*processing=*/Duration::millis(25)));
  h.monitor = std::make_unique<runtime::ProcessNode>(*h.transport, 1);
  PullDetector::Config config;
  config.eta = Duration::seconds(1);
  config.self = 1;
  config.monitored = 0;
  auto det = std::make_unique<PullDetector>(
      h.simulator, config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<CiSafetyMargin>(2.0));
  h.detector = &h.monitor->push(std::move(det));
  h.target->start();
  h.monitor->start();
  h.run_for(Duration::seconds(20));
  EXPECT_NEAR(h.detector->predictor().predict(), 225.0, 1e-9);
}

TEST(PullDetectorTest, MaxCyclesStopsPinging) {
  PullHarness h;
  h.transport = std::make_unique<net::SimTransport>(h.simulator, Rng(5));
  h.target = std::make_unique<runtime::ProcessNode>(*h.transport, 0);
  h.responder = &h.target->push(
      std::make_unique<runtime::PingResponderLayer>(h.simulator, 0));
  h.monitor = std::make_unique<runtime::ProcessNode>(*h.transport, 1);
  PullDetector::Config config;
  config.eta = Duration::seconds(1);
  config.self = 1;
  config.monitored = 0;
  config.max_cycles = 5;
  auto det = std::make_unique<PullDetector>(
      h.simulator, config, std::make_unique<forecast::LastPredictor>(),
      std::make_unique<CiSafetyMargin>(2.0));
  det->set_observer([&h](TimePoint t, bool suspect) {
    h.transitions.push_back({t.to_seconds_double(), suspect});
  });
  h.detector = &h.monitor->push(std::move(det));
  h.target->start();
  h.monitor->start();
  h.run_for(Duration::seconds(30));
  EXPECT_EQ(h.detector->pings_sent(), 5);
  // After pings stop, the detector suspects and never recovers.
  ASSERT_FALSE(h.transitions.empty());
  EXPECT_TRUE(h.transitions.back().suspect);
  EXPECT_TRUE(h.detector->suspecting());
}

TEST(PullDetectorTest, DefaultNameDescribesStyle) {
  sim::Simulator simulator;
  PullDetector det(simulator, {}, std::make_unique<forecast::LastPredictor>(),
                   std::make_unique<JacobsonSafetyMargin>(2.0));
  EXPECT_EQ(det.name(), "pull:LAST+JAC(2)");
}

}  // namespace
}  // namespace fdqos::fd
