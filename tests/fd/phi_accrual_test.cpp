#include "fd/phi_accrual.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"

namespace fdqos::fd {
namespace {

struct PhiHarness {
  sim::Simulator simulator;
  std::unique_ptr<net::SimTransport> transport;
  std::unique_ptr<runtime::ProcessNode> sender;
  std::unique_ptr<runtime::ProcessNode> monitor;
  PhiAccrualDetector* detector = nullptr;
  std::vector<std::pair<double, bool>> transitions;

  void build(PhiAccrualDetector::Config config,
             std::unique_ptr<wan::DelayModel> delay, std::int64_t max_cycles) {
    transport = std::make_unique<net::SimTransport>(simulator, Rng(1));
    net::SimTransport::LinkConfig link;
    link.delay = std::move(delay);
    transport->set_link(0, 1, std::move(link));

    sender = std::make_unique<runtime::ProcessNode>(*transport, 0);
    runtime::HeartbeaterLayer::Config hb;
    hb.eta = Duration::seconds(1);
    hb.max_cycles = max_cycles;
    sender->push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

    monitor = std::make_unique<runtime::ProcessNode>(*transport, 1);
    auto det = std::make_unique<PhiAccrualDetector>(simulator, config);
    det->set_observer([this](TimePoint t, bool suspect) {
      transitions.push_back({t.to_seconds_double(), suspect});
    });
    detector = &monitor->push(std::move(det));
    sender->start();
    monitor->start();
  }
};

TEST(PhiAccrualTest, NameAndColdState) {
  sim::Simulator simulator;
  PhiAccrualDetector det(simulator, {});
  EXPECT_EQ(det.name(), "PHI(8)");
  EXPECT_DOUBLE_EQ(det.phi(), 0.0);
  EXPECT_FALSE(det.suspecting());
}

TEST(PhiAccrualTest, SteadyHeartbeatsNeverSuspect) {
  PhiHarness h;
  PhiAccrualDetector::Config config;
  config.threshold = 3.0;
  h.build(config, std::make_unique<wan::ConstantDelay>(Duration::millis(200)),
          /*max_cycles=*/0);
  h.simulator.run_until(TimePoint::origin() + Duration::seconds(200));
  EXPECT_TRUE(h.transitions.empty());
  EXPECT_FALSE(h.detector->suspecting());
  EXPECT_NEAR(h.detector->interval_mean_ms(), 1000.0, 1.0);
}

TEST(PhiAccrualTest, DetectsSilencePermanently) {
  PhiHarness h;
  PhiAccrualDetector::Config config;
  config.threshold = 3.0;
  h.build(config, std::make_unique<wan::ConstantDelay>(Duration::millis(200)),
          /*max_cycles=*/20);
  h.simulator.run_until(TimePoint::origin() + Duration::seconds(120));
  ASSERT_EQ(h.transitions.size(), 1u);
  EXPECT_TRUE(h.transitions[0].second);
  // Last arrival at 20.2 s; with exactly-1 s intervals and the 2 ms σ
  // floor, the crossing lands near 20.2 + 1.0 + z(10⁻³)·σ ≈ 21.2 s.
  EXPECT_GT(h.transitions[0].first, 21.0);
  EXPECT_LT(h.transitions[0].first, 22.0);
  EXPECT_TRUE(h.detector->suspecting());
}

TEST(PhiAccrualTest, PhiGrowsDuringSilence) {
  PhiHarness h;
  PhiAccrualDetector::Config config;
  config.threshold = 12.0;  // high, so we can watch phi rise pre-detection
  h.build(config,
          std::make_unique<wan::UniformDelay>(Duration::millis(150),
                                              Duration::millis(250)),
          /*max_cycles=*/30);
  // Last heartbeat ~30.2 s; φ ramps steeply over the following ~300 ms
  // (inter-arrival σ ≈ 41 ms here) before saturating.
  h.simulator.run_until(TimePoint::origin() + Duration::millis(31100));
  const double phi_early = h.detector->phi();
  h.simulator.run_until(TimePoint::origin() + Duration::millis(31300));
  const double phi_mid = h.detector->phi();
  h.simulator.run_until(TimePoint::origin() + Duration::millis(31500));
  const double phi_late = h.detector->phi();
  EXPECT_LT(phi_early, phi_mid);
  EXPECT_LT(phi_mid, phi_late);
  EXPECT_GT(phi_late, 5.0);
  EXPECT_LT(phi_late, 40.0);  // not yet saturated
}

TEST(PhiAccrualTest, HigherThresholdDetectsLater) {
  auto detection_time = [](double threshold) {
    PhiHarness h;
    PhiAccrualDetector::Config config;
    config.threshold = threshold;
    h.build(config,
            std::make_unique<wan::UniformDelay>(Duration::millis(150),
                                                Duration::millis(250)),
            /*max_cycles=*/20);
    h.simulator.run_until(TimePoint::origin() + Duration::seconds(120));
    EXPECT_FALSE(h.transitions.empty());
    return h.transitions.front().first;
  };
  const double t1 = detection_time(1.0);
  const double t3 = detection_time(3.0);
  const double t8 = detection_time(8.0);
  EXPECT_LT(t1, t3);
  EXPECT_LT(t3, t8);
}

TEST(PhiAccrualTest, RecoverseAfterLateHeartbeat) {
  // One heartbeat hugely delayed: suspect then trust again on arrival.
  class LateAtTen final : public wan::DelayModel {
   public:
    Duration sample(Rng&, TimePoint) override {
      ++count_;
      return count_ == 10 ? Duration::seconds(5) : Duration::millis(100);
    }
    const std::string& name() const override { return name_; }
    std::unique_ptr<wan::DelayModel> make_fresh() const override {
      return std::make_unique<LateAtTen>();
    }

   private:
    std::string name_ = "late@10";
    int count_ = 0;
  };

  PhiHarness h;
  PhiAccrualDetector::Config config;
  config.threshold = 3.0;
  h.build(config, std::make_unique<LateAtTen>(), /*max_cycles=*/0);
  h.simulator.run_until(TimePoint::origin() + Duration::seconds(60));
  ASSERT_GE(h.transitions.size(), 2u);
  EXPECT_TRUE(h.transitions[0].second);
  EXPECT_FALSE(h.transitions[1].second);
  // Suspicion starts soon after m_10's expected arrival (~10.2 s). m_10
  // itself is still in flight until 15 s, but m_11 overtakes it and lands
  // at 11.1 s — any arrival restores trust in the accrual scheme.
  EXPECT_GT(h.transitions[0].first, 10.1);
  EXPECT_LT(h.transitions[0].first, 11.1);
  EXPECT_NEAR(h.transitions[1].first, 11.1, 1e-6);
  EXPECT_FALSE(h.detector->suspecting());
}

TEST(PhiAccrualTest, ColdStartTimeoutFiresWithoutHeartbeats) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(2));
  runtime::ProcessNode monitor(transport, 1);
  PhiAccrualDetector::Config config;
  config.cold_start_timeout = Duration::seconds(2);
  auto det = std::make_unique<PhiAccrualDetector>(simulator, config);
  std::vector<double> suspect_times;
  det->set_observer([&](TimePoint t, bool s) {
    if (s) suspect_times.push_back(t.to_seconds_double());
  });
  auto& ref = monitor.push(std::move(det));
  monitor.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(10));
  ASSERT_EQ(suspect_times.size(), 1u);
  EXPECT_DOUBLE_EQ(suspect_times[0], 2.0);
  EXPECT_TRUE(ref.suspecting());
}

TEST(PhiAccrualTest, CrashGapDoesNotPoisonTheWindow) {
  // 20 heartbeats, a 30 s silence (detected), then heartbeats resume. The
  // gap interval must not enter the window: detection of a *second*
  // silence right after recovery must be as fast as the first.
  class GapInjector final : public wan::DelayModel {
   public:
    Duration sample(Rng&, TimePoint) override { return Duration::millis(100); }
    const std::string& name() const override { return name_; }
    std::unique_ptr<wan::DelayModel> make_fresh() const override {
      return std::make_unique<GapInjector>();
    }

   private:
    std::string name_ = "const100";
  };

  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(3));
  net::SimTransport::LinkConfig link;
  link.delay = std::make_unique<GapInjector>();
  transport.set_link(0, 1, std::move(link));

  // Hand-drive two heartbeat bursts with a 30 s hole between them.
  runtime::ProcessNode monitor(transport, 1);
  PhiAccrualDetector::Config config;
  config.threshold = 3.0;
  auto det = std::make_unique<PhiAccrualDetector>(simulator, config);
  std::vector<std::pair<double, bool>> transitions;
  det->set_observer([&](TimePoint t, bool s) {
    transitions.push_back({t.to_seconds_double(), s});
  });
  auto& detector = monitor.push(std::move(det));
  monitor.start();

  auto send_hb = [&](std::int64_t seq, double at_s) {
    simulator.schedule_at(TimePoint::origin() + Duration::from_seconds_double(at_s),
                          [&transport, seq, &simulator] {
                            net::Message m;
                            m.from = 0;
                            m.to = 1;
                            m.type = net::MessageType::kHeartbeat;
                            m.seq = seq;
                            m.send_time = simulator.now();
                            transport.send(m);
                          });
  };
  for (int i = 1; i <= 20; ++i) send_hb(i, i);          // burst 1: 1..20 s
  for (int i = 21; i <= 40; ++i) send_hb(i, 30.0 + i);  // burst 2: 51..70 s
  simulator.run_until(TimePoint::origin() + Duration::seconds(80));

  // Burst-1 silence detected ~21.2 s; recovery at 51.1; the second silence
  // (after 70.1) detected ~71.2 — i.e. again ~1.1 s after the last arrival,
  // proving the 31 s gap never entered the interval window.
  ASSERT_GE(transitions.size(), 3u);
  EXPECT_TRUE(transitions[0].second);
  EXPECT_NEAR(transitions[0].first, 21.2, 0.3);
  EXPECT_FALSE(transitions[1].second);
  EXPECT_NEAR(transitions[1].first, 51.1, 0.01);
  EXPECT_TRUE(transitions[2].second);
  EXPECT_NEAR(transitions[2].first, 71.2, 0.3);
  EXPECT_NEAR(detector.interval_mean_ms(), 1000.0, 50.0);
}

TEST(PhiAccrualTest, WindowSlidesAndBoundsMemory) {
  PhiHarness h;
  PhiAccrualDetector::Config config;
  config.threshold = 3.0;
  config.window = 16;
  h.build(config,
          std::make_unique<wan::UniformDelay>(Duration::millis(100),
                                              Duration::millis(300)),
          /*max_cycles=*/0);
  h.simulator.run_until(TimePoint::origin() + Duration::seconds(500));
  EXPECT_EQ(h.detector->heartbeats_seen(), 499u);
  // Window of 16 recent inter-arrivals; mean stays near eta.
  EXPECT_NEAR(h.detector->interval_mean_ms(), 1000.0, 100.0);
  EXPECT_GT(h.detector->interval_stddev_ms(), 2.0);
}

}  // namespace
}  // namespace fdqos::fd
