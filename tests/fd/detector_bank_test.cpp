#include "fd/detector_bank.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "fd/freshness_detector.hpp"
#include "fd/suite.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/multiplexer.hpp"
#include "runtime/process_node.hpp"
#include "wan/delay_model.hpp"

namespace fdqos::fd {
namespace {

struct Transition {
  std::size_t lane;
  double time_s;
  bool suspect;
};

// One heartbeat stream fanned out (through the monitor's MultiPlexer) to a
// DetectorBank *and* to one legacy FreshnessDetector per lane — both
// engines observe the identical arrivals inside the same simulation.
struct Harness {
  sim::Simulator simulator;
  std::unique_ptr<net::SimTransport> transport;
  std::unique_ptr<runtime::ProcessNode> sender;
  std::unique_ptr<runtime::ProcessNode> monitor;
  // Attached unowned below the mux (like run_one does); owned here.
  std::unique_ptr<DetectorBank> bank_store;
  std::vector<std::unique_ptr<FreshnessDetector>> legacy_store;
  DetectorBank* bank = nullptr;
  std::vector<FreshnessDetector*> legacy;
  std::vector<Transition> bank_transitions;
  std::vector<Transition> legacy_transitions;

  void build(std::unique_ptr<wan::DelayModel> delay,
             const std::vector<FdSpec>& suite, std::int64_t max_cycles = 0) {
    transport = std::make_unique<net::SimTransport>(simulator, Rng(1));
    net::SimTransport::LinkConfig link;
    link.delay = std::move(delay);
    transport->set_link(0, 1, std::move(link));

    sender = std::make_unique<runtime::ProcessNode>(*transport, 0);
    runtime::HeartbeaterLayer::Config hb;
    hb.eta = Duration::seconds(1);
    hb.max_cycles = max_cycles;
    sender->push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

    monitor = std::make_unique<runtime::ProcessNode>(*transport, 1);
    auto& mux = monitor->push(std::make_unique<runtime::MultiPlexerLayer>());

    DetectorBank::Config bank_config;
    bank_config.eta = Duration::seconds(1);
    bank_config.monitored = 0;
    bank_config.cold_start_timeout = Duration::seconds(1);
    auto bank_ptr = std::make_unique<DetectorBank>(simulator, bank_config);
    std::size_t last_group = 0;
    std::string last_key;
    for (const auto& spec : suite) {
      if (spec.predictor_key.empty() || spec.predictor_key != last_key) {
        last_group = bank_ptr->add_group(spec.make_predictor());
        last_key = spec.predictor_key;
      }
      bank_ptr->add_lane(spec.name, last_group, spec.make_margin());
    }
    bank_ptr->set_observer([this](std::size_t lane, TimePoint t, bool s) {
      bank_transitions.push_back({lane, t.to_seconds_double(), s});
    });
    bank = bank_ptr.get();
    monitor->attach_unowned(mux, *bank);
    bank_store = std::move(bank_ptr);

    for (std::size_t i = 0; i < suite.size(); ++i) {
      FreshnessDetector::Config config;
      config.eta = Duration::seconds(1);
      config.monitored = 0;
      config.cold_start_timeout = Duration::seconds(1);
      config.name = suite[i].name;
      auto det = std::make_unique<FreshnessDetector>(
          simulator, config, suite[i].make_predictor(),
          suite[i].make_margin());
      det->set_observer([this, i](TimePoint t, bool s) {
        legacy_transitions.push_back({i, t.to_seconds_double(), s});
      });
      legacy.push_back(det.get());
      monitor->attach_unowned(mux, *det);
      legacy_store.push_back(std::move(det));
    }

    sender->start();
    monitor->start();
  }

  void run_for(Duration d) { simulator.run_until(TimePoint::origin() + d); }
};

// A per-lane view of a transition stream; cross-lane interleaving at equal
// timestamps is the one place the engines may legitimately order events
// differently, per-lane streams must match exactly.
std::vector<std::vector<Transition>> by_lane(
    const std::vector<Transition>& stream, std::size_t width) {
  std::vector<std::vector<Transition>> lanes(width);
  for (const auto& t : stream) lanes[t.lane].push_back(t);
  return lanes;
}

TEST(DetectorBankTest, MatchesIndependentDetectorsOnPaperSuite) {
  Harness h;
  const auto suite = make_paper_suite();
  h.build(std::make_unique<wan::ShiftedLognormalDelay>(Duration::millis(180),
                                                       3.0, 0.8),
          suite);
  h.run_for(Duration::seconds(120));

  ASSERT_EQ(h.bank->width(), suite.size());
  EXPECT_EQ(h.bank->group_count(), 5u);  // 5 distinct paper predictors
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(h.bank->lane_name(i), h.legacy[i]->name());
    EXPECT_EQ(h.bank->lane_suspecting(i), h.legacy[i]->suspecting()) << i;
    EXPECT_EQ(h.bank->lane_freshness_index(i), h.legacy[i]->freshness_index())
        << i;
    EXPECT_DOUBLE_EQ(h.bank->lane_delta_ms(i), h.legacy[i]->current_delta_ms())
        << i;
  }
  EXPECT_EQ(h.bank->max_seq(), h.legacy[0]->max_seq());
  EXPECT_EQ(h.bank->observations(), h.legacy[0]->observations());

  const auto bank_lanes = by_lane(h.bank_transitions, suite.size());
  const auto legacy_lanes = by_lane(h.legacy_transitions, suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    ASSERT_EQ(bank_lanes[i].size(), legacy_lanes[i].size()) << suite[i].name;
    for (std::size_t k = 0; k < bank_lanes[i].size(); ++k) {
      EXPECT_DOUBLE_EQ(bank_lanes[i][k].time_s, legacy_lanes[i][k].time_s);
      EXPECT_EQ(bank_lanes[i][k].suspect, legacy_lanes[i][k].suspect);
    }
  }
}

TEST(DetectorBankTest, SharesPredictorEvaluationAcrossLanes) {
  Harness h;
  const auto suite = make_paper_suite();
  h.build(std::make_unique<wan::ConstantDelay>(Duration::millis(150)), suite);
  h.run_for(Duration::seconds(50));

  const auto& counters = h.bank->counters();
  const auto hb = static_cast<std::uint64_t>(h.bank->observations());
  // One observe() per distinct predictor per heartbeat — not per lane.
  EXPECT_EQ(counters.predictor_updates, 5u * hb);
  EXPECT_EQ(counters.lane_updates, 30u * hb);
  EXPECT_EQ(counters.dispatch_errors, 0u);
  // 30 lanes share one cycle tick (29 saved per cycle) plus whatever the
  // expiry queue batches; never less than the structural floor.
  EXPECT_GE(counters.coalesced_timers, 29u * 49u);
  for (std::size_t g = 0; g < h.bank->group_count(); ++g) {
    EXPECT_EQ(h.bank->shared_predictor(g).observe_calls(), hb);
  }
}

TEST(DetectorBankTest, LaneObserverExceptionIsIsolated) {
  sim::Simulator simulator;
  net::SimTransport transport(simulator, Rng(1));
  net::SimTransport::LinkConfig link;
  link.delay = std::make_unique<wan::ConstantDelay>(Duration::millis(100));
  transport.set_link(0, 1, std::move(link));

  runtime::ProcessNode sender(transport, 0);
  runtime::HeartbeaterLayer::Config hb;
  hb.eta = Duration::seconds(1);
  hb.max_cycles = 5;  // stop heartbeating -> every lane eventually suspects
  sender.push(std::make_unique<runtime::HeartbeaterLayer>(simulator, hb));

  runtime::ProcessNode monitor(transport, 1);
  DetectorBank::Config config;
  config.eta = Duration::seconds(1);
  config.monitored = 0;
  auto bank_ptr = std::make_unique<DetectorBank>(simulator, config);
  for (int i = 0; i < 3; ++i) {
    const std::size_t g =
        bank_ptr->add_group(std::make_unique<forecast::LastPredictor>());
    bank_ptr->add_lane("lane" + std::to_string(i), g,
                       std::make_unique<CiSafetyMargin>(2.0));
  }
  std::vector<std::size_t> notified;
  bank_ptr->set_observer([&notified](std::size_t lane, TimePoint, bool) {
    if (lane == 1) throw std::runtime_error("lane 1 consumer is broken");
    notified.push_back(lane);
  });
  DetectorBank& bank = *bank_ptr;
  monitor.push(std::move(bank_ptr));

  sender.start();
  monitor.start();
  simulator.run_until(TimePoint::origin() + Duration::seconds(20));

  // All three lanes transitioned to suspect; the throwing middle lane was
  // contained (counted) and its siblings still heard about their own.
  EXPECT_TRUE(bank.lane_suspecting(0));
  EXPECT_TRUE(bank.lane_suspecting(1));
  EXPECT_TRUE(bank.lane_suspecting(2));
  EXPECT_EQ(notified, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(bank.counters().dispatch_errors, 1u);
}

TEST(DetectorBankTest, DefaultLaneNameComesFromComponents) {
  sim::Simulator simulator;
  DetectorBank bank(simulator, {});
  const std::size_t g =
      bank.add_group(std::make_unique<forecast::LastPredictor>());
  const std::size_t lane =
      bank.add_lane("", g, std::make_unique<CiSafetyMargin>(2.0));
  EXPECT_EQ(bank.lane_name(lane), "LAST+CI(2)");
}

TEST(DetectorBankDeathTest, ContractViolationsAbort) {
  sim::Simulator simulator;
  EXPECT_DEATH(DetectorBank(simulator, {Duration::zero()}), "precondition");

  DetectorBank bank(simulator, {});
  EXPECT_DEATH(bank.add_group(nullptr), "precondition");
  EXPECT_DEATH(bank.add_lane("x", /*group=*/0, nullptr), "precondition");
  EXPECT_DEATH(
      bank.add_lane("x", /*group=*/7, std::make_unique<CiSafetyMargin>(2.0)),
      "precondition");
  EXPECT_DEATH(bank.start(), "precondition");  // zero lanes

  const std::size_t g =
      bank.add_group(std::make_unique<forecast::LastPredictor>());
  bank.add_lane("x", g, std::make_unique<CiSafetyMargin>(2.0));
  bank.start();
  EXPECT_DEATH(
      bank.add_group(std::make_unique<forecast::LastPredictor>()),
      "precondition");  // assembly is sealed once started
  EXPECT_DEATH(bank.lane_name(99), "precondition");
}

}  // namespace
}  // namespace fdqos::fd
