#include "fd/nfd_config.hpp"

#include <gtest/gtest.h>

#include "exp/qos_experiment.hpp"

namespace fdqos::fd {
namespace {

LinkCharacterization paper_link() {
  // The Italy–Japan model's characterization (Table 4).
  LinkCharacterization link;
  link.loss_probability = 0.006;
  link.delay_mean_ms = 200.0;
  link.delay_var_ms2 = 45.0;
  return link;
}

TEST(NfdMissProbabilityTest, CantelliBoundBasics) {
  const auto link = paper_link();
  // At the mean or below, the bound is vacuous.
  EXPECT_DOUBLE_EQ(nfd_miss_probability(link, 200.0), 1.0);
  EXPECT_DOUBLE_EQ(nfd_miss_probability(link, 100.0), 1.0);
  // Far above the mean it approaches the loss floor.
  EXPECT_NEAR(nfd_miss_probability(link, 1200.0), 0.006, 0.001);
  // Monotone decreasing in alpha.
  double prev = 1.0;
  for (double alpha = 201.0; alpha < 400.0; alpha += 10.0) {
    const double p = nfd_miss_probability(link, alpha);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(NfdMissProbabilityTest, LossFloorIsRespected) {
  LinkCharacterization link;
  link.loss_probability = 0.05;
  link.delay_mean_ms = 10.0;
  link.delay_var_ms2 = 1.0;
  EXPECT_GE(nfd_miss_probability(link, 1000.0), 0.05);
}

TEST(ConfigureNfdETest, FeasibleRequirementsProduceValidPair) {
  QosRequirements req;
  req.max_detection_time = Duration::seconds(2);
  req.min_mistake_recurrence = Duration::seconds(60);
  req.max_mistake_duration = Duration::seconds(2);
  const auto config = configure_nfd_e(req, paper_link());
  ASSERT_TRUE(config.has_value());
  // The constraints the configurator promises:
  EXPECT_LE(config->eta + config->alpha, req.max_detection_time);
  EXPECT_GE(config->mistake_recurrence_bound, req.min_mistake_recurrence);
  EXPECT_GT(config->alpha.to_millis_double(), 200.0);  // > E[D]
  EXPECT_GT(config->eta, Duration::zero());
  EXPECT_NEAR(config->margin_ms, config->alpha.to_millis_double() - 200.0,
              1e-3);  // alpha is rounded to whole nanoseconds
}

TEST(ConfigureNfdETest, TighterRecurrenceNeedsBiggerMargin) {
  QosRequirements loose;
  loose.max_detection_time = Duration::seconds(3);
  loose.min_mistake_recurrence = Duration::seconds(30);
  loose.max_mistake_duration = Duration::seconds(3);
  QosRequirements tight = loose;
  // Note: the loss floor caps reachable recurrence at roughly η/p_L; 120 s
  // is demanding but feasible on this link, 3000 s would not be.
  tight.min_mistake_recurrence = Duration::seconds(120);

  const auto a = configure_nfd_e(loose, paper_link());
  const auto b = configure_nfd_e(tight, paper_link());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_GT(b->alpha, a->alpha);
  EXPECT_LE(b->miss_probability, a->miss_probability);
}

TEST(ConfigureNfdETest, ImpossibleRequirementsReturnNullopt) {
  QosRequirements req;
  // Detection faster than the link's mean delay is impossible (α ≤ E[D]).
  req.max_detection_time = Duration::millis(150);
  req.min_mistake_recurrence = Duration::seconds(10);
  req.max_mistake_duration = Duration::seconds(10);
  EXPECT_FALSE(configure_nfd_e(req, paper_link()).has_value());
}

TEST(ConfigureNfdETest, LossyLinkCanMakeRecurrenceUnreachable) {
  LinkCharacterization lossy = paper_link();
  lossy.loss_probability = 0.2;  // every 5th heartbeat lost
  QosRequirements req;
  req.max_detection_time = Duration::seconds(2);
  req.min_mistake_recurrence = Duration::seconds(600);  // needs p_miss < eta/600s
  req.max_mistake_duration = Duration::seconds(2);
  // p_miss ≥ 0.2 but eta/T_MR^L ≤ 2s/600s = 0.0033: infeasible.
  EXPECT_FALSE(configure_nfd_e(req, lossy).has_value());
}

TEST(ConfigureNfdETest, PrefersLargestFeasibleEta) {
  QosRequirements req;
  req.max_detection_time = Duration::seconds(4);
  req.min_mistake_recurrence = Duration::seconds(20);
  req.max_mistake_duration = Duration::seconds(60);
  const auto config = configure_nfd_e(req, paper_link());
  ASSERT_TRUE(config.has_value());
  // With loose accuracy requirements the period should be a large fraction
  // of the detection budget (message-optimal).
  EXPECT_GT(config->eta.to_seconds_double(), 1.0);
}

TEST(NfdESpecTest, SpecBuildsConfiguredDetector) {
  QosRequirements req;
  req.max_detection_time = Duration::seconds(2);
  req.min_mistake_recurrence = Duration::seconds(60);
  req.max_mistake_duration = Duration::seconds(2);
  const auto config = configure_nfd_e(req, paper_link());
  ASSERT_TRUE(config.has_value());
  const FdSpec spec = make_nfd_e_spec(*config);
  EXPECT_EQ(spec.name, "NFD-E");
  auto margin = spec.make_margin();
  EXPECT_DOUBLE_EQ(margin->margin(), config->margin_ms);
  auto predictor = spec.make_predictor();
  EXPECT_EQ(predictor->name(), "MEAN");
}

TEST(NfdEEndToEndTest, ConfiguredDetectorMeetsRequirementsEmpirically) {
  // Configure for the paper link, run it in the QoS experiment, and check
  // the achieved metrics against the requirements (the bounds are
  // conservative, so the measured values should clear them with room).
  QosRequirements req;
  req.max_detection_time = Duration::seconds(2);
  req.min_mistake_recurrence = Duration::seconds(30);
  req.max_mistake_duration = Duration::seconds(2);
  const auto config = configure_nfd_e(req, paper_link());
  ASSERT_TRUE(config.has_value());

  exp::QosExperimentConfig experiment;
  experiment.runs = 2;
  experiment.num_cycles = 2500;
  experiment.seed = 21;
  experiment.eta = config->eta;
  experiment.include_paper_suite = false;
  experiment.extra_specs.push_back(make_nfd_e_spec(*config));
  const auto report = exp::run_qos_experiment(experiment);
  ASSERT_EQ(report.results.size(), 1u);
  const auto& m = report.results[0].metrics;

  EXPECT_GT(m.detections, 0u);
  EXPECT_LE(m.detection_time_ms.max,
            req.max_detection_time.to_millis_double() * 1.05);
  if (m.mistake_recurrence_ms.count > 0) {
    EXPECT_GE(m.mistake_recurrence_ms.mean,
              req.min_mistake_recurrence.to_millis_double() * 0.5);
  }
}

}  // namespace
}  // namespace fdqos::fd
