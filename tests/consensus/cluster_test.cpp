#include "consensus/cluster.hpp"

#include <gtest/gtest.h>

#include "wan/delay_model.hpp"

namespace fdqos::consensus {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::from_seconds_double(s);
}

ConsensusCluster::LinkFactory fast_links() {
  return [](net::NodeId, net::NodeId) {
    net::SimTransport::LinkConfig link;
    link.delay = std::make_unique<wan::ShiftedLognormalDelay>(
        Duration::millis(30), 0.8, 0.4);
    return link;
  };
}

TEST(ConsensusClusterTest, FailureFreeDecides) {
  ConsensusCluster::Config config;
  config.nodes = 3;
  ConsensusCluster cluster(config, fast_links());
  cluster.propose_all(at_s(2.0), {7, 8, 9});
  ASSERT_TRUE(cluster.run_until_decided(at_s(60.0)));
  const auto d0 = cluster.decision(0);
  ASSERT_TRUE(d0.has_value());
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(cluster.decision(i), d0);
  }
  EXPECT_TRUE(*d0 == 7 || *d0 == 8 || *d0 == 9);
}

TEST(ConsensusClusterTest, ReportsRoundAndMessageCounts) {
  ConsensusCluster::Config config;
  config.nodes = 3;
  ConsensusCluster cluster(config, fast_links());
  cluster.propose_all(at_s(2.0), {1, 2, 3});
  ASSERT_TRUE(cluster.run_until_decided(at_s(60.0)));
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(cluster.rounds_entered(i), 1u);
    EXPECT_GT(cluster.consensus_messages(i), 0u);
    EXPECT_LE(cluster.decision_time(i).to_seconds_double(), 10.0);
  }
}

TEST(ConsensusClusterTest, CrashedNodeDoesNotBlockDecision) {
  ConsensusCluster::Config config;
  config.nodes = 3;
  config.crash_schedules[2] = {{at_s(0.5), TimePoint::max()}};
  ConsensusCluster cluster(config, fast_links());
  cluster.propose_all(at_s(2.0), {5, 6, 7});
  ASSERT_TRUE(cluster.run_until_decided(at_s(90.0)));
  EXPECT_FALSE(cluster.node_up(2));
  EXPECT_FALSE(cluster.decision(2).has_value());
  ASSERT_TRUE(cluster.decision(0).has_value());
  EXPECT_EQ(cluster.decision(0), cluster.decision(1));
  // Node 2 never proposed: its value cannot win.
  EXPECT_NE(cluster.decision(0), std::optional<std::int64_t>(7));
}

TEST(ConsensusClusterTest, DeadlineExpiryReportsFalse) {
  ConsensusCluster::Config config;
  config.nodes = 3;
  ConsensusCluster cluster(config, fast_links());
  cluster.propose_all(at_s(2.0), {1, 2, 3});
  // Deadline before the proposals even fire.
  EXPECT_FALSE(cluster.run_until_decided(at_s(1.0)));
}

TEST(ConsensusClusterTest, MembershipViewTracksDetectedCrash) {
  // The per-peer detector banks feed each node's ViewManager: once node 2
  // stays down long enough for the survivors' detectors to fire, their
  // views must exclude it (and elect the smallest live member), while a
  // failure-free node's own view keeps all members.
  ConsensusCluster::Config config;
  config.nodes = 3;
  config.crash_schedules[2] = {{at_s(5.0), TimePoint::max()}};
  ConsensusCluster cluster(config, fast_links());
  cluster.simulator().run_until(at_s(60.0));
  for (int i = 0; i < 2; ++i) {
    const membership::View& view = cluster.view(i);
    EXPECT_FALSE(view.contains(2)) << "node " << i;
    EXPECT_TRUE(view.contains(0)) << "node " << i;
    EXPECT_TRUE(view.contains(1)) << "node " << i;
    EXPECT_EQ(view.coordinator(), 0) << "node " << i;
    EXPECT_GE(cluster.views_installed(i), 1u) << "node " << i;
    EXPECT_GE(cluster.coordinator_changes(i), 0u) << "node " << i;
  }
}

TEST(ConsensusClusterTest, DetectorConfigurationIsHonored) {
  ConsensusCluster::Config config;
  config.nodes = 3;
  config.predictor_label = "Mean";
  config.margin_label = "CI_high";
  ConsensusCluster cluster(config, fast_links());
  cluster.propose_all(at_s(2.0), {4, 5, 6});
  EXPECT_TRUE(cluster.run_until_decided(at_s(60.0)));
}

}  // namespace
}  // namespace fdqos::consensus
