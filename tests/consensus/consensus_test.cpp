// Chandra–Toueg consensus over real failure detectors: safety (agreement,
// validity) and termination under crashes and message loss.
#include "consensus/process.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fd/freshness_detector.hpp"
#include "forecast/basic_predictors.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"
#include "runtime/scripted_crash.hpp"
#include "wan/italy_japan.hpp"

namespace fdqos::consensus {
namespace {

constexpr Duration kEta = Duration::millis(200);

struct ConsensusNode {
  std::unique_ptr<runtime::ProcessNode> process;
  runtime::ScriptedCrashLayer* crash = nullptr;
  std::vector<std::unique_ptr<runtime::HeartbeaterLayer>> heartbeaters;
  std::map<net::NodeId, std::unique_ptr<fd::FreshnessDetector>> detectors;
  std::unique_ptr<ConsensusProcess> consensus_owner;
  ConsensusProcess* consensus = nullptr;
  std::optional<std::int64_t> decision;
  TimePoint decision_time;
};

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<net::SimTransport> transport;
  std::vector<ConsensusNode> nodes;

  // schedules[i]: down periods for node i. link_factory makes each
  // directional link's delay/loss.
  void build(
      int n,
      const std::map<int, std::vector<runtime::ScriptedCrashLayer::DownPeriod>>&
          schedules,
      std::uint64_t seed = 1, double loss = 0.0) {
    transport = std::make_unique<net::SimTransport>(simulator, Rng(seed));
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a == b) continue;
        net::SimTransport::LinkConfig link;
        link.delay = std::make_unique<wan::ShiftedLognormalDelay>(
            Duration::millis(40), 1.0, 0.5);
        if (loss > 0.0) link.loss = std::make_unique<wan::BernoulliLoss>(loss);
        transport->set_link(a, b, std::move(link));
      }
    }

    std::vector<net::NodeId> members;
    for (int i = 0; i < n; ++i) members.push_back(i);

    nodes.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ConsensusNode& node = nodes[static_cast<std::size_t>(i)];
      node.process = std::make_unique<runtime::ProcessNode>(*transport, i);
      auto it = schedules.find(i);
      node.crash = &node.process->push(
          std::make_unique<runtime::ScriptedCrashLayer>(
              simulator, it != schedules.end()
                             ? it->second
                             : std::vector<
                                   runtime::ScriptedCrashLayer::DownPeriod>{}));

      for (int peer = 0; peer < n; ++peer) {
        if (peer == i) continue;
        runtime::HeartbeaterLayer::Config hb;
        hb.eta = kEta;
        hb.self = i;
        hb.monitor = peer;
        auto beater =
            std::make_unique<runtime::HeartbeaterLayer>(simulator, hb);
        node.process->attach_unowned(*node.crash, *beater);
        node.heartbeaters.push_back(std::move(beater));

        fd::FreshnessDetector::Config config;
        config.eta = kEta;
        config.monitored = peer;
        config.cold_start_timeout = Duration::millis(500);
        auto detector = std::make_unique<fd::FreshnessDetector>(
            simulator, config, std::make_unique<forecast::LastPredictor>(),
            std::make_unique<fd::JacobsonSafetyMargin>(4.0));
        node.process->attach_unowned(*node.crash, *detector);
        node.detectors.emplace(peer, std::move(detector));
      }

      ConsensusProcess::Config config;
      config.self = i;
      config.members = members;
      config.retransmit_interval = Duration::millis(300);
      auto* detectors = &node.detectors;
      node.consensus_owner = std::make_unique<ConsensusProcess>(
          simulator, config, [detectors](net::NodeId peer) {
            auto it = detectors->find(peer);
            return it != detectors->end() && it->second->suspecting();
          });
      node.consensus = node.consensus_owner.get();
      node.process->attach_unowned(*node.crash, *node.consensus);
      node.consensus->set_decision_observer(
          [&node, this](std::int64_t value, TimePoint t, std::uint32_t) {
            node.decision = value;
            node.decision_time = t;
          });
      // Prompt NACKs on suspicion transitions.
      for (auto& [peer, det] : node.detectors) {
        ConsensusProcess* consensus = node.consensus;
        det->set_observer([consensus](TimePoint, bool) {
          consensus->on_suspicion_change();
        });
      }
      node.process->start();
    }
  }

  void propose_all(TimePoint when, const std::vector<std::int64_t>& values) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      ConsensusNode* node = &nodes[i];
      const std::int64_t value = values[i];
      // Crash state is evaluated at fire time: a node that is down when the
      // client request arrives never proposes.
      simulator.schedule_at(when, [node, value] {
        if (!node->crash->crashed()) node->consensus->propose(value);
      });
    }
  }

  void check_agreement_validity(const std::vector<std::int64_t>& proposals,
                                const std::vector<bool>& must_decide) {
    std::optional<std::int64_t> agreed;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!must_decide[i]) continue;
      ASSERT_TRUE(nodes[i].decision.has_value()) << "node " << i;
      if (!agreed) agreed = nodes[i].decision;
      EXPECT_EQ(nodes[i].decision, agreed) << "agreement violated at " << i;
    }
    if (agreed) {
      bool valid = false;
      for (std::int64_t p : proposals) {
        if (p == *agreed) valid = true;
      }
      EXPECT_TRUE(valid) << "decided value " << *agreed
                         << " was never proposed";
    }
  }
};

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::from_seconds_double(s);
}

TEST(ConsensusTest, FailureFreeRunDecidesQuickly) {
  Cluster cluster;
  cluster.build(3, {});
  const std::vector<std::int64_t> proposals{10, 20, 30};
  cluster.propose_all(at_s(2.0), proposals);
  cluster.simulator.run_until(at_s(30.0));

  cluster.check_agreement_validity(proposals, {true, true, true});
  for (const auto& node : cluster.nodes) {
    // Failure-free: the first coordinator succeeds, within a few RTTs.
    EXPECT_LT((node.decision_time - at_s(2.0)).to_seconds_double(), 3.0);
    EXPECT_LE(node.consensus->rounds_entered(), 4u);
  }
}

TEST(ConsensusTest, InitiallyDeadCoordinatorIsSkipped) {
  // Node 0 coordinates round 1 but is down from the start; the others must
  // suspect it and decide via coordinator 1.
  Cluster cluster;
  cluster.build(3, {{0, {{at_s(0.0), TimePoint::max()}}}});
  const std::vector<std::int64_t> proposals{0, 21, 33};
  cluster.propose_all(at_s(2.0), proposals);
  cluster.simulator.run_until(at_s(60.0));

  cluster.check_agreement_validity(proposals, {false, true, true});
  EXPECT_FALSE(cluster.nodes[0].decision.has_value());
  for (int i : {1, 2}) {
    const auto& node = cluster.nodes[static_cast<std::size_t>(i)];
    EXPECT_EQ(node.decision, std::optional<std::int64_t>(21));  // 0 never proposed
    EXPECT_GE(node.consensus->rounds_entered(), 2u);
  }
}

TEST(ConsensusTest, CoordinatorCrashMidInstanceStillTerminates) {
  // Node 0 crashes 150 ms after proposals start — possibly mid-round-1.
  Cluster cluster;
  cluster.build(3, {{0, {{at_s(2.15), TimePoint::max()}}}});
  const std::vector<std::int64_t> proposals{11, 22, 33};
  cluster.propose_all(at_s(2.0), proposals);
  cluster.simulator.run_until(at_s(60.0));
  cluster.check_agreement_validity(proposals, {false, true, true});
}

TEST(ConsensusTest, FiveNodesTwoCrashesStillMajority) {
  Cluster cluster;
  cluster.build(5, {{1, {{at_s(0.0), TimePoint::max()}}},
                    {3, {{at_s(2.3), TimePoint::max()}}}});
  const std::vector<std::int64_t> proposals{100, 0, 300, 400, 500};
  cluster.propose_all(at_s(2.0), proposals);
  cluster.simulator.run_until(at_s(90.0));
  cluster.check_agreement_validity(proposals,
                                   {true, false, true, false, true});
}

TEST(ConsensusTest, SurvivesHeavyMessageLoss) {
  Cluster cluster;
  cluster.build(3, {}, /*seed=*/9, /*loss=*/0.15);
  const std::vector<std::int64_t> proposals{-1, -2, -3};
  cluster.propose_all(at_s(2.0), proposals);
  cluster.simulator.run_until(at_s(120.0));
  cluster.check_agreement_validity(proposals, {true, true, true});
}

TEST(ConsensusTest, LateProposerIsPulledToDecision) {
  // Node 2 proposes 5 s after the others; by then a decision may exist —
  // stubborn DECIDE replies must still bring node 2 to the same value.
  Cluster cluster;
  cluster.build(3, {});
  for (int i : {0, 1}) {
    ConsensusProcess* consensus = cluster.nodes[static_cast<std::size_t>(i)].consensus;
    const std::int64_t value = (i + 1) * 7;
    cluster.simulator.schedule_at(at_s(2.0), [consensus, value] {
      consensus->propose(value);
    });
  }
  ConsensusProcess* late = cluster.nodes[2].consensus;
  cluster.simulator.schedule_at(at_s(7.0), [late] { late->propose(999); });
  cluster.simulator.run_until(at_s(60.0));

  ASSERT_TRUE(cluster.nodes[0].decision.has_value());
  ASSERT_TRUE(cluster.nodes[2].decision.has_value());
  EXPECT_EQ(cluster.nodes[2].decision, cluster.nodes[0].decision);
  EXPECT_NE(cluster.nodes[2].decision, std::optional<std::int64_t>(999));
}

class ConsensusPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsensusPropertyTest, SafetyUnderRandomLossAndOneCrash) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const double loss = rng.uniform(0.0, 0.2);
  // Crash one random non-zero... any node; crash time in [1.5, 6] s.
  const int victim = static_cast<int>(rng.uniform_int(0, 4));
  const double crash_time = rng.uniform(1.5, 6.0);

  Cluster cluster;
  cluster.build(5, {{victim, {{at_s(crash_time), TimePoint::max()}}}},
                seed * 13 + 1, loss);
  const std::vector<std::int64_t> proposals{1, 2, 3, 4, 5};
  cluster.propose_all(at_s(2.0), proposals);
  cluster.simulator.run_until(at_s(180.0));

  std::vector<bool> must_decide(5, true);
  must_decide[static_cast<std::size_t>(victim)] = false;
  cluster.check_agreement_validity(proposals, must_decide);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fdqos::consensus
