#include "consensus/messages.hpp"

#include <gtest/gtest.h>

namespace fdqos::consensus {
namespace {

TEST(ConsensusMessagesTest, WrapUnwrapRoundTrip) {
  ConsensusMsg msg;
  msg.kind = MsgKind::kProposal;
  msg.instance = 42;
  msg.round = 7;
  msg.value = -123456789;
  msg.ts = 5;

  const net::Message wire = wrap(msg, 2, 3, TimePoint::from_nanos(1000));
  EXPECT_EQ(wire.from, 2);
  EXPECT_EQ(wire.to, 3);
  EXPECT_EQ(wire.type, net::MessageType::kUser);

  const auto decoded = unwrap(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ConsensusMessagesTest, AllKindsRoundTrip) {
  for (MsgKind kind : {MsgKind::kEstimate, MsgKind::kProposal, MsgKind::kAck,
                       MsgKind::kNack, MsgKind::kDecide}) {
    ConsensusMsg msg;
    msg.kind = kind;
    msg.instance = 1;
    msg.round = 3;
    msg.value = 99;
    msg.ts = 2;
    const auto decoded = unwrap(wrap(msg, 0, 1, TimePoint::origin()));
    ASSERT_TRUE(decoded.has_value()) << msg_kind_name(kind);
    EXPECT_EQ(decoded->kind, kind);
  }
}

TEST(ConsensusMessagesTest, RejectsNonUserMessages) {
  net::Message hb;
  hb.type = net::MessageType::kHeartbeat;
  hb.seq = 1;
  EXPECT_FALSE(unwrap(hb).has_value());
}

TEST(ConsensusMessagesTest, RejectsForeignUserPayloads) {
  net::Message user;
  user.type = net::MessageType::kUser;
  user.payload = {0x01, 0x02, 0x03};
  EXPECT_FALSE(unwrap(user).has_value());
}

TEST(ConsensusMessagesTest, RejectsTruncatedPayload) {
  ConsensusMsg msg;
  msg.kind = MsgKind::kAck;
  net::Message wire = wrap(msg, 0, 1, TimePoint::origin());
  wire.payload.pop_back();
  EXPECT_FALSE(unwrap(wire).has_value());
}

TEST(ConsensusMessagesTest, RejectsInvalidKind) {
  ConsensusMsg msg;
  msg.kind = MsgKind::kDecide;
  net::Message wire = wrap(msg, 0, 1, TimePoint::origin());
  wire.payload[1] = 0x77;  // kind byte out of range
  EXPECT_FALSE(unwrap(wire).has_value());
}

TEST(ConsensusMessagesTest, KindNames) {
  EXPECT_STREQ(msg_kind_name(MsgKind::kEstimate), "estimate");
  EXPECT_STREQ(msg_kind_name(MsgKind::kDecide), "decide");
}

}  // namespace
}  // namespace fdqos::consensus
