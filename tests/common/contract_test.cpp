// Contract checks: FDQOS_REQUIRE/ASSERT abort on precondition violations —
// in a simulator, continuing past a broken invariant corrupts every
// downstream measurement, so the library fails fast. These death tests pin
// the contracts of the most misuse-prone constructors and calls.
#include <gtest/gtest.h>

// Older gtest: set the death-test style once, process-wide.
static const bool kDeathStyle = [] {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  return true;
}();

#include <memory>

#include "common/rng.hpp"
#include "faultx/fault_schedule.hpp"
#include "fd/safety_margin.hpp"
#include "forecast/basic_predictors.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "stats/quantiles.hpp"
#include "wan/delay_model.hpp"
#include "wan/loss_model.hpp"

namespace fdqos {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, SchedulingInThePastAborts) {
  sim::Simulator sim;
  sim.run_until(TimePoint::origin() + Duration::seconds(10));
  EXPECT_DEATH(sim.schedule_at(TimePoint::origin() + Duration::seconds(5), [] {}),
               "precondition");
}

TEST(ContractDeathTest, NegativeDelayAborts) {
  sim::Simulator sim;
  EXPECT_DEATH(sim.schedule_after(Duration::millis(-1), [] {}), "precondition");
}

TEST(ContractDeathTest, InvalidUniformBoundsAbort) {
  Rng rng(1);
  EXPECT_DEATH(rng.uniform(5.0, 1.0), "");
  EXPECT_DEATH(rng.uniform_int(10, 2), "");
}

TEST(ContractDeathTest, ZeroWindowPredictorAborts) {
  EXPECT_DEATH(forecast::WinMeanPredictor{0}, "precondition");
}

TEST(ContractDeathTest, InvalidLpfBetaAborts) {
  EXPECT_DEATH(forecast::LpfPredictor{0.0}, "precondition");
  EXPECT_DEATH(forecast::LpfPredictor{1.5}, "precondition");
}

TEST(ContractDeathTest, NonPositiveGammaAborts) {
  EXPECT_DEATH(fd::CiSafetyMargin{0.0}, "precondition");
  EXPECT_DEATH(fd::CiSafetyMargin{-2.0}, "precondition");
}

TEST(ContractDeathTest, InvalidJacobsonAlphaAborts) {
  EXPECT_DEATH((fd::JacobsonSafetyMargin{2.0, 0.0}), "precondition");
  EXPECT_DEATH((fd::JacobsonSafetyMargin{2.0, 1.5}), "precondition");
}

TEST(ContractDeathTest, DegenerateHistogramAborts) {
  EXPECT_DEATH((stats::Histogram{5.0, 5.0, 10}), "precondition");
  EXPECT_DEATH((stats::Histogram{0.0, 1.0, 0}), "precondition");
}

TEST(ContractDeathTest, QuantileOutOfRangeAborts) {
  stats::SampleSet s;
  s.add(1.0);
  EXPECT_DEATH(s.quantile(1.5), "precondition");
  EXPECT_DEATH(stats::P2Quantile{0.0}, "precondition");
}

TEST(ContractDeathTest, UniformDelayReversedBoundsAbort) {
  EXPECT_DEATH(
      (wan::UniformDelay{Duration::millis(100), Duration::millis(50)}),
      "precondition");
}

TEST(ContractDeathTest, GilbertElliottRejectsInvalidProbabilities) {
  wan::GilbertElliottLoss::Params params;
  params.p_good_to_bad = 1.5;
  EXPECT_DEATH(wan::GilbertElliottLoss{params}, "precondition");
  params.p_good_to_bad = 0.1;
  params.p_bad_to_good = -0.2;
  EXPECT_DEATH(wan::GilbertElliottLoss{params}, "precondition");
  params.p_bad_to_good = 0.1;
  params.loss_good = 2.0;
  EXPECT_DEATH(wan::GilbertElliottLoss{params}, "precondition");
  params.loss_good = 0.0;
  params.loss_bad = -1.0;
  EXPECT_DEATH(wan::GilbertElliottLoss{params}, "precondition");
}

TEST(ContractDeathTest, SpikeMixtureRejectsInvalidParams) {
  auto base = [] {
    return std::make_unique<wan::ConstantDelay>(Duration::millis(100));
  };
  // Null base.
  EXPECT_DEATH((wan::SpikeMixtureDelay{nullptr, 0.1, Duration::millis(30),
                                       1.5, Duration::millis(340)}),
               "precondition");
  // Probability outside [0, 1].
  EXPECT_DEATH((wan::SpikeMixtureDelay{base(), 1.2, Duration::millis(30),
                                       1.5, Duration::millis(340)}),
               "precondition");
  // Non-positive Pareto shape.
  EXPECT_DEATH((wan::SpikeMixtureDelay{base(), 0.1, Duration::millis(30),
                                       0.0, Duration::millis(340)}),
               "precondition");
  // Non-positive scale.
  EXPECT_DEATH((wan::SpikeMixtureDelay{base(), 0.1, Duration::zero(), 1.5,
                                       Duration::millis(340)}),
               "precondition");
  // Cap below scale (the Pareto support would be empty).
  EXPECT_DEATH((wan::SpikeMixtureDelay{base(), 0.1, Duration::millis(30),
                                       1.5, Duration::millis(10)}),
               "precondition");
}

TEST(ContractDeathTest, FaultScheduleRejectsNonsenseEvents) {
  faultx::FaultSchedule s;
  const TimePoint t = TimePoint::origin() + Duration::seconds(10);
  EXPECT_DEATH(s.spike(t, Duration::millis(-1), Duration::millis(10)),
               "precondition");
  EXPECT_DEATH(s.spike(t, Duration::seconds(1), Duration::millis(-10)),
               "precondition");
  EXPECT_DEATH(s.ramp(t, Duration::zero(), Duration::millis(10)),
               "precondition");
  EXPECT_DEATH(s.reorder(t, Duration::seconds(1), 1.5, Duration::millis(10)),
               "precondition");
  EXPECT_DEATH(s.duplicate(t, Duration::seconds(1), -0.5), "precondition");
  EXPECT_DEATH(s.flap(t, Duration::seconds(1), Duration::zero(), 0.5),
               "precondition");
  EXPECT_DEATH(s.flap(t, Duration::seconds(1), Duration::seconds(1), 2.0),
               "precondition");
  wan::GilbertElliottLoss::Params bad_chain;
  bad_chain.loss_bad = 7.0;
  EXPECT_DEATH(s.burst_loss(t, Duration::seconds(1), bad_chain),
               "precondition");
}

}  // namespace
}  // namespace fdqos
