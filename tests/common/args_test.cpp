#include "common/args.hpp"

#include <gtest/gtest.h>

namespace fdqos {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, SpaceSeparatedValues) {
  const auto args = parse({"--runs", "13", "--seed", "42"});
  EXPECT_EQ(args.get_int("--runs", 0), 13);
  EXPECT_EQ(args.get_int("--seed", 0), 42);
  EXPECT_EQ(args.get_int("--missing", 7), 7);
}

TEST(ArgParserTest, EqualsSeparatedValues) {
  const auto args = parse({"--eta-ms=250", "--gamma=3.31"});
  EXPECT_EQ(args.get_int("--eta-ms", 0), 250);
  EXPECT_DOUBLE_EQ(args.get_double("--gamma", 0.0), 3.31);
}

TEST(ArgParserTest, BareFlags) {
  const auto args = parse({"--baselines", "--csv", "out.csv"});
  EXPECT_TRUE(args.get_flag("--baselines"));
  EXPECT_FALSE(args.get_flag("--pareto"));
  EXPECT_EQ(args.get_string("--csv", ""), "out.csv");
}

TEST(ArgParserTest, ExplicitBooleanValues) {
  const auto args = parse({"--a=true", "--b=false", "--c=0", "--d=1"});
  EXPECT_TRUE(args.get_flag("--a"));
  EXPECT_FALSE(args.get_flag("--b"));
  EXPECT_FALSE(args.get_flag("--c"));
  EXPECT_TRUE(args.get_flag("--d"));
}

TEST(ArgParserTest, PositionalArguments) {
  const auto args = parse({"qos", "--runs", "3", "extra"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"qos", "extra"}));
}

TEST(ArgParserTest, FlagFollowedByFlagDoesNotEatIt) {
  const auto args = parse({"--pareto", "--runs", "5"});
  EXPECT_TRUE(args.get_flag("--pareto"));
  EXPECT_EQ(args.get_int("--runs", 0), 5);
}

TEST(ArgParserTest, UnknownKeysReported) {
  const auto args = parse({"--runs", "3", "--tpyo", "7"});
  EXPECT_EQ(args.get_int("--runs", 0), 3);
  const auto unknown = args.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "--tpyo");
}

TEST(ArgParserTest, HasMarksQueried) {
  const auto args = parse({"--x", "1"});
  EXPECT_TRUE(args.has("--x"));
  EXPECT_TRUE(args.unknown_keys().empty());
}

TEST(ArgParserTest, EmptyCommandLine) {
  const auto args = parse({});
  EXPECT_TRUE(args.positional().empty());
  EXPECT_EQ(args.get_string("--anything", "dflt"), "dflt");
}

}  // namespace
}  // namespace fdqos
