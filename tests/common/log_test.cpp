#include "common/log.hpp"

#include <gtest/gtest.h>

#include <string>

namespace fdqos {
namespace {

class LogLevelScope {
 public:
  explicit LogLevelScope(LogLevel level) : saved_(log_level()) {
    set_log_level(level);
  }
  ~LogLevelScope() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, TraceIsFilteredBelowItsLevel) {
  LogLevelScope scope(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  FDQOS_LOG_TRACE("invisible %d", 1);
  FDQOS_LOG_DEBUG("also invisible");
  FDQOS_LOG_INFO("visible %d", 2);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("invisible"), std::string::npos);
  EXPECT_NE(err.find("[fdqos INFO ] visible 2"), std::string::npos);
}

TEST(LogTest, TraceEmitsAtTraceLevel) {
  LogLevelScope scope(LogLevel::kTrace);
  ::testing::internal::CaptureStderr();
  FDQOS_LOG_TRACE("freshness %s tau=%.1f", "fd-1", 1.5);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[fdqos TRACE] freshness fd-1 tau=1.5"),
            std::string::npos);
}

TEST(LogTest, LongMessagesAreNotTruncated) {
  LogLevelScope scope(LogLevel::kInfo);
  // Longer than log_fmt's 1024-byte stack buffer: forces the heap path.
  const std::string payload(5000, 'x');
  ::testing::internal::CaptureStderr();
  FDQOS_LOG_INFO("head %s tail", payload.c_str());
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("head " + payload + " tail"), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  LogLevelScope scope(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  FDQOS_LOG_ERROR("should not appear");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace fdqos
