#include "common/time.hpp"

#include <gtest/gtest.h>

namespace fdqos {
namespace {

TEST(DurationTest, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).count_nanos(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(1).count_nanos(), 1'000'000);
  EXPECT_EQ(Duration::micros(1).count_nanos(), 1'000);
  EXPECT_EQ(Duration::seconds(2), Duration::millis(2000));
}

TEST(DurationTest, FractionalConstructorsRound) {
  EXPECT_EQ(Duration::from_millis_double(1.5).count_nanos(), 1'500'000);
  EXPECT_EQ(Duration::from_seconds_double(0.25).count_nanos(), 250'000'000);
  EXPECT_EQ(Duration::from_millis_double(-3.25).count_nanos(), -3'250'000);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::millis(300);
  const Duration b = Duration::millis(200);
  EXPECT_EQ((a + b), Duration::millis(500));
  EXPECT_EQ((a - b), Duration::millis(100));
  EXPECT_EQ((-b), Duration::millis(-200));
  EXPECT_EQ(a * 3, Duration::millis(900));
  EXPECT_EQ(a / 3, Duration::millis(100));
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = Duration::millis(100);
  d += Duration::millis(50);
  EXPECT_EQ(d, Duration::millis(150));
  d -= Duration::millis(70);
  EXPECT_EQ(d, Duration::millis(80));
}

TEST(DurationTest, Ordering) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GT(Duration::seconds(1), Duration::millis(999));
  EXPECT_LE(Duration::zero(), Duration::zero());
}

TEST(DurationTest, ConversionsToDouble) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds_double(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).to_millis_double(), 2.5);
}

TEST(DurationTest, ScaledRoundsToNearestNano) {
  EXPECT_EQ(Duration::nanos(10).scaled(0.25).count_nanos(), 3);  // 2.5 -> 3
  EXPECT_EQ(Duration::millis(100).scaled(1.5), Duration::millis(150));
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(Duration::millis(203).to_string(), "203.000ms");
  EXPECT_EQ(Duration::micros(15).to_string(), "15.000us");
  EXPECT_EQ(Duration::nanos(7).to_string(), "7ns");
}

TEST(TimePointTest, OriginAndOffsets) {
  const TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(t0.count_nanos(), 0);
  const TimePoint t1 = t0 + Duration::seconds(3);
  EXPECT_EQ((t1 - t0), Duration::seconds(3));
  EXPECT_EQ((t1 - Duration::seconds(1)) - t0, Duration::seconds(2));
}

TEST(TimePointTest, Ordering) {
  const TimePoint a = TimePoint::origin() + Duration::millis(10);
  const TimePoint b = TimePoint::origin() + Duration::millis(20);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TimePoint::from_nanos(10'000'000));
  EXPECT_LT(a, TimePoint::max());
}

TEST(TimePointTest, CompoundAdvance) {
  TimePoint t = TimePoint::origin();
  t += Duration::seconds(5);
  EXPECT_DOUBLE_EQ(t.to_seconds_double(), 5.0);
  EXPECT_DOUBLE_EQ(t.to_millis_double(), 5000.0);
}

}  // namespace
}  // namespace fdqos
