#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fdqos {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NamedForksAreStable) {
  const Rng root(7);
  Rng a = root.fork("delay");
  Rng b = root.fork("delay");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DistinctForkNamesGiveDistinctStreams) {
  const Rng root(7);
  Rng a = root.fork("delay");
  Rng b = root.fork("loss");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, IndexedForksAreStableAndDistinct) {
  const Rng root(99);
  Rng r0 = root.fork(std::uint64_t{0});
  Rng r0b = root.fork(std::uint64_t{0});
  Rng r1 = root.fork(std::uint64_t{1});
  EXPECT_EQ(r0.next_u64(), r0b.next_u64());
  EXPECT_NE(r0.next_u64(), r1.next_u64());
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  // Forking must not depend on how much of the parent stream was consumed
  // *after* the fork — but here we check fork before/after parent draws
  // from the same parent state differ is NOT required; what matters is:
  // two forks with the same name from the same parent state coincide.
  Rng root(5);
  Rng f1 = root.fork("x");
  Rng f2 = root.fork("x");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(14);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, LognormalMeanMatchesClosedForm) {
  Rng rng(16);
  const double mu = 1.0;
  const double sigma = 0.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  const double expected = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(sum / n, expected, expected * 0.02);
}

TEST(RngTest, GammaMeanAndVarianceMatch) {
  Rng rng(17);
  const double shape = 3.0;
  const double scale = 2.0;
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.1);          // 6
  EXPECT_NEAR(var, shape * scale * scale, 0.35);  // 12
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng(18);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(0.5, 1.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ParetoRespectsScaleFloor) {
  Rng rng(20);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(21);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 50u);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

}  // namespace
}  // namespace fdqos
