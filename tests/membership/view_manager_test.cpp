#include "membership/view_manager.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fdqos::membership {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::from_seconds_double(s);
}

TEST(ViewTest, CoordinatorIsSmallestMember) {
  View v;
  v.members = {5, 2, 9};
  EXPECT_EQ(v.coordinator(), 2);
  EXPECT_TRUE(v.contains(9));
  EXPECT_FALSE(v.contains(1));
}

TEST(ViewTest, ToStringFormat) {
  View v;
  v.id = 3;
  v.members = {0, 2, 5};
  EXPECT_EQ(v.to_string(), "view#3{0,2,5}");
}

TEST(ViewManagerTest, InitialViewContainsEveryone) {
  ViewManager vm(1, {0, 1, 2, 3});
  EXPECT_EQ(vm.view().id, 1u);
  EXPECT_EQ(vm.view().members.size(), 4u);
  EXPECT_EQ(vm.view().coordinator(), 0);
}

TEST(ViewManagerTest, SuspicionEvictsAndTrustReadmits) {
  ViewManager vm(1, {0, 1, 2});
  std::vector<View> installed;
  vm.set_observer([&](const View& v, TimePoint, bool) { installed.push_back(v); });

  vm.peer_suspected(2, at_s(10.0));
  ASSERT_EQ(installed.size(), 1u);
  EXPECT_EQ(installed[0].id, 2u);
  EXPECT_FALSE(installed[0].contains(2));

  vm.peer_trusted(2, at_s(12.0));
  ASSERT_EQ(installed.size(), 2u);
  EXPECT_TRUE(installed[1].contains(2));
  EXPECT_EQ(installed[1].id, 3u);
}

TEST(ViewManagerTest, DuplicateTransitionsAreIdempotent) {
  ViewManager vm(1, {0, 1, 2});
  vm.peer_suspected(0, at_s(1.0));
  const std::uint64_t id = vm.view().id;
  vm.peer_suspected(0, at_s(2.0));  // already out
  EXPECT_EQ(vm.view().id, id);
  vm.peer_trusted(2, at_s(3.0));  // already in
  EXPECT_EQ(vm.view().id, id);
}

TEST(ViewManagerTest, CoordinatorChangeTracking) {
  ViewManager vm(1, {0, 1, 2});
  bool last_change = false;
  vm.set_observer([&](const View&, TimePoint, bool changed) {
    last_change = changed;
  });
  vm.peer_suspected(2, at_s(1.0));  // coordinator stays 0
  EXPECT_FALSE(last_change);
  EXPECT_EQ(vm.coordinator_changes(), 0u);
  vm.peer_suspected(0, at_s(2.0));  // coordinator 0 evicted -> 1 leads
  EXPECT_TRUE(last_change);
  EXPECT_EQ(vm.coordinator_changes(), 1u);
  EXPECT_EQ(vm.view().coordinator(), 1);
}

TEST(ViewManagerTest, SelfIsNeverEvicted) {
  ViewManager vm(1, {0, 1, 2});
  vm.peer_suspected(0, at_s(1.0));
  vm.peer_suspected(2, at_s(2.0));
  EXPECT_EQ(vm.view().members, (std::set<net::NodeId>{1}));
  EXPECT_EQ(vm.view().coordinator(), 1);
}

TEST(ViewManagerTest, ViewDurations) {
  ViewManager vm(1, {0, 1, 2});
  vm.peer_suspected(2, at_s(10.0));  // view 1 lasted 10 s
  vm.peer_trusted(2, at_s(25.0));    // view 2 lasted 15 s
  vm.finalize(at_s(30.0));           // view 3 lasted 5 s
  EXPECT_EQ(vm.view_duration_ms().count(), 3u);
  EXPECT_DOUBLE_EQ(vm.view_duration_ms().mean(), 10000.0);
  EXPECT_DOUBLE_EQ(vm.view_duration_ms().max(), 15000.0);
}

}  // namespace
}  // namespace fdqos::membership
