#include "stats/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdqos::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
}

TEST(NormalTailTest, ComplementsCdf) {
  for (double x : {-3.0, -1.0, 0.0, 0.5, 2.0, 4.0}) {
    EXPECT_NEAR(normal_tail(x), 1.0 - normal_cdf(x), 1e-12) << x;
  }
}

TEST(NormalTailTest, FarTailStaysPositive) {
  // erfc keeps precision where 1-cdf would round to zero.
  EXPECT_GT(normal_tail(8.0), 0.0);
  EXPECT_LT(normal_tail(8.0), 1e-14);
  EXPECT_NEAR(-std::log10(normal_tail(6.0)), 9.0, 1.0);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447460685429), 1.0, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.001), -3.090232306167813, 1e-7);
}

TEST(InverseNormalCdfTest, RoundTripsWithCdf) {
  for (double p = 0.0005; p < 1.0; p += 0.013) {
    EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-9) << p;
  }
}

TEST(InverseNormalCdfTest, DeepTailsRoundTrip) {
  for (double p : {1e-6, 1e-9, 1.0 - 1e-6, 1.0 - 1e-9}) {
    const double z = inverse_normal_cdf(p);
    EXPECT_NEAR(normal_cdf(z), p, std::max(1e-12, p * 1e-4)) << p;
  }
}

TEST(InverseNormalCdfTest, Monotone) {
  double prev = inverse_normal_cdf(0.001);
  for (double p = 0.002; p < 0.999; p += 0.001) {
    const double z = inverse_normal_cdf(p);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

}  // namespace
}  // namespace fdqos::stats
