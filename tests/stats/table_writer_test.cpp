#include "stats/table_writer.hpp"

#include <gtest/gtest.h>

namespace fdqos::stats {
namespace {

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(TableWriterTest, AsciiContainsTitleHeaderAndCells) {
  TableWriter t("My Table");
  t.set_columns({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("My Table"), std::string::npos);
  EXPECT_NE(ascii.find("name"), std::string::npos);
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableWriterTest, ColumnsAlign) {
  TableWriter t;
  t.set_columns({"a", "b"});
  t.add_row({"longlabel", "1"});
  t.add_row({"x", "2"});
  const std::string ascii = t.to_ascii();
  // Both data rows must place column b at the same offset.
  const auto lines_start = ascii.find("longlabel");
  ASSERT_NE(lines_start, std::string::npos);
  const auto row1_end = ascii.find('\n', lines_start);
  const std::string row1 = ascii.substr(lines_start, row1_end - lines_start);
  const auto row2_start = row1_end + 1;
  const auto row2_end = ascii.find('\n', row2_start);
  const std::string row2 = ascii.substr(row2_start, row2_end - row2_start);
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(TableWriterTest, NumericRowHelper) {
  TableWriter t;
  t.set_columns({"label", "v1", "v2"});
  t.add_row("row", {1.234, 5.678}, 1);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("row,1.2,5.7"), std::string::npos);
}

TEST(TableWriterTest, CsvEscaping) {
  TableWriter t;
  t.set_columns({"a"});
  t.add_row({std::string("has,comma and \"quote\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma and \"\"quote\"\"\""), std::string::npos);
}

TEST(TableWriterTest, CsvHeaderRow) {
  TableWriter t;
  t.set_columns({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

}  // namespace
}  // namespace fdqos::stats
