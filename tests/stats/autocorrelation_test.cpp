#include "stats/autocorrelation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fdqos::stats {
namespace {

TEST(MomentsTest, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
}

TEST(MomentsTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{7.0}), 0.0);
}

TEST(AcfTest, LagZeroIsOne) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(AcfTest, ConstantSeriesHasZeroAcf) {
  const std::vector<double> xs(50, 2.0);
  const auto rho = acf(xs, 5);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  for (std::size_t k = 1; k <= 5; ++k) EXPECT_DOUBLE_EQ(rho[k], 0.0);
}

TEST(AcfTest, WhiteNoiseHasNearZeroAcf) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal());
  const auto rho = acf(xs, 10);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(rho[k], 0.0, 0.03) << "lag " << k;
  }
}

TEST(AcfTest, Ar1SeriesHasGeometricAcf) {
  // X_t = phi X_{t-1} + eps; rho(k) = phi^k.
  Rng rng(10);
  const double phi = 0.7;
  std::vector<double> xs;
  double x = 0.0;
  for (int i = 0; i < 50000; ++i) {
    x = phi * x + rng.normal();
    xs.push_back(x);
  }
  const auto rho = acf(xs, 4);
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_NEAR(rho[k], std::pow(phi, static_cast<double>(k)), 0.03)
        << "lag " << k;
  }
}

TEST(AcfTest, AlternatingSeriesNegativeLagOne) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(autocorrelation(xs, 1), -1.0, 0.01);
}

TEST(AcfTest, AcfMatchesSingleLagCalls) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0.0, 1.0));
  const auto rho = acf(xs, 6);
  for (std::size_t k = 0; k <= 6; ++k) {
    EXPECT_NEAR(rho[k], autocorrelation(xs, k), 1e-12);
  }
}

}  // namespace
}  // namespace fdqos::stats
