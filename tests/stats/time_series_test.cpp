#include "stats/time_series.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace fdqos::stats {
namespace {

TEST(TimeSeriesTest, AddAndAccess) {
  TimeSeries ts("delay");
  ts.add(TimePoint::origin() + Duration::seconds(1), 10.0);
  ts.add(TimePoint::origin() + Duration::seconds(2), 20.0);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0].value, 10.0);
  EXPECT_DOUBLE_EQ(ts[1].time.to_seconds_double(), 2.0);
  EXPECT_EQ(ts.name(), "delay");
}

TEST(TimeSeriesTest, ValuesInInsertionOrder) {
  TimeSeries ts;
  ts.add(TimePoint::origin() + Duration::seconds(2), 5.0);
  ts.add(TimePoint::origin() + Duration::seconds(1), 7.0);
  const auto vals = ts.values();
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0], 5.0);
  EXPECT_DOUBLE_EQ(vals[1], 7.0);
}

TEST(TimeSeriesTest, SummarizeMatchesValues) {
  TimeSeries ts;
  for (int i = 1; i <= 4; ++i) {
    ts.add(TimePoint::origin() + Duration::seconds(i), static_cast<double>(i));
  }
  const Summary s = ts.summarize();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(TimeSeriesTest, CsvFormat) {
  TimeSeries ts("v");
  ts.add(TimePoint::origin() + Duration::millis(1500), 2.5);
  const std::string csv = ts.to_csv();
  EXPECT_NE(csv.find("time_s,v\n"), std::string::npos);
  EXPECT_NE(csv.find("1.500000000,2.5"), std::string::npos);
  const std::string no_header = ts.to_csv(false);
  EXPECT_EQ(no_header.find("time_s"), std::string::npos);
}

TEST(TimeSeriesTest, SaveCsvRoundTripsThroughFile) {
  TimeSeries ts("x");
  ts.add(TimePoint::origin() + Duration::seconds(1), 1.0);
  const std::string path = ::testing::TempDir() + "/fdqos_ts_test.csv";
  ASSERT_TRUE(ts.save_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GT(n, 0u);
  EXPECT_NE(std::string(buf).find("time_s,x"), std::string::npos);
}

TEST(TimeSeriesTest, SaveCsvFailsOnBadPath) {
  TimeSeries ts;
  EXPECT_FALSE(ts.save_csv("/nonexistent-dir-xyz/file.csv"));
}

}  // namespace
}  // namespace fdqos::stats
