#include "stats/running_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fdqos::stats {
namespace {

TEST(RunningStatsTest, EmptyState) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_TRUE(std::isnan(rs.min()));
  EXPECT_TRUE(std::isnan(rs.max()));
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.add(42.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 42.0);
  EXPECT_DOUBLE_EQ(rs.max(), 42.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 42.0);
}

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, MatchesTwoPassComputation) {
  Rng rng(1);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(100.0, 15.0);
    xs.push_back(x);
    rs.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(rs.mean(), mean, 1e-9);
  EXPECT_NEAR(rs.variance(), ss / (xs.size() - 1), 1e-6);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(2);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  RunningStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(RunningStatsTest, ResetClearsEverything) {
  RunningStats rs;
  rs.add(1.0);
  rs.add(2.0);
  rs.reset();
  EXPECT_TRUE(rs.empty());
  EXPECT_DOUBLE_EQ(rs.sum(), 0.0);
}

TEST(RunningStatsTest, SummaryMirrorsAccessors) {
  RunningStats rs;
  rs.add(1.0);
  rs.add(3.0);
  const Summary s = rs.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, rs.stddev());
  EXPECT_DOUBLE_EQ(s.sum, 4.0);
}

TEST(RunningStatsTest, Ci95ShrinksWithSamples) {
  Rng rng(3);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    if (i < 100) small.add(x);
    large.add(x);
  }
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_NEAR(large.ci95_halfwidth(), 1.96 / std::sqrt(10000.0), 0.005);
}

TEST(RunningStatsTest, StableUnderLargeOffset) {
  // Welford should not lose precision with a large common offset.
  RunningStats rs;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0, 4.0}) rs.add(offset + x);
  EXPECT_NEAR(rs.variance(), 5.0 / 3.0, 1e-6);
}

}  // namespace
}  // namespace fdqos::stats
