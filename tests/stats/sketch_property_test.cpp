// Property tests for the streaming quantile sketches (P² and t-digest)
// against exact sorted quantiles, across the delay-shape families the
// harness actually produces: lognormal WAN delays, Gilbert–Elliott burst
// mixtures, and spike storms (heavy point mass + rare huge outliers).
//
// The contract under test is *rank* error, not value error: for a
// requested quantile q the sketch's answer must sit at a rank within
// eps·n of q·n in the exact sorted sample. Value-space bounds are
// meaningless for heavy-tailed delays (the p99 neighbourhood can span
// orders of magnitude); rank bounds are distribution-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stats/quantiles.hpp"
#include "stats/tdigest.hpp"

namespace fdqos::stats {
namespace {

// Fraction of samples at or below `value` — the empirical CDF, i.e. the
// rank the sketch's estimate actually lands on.
double rank_of(const std::vector<double>& sorted, double value) {
  const auto it =
      std::upper_bound(sorted.begin(), sorted.end(), value);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

std::vector<double> lognormal_stream(Rng& rng, std::size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // exp(N(5, 0.6)) ~ WAN one-way delays in the few-hundred-ms regime.
    xs.push_back(std::exp(5.0 + 0.6 * rng.normal()));
  }
  return xs;
}

std::vector<double> ge_burst_stream(Rng& rng, std::size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  bool bursting = false;
  for (std::size_t i = 0; i < n; ++i) {
    // Two-state Gilbert–Elliott-style mixture: calm delays around 120 ms,
    // bursts an order of magnitude above, with sticky transitions.
    if (bursting) {
      if (rng.next_double() < 0.10) bursting = false;
    } else {
      if (rng.next_double() < 0.02) bursting = true;
    }
    const double base = bursting ? 1200.0 : 120.0;
    xs.push_back(base * (0.8 + 0.4 * rng.next_double()));
  }
  return xs;
}

std::vector<double> spike_storm_stream(Rng& rng, std::size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.next_double();
    if (u < 0.98) {
      xs.push_back(100.0 + 5.0 * rng.normal());  // tight point mass
    } else {
      xs.push_back(5000.0 * (1.0 + 9.0 * rng.next_double()));  // rare spikes
    }
  }
  return xs;
}

using StreamFn = std::vector<double> (*)(Rng&, std::size_t);

struct Shape {
  const char* name;
  StreamFn make;
};

const Shape kShapes[] = {
    {"lognormal", &lognormal_stream},
    {"ge_burst", &ge_burst_stream},
    {"spike_storm", &spike_storm_stream},
};

TEST(P2QuantileProperty, RankErrorBoundedAcrossShapes) {
  // P² is a 5-marker heuristic: the classic literature observes a few
  // percent rank error on unimodal streams and worse on pathological
  // mixtures. These bounds are regression rails, not theory.
  const struct {
    double q;
    double eps;
  } kCases[] = {{0.5, 0.05}, {0.95, 0.03}, {0.99, 0.015}};
  for (const Shape& shape : kShapes) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      Rng rng(seed * 1000 + 7);
      std::vector<double> xs = shape.make(rng, 50000);
      P2Quantile p50(0.5), p95(0.95), p99(0.99);
      for (double x : xs) {
        p50.add(x);
        p95.add(x);
        p99.add(x);
      }
      std::sort(xs.begin(), xs.end());
      const P2Quantile* sketches[] = {&p50, &p95, &p99};
      for (std::size_t c = 0; c < 3; ++c) {
        const double got_rank = rank_of(xs, sketches[c]->value());
        EXPECT_NEAR(got_rank, kCases[c].q, kCases[c].eps)
            << shape.name << " seed=" << seed << " q=" << kCases[c].q;
      }
    }
  }
}

TEST(TDigestProperty, RankErrorBoundedAcrossShapes) {
  // k1 scale with delta=100 concentrates accuracy at the tails; rank
  // error well under 1% at p95/p99 and ~1% at the median is expected.
  const struct {
    double q;
    double eps;
  } kCases[] = {{0.5, 0.02}, {0.95, 0.01}, {0.99, 0.005}};
  for (const Shape& shape : kShapes) {
    for (std::uint64_t seed : {11u, 12u, 13u}) {
      Rng rng(seed);
      std::vector<double> xs = shape.make(rng, 50000);
      TDigest digest(100.0);
      for (double x : xs) digest.add(x);
      std::sort(xs.begin(), xs.end());
      for (const auto& c : kCases) {
        const double got_rank = rank_of(xs, digest.quantile(c.q));
        EXPECT_NEAR(got_rank, c.q, c.eps)
            << shape.name << " seed=" << seed << " q=" << c.q;
      }
    }
  }
}

TEST(TDigestProperty, ExtremesAreExact) {
  Rng rng(99);
  std::vector<double> xs = spike_storm_stream(rng, 10000);
  TDigest digest(100.0);
  for (double x : xs) digest.add(x);
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  EXPECT_DOUBLE_EQ(digest.quantile(0.0), *lo);
  EXPECT_DOUBLE_EQ(digest.quantile(1.0), *hi);
  EXPECT_DOUBLE_EQ(digest.min(), *lo);
  EXPECT_DOUBLE_EQ(digest.max(), *hi);
  EXPECT_EQ(digest.count(), xs.size());
}

// Sharded ingestion must be merge-order deterministic: the exact same
// centroids come out no matter how the shards are combined, because the
// parallel experiment reduces per-run sketches in run order and the
// result must not depend on scheduling.
TEST(TDigestProperty, MergeIsOrderDeterministicOverShards) {
  constexpr std::size_t kShards = 8;
  std::vector<std::vector<double>> shards(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    Rng rng(1000 + s);
    shards[s] = ge_burst_stream(rng, 5000);
  }

  auto digest_of_order = [&shards](const std::vector<std::size_t>& order) {
    TDigest merged(100.0);
    for (std::size_t s : order) {
      TDigest shard(100.0);
      for (double x : shards[s]) shard.add(x);
      merged.merge(shard);
    }
    return merged;
  };

  std::vector<std::size_t> forward(kShards);
  for (std::size_t i = 0; i < kShards; ++i) forward[i] = i;
  const TDigest a = digest_of_order(forward);

  // Same shard set in the same order must reproduce bit-identical
  // quantiles (determinism of the merge pipeline itself)...
  const TDigest b = digest_of_order(forward);
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << q;
  }

  // ...and a permuted merge order stays within sketch accuracy of the
  // canonical order (merging is not bit-stable under reordering — that is
  // exactly why the experiment fixes the reduction order).
  std::vector<std::size_t> reversed(forward.rbegin(), forward.rend());
  const TDigest c = digest_of_order(reversed);
  std::vector<double> all;
  for (const auto& shard : shards) {
    all.insert(all.end(), shard.begin(), shard.end());
  }
  std::sort(all.begin(), all.end());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_NEAR(rank_of(all, c.quantile(q)), rank_of(all, a.quantile(q)),
                0.02)
        << q;
  }
  EXPECT_EQ(a.count(), c.count());
}

TEST(TDigestProperty, CentroidCountStaysBounded) {
  Rng rng(5);
  TDigest digest(100.0);
  for (double x : lognormal_stream(rng, 200000)) digest.add(x);
  // k1 with delta=100 admits at most ~2*delta centroids after compression.
  EXPECT_LE(digest.centroid_count(), 250u);
  EXPECT_EQ(digest.count(), 200000u);
}

TEST(SampleSetBackend, StreamingTracksExactWithinRankBounds) {
  Rng rng(21);
  const std::vector<double> xs = lognormal_stream(rng, 30000);
  SampleSet exact;
  SampleSet streaming(SampleSet::Backend::kStreaming);
  EXPECT_EQ(exact.backend(), SampleSet::Backend::kExact);
  EXPECT_EQ(streaming.backend(), SampleSet::Backend::kStreaming);
  for (double x : xs) {
    exact.add(x);
    streaming.add(x);
  }
  EXPECT_EQ(exact.size(), xs.size());
  EXPECT_EQ(streaming.size(), xs.size());

  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_NEAR(rank_of(sorted, streaming.quantile(q)), q, 0.01) << q;
  }
  // The exact backend still returns interpolated sorted quantiles.
  EXPECT_GE(exact.quantile(0.5), sorted[sorted.size() / 2 - 1]);
  EXPECT_LE(exact.quantile(0.5), sorted[sorted.size() / 2]);

  // Copying preserves the backend and the sketch state.
  SampleSet copy = streaming;
  EXPECT_EQ(copy.backend(), SampleSet::Backend::kStreaming);
  EXPECT_EQ(copy.size(), xs.size());
  EXPECT_EQ(copy.quantile(0.95), streaming.quantile(0.95));
}

TEST(SampleSetBackend, StreamingUsesConstantMemory) {
  SampleSet streaming(SampleSet::Backend::kStreaming, 50.0);
  Rng rng(3);
  for (double x : lognormal_stream(rng, 100000)) streaming.add(x);
  // The exact backend would hold 100k doubles; streaming holds none.
  EXPECT_TRUE(streaming.samples().empty());
  EXPECT_EQ(streaming.size(), 100000u);
  EXPECT_GT(streaming.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace fdqos::stats
