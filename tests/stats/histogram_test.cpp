#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fdqos::stats {
namespace {

TEST(HistogramTest, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 8.0);
}

TEST(HistogramTest, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderflowAndOverflow) {
  Histogram h(10.0, 20.0, 2);
  h.add(9.999);
  h.add(20.0);  // hi is exclusive
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, CdfMonotoneAndBounded) {
  Histogram h(0.0, 100.0, 20);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0.0, 100.0));
  double prev = 0.0;
  for (double x = 0.0; x <= 100.0; x += 5.0) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(h.cdf(50.0), 0.5, 0.03);
}

TEST(HistogramTest, QuantileApproximatesUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, QuantileEmptyReturnsLo) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(HistogramTest, RenderMentionsOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(5.0);
  const std::string text = h.render();
  EXPECT_NE(text.find("overflow=1"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

}  // namespace
}  // namespace fdqos::stats
