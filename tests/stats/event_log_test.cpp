#include "stats/event_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace fdqos::stats {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::from_seconds_double(s);
}

TEST(EventLogTest, RecordsAndFilters) {
  EventLog log;
  log.record(at_s(1.0), EventKind::kSent, 0, 1);
  log.record(at_s(1.2), EventKind::kReceived, 0, 1);
  log.record(at_s(5.0), EventKind::kStartSuspect, 3);
  log.record(at_s(5.5), EventKind::kEndSuspect, 3);
  log.record(at_s(6.0), EventKind::kStartSuspect, 4);

  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.filter(EventKind::kSent).size(), 1u);
  EXPECT_EQ(log.filter(EventKind::kStartSuspect).size(), 2u);
  EXPECT_EQ(log.filter(EventKind::kStartSuspect, 3).size(), 1u);
  EXPECT_EQ(log.filter(EventKind::kStartSuspect, 99).size(), 0u);
}

TEST(EventLogTest, CsvFormat) {
  EventLog log;
  log.record(at_s(2.5), EventKind::kCrash);
  log.record(at_s(3.0), EventKind::kReceived, 7, 42);
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("time_s,event,subject,seq"), std::string::npos);
  EXPECT_NE(csv.find("2.500000000,crash,0,0"), std::string::npos);
  EXPECT_NE(csv.find("3.000000000,received,7,42"), std::string::npos);
}

TEST(EventLogTest, SaveCsvWritesFile) {
  EventLog log;
  log.record(at_s(1.0), EventKind::kRestore);
  const std::string path = ::testing::TempDir() + "/fdqos_events.csv";
  ASSERT_TRUE(log.save_csv(path));
  std::remove(path.c_str());
}

TEST(EventLogTest, JsonLineFormat) {
  Event event{at_s(2.5), EventKind::kReceived, 7, 42};
  EXPECT_EQ(event_to_json(event),
            "{\"t_ns\":2500000000,\"event\":\"received\","
            "\"subject\":7,\"seq\":42}");
  const auto parsed = event_from_json(event_to_json(event));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, event);
}

TEST(EventLogTest, JsonRejectsMalformedLines) {
  EXPECT_FALSE(event_from_json("").has_value());
  EXPECT_FALSE(event_from_json("{\"t_ns\":1}").has_value());
  EXPECT_FALSE(event_from_json("{\"t_ns\":1,\"event\":\"not_a_kind\","
                               "\"subject\":0,\"seq\":0}")
                   .has_value());
}

TEST(EventLogTest, JsonlRoundtripIsExact) {
  EventLog log;
  log.record(at_s(1.0), EventKind::kSent, 0, 1);
  log.record(at_s(1.2071067), EventKind::kReceived, 0, 1);
  log.record(at_s(100.0), EventKind::kCrash);
  log.record(at_s(101.4), EventKind::kStartSuspect, 3);
  log.record(at_s(130.3), EventKind::kEndSuspect, 3);
  log.record(at_s(131.0), EventKind::kRestore);

  const EventLog back = EventLog::from_jsonl(log.to_jsonl());
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(back[i], log[i]) << "event " << i;
  }
}

TEST(EventLogTest, FromJsonlSkipsMalformedAndBlankLines) {
  const std::string text =
      "{\"t_ns\":1000000000,\"event\":\"sent\",\"subject\":0,\"seq\":1}\n"
      "\n"
      "garbage line\n"
      "{\"t_ns\":2000000000,\"event\":\"crash\",\"subject\":0,\"seq\":0}\n";
  const EventLog log = EventLog::from_jsonl(text);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, EventKind::kSent);
  EXPECT_EQ(log[1].kind, EventKind::kCrash);
}

TEST(EventJsonlWriterTest, StreamsAndRoundtrips) {
  const std::string path = ::testing::TempDir() + "/fdqos_events.jsonl";
  EventLog log;
  log.record(at_s(1.0), EventKind::kSent, 0, 1);
  log.record(at_s(2.0), EventKind::kStartSuspect, 4);
  {
    EventJsonlWriter writer(path);
    ASSERT_TRUE(writer.ok());
    for (const Event& event : log.events()) writer.write(event);
    EXPECT_EQ(writer.written(), 2u);
    writer.flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const EventLog back = EventLog::from_jsonl(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], log[0]);
  EXPECT_EQ(back[1], log[1]);
}

TEST(EventJsonlWriterTest, UnwritablePathIsNotOk) {
  EventJsonlWriter writer("/nonexistent-dir/events.jsonl");
  EXPECT_FALSE(writer.ok());
  writer.write({at_s(1.0), EventKind::kSent, 0, 0});  // must not crash
  EXPECT_EQ(writer.written(), 0u);
}

TEST(EventKindTest, Names) {
  EXPECT_STREQ(event_kind_name(EventKind::kSent), "sent");
  EXPECT_STREQ(event_kind_name(EventKind::kCrash), "crash");
  EXPECT_STREQ(event_kind_name(EventKind::kEndSuspect), "end_suspect");
}

TEST(DeriveQosTest, DetectionFromEvents) {
  EventLog log;
  log.record(at_s(100.0), EventKind::kCrash);
  log.record(at_s(101.4), EventKind::kStartSuspect, 1);
  log.record(at_s(130.0), EventKind::kRestore);
  log.record(at_s(130.3), EventKind::kEndSuspect, 1);

  const LogDerivedQos qos = derive_qos(log, 1);
  ASSERT_EQ(qos.detection_times_ms.size(), 1u);
  EXPECT_NEAR(qos.detection_times_ms[0], 1400.0, 1e-6);
  EXPECT_EQ(qos.crashes, 1u);
  EXPECT_TRUE(qos.mistake_durations_ms.empty());
}

TEST(DeriveQosTest, MistakesAndRecurrence) {
  EventLog log;
  log.record(at_s(10.0), EventKind::kStartSuspect, 2);
  log.record(at_s(10.5), EventKind::kEndSuspect, 2);
  log.record(at_s(40.0), EventKind::kStartSuspect, 2);
  log.record(at_s(41.0), EventKind::kEndSuspect, 2);

  const LogDerivedQos qos = derive_qos(log, 2);
  ASSERT_EQ(qos.mistake_durations_ms.size(), 2u);
  EXPECT_NEAR(qos.mistake_durations_ms[0], 500.0, 1e-6);
  EXPECT_NEAR(qos.mistake_durations_ms[1], 1000.0, 1e-6);
  ASSERT_EQ(qos.mistake_recurrences_ms.size(), 1u);
  EXPECT_NEAR(qos.mistake_recurrences_ms[0], 30000.0, 1e-6);
}

TEST(DeriveQosTest, IgnoresOtherDetectorsEvents) {
  EventLog log;
  log.record(at_s(10.0), EventKind::kStartSuspect, 7);
  log.record(at_s(11.0), EventKind::kEndSuspect, 7);
  const LogDerivedQos qos = derive_qos(log, 1);
  EXPECT_TRUE(qos.mistake_durations_ms.empty());
}

TEST(DeriveQosTest, MissedDetection) {
  EventLog log;
  log.record(at_s(10.0), EventKind::kCrash);
  log.record(at_s(12.0), EventKind::kRestore);
  const LogDerivedQos qos = derive_qos(log, 1);
  EXPECT_EQ(qos.missed_detections, 1u);
  EXPECT_TRUE(qos.detection_times_ms.empty());
}

TEST(DeriveQosTest, WarmupSuppressesSamples) {
  EventLog log;
  log.record(at_s(10.0), EventKind::kStartSuspect, 1);
  log.record(at_s(11.0), EventKind::kEndSuspect, 1);
  log.record(at_s(70.0), EventKind::kStartSuspect, 1);
  log.record(at_s(71.0), EventKind::kEndSuspect, 1);
  const LogDerivedQos qos = derive_qos(log, 1, at_s(60.0));
  ASSERT_EQ(qos.mistake_durations_ms.size(), 1u);
  EXPECT_NEAR(qos.mistake_durations_ms[0], 1000.0, 1e-6);
  EXPECT_TRUE(qos.mistake_recurrences_ms.empty());  // first start in warmup
}

TEST(DeriveQosTest, InFlightUnsuspectDuringDown) {
  EventLog log;
  log.record(at_s(100.0), EventKind::kCrash);
  log.record(at_s(100.4), EventKind::kStartSuspect, 1);
  log.record(at_s(100.8), EventKind::kEndSuspect, 1);  // in-flight heartbeat
  log.record(at_s(102.1), EventKind::kStartSuspect, 1);
  log.record(at_s(130.0), EventKind::kRestore);
  const LogDerivedQos qos = derive_qos(log, 1);
  ASSERT_EQ(qos.detection_times_ms.size(), 1u);
  EXPECT_NEAR(qos.detection_times_ms[0], 2100.0, 1e-6);
}

}  // namespace
}  // namespace fdqos::stats
