// Regression for the SampleSet lazy-sort race: quantile() is const but used
// to sort the mutable sample vector unguarded, so two threads reading
// quantiles from one freshly-filled set raced on the sort (a correctness
// bug even without TSan: interleaved sorts can interpolate between
// half-sorted values). Runs under the `tracestore` label so the TSan CI job
// exercises it.
#include "stats/quantiles.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace fdqos::stats {
namespace {

TEST(SampleSetRaceTest, ConcurrentQuantileReadsAreSafe) {
  SampleSet set;
  for (int i = 20000; i > 0; --i) set.add(static_cast<double>(i));

  // Both threads hit the unsorted set at once: the first quantile() call
  // performs the lazy sort while the other reads.
  std::vector<double> results(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&set, &results, t] {
      double acc = 0.0;
      for (int i = 0; i < 200; ++i) {
        acc = set.quantile(t == 0 ? 0.5 : 0.99);
      }
      results[static_cast<std::size_t>(t)] = acc;
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_DOUBLE_EQ(results[0], set.quantile(0.5));
  EXPECT_DOUBLE_EQ(results[1], set.quantile(0.99));
  EXPECT_DOUBLE_EQ(set.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.quantile(1.0), 20000.0);
}

TEST(SampleSetRaceTest, ConcurrentAddAndQuantileAreSafe) {
  SampleSet set;
  set.add(1.0);
  std::thread writer([&set] {
    for (int i = 0; i < 5000; ++i) set.add(static_cast<double>(i));
  });
  std::thread reader([&set] {
    for (int i = 0; i < 500; ++i) {
      const double m = set.quantile(0.5);
      EXPECT_GE(m, 0.0);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(set.size(), 5001u);
}

TEST(SampleSetRaceTest, CopyPreservesSamples) {
  SampleSet a;
  a.add(3.0);
  a.add(1.0);
  a.add(2.0);
  SampleSet b = a;
  EXPECT_DOUBLE_EQ(b.median(), 2.0);
  SampleSet c;
  c = a;
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_EQ(c.size(), 3u);
}

}  // namespace
}  // namespace fdqos::stats
