#include "stats/quantiles.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace fdqos::stats {
namespace {

TEST(SampleSetTest, ExactQuantilesOnSmallSet) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSetTest, InterpolatesBetweenPoints) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSetTest, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(2.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(3.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(P2QuantileTest, ExactBeforeFiveSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2QuantileTest, MedianOfUniformStream) {
  P2Quantile q(0.5);
  Rng rng(6);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform(0.0, 1.0));
  EXPECT_NEAR(q.value(), 0.5, 0.02);
}

TEST(P2QuantileTest, TailQuantileOfUniformStream) {
  P2Quantile q(0.95);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform(0.0, 1.0));
  EXPECT_NEAR(q.value(), 0.95, 0.02);
}

TEST(P2QuantileTest, AgreesWithExactOnSkewedData) {
  P2Quantile p2(0.9);
  SampleSet exact;
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(2.0, 0.6);
    p2.add(x);
    exact.add(x);
  }
  const double truth = exact.quantile(0.9);
  EXPECT_NEAR(p2.value(), truth, truth * 0.05);
}

TEST(P2QuantileTest, CountTracksAdds) {
  P2Quantile q(0.5);
  for (int i = 0; i < 10; ++i) q.add(i);
  EXPECT_EQ(q.count(), 10u);
}

}  // namespace
}  // namespace fdqos::stats
