#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fdqos::exec {
namespace {

TEST(ThreadPoolTest, EmptyRangeReturnsImmediately) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(visits.size(),
                    [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ParallelMapCollectsInIndexOrder) {
  ThreadPool pool(8);
  const auto out = pool.parallel_map<std::size_t>(
      257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossDispatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromSerialPool) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, FirstExceptionCancelsUnstartedTasks) {
  // With the failing task planted at index 0, every un-started index is
  // skipped; far fewer than all tasks may run (racing threads may each
  // start one), and the pool stays usable afterwards.
  ThreadPool pool(4);
  std::atomic<int> started{0};
  EXPECT_THROW(pool.parallel_for(100000,
                                 [&](std::size_t i) {
                                   started.fetch_add(1);
                                   if (i == 0) {
                                     throw std::runtime_error("cancel");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_LT(started.load(), 100000);

  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolTest, NestedUseOfSamePoolThrows) {
  ThreadPool pool(4);
  std::atomic<int> rejected{0};
  pool.parallel_for(8, [&](std::size_t) {
    try {
      pool.parallel_for(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      rejected.fetch_add(1);
    }
  });
  EXPECT_EQ(rejected.load(), 8);
}

TEST(ThreadPoolTest, DifferentPoolInsideTaskIsAllowed) {
  // A task may own its own pool (e.g. a bench sweep point running a serial
  // experiment); only re-entry into the *same* pool is rejected.
  ThreadPool outer(2);
  std::atomic<std::size_t> sum{0};
  outer.parallel_for(4, [&](std::size_t) {
    ThreadPool inner(2);
    inner.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
  });
  EXPECT_EQ(sum.load(), 4u * 45u);
}

TEST(ThreadPoolTest, InParallelRegionFlagTracksTasks) {
  EXPECT_FALSE(in_parallel_region());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.parallel_for(4, [&](std::size_t) {
    if (in_parallel_region()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 4);
  EXPECT_FALSE(in_parallel_region());
}

TEST(ThreadPoolTest, FreeFunctionsAndDefaults) {
  EXPECT_GE(hardware_jobs(), 1u);
  set_default_jobs(3);
  EXPECT_EQ(default_jobs(), 3u);
  ThreadPool pool;  // picks up the default
  EXPECT_EQ(pool.jobs(), 3u);
  set_default_jobs(0);  // restore hardware default
  EXPECT_EQ(default_jobs(), hardware_jobs());

  std::atomic<std::size_t> sum{0};
  parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); }, 4);
  EXPECT_EQ(sum.load(), 4950u);

  const auto mapped = parallel_map<int>(
      5, [](std::size_t i) { return static_cast<int>(i) + 1; }, 2);
  EXPECT_EQ(std::accumulate(mapped.begin(), mapped.end(), 0), 15);
}

}  // namespace
}  // namespace fdqos::exec
