#include "membership/bank_feed.hpp"

#include "common/assert.hpp"

namespace fdqos::membership {

void BankViewFeed::attach(fd::DetectorBank& bank,
                          std::vector<net::NodeId> peers,
                          fd::DetectorBank::LaneObserver chained) {
  FDQOS_REQUIRE(!peers.empty());
  auto binding = std::make_unique<Binding>();
  binding->peers = std::move(peers);
  binding->chained = std::move(chained);
  Binding* b = binding.get();
  ViewManager* views = views_;
  bank.set_observer([views, b](std::size_t lane, TimePoint t,
                               bool suspecting) {
    FDQOS_REQUIRE(lane < b->peers.size());
    if (suspecting) {
      views->peer_suspected(b->peers[lane], t);
    } else {
      views->peer_trusted(b->peers[lane], t);
    }
    if (b->chained) b->chained(lane, t, suspecting);
  });
  bindings_.push_back(std::move(binding));
}

}  // namespace fdqos::membership
