#include "membership/view_manager.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::membership {

net::NodeId View::coordinator() const {
  FDQOS_REQUIRE(!members.empty());
  return *members.begin();
}

std::string View::to_string() const {
  std::string out = "view#" + std::to_string(id) + "{";
  bool first = true;
  for (net::NodeId m : members) {
    if (!first) out += ",";
    out += std::to_string(m);
    first = false;
  }
  out += "}";
  return out;
}

ViewManager::ViewManager(net::NodeId self, std::vector<net::NodeId> members)
    : self_(self) {
  FDQOS_REQUIRE(std::find(members.begin(), members.end(), self) !=
                members.end());
  view_.id = 1;
  view_.members.insert(members.begin(), members.end());
}

void ViewManager::install(std::set<net::NodeId> members, TimePoint when) {
  FDQOS_ASSERT(members.count(self_) == 1);
  if (members == view_.members) return;
  const net::NodeId old_coordinator = view_.coordinator();
  durations_.add((when - view_since_).to_millis_double());
  view_.members = std::move(members);
  ++view_.id;
  view_since_ = when;
  const bool coordinator_changed = view_.coordinator() != old_coordinator;
  if (coordinator_changed) ++coordinator_changes_;
  if (observer_) observer_(view_, when, coordinator_changed);
}

void ViewManager::peer_suspected(net::NodeId peer, TimePoint when) {
  FDQOS_REQUIRE(peer != self_);
  if (!view_.contains(peer)) return;
  std::set<net::NodeId> members = view_.members;
  members.erase(peer);
  install(std::move(members), when);
}

void ViewManager::peer_trusted(net::NodeId peer, TimePoint when) {
  FDQOS_REQUIRE(peer != self_);
  if (view_.contains(peer)) return;
  std::set<net::NodeId> members = view_.members;
  members.insert(peer);
  install(std::move(members), when);
}

void ViewManager::finalize(TimePoint end) {
  durations_.add((end - view_since_).to_millis_double());
}

}  // namespace fdqos::membership
