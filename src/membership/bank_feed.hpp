// BankViewFeed — wires fd::DetectorBank suspect transitions into a
// ViewManager.
//
// The bank's lanes each monitor one peer; a lane's trust <-> suspect
// transition becomes peer_trusted / peer_suspected on the view manager,
// in simulation order. One feed can attach several banks (e.g. one
// width-1 bank per peer, the consensus-cluster layout) or a single bank
// whose lanes map 1:1 onto peers — either way the view manager sees one
// merged, time-ordered suspicion stream, and an optional chained observer
// still receives every raw lane transition (the consensus process taps
// this for on_suspicion_change()).
#pragma once

#include <memory>
#include <vector>

#include "fd/detector_bank.hpp"
#include "membership/view_manager.hpp"

namespace fdqos::membership {

class BankViewFeed {
 public:
  explicit BankViewFeed(ViewManager& views) : views_(&views) {}

  // Install the feed as `bank`'s lane observer: lane i reports about
  // peers[i] (peers.size() must cover every lane the bank fires). Replaces
  // any previous observer on the bank; `chained`, when set, is invoked
  // after the view update with the raw transition.
  void attach(fd::DetectorBank& bank, std::vector<net::NodeId> peers,
              fd::DetectorBank::LaneObserver chained = nullptr);

 private:
  struct Binding {
    std::vector<net::NodeId> peers;
    fd::DetectorBank::LaneObserver chained;
  };

  ViewManager* views_;
  // Stable storage for the per-bank lane→peer maps the observers capture.
  std::vector<std::unique_ptr<Binding>> bindings_;
};

}  // namespace fdqos::membership
