// View-based group membership over failure detectors (paper §2.1's
// motivating application: "the use of a failure detector as low level
// service of group membership applications implies that the most important
// metrics are those related to accuracy — a false positive detection of
// the current coordinator triggers the election of a new coordinator").
//
// A ViewManager consumes one node's per-peer suspicion transitions and
// maintains its local membership view: the set of members it currently
// trusts (itself always included). Every change installs a new numbered
// view; the coordinator of a view is its smallest member. The QoS of the
// underlying detectors surfaces directly as view churn and wrongful
// evictions — measured by bench_membership_churn.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "net/message.hpp"
#include "stats/running_stats.hpp"

namespace fdqos::membership {

struct View {
  std::uint64_t id = 0;
  std::set<net::NodeId> members;

  net::NodeId coordinator() const;  // smallest member
  bool contains(net::NodeId node) const { return members.count(node) > 0; }
  std::string to_string() const;   // "view#3{0,2,5}"

  bool operator==(const View&) const = default;
};

class ViewManager {
 public:
  // observer(new view, install time, previous coordinator changed?)
  using ViewObserver = std::function<void(const View&, TimePoint, bool)>;

  ViewManager(net::NodeId self, std::vector<net::NodeId> members);

  void set_observer(ViewObserver observer) { observer_ = std::move(observer); }

  // Wire these to the per-peer failure detectors' transitions.
  void peer_suspected(net::NodeId peer, TimePoint when);
  void peer_trusted(net::NodeId peer, TimePoint when);

  const View& view() const { return view_; }
  net::NodeId self() const { return self_; }

  // Stability accounting.
  std::uint64_t views_installed() const { return view_.id; }
  std::uint64_t coordinator_changes() const { return coordinator_changes_; }
  // Durations (ms) of completed views; finalize() closes the current one.
  const stats::RunningStats& view_duration_ms() const { return durations_; }
  void finalize(TimePoint end);

 private:
  void install(std::set<net::NodeId> members, TimePoint when);

  net::NodeId self_;
  ViewObserver observer_;
  View view_;
  TimePoint view_since_ = TimePoint::origin();
  std::uint64_t coordinator_changes_ = 0;
  stats::RunningStats durations_;
};

}  // namespace fdqos::membership
