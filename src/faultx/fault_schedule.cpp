#include "faultx/fault_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/assert.hpp"

namespace fdqos::faultx {
namespace {

bool in_window(TimePoint t, TimePoint start, Duration duration) {
  return t >= start && t < start + duration;
}

bool valid_prob(double p) { return p >= 0.0 && p <= 1.0; }

bool valid_chain(const wan::GilbertElliottLoss::Params& c) {
  return valid_prob(c.p_good_to_bad) && valid_prob(c.p_bad_to_good) &&
         valid_prob(c.loss_good) && valid_prob(c.loss_bad);
}

std::string window_str(TimePoint start, Duration duration) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=[%.1fs,%.1fs)",
                start.to_seconds_double(),
                (start + duration).to_seconds_double());
  return buf;
}

}  // namespace

FaultSchedule& FaultSchedule::spike(TimePoint start, Duration duration,
                                    Duration extra) {
  FDQOS_REQUIRE(duration >= Duration::zero());
  FDQOS_REQUIRE(extra >= Duration::zero());
  spikes_.push_back({start, duration, extra});
  return *this;
}

FaultSchedule& FaultSchedule::ramp(TimePoint start, Duration duration,
                                   Duration peak) {
  FDQOS_REQUIRE(duration > Duration::zero());
  FDQOS_REQUIRE(peak >= Duration::zero());
  ramps_.push_back({start, duration, peak});
  return *this;
}

FaultSchedule& FaultSchedule::burst_loss(TimePoint start, Duration duration,
                                         wan::GilbertElliottLoss::Params chain) {
  FDQOS_REQUIRE(duration >= Duration::zero());
  FDQOS_REQUIRE(valid_chain(chain));
  bursts_.push_back({start, duration, chain});
  return *this;
}

FaultSchedule& FaultSchedule::reorder(TimePoint start, Duration duration,
                                      double prob, Duration shuffle) {
  FDQOS_REQUIRE(duration >= Duration::zero());
  FDQOS_REQUIRE(valid_prob(prob));
  FDQOS_REQUIRE(shuffle >= Duration::zero());
  reorders_.push_back({start, duration, prob, shuffle});
  return *this;
}

FaultSchedule& FaultSchedule::duplicate(TimePoint start, Duration duration,
                                        double prob) {
  FDQOS_REQUIRE(duration >= Duration::zero());
  FDQOS_REQUIRE(valid_prob(prob));
  duplicates_.push_back({start, duration, prob});
  return *this;
}

FaultSchedule& FaultSchedule::partition(TimePoint start, Duration duration) {
  FDQOS_REQUIRE(duration >= Duration::zero());
  partitions_.push_back({start, duration});
  return *this;
}

FaultSchedule& FaultSchedule::flap(TimePoint start, Duration duration,
                                   Duration period, double duty_off) {
  FDQOS_REQUIRE(duration >= Duration::zero());
  FDQOS_REQUIRE(period > Duration::zero());
  FDQOS_REQUIRE(valid_prob(duty_off));
  flaps_.push_back({start, duration, period, duty_off});
  return *this;
}

FaultSchedule& FaultSchedule::clock_jump(TimePoint at, Duration offset) {
  jumps_.push_back({at, offset});
  clock_.add_step(at, offset);
  return *this;
}

Duration FaultSchedule::max_clock_advance() const {
  // Walk the jumps in time order and track the running cumulative error;
  // the answer is its highest positive excursion.
  std::vector<ClockJump> ordered = jumps_;
  std::sort(ordered.begin(), ordered.end(),
            [](const ClockJump& a, const ClockJump& b) { return a.at < b.at; });
  Duration cumulative = Duration::zero();
  Duration max_advance = Duration::zero();
  for (const auto& jump : ordered) {
    cumulative = cumulative + jump.offset;
    max_advance = std::max(max_advance, cumulative);
  }
  return max_advance;
}

Duration FaultSchedule::deterministic_extra_delay(TimePoint t) const {
  Duration extra = Duration::zero();
  for (const auto& s : spikes_) {
    if (in_window(t, s.start, s.duration)) extra += s.extra;
  }
  for (const auto& r : ramps_) {
    if (in_window(t, r.start, r.duration)) {
      const double frac = (t - r.start).to_seconds_double() /
                          r.duration.to_seconds_double();
      extra += r.peak.scaled(frac);
    }
  }
  return extra;
}

Duration FaultSchedule::reorder_extra(Rng& rng, TimePoint t) const {
  Duration extra = Duration::zero();
  for (const auto& r : reorders_) {
    if (in_window(t, r.start, r.duration) && rng.bernoulli(r.prob)) {
      extra += r.shuffle;
    }
  }
  return extra;
}

bool FaultSchedule::link_down(TimePoint t) const {
  for (const auto& p : partitions_) {
    if (in_window(t, p.start, p.duration)) return true;
  }
  for (const auto& f : flaps_) {
    if (!in_window(t, f.start, f.duration)) continue;
    const std::int64_t phase_ns =
        (t - f.start).count_nanos() % f.period.count_nanos();
    const double phase =
        static_cast<double>(phase_ns) /
        static_cast<double>(f.period.count_nanos());
    if (phase < f.duty_off) return true;
  }
  return false;
}

double FaultSchedule::duplicate_prob(TimePoint t) const {
  double p_none = 1.0;
  for (const auto& d : duplicates_) {
    if (in_window(t, d.start, d.duration)) p_none *= 1.0 - d.prob;
  }
  return 1.0 - p_none;
}

std::size_t FaultSchedule::event_count() const {
  return spikes_.size() + ramps_.size() + bursts_.size() + reorders_.size() +
         duplicates_.size() + partitions_.size() + flaps_.size() +
         jumps_.size();
}

std::string FaultSchedule::describe() const {
  std::string out;
  char buf[160];
  for (const auto& s : spikes_) {
    std::snprintf(buf, sizeof buf, "%s  spike(+%s)\n",
                  window_str(s.start, s.duration).c_str(),
                  s.extra.to_string().c_str());
    out += buf;
  }
  for (const auto& r : ramps_) {
    std::snprintf(buf, sizeof buf, "%s  ramp(0->%s)\n",
                  window_str(r.start, r.duration).c_str(),
                  r.peak.to_string().c_str());
    out += buf;
  }
  for (const auto& b : bursts_) {
    std::snprintf(buf, sizeof buf,
                  "%s  burst-loss(gb=%.2g,bg=%.2g,lg=%.2g,lb=%.2g)\n",
                  window_str(b.start, b.duration).c_str(),
                  b.chain.p_good_to_bad, b.chain.p_bad_to_good,
                  b.chain.loss_good, b.chain.loss_bad);
    out += buf;
  }
  for (const auto& r : reorders_) {
    std::snprintf(buf, sizeof buf, "%s  reorder(p=%.2f,+%s)\n",
                  window_str(r.start, r.duration).c_str(), r.prob,
                  r.shuffle.to_string().c_str());
    out += buf;
  }
  for (const auto& d : duplicates_) {
    std::snprintf(buf, sizeof buf, "%s  duplicate(p=%.2f)\n",
                  window_str(d.start, d.duration).c_str(), d.prob);
    out += buf;
  }
  for (const auto& p : partitions_) {
    std::snprintf(buf, sizeof buf, "%s  partition\n",
                  window_str(p.start, p.duration).c_str());
    out += buf;
  }
  for (const auto& f : flaps_) {
    std::snprintf(buf, sizeof buf, "%s  flap(period=%s,off=%.0f%%)\n",
                  window_str(f.start, f.duration).c_str(),
                  f.period.to_string().c_str(), f.duty_off * 100.0);
    out += buf;
  }
  for (const auto& j : jumps_) {
    std::snprintf(buf, sizeof buf, "t=%.1fs  clock-jump(%+.0fms)\n",
                  j.at.to_seconds_double(), j.offset.to_millis_double());
    out += buf;
  }
  return out;
}

}  // namespace fdqos::faultx
