#include "faultx/scenarios.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fdqos::faultx {
namespace {

// Placement helpers: `at(f)` is the point a fraction f into the active
// window, `dur(f, cap)` a duration of fraction f of the window bounded by
// `cap` so short harness runs and long paper runs see events of the same
// character (brief, recoverable) rather than faults that swallow the run.
struct Window {
  TimePoint start;
  Duration span;

  TimePoint at(double f) const { return start + span.scaled(f); }
  Duration dur(double f, Duration cap) const {
    return std::min(span.scaled(f), cap);
  }
};

using Builder = FaultSchedule (*)(const Window&);

FaultSchedule spike_storm(const Window& w) {
  // Escalating congestion plateaus: five spikes, 300 ms → 2 s. The later
  // ones exceed every adaptive timeout built from the quiet-path history.
  FaultSchedule s;
  const Duration len = w.dur(0.04, Duration::seconds(12));
  s.spike(w.at(0.10), len, Duration::millis(300));
  s.spike(w.at(0.28), len, Duration::millis(500));
  s.spike(w.at(0.46), len, Duration::millis(800));
  s.spike(w.at(0.64), len, Duration::millis(1200));
  s.spike(w.at(0.82), len, Duration::millis(2000));
  return s;
}

FaultSchedule slow_ramp(const Window& w) {
  // A queue filling over half the run, peaking at +2.5 s — the divergence
  // trap: every delay observation is stale by the time the timeout built
  // from it is armed (Jain's retransmission-timeout pathology).
  FaultSchedule s;
  s.ramp(w.at(0.20), w.span.scaled(0.5), Duration::millis(2500));
  return s;
}

FaultSchedule burst_loss(const Window& w) {
  // Two Gilbert–Elliott override windows with bad-state loss 0.9/0.95 —
  // multi-heartbeat gaps indistinguishable (briefly) from a crash.
  FaultSchedule s;
  s.burst_loss(w.at(0.20), w.dur(0.10, Duration::seconds(40)),
               {0.3, 0.1, 0.05, 0.9});
  s.burst_loss(w.at(0.60), w.dur(0.08, Duration::seconds(30)),
               {0.5, 0.2, 0.1, 0.95});
  return s;
}

FaultSchedule partition_heal(const Window& w) {
  // Full cuts with heal: a short one the better detectors ride out, and a
  // longer one every detector must (wrongly but unavoidably) suspect —
  // the Chandra–Toueg unreliability made concrete.
  FaultSchedule s;
  s.partition(w.at(0.30), w.dur(0.04, Duration::seconds(8)));
  s.partition(w.at(0.68), w.dur(0.08, Duration::seconds(20)));
  return s;
}

FaultSchedule reorder_burst(const Window& w) {
  // 35% of messages held back 1.8 s: heartbeats overtake each other, the
  // obs-list/sq() stale-sequence handling is exercised hard.
  FaultSchedule s;
  const Duration len = w.dur(0.12, Duration::seconds(45));
  s.reorder(w.at(0.25), len, 0.35, Duration::millis(1800));
  s.reorder(w.at(0.62), len, 0.35, Duration::millis(1800));
  return s;
}

FaultSchedule link_flap(const Window& w) {
  // Route oscillation: 4 s period, down half of each period, for a third
  // of the run. Heartbeats arrive in clumps with periodic holes.
  FaultSchedule s;
  s.flap(w.at(0.30), w.span.scaled(0.30), Duration::seconds(4), 0.5);
  return s;
}

FaultSchedule clock_step(const Window& w) {
  // The monitored clock steps back 250 ms (every later heartbeat +250 ms
  // on the wire), then heals — a level shift the NTP assumption of the
  // paper rules out and real deployments see on every clock slam.
  FaultSchedule s;
  s.clock_jump(w.at(0.30), Duration::millis(-250));
  s.clock_jump(w.at(0.70), Duration::millis(250));
  return s;
}

FaultSchedule dup_storm(const Window& w) {
  // Duplication violates fair-lossy on purpose: 75% of messages sent
  // twice, plus a mild spike so the copies interleave out of order.
  FaultSchedule s;
  s.duplicate(w.at(0.25), w.span.scaled(0.30), 0.75);
  s.spike(w.at(0.60), w.dur(0.05, Duration::seconds(15)),
          Duration::millis(150));
  return s;
}

FaultSchedule kitchen_sink(const Window& w) {
  // Everything at once, staggered — the closest thing to a bad day on a
  // real WAN path. Magnitudes are kept below the single-fault scenarios
  // so the combination, not any one fault, is the stressor.
  FaultSchedule s;
  s.spike(w.at(0.08), w.dur(0.04, Duration::seconds(10)),
          Duration::millis(400));
  s.ramp(w.at(0.18), w.span.scaled(0.18), Duration::millis(1200));
  s.burst_loss(w.at(0.40), w.dur(0.05, Duration::seconds(20)),
               {0.3, 0.15, 0.05, 0.85});
  s.reorder(w.at(0.50), w.dur(0.06, Duration::seconds(25)), 0.25,
            Duration::millis(1200));
  s.clock_jump(w.at(0.58), Duration::millis(-150));
  s.partition(w.at(0.68), w.dur(0.03, Duration::seconds(10)));
  s.duplicate(w.at(0.76), w.dur(0.08, Duration::seconds(30)), 0.5);
  s.flap(w.at(0.88), w.span.scaled(0.08), Duration::seconds(3), 0.4);
  s.clock_jump(w.at(0.95), Duration::millis(150));
  return s;
}

struct Registered {
  ScenarioInfo info;
  Builder build;
};

const std::vector<Registered>& registry() {
  static const std::vector<Registered> kScenarios = {
      {{"spike_storm", "five escalating delay spikes, 300ms to 2s"},
       spike_storm},
      {{"slow_ramp", "delay ramps 0 to +2.5s over half the run"}, slow_ramp},
      {{"burst_loss", "two Gilbert-Elliott bursts, 90-95% bad-state loss"},
       burst_loss},
      {{"partition_heal", "full partitions of 8s and 20s, each healing"},
       partition_heal},
      {{"reorder_burst", "35% of messages held 1.8s, twice"}, reorder_burst},
      {{"link_flap", "4s-period up/down flapping for a third of the run"},
       link_flap},
      {{"clock_step", "monitored clock steps -250ms, later heals"},
       clock_step},
      {{"dup_storm", "75% duplication plus a mild spike"}, dup_storm},
      {{"kitchen_sink", "all fault types staggered across the run"},
       kitchen_sink},
  };
  return kScenarios;
}

}  // namespace

const std::vector<ScenarioInfo>& scenario_catalogue() {
  static const std::vector<ScenarioInfo> kInfos = [] {
    std::vector<ScenarioInfo> infos;
    for (const auto& r : registry()) infos.push_back(r.info);
    return infos;
  }();
  return kInfos;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const auto& r : registry()) names.push_back(r.info.name);
  return names;
}

bool is_scenario(const std::string& name) {
  for (const auto& r : registry()) {
    if (r.info.name == name) return true;
  }
  return false;
}

FaultSchedule make_scenario(const std::string& name,
                            const ScenarioParams& params) {
  FDQOS_REQUIRE(params.horizon > params.active_start);
  for (const auto& r : registry()) {
    if (r.info.name != name) continue;
    return r.build(Window{params.active_start,
                          params.horizon - params.active_start});
  }
  FDQOS_REQUIRE(!"unknown chaos scenario");
  return {};
}

}  // namespace fdqos::faultx
