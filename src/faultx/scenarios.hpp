// Named chaos scenarios — the corpus the invariant harness sweeps.
//
// Each scenario is a recipe that lays fault events over a run window given
// only where the detector warmup ends and where the run stops; event
// placement scales with the window so the same scenario stresses a 400 s
// harness run and a 10 000 s paper-sized run alike. Absolute magnitudes
// (spike heights, loss probabilities, jump sizes) are fixed: they are the
// adversarial regime being modelled, not a function of run length.
//
// Adding a scenario: add a builder in scenarios.cpp, register it in
// kScenarios, document it in docs/fault_injection.md. The invariant
// harness (tests/integration/chaos_invariants_test.cpp) picks it up
// automatically via scenario_names().
#pragma once

#include <string>
#include <vector>

#include "faultx/fault_schedule.hpp"

namespace fdqos::faultx {

struct ScenarioParams {
  // Faults are placed inside [active_start, horizon); keep active_start at
  // or after the experiment's warmup end so every fault lands in the
  // recorded measurement window.
  TimePoint active_start = TimePoint::origin() + Duration::seconds(60);
  TimePoint horizon = TimePoint::origin() + Duration::seconds(10000);
};

struct ScenarioInfo {
  std::string name;
  std::string summary;  // one line, shown by `fdqos chaos --list`
};

// Catalogue in registration order.
const std::vector<ScenarioInfo>& scenario_catalogue();
std::vector<std::string> scenario_names();
bool is_scenario(const std::string& name);

// Build the schedule for `name`; aborts (FDQOS_REQUIRE) on unknown names
// and on a degenerate window — check is_scenario() first for user input.
FaultSchedule make_scenario(const std::string& name,
                            const ScenarioParams& params);

}  // namespace fdqos::faultx
