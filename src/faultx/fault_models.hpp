// Wrapper models that impose a FaultSchedule on the nominal WAN stack.
//
// Composition, not modification: FaultyDelay/FaultyLoss wrap any existing
// wan::DelayModel/wan::LossModel (synthetic or trace replay) and
// FaultyTransport wraps any net::Transport, so the chaos layer slots into
// the experiment exactly where the nominal models sit and the rest of the
// system — heartbeater, multiplexer, 30 detectors, QoS trackers — runs
// unmodified. All three wrappers share one immutable FaultSchedule; every
// stochastic fault decision draws from the RNG stream the wrapper is handed
// (the link substream for delay/loss, a dedicated fork for the transport),
// preserving byte-identical reproducibility per seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faultx/fault_schedule.hpp"
#include "net/transport.hpp"
#include "wan/delay_model.hpp"
#include "wan/loss_model.hpp"

namespace fdqos::faultx {

// Delay faults: spikes, ramps, reorder shuffles, clock-jump holds. The
// total is clamped at zero — a message cannot arrive before it is sent,
// however far forward the monitored clock jumped.
class FaultyDelay final : public wan::DelayModel {
 public:
  FaultyDelay(std::unique_ptr<wan::DelayModel> base,
              std::shared_ptr<const FaultSchedule> faults);

  Duration sample(Rng& rng, TimePoint send_time) override;
  // Spikes/ramps only ever add delay; the one fault that can undercut the
  // base floor is a forward clock jump (clock_hold < 0), bounded by
  // FaultSchedule::max_clock_advance — shrink the promise by that much.
  Duration min_delay() const override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<wan::DelayModel> make_fresh() const override;

 private:
  std::string name_;
  std::unique_ptr<wan::DelayModel> base_;
  std::shared_ptr<const FaultSchedule> faults_;
};

// Loss faults: while a BurstLoss window is active, its own Gilbert–Elliott
// chain (one per scheduled burst, owned here, stepped only inside the
// window) decides drops on top of the base model. `base` may be null (a
// lossless nominal link, e.g. trace replay).
class FaultyLoss final : public wan::LossModel {
 public:
  FaultyLoss(std::unique_ptr<wan::LossModel> base,
             std::shared_ptr<const FaultSchedule> faults);

  bool drop(Rng& rng, TimePoint send_time) override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<wan::LossModel> make_fresh() const override;

 private:
  std::string name_;
  std::unique_ptr<wan::LossModel> base_;
  std::shared_ptr<const FaultSchedule> faults_;
  std::vector<wan::GilbertElliottLoss> burst_chains_;  // index-aligned
};

// Transport faults: partitions and link flaps (drop at send), duplication
// (send twice), and the clock jump's effect on the sender's timestamp.
// Wraps the monitored node's view of the network only; binds pass through.
class FaultyTransport final : public net::Transport {
 public:
  struct Stats {
    std::uint64_t sent = 0;           // messages offered by the layers above
    std::uint64_t fault_dropped = 0;  // eaten by partition/flap windows
    std::uint64_t duplicated = 0;     // extra copies injected
  };

  FaultyTransport(net::Transport& inner,
                  std::shared_ptr<const FaultSchedule> faults, Rng rng);

  void bind(net::NodeId node, DeliverFn deliver) override;
  void send(net::Message msg) override;
  TimePoint now() const override { return inner_.now(); }

  const Stats& stats() const { return stats_; }

 private:
  net::Transport& inner_;
  std::shared_ptr<const FaultSchedule> faults_;
  Rng rng_;
  Stats stats_;
};

}  // namespace fdqos::faultx
