#include "faultx/fault_models.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fdqos::faultx {

FaultyDelay::FaultyDelay(std::unique_ptr<wan::DelayModel> base,
                         std::shared_ptr<const FaultSchedule> faults)
    : base_(std::move(base)), faults_(std::move(faults)) {
  FDQOS_REQUIRE(base_ != nullptr);
  FDQOS_REQUIRE(faults_ != nullptr);
  name_ = "faulty(" + base_->name() + ")";
}

Duration FaultyDelay::sample(Rng& rng, TimePoint send_time) {
  Duration d = base_->sample(rng, send_time);
  d += faults_->deterministic_extra_delay(send_time);
  d += faults_->reorder_extra(rng, send_time);
  d += faults_->clock_hold(send_time);
  return std::max(d, Duration::zero());
}

Duration FaultyDelay::min_delay() const {
  // sample() clamps the total at zero, so the promise never goes negative.
  return std::max(base_->min_delay() - faults_->max_clock_advance(),
                  Duration::zero());
}

std::unique_ptr<wan::DelayModel> FaultyDelay::make_fresh() const {
  return std::make_unique<FaultyDelay>(base_->make_fresh(), faults_);
}

FaultyLoss::FaultyLoss(std::unique_ptr<wan::LossModel> base,
                       std::shared_ptr<const FaultSchedule> faults)
    : base_(std::move(base)), faults_(std::move(faults)) {
  FDQOS_REQUIRE(faults_ != nullptr);
  name_ = "faulty(" + (base_ ? base_->name() : std::string("lossless")) + ")";
  burst_chains_.reserve(faults_->bursts().size());
  for (const auto& burst : faults_->bursts()) {
    burst_chains_.emplace_back(burst.chain);
  }
}

bool FaultyLoss::drop(Rng& rng, TimePoint send_time) {
  // Evaluate the base model first and unconditionally: its chain state (and
  // RNG consumption) must evolve identically with or without active faults.
  bool dropped = base_ != nullptr && base_->drop(rng, send_time);
  const auto& bursts = faults_->bursts();
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const auto& b = bursts[i];
    if (send_time < b.start || send_time >= b.start + b.duration) continue;
    // Step this burst's chain only inside its window; |= keeps evaluation
    // unconditional so every active chain advances per message.
    dropped |= burst_chains_[i].drop(rng, send_time);
  }
  return dropped;
}

std::unique_ptr<wan::LossModel> FaultyLoss::make_fresh() const {
  return std::make_unique<FaultyLoss>(
      base_ ? base_->make_fresh() : nullptr, faults_);
}

FaultyTransport::FaultyTransport(net::Transport& inner,
                                 std::shared_ptr<const FaultSchedule> faults,
                                 Rng rng)
    : inner_(inner), faults_(std::move(faults)), rng_(rng) {
  FDQOS_REQUIRE(faults_ != nullptr);
}

void FaultyTransport::bind(net::NodeId node, DeliverFn deliver) {
  inner_.bind(node, std::move(deliver));
}

void FaultyTransport::send(net::Message msg) {
  ++stats_.sent;
  const TimePoint t = inner_.now();
  if (faults_->link_down(t)) {
    ++stats_.fault_dropped;
    return;
  }
  // The sender stamps send_time with its own (possibly jumped) clock.
  msg.send_time = faults_->clock().to_local(msg.send_time);
  const double dup_prob = faults_->duplicate_prob(t);
  const bool duplicate = dup_prob > 0.0 && rng_.bernoulli(dup_prob);
  if (duplicate) {
    ++stats_.duplicated;
    inner_.send(msg);  // each copy draws its own delay/loss downstream
  }
  inner_.send(std::move(msg));
}

}  // namespace fdqos::faultx
