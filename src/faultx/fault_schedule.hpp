// faultx — deterministic fault injection for the WAN simulation stack.
//
// The paper's detectors were evaluated on a "quite stable" Italy→Japan
// path; this subsystem asks what happens when the path misbehaves. A
// FaultSchedule is an immutable, time-indexed catalogue of fault events —
// delay spikes and ramps, Gilbert–Elliott burst-loss overrides, packet
// reorder and duplication windows, full partitions with heal, link flaps,
// and monitored-clock jumps — that the wrapper models in fault_models.hpp
// consult per message. The schedule itself holds no per-message state and
// draws no randomness of its own, so one schedule can be shared (const)
// across every concurrent experiment run: all stochastic fault decisions
// flow through the per-run RNG substreams the wrappers are handed, keeping
// chaos runs exactly as reproducible as nominal ones.
//
// All windows are half-open [start, start+duration) on the run's global
// virtual timeline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "clockx/clock_model.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "wan/loss_model.hpp"

namespace fdqos::faultx {

// Constant additive delay while active — a congestion plateau or a route
// change onto a longer path.
struct DelaySpike {
  TimePoint start;
  Duration duration = Duration::zero();
  Duration extra = Duration::zero();
};

// Additive delay ramping linearly 0 → peak over the window, then vanishing
// — a queue slowly filling. The classic divergence trap for timeout
// estimators (Jain: each observation is stale by the time it is used).
struct DelayRamp {
  TimePoint start;
  Duration duration = Duration::zero();
  Duration peak = Duration::zero();
};

// While active, an *additional* Gilbert–Elliott chain (owned by the
// FaultyLoss wrapper) decides drops on top of the base loss model.
struct BurstLoss {
  TimePoint start;
  Duration duration = Duration::zero();
  wan::GilbertElliottLoss::Params chain;
};

// While active, each message independently receives `shuffle` extra delay
// with probability `prob` — late stragglers overtaking their successors.
struct ReorderBurst {
  TimePoint start;
  Duration duration = Duration::zero();
  double prob = 0.0;
  Duration shuffle = Duration::zero();
};

// While active, each message is duplicated with probability `prob`
// (violating the fair-lossy "never duplicates" assumption on purpose).
struct DuplicateBurst {
  TimePoint start;
  Duration duration = Duration::zero();
  double prob = 0.0;
};

// Full partition: every message sent in the window is dropped.
struct Partition {
  TimePoint start;
  Duration duration = Duration::zero();
};

// Link flapping: within the window the link cycles with `period`, down for
// the first duty_off fraction of each period, up for the rest.
struct LinkFlap {
  TimePoint start;
  Duration duration = Duration::zero();
  Duration period = Duration::seconds(1);
  double duty_off = 0.5;
};

// Monitored-node clock step at `at` by `offset` (local − global). A
// negative offset sets the clock back, which delays every subsequent
// heartbeat emission by |offset| as seen on the global timeline.
struct ClockJump {
  TimePoint at;
  Duration offset = Duration::zero();
};

class FaultSchedule {
 public:
  // Builder interface; every method validates its parameters (aborting via
  // FDQOS_REQUIRE on nonsense) and returns *this for chaining.
  FaultSchedule& spike(TimePoint start, Duration duration, Duration extra);
  FaultSchedule& ramp(TimePoint start, Duration duration, Duration peak);
  FaultSchedule& burst_loss(TimePoint start, Duration duration,
                            wan::GilbertElliottLoss::Params chain);
  FaultSchedule& reorder(TimePoint start, Duration duration, double prob,
                         Duration shuffle);
  FaultSchedule& duplicate(TimePoint start, Duration duration, double prob);
  FaultSchedule& partition(TimePoint start, Duration duration);
  FaultSchedule& flap(TimePoint start, Duration duration, Duration period,
                      double duty_off);
  FaultSchedule& clock_jump(TimePoint at, Duration offset);

  // --- Per-message queries (used by the wrapper models) ---

  // Sum of active spike plateaus and ramp levels. Pure in t.
  Duration deterministic_extra_delay(TimePoint t) const;

  // Reorder contribution: consumes one Bernoulli draw per active window,
  // and none when no window is active — outside fault windows the wrapped
  // model's RNG sequence is untouched.
  Duration reorder_extra(Rng& rng, TimePoint t) const;

  // Extra one-way delay induced by the monitored clock's current error:
  // −error (a clock set back delays emissions; a clock set forward sends
  // early, which the caller clamps at physics' floor of zero total delay).
  Duration clock_hold(TimePoint t) const { return -clock_.error_at(t); }

  // Largest forward clock error ever reached (max over t of error_at(t),
  // floored at zero). clock_hold then subtracts at most this much from any
  // message's delay, so a link with physical floor F keeps a conservative
  // floor of max(0, F − max_clock_advance()) under this schedule — the
  // lookahead shrink the parallel engine applies (FaultyDelay::min_delay).
  Duration max_clock_advance() const;

  // True when a partition or a flap's off-phase covers t.
  bool link_down(TimePoint t) const;

  // Probability that a message sent at t is duplicated (0 outside windows;
  // overlapping windows combine as independent coin flips).
  double duplicate_prob(TimePoint t) const;

  const std::vector<BurstLoss>& bursts() const { return bursts_; }
  const clockx::StepClock& clock() const { return clock_; }

  bool empty() const { return event_count() == 0; }
  std::size_t event_count() const;

  // Human-readable catalogue, one "t=..s  kind(...)" line per event.
  std::string describe() const;

 private:
  std::vector<DelaySpike> spikes_;
  std::vector<DelayRamp> ramps_;
  std::vector<BurstLoss> bursts_;
  std::vector<ReorderBurst> reorders_;
  std::vector<DuplicateBurst> duplicates_;
  std::vector<Partition> partitions_;
  std::vector<LinkFlap> flaps_;
  std::vector<ClockJump> jumps_;
  clockx::StepClock clock_;
};

}  // namespace fdqos::faultx
