#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace fdqos {

Duration Duration::from_millis_double(double ms) {
  return Duration::nanos(static_cast<std::int64_t>(std::llround(ms * 1e6)));
}

Duration Duration::from_seconds_double(double s) {
  return Duration::nanos(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

Duration Duration::scaled(double factor) const {
  return Duration::nanos(
      static_cast<std::int64_t>(std::llround(static_cast<double>(ns_) * factor)));
}

std::string Duration::to_string() const {
  char buf[64];
  const double abs_ns = std::fabs(static_cast<double>(ns_));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns_) / 1e9);
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns_) / 1e6);
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(ns_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", to_seconds_double());
  return buf;
}

}  // namespace fdqos
