// Deterministic, splittable random number generation.
//
// Every stochastic component of an experiment (delay model, loss model,
// crash injector, ...) forks its own named substream from the experiment
// seed. Forking is stable: the same (seed, name) pair always yields the
// same stream, independent of how many other components exist, which keeps
// runs reproducible as the system grows.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace fdqos {

// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derive an independent substream identified by `name`.
  Rng fork(std::string_view name) const;
  // Derive an independent substream identified by an index (e.g. run number).
  Rng fork(std::uint64_t index) const;

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box–Muller (deterministic across platforms).
  double normal();
  double normal(double mean, double stddev);
  // Exponential with the given mean.
  double exponential(double mean);
  // Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  // Gamma(shape k, scale theta) via Marsaglia–Tsang.
  double gamma(double shape, double scale);
  // Bernoulli trial.
  bool bernoulli(double p);
  // Pareto with scale x_m and shape alpha (heavy tail).
  double pareto(double x_m, double alpha);

  // Fisher–Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  Rng() = default;
  void seed_from(std::uint64_t seed);
  std::uint64_t s_[4] = {};
  // Box–Muller spare value.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace fdqos
