// Contract-check macros, active in all build types.
//
// FDQOS_ASSERT guards internal invariants; FDQOS_REQUIRE guards caller-facing
// preconditions (and reads as such at call sites). Both abort with location
// info — in a simulator, continuing past a broken invariant silently corrupts
// every downstream measurement, so failing fast is the safer default.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fdqos::detail {

[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line) {
  std::fprintf(stderr, "fdqos: %s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace fdqos::detail

#define FDQOS_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fdqos::detail::assert_fail("assertion", #expr, __FILE__, __LINE__); \
  } while (0)

#define FDQOS_REQUIRE(expr)                                                    \
  do {                                                                         \
    if (!(expr))                                                               \
      ::fdqos::detail::assert_fail("precondition", #expr, __FILE__, __LINE__); \
  } while (0)

// Debug-only invariant check: compiled out under NDEBUG. For checks on hot
// paths (per-event, per-message) that would be too costly to keep in release
// builds but whose failure means the simulation is already corrupt — e.g. an
// event scheduled behind the simulator's clock, or a cross-LP message that
// violates the conservative synchronization bound.
#ifndef NDEBUG
#define FDQOS_DASSERT(expr) FDQOS_ASSERT(expr)
#else
#define FDQOS_DASSERT(expr) \
  do {                      \
    (void)sizeof(expr);     \
  } while (0)
#endif
