#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace fdqos {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("FDQOS_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

namespace detail {

void log_line(LogLevel level, std::string_view msg) {
  std::fprintf(stderr, "[fdqos %-5s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

void log_fmt(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  char buf[1024];
  const int needed = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(needed) < sizeof buf) {
    log_line(level, {buf, static_cast<std::size_t>(needed)});
  } else {
    // The stack buffer would truncate; reformat into a heap buffer sized by
    // the first pass.
    std::vector<char> heap(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(heap.data(), heap.size(), fmt, args_copy);
    log_line(level, {heap.data(), static_cast<std::size_t>(needed)});
  }
  va_end(args_copy);
}

}  // namespace detail
}  // namespace fdqos
