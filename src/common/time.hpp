// Strongly-typed time primitives for the fdqos virtual/real timeline.
//
// All simulation and detector arithmetic uses integer nanoseconds so that
// event ordering is exact and runs are bit-reproducible. `Duration` is a
// signed span; `TimePoint` is an instant on the experiment's global timeline
// (the paper assumes NTP-synchronized clocks, so one global timeline
// suffices; see clockx/ for the relaxation of that assumption).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace fdqos {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  // Fractional constructors (rounded to nearest nanosecond).
  static Duration from_millis_double(double ms);
  static Duration from_seconds_double(double s);
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_millis_double() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_seconds_double() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  // Scale by a real factor, rounding to nearest nanosecond.
  Duration scaled(double factor) const;

  std::string to_string() const;  // human-readable, e.g. "203.17ms"

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_nanos(std::int64_t n) { return TimePoint{n}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr TimePoint min() {
    return TimePoint{std::numeric_limits<std::int64_t>::min()};
  }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_seconds_double() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis_double() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{ns_ + d.count_nanos()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{ns_ - d.count_nanos()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::nanos(ns_ - o.ns_);
  }
  TimePoint& operator+=(Duration d) { ns_ += d.count_nanos(); return *this; }

  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace fdqos
