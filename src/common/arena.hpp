// MonotonicArena — bump-pointer allocation for per-endpoint detector state.
//
// Fleet-scale monitoring (fd::FleetBank, docs/fleet.md) owns one
// DetectorBank per monitored endpoint. Allocating tens of thousands of
// banks individually scatters them across the heap and pays a malloc per
// object; the arena packs them into large contiguous blocks, so shard-local
// iteration (the per-shard cycle tick touching every member) walks nearly
// sequential memory, and teardown is one destructor sweep plus a handful of
// frees instead of one free per endpoint.
//
// The arena is monotonic: memory is only reclaimed when the arena is
// destroyed. That matches the fleet lifecycle exactly — members are created
// during assembly, live for the whole run, and die together. Not
// thread-safe; each shard owns its own arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace fdqos::common {

class MonotonicArena {
 public:
  // `block_bytes` is the growth granularity; objects larger than a block
  // get a dedicated block of their own size.
  explicit MonotonicArena(std::size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes == 0 ? 64 * 1024 : block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  ~MonotonicArena() {
    // Destroy in reverse construction order (the usual C++ convention);
    // the raw blocks are then released by the unique_ptrs.
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
      it->destroy(it->object);
    }
  }

  // Construct a T in the arena. The arena owns the object's lifetime: its
  // destructor runs when the arena is destroyed. Do not delete the result.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* slot = allocate(sizeof(T), alignof(T));
    T* object = new (slot) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(
          {object, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return object;
  }

  // Raw aligned allocation (uninitialized, trivially destructible data).
  void* allocate(std::size_t bytes, std::size_t align) {
    FDQOS_REQUIRE(align != 0 && (align & (align - 1)) == 0);
    std::uintptr_t p = (cursor_ + align - 1) & ~(std::uintptr_t(align) - 1);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = (cursor_ + align - 1) & ~(std::uintptr_t(align) - 1);
    }
    cursor_ = p + bytes;
    used_bytes_ = cursor_ - block_base_ + completed_bytes_;
    return reinterpret_cast<void*>(p);
  }

  // Footprint accounting for the bytes/endpoint bench report.
  std::size_t allocated_bytes() const { return allocated_bytes_; }
  std::size_t used_bytes() const { return used_bytes_; }

 private:
  struct Dtor {
    void* object;
    void (*destroy)(void*);
  };

  void grow(std::size_t min_bytes) {
    const std::size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    completed_bytes_ += cursor_ - block_base_;
    blocks_.push_back(std::make_unique<std::byte[]>(size));
    allocated_bytes_ += size;
    block_base_ = reinterpret_cast<std::uintptr_t>(blocks_.back().get());
    cursor_ = block_base_;
    limit_ = block_base_ + size;
  }

  std::size_t block_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<Dtor> dtors_;
  std::uintptr_t block_base_ = 0;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t allocated_bytes_ = 0;
  std::size_t completed_bytes_ = 0;
  std::size_t used_bytes_ = 0;
};

}  // namespace fdqos::common
