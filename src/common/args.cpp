#include "common/args.hpp"

#include <cstdlib>

namespace fdqos {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[i + 1];
      ++i;
    } else {
      values_[token] = "";  // bare flag
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  queried_.insert(key);
  return values_.count(key) > 0;
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& fallback) const {
  queried_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t fallback) const {
  queried_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  queried_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::get_flag(const std::string& key) const {
  queried_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> ArgParser::unknown_keys() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (queried_.count(key) == 0) unknown.push_back(key);
  }
  return unknown;
}

}  // namespace fdqos
