// Minimal leveled logger.
//
// Experiments are batch jobs; the logger writes to stderr so that stdout
// stays clean for machine-readable tables. Level is process-global and can
// be raised via the FDQOS_LOG environment variable (trace|debug|info|warn|
// error|off).
#pragma once

#include <cstdio>
#include <string_view>
#include <utility>

namespace fdqos {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, std::string_view msg);

template <typename... Args>
void log_fmt(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  char buf[1024];
  std::snprintf(buf, sizeof buf, fmt, std::forward<Args>(args)...);
  log_line(level, buf);
}
}  // namespace detail

#define FDQOS_LOG_DEBUG(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kDebug, __VA_ARGS__)
#define FDQOS_LOG_INFO(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kInfo, __VA_ARGS__)
#define FDQOS_LOG_WARN(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kWarn, __VA_ARGS__)
#define FDQOS_LOG_ERROR(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kError, __VA_ARGS__)

}  // namespace fdqos
