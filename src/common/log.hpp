// Minimal leveled logger.
//
// Experiments are batch jobs; the logger writes to stderr so that stdout
// stays clean for machine-readable tables. Level is process-global and can
// be raised via the FDQOS_LOG environment variable (trace|debug|info|warn|
// error|off).
#pragma once

#include <string_view>

// Portability shim for printf-style format checking: GCC and Clang verify
// the argument list against the format string at compile time; other
// compilers compile the annotation away.
#if defined(__GNUC__) || defined(__clang__)
#define FDQOS_PRINTF_FORMAT(fmt_index, first_arg) \
  __attribute__((format(printf, fmt_index, first_arg)))
#else
#define FDQOS_PRINTF_FORMAT(fmt_index, first_arg)
#endif

namespace fdqos {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, std::string_view msg);

// Formats and emits one line if `level` passes the filter. Messages longer
// than the internal stack buffer fall back to a heap allocation — lines are
// never truncated.
void log_fmt(LogLevel level, const char* fmt, ...) FDQOS_PRINTF_FORMAT(2, 3);
}  // namespace detail

#define FDQOS_LOG_TRACE(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kTrace, __VA_ARGS__)
#define FDQOS_LOG_DEBUG(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kDebug, __VA_ARGS__)
#define FDQOS_LOG_INFO(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kInfo, __VA_ARGS__)
#define FDQOS_LOG_WARN(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kWarn, __VA_ARGS__)
#define FDQOS_LOG_ERROR(...) \
  ::fdqos::detail::log_fmt(::fdqos::LogLevel::kError, __VA_ARGS__)

}  // namespace fdqos
