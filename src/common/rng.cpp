#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace fdqos {
namespace {

// splitmix64: seeds the xoshiro state and hashes fork names.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) { seed_from(seed); }

void Rng::seed_from(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  has_spare_ = false;
}

Rng Rng::fork(std::string_view name) const {
  Rng child;
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 17) ^ fnv1a(name);
  child.seed_from(mix);
  return child;
}

Rng Rng::fork(std::uint64_t index) const {
  Rng child;
  std::uint64_t x = index * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  child.seed_from(s_[0] ^ rotl(s_[1], 29) ^ splitmix64(x));
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FDQOS_ASSERT(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FDQOS_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  FDQOS_ASSERT(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::gamma(double shape, double scale) {
  FDQOS_ASSERT(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia–Tsang trick).
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::pareto(double x_m, double alpha) {
  FDQOS_ASSERT(x_m > 0.0 && alpha > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace fdqos
