// Minimal command-line argument parsing for the fdqos CLI and examples.
//
// Supports `--key value`, `--key=value`, and boolean `--flag` forms, plus
// positional arguments. Unknown-key detection lets callers reject typos
// instead of silently running a default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace fdqos {

class ArgParser {
 public:
  // argv[0] is skipped. Every `--key` is greedy: `--key value` consumes the
  // next token unless it also starts with "--" (then `key` is a flag).
  ArgParser(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  // True when the key appears, either bare (`--flag`) or as
  // `--flag=true|1`; `--flag=false|0` yields false.
  bool get_flag(const std::string& key) const;

  // Keys present on the command line but never queried through the getters
  // above — call after all gets to report typos.
  std::vector<std::string> unknown_keys() const;

 private:
  std::map<std::string, std::string> values_;  // "" for bare flags
  std::vector<std::string> positional_;
  mutable std::set<std::string> queried_;
};

}  // namespace fdqos
