#include "obs/instruments.hpp"

namespace fdqos::obs {

Instruments& instruments() {
  static Instruments inst{
      Registry::global().counter(
          "fdqos_heartbeats_sent_total",
          "Heartbeats emitted by the monitored process"),
      Registry::global().counter(
          "fdqos_heartbeats_delivered_total",
          "Heartbeats the monitor's MultiPlexer dispatched to detectors"),
      Registry::global().counter(
          "fdqos_mux_dispatch_total",
          "Messages fanned out by MultiPlexerLayer (all types)"),
      Registry::global().histogram(
          "fdqos_mux_dispatch_duration_us",
          "Wall time of one MultiPlexer fan-out to all stacked detectors"),
      Registry::global().counter(
          "fdqos_fd_freshness_checks_total",
          "Freshness-point evaluations across all FreshnessDetectors"),
      Registry::global().counter(
          "fdqos_fd_suspect_transitions_total",
          "Detector trust<->suspect transitions", {{"to", "suspect"}}),
      Registry::global().counter(
          "fdqos_fd_suspect_transitions_total",
          "Detector trust<->suspect transitions", {{"to", "trust"}}),
      Registry::global().counter(
          "fdqos_arima_refits_total",
          "ARIMA re-estimations by outcome", {{"outcome", "accepted"}}),
      Registry::global().counter(
          "fdqos_arima_refits_total",
          "ARIMA re-estimations by outcome", {{"outcome", "rejected"}}),
      Registry::global().histogram(
          "fdqos_arima_refit_duration_us",
          "Wall time of one ARIMA refit (fit + validation + priming)"),
      Registry::global().counter("fdqos_udp_datagrams_total",
                                 "UDP datagrams by direction",
                                 {{"dir", "sent"}}),
      Registry::global().counter("fdqos_udp_datagrams_total",
                                 "UDP datagrams by direction",
                                 {{"dir", "received"}}),
      Registry::global().counter(
          "fdqos_udp_decode_failures_total",
          "Received datagrams that failed message decoding"),
      Registry::global().counter(
          "fdqos_udp_send_failures_total",
          "sendto() errors and short writes (message treated as lost)"),
      Registry::global().counter(
          "fdqos_serve_batches_total",
          "Datagram batches drained by the fdqos serve ingest loop"),
      Registry::global().counter(
          "fdqos_serve_datagrams_total",
          "Datagrams received by the fdqos serve ingest loop"),
      Registry::global().counter("fdqos_serve_drops_total",
                                 "Heartbeats dropped by fdqos serve, by "
                                 "reason",
                                 {{"reason", "decode"}}),
      Registry::global().counter("fdqos_serve_drops_total",
                                 "Heartbeats dropped by fdqos serve, by "
                                 "reason",
                                 {{"reason", "capacity"}}),
      Registry::global().histogram(
          "fdqos_serve_batch_size",
          "Datagrams drained per fdqos serve receive batch"),
      Registry::global().counter("fdqos_crash_events_total",
                                 "SimCrash injector events",
                                 {{"kind", "crash"}}),
      Registry::global().counter("fdqos_crash_events_total",
                                 "SimCrash injector events",
                                 {{"kind", "restore"}}),
      Registry::global().counter(
          "fdqos_crash_dropped_messages_total",
          "Messages swallowed by a crashed SimCrash layer"),
      Registry::global().counter(
          "fdqos_qos_detections_total",
          "Crash detections recorded by QosTrackers (all detectors)"),
      Registry::global().counter(
          "fdqos_qos_mistakes_total",
          "Wrong-suspicion samples recorded by QosTrackers (all detectors)"),
      Registry::global().counter(
          "fdqos_bank_predictor_updates_total",
          "Shared-predictor observe() calls across all DetectorBanks"),
      Registry::global().counter(
          "fdqos_bank_lane_updates_total",
          "Per-lane margin+suspicion update passes across all DetectorBanks"),
      Registry::global().counter(
          "fdqos_bank_coalesced_timers_total",
          "Per-detector simulator events avoided by bank timer coalescing"),
      Registry::global().counter(
          "fdqos_bank_dispatch_errors_total",
          "DetectorBank lane updates or observer callbacks that threw"),
      Registry::global().counter(
          "fdqos_sim_safe_window_advances_total",
          "Safe-window rounds executed by the parallel simulation core"),
      Registry::global().counter(
          "fdqos_sim_lp_stalls_total",
          "Zero-lookahead rounds where the PDES coordinator granted only "
          "the global-minimum timestamp"),
      Registry::global().counter(
          "fdqos_sim_cross_lp_messages_total",
          "Messages posted between logical processes by the parallel "
          "simulation core"),
      Registry::global().gauge("fdqos_experiment_run",
                               "Current experiment run index (1-based)"),
      Registry::global().gauge(
          "fdqos_fd_suspecting",
          "Detectors currently suspecting the monitored process"),
      Registry::global().gauge(
          "fdqos_sim_safe_window_ms",
          "Widest safe-window grant in the most recent PDES round, "
          "milliseconds"),
  };
  return inst;
}

}  // namespace fdqos::obs
