#include "obs/runs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace fdqos::obs {
namespace {

struct RunContext {
  std::mutex mu;
  std::string id;
  std::string suite;
};

RunContext& context() {
  static RunContext ctx;
  return ctx;
}

std::string json_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void RunRegistry::update(const RunStatus& status) {
  std::lock_guard<std::mutex> lock(mu_);
  for (RunStatus& row : rows_) {
    if (row.id == status.id) {
      row = status;
      return;
    }
  }
  rows_.push_back(status);
}

void RunRegistry::finish(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (RunStatus& row : rows_) {
    if (row.id == id) {
      row.finished = true;
      row.runs_done = row.runs_total;
      return;
    }
  }
}

void RunRegistry::remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [&id](const RunStatus& row) {
                               return row.id == id;
                             }),
              rows_.end());
}

void RunRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
}

std::vector<RunStatus> RunRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

std::size_t RunRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

std::string RunRegistry::to_json() const {
  const std::vector<RunStatus> rows = snapshot();
  std::string out = "{\"runs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunStatus& r = rows[i];
    if (i > 0) out.push_back(',');
    char buf[256];
    out += "{\"id\":\"" + json_escape(r.id) + "\",\"verb\":\"" +
           json_escape(r.verb) + "\",\"suite\":\"" + json_escape(r.suite) +
           "\",";
    std::snprintf(buf, sizeof buf,
                  "\"runs_total\":%zu,\"runs_started\":%zu,"
                  "\"runs_done\":%zu,\"crashes\":%llu,"
                  "\"heartbeats_sent\":%llu,\"detectors\":%zu,"
                  "\"suspecting\":%zu,\"sim_time_s\":%s,\"finished\":%s}",
                  r.runs_total, r.runs_started, r.runs_done,
                  static_cast<unsigned long long>(r.crashes),
                  static_cast<unsigned long long>(r.heartbeats_sent),
                  r.detectors, r.suspecting,
                  std::isfinite(r.sim_time_s)
                      ? std::to_string(r.sim_time_s).c_str()
                      : "null",
                  r.finished ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

RunRegistry& RunRegistry::global() {
  static RunRegistry registry;
  return registry;
}

void set_run_context(const std::string& run_id, const std::string& suite) {
  RunContext& ctx = context();
  std::lock_guard<std::mutex> lock(ctx.mu);
  ctx.id = run_id;
  ctx.suite = suite;
}

void clear_run_context() { set_run_context("", ""); }

std::string run_id() {
  RunContext& ctx = context();
  std::lock_guard<std::mutex> lock(ctx.mu);
  return ctx.id;
}

std::string run_suite() {
  RunContext& ctx = context();
  std::lock_guard<std::mutex> lock(ctx.mu);
  return ctx.suite;
}

Labels run_labels() {
  RunContext& ctx = context();
  std::lock_guard<std::mutex> lock(ctx.mu);
  Labels labels;
  if (!ctx.id.empty()) labels.emplace_back("run", ctx.id);
  if (!ctx.suite.empty()) labels.emplace_back("suite", ctx.suite);
  return labels;
}

}  // namespace fdqos::obs
