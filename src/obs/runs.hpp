// Live run registry and run-scoped telemetry labels.
//
// obs v2 turns the registry from a post-run snapshot into a live plane: a
// scrape can arrive at any instant, so something must say *which* run the
// scraped numbers belong to. Two pieces:
//
//  * RunRegistry — a thread-safe table of experiment invocations (one row
//    per `fdqos qos/chaos/record/replay` call), refreshed by the progress
//    tick and served as JSON by HttpExporter's /runs endpoint.
//
//  * The run context — a process-wide (run_id, suite) pair the CLI sets
//    before an experiment starts. Per-detector gauges, ObsSpan trace
//    events and ProgressEmitter JSONL records all carry the same labels,
//    so one run's telemetry is joinable across metrics, traces and
//    progress without guessing at timestamps.
//
// Everything here is scrape-path or once-per-tick; nothing is on the
// heartbeat hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace fdqos::obs {

// One experiment invocation as the /runs endpoint reports it. All counts
// are whole-invocation aggregates (runs in flight, completed runs, crash
// totals), not per-paper-run.
struct RunStatus {
  std::string id;     // run id label, e.g. "qos-seed42"
  std::string verb;   // qos | chaos | record | replay | accuracy
  std::string suite;  // suite label (scenario name, "paper", ...)
  std::size_t runs_total = 0;
  std::size_t runs_started = 0;
  std::size_t runs_done = 0;
  std::uint64_t crashes = 0;
  std::uint64_t heartbeats_sent = 0;
  std::size_t detectors = 0;
  std::size_t suspecting = 0;
  double sim_time_s = 0.0;  // virtual clock of the reporting run
  bool finished = false;
};

// Keyed by RunStatus::id; update() inserts or replaces. The table is tiny
// (one row per live invocation) and read only by scrapes, so a mutex and
// full-copy snapshots are plenty.
class RunRegistry {
 public:
  RunRegistry() = default;
  RunRegistry(const RunRegistry&) = delete;
  RunRegistry& operator=(const RunRegistry&) = delete;

  void update(const RunStatus& status);
  // Mark finished (keeps the row so a final scrape still sees totals).
  void finish(const std::string& id);
  void remove(const std::string& id);
  void clear();

  std::vector<RunStatus> snapshot() const;
  // {"runs":[{...},...]} — insertion-ordered, deterministic.
  std::string to_json() const;
  std::size_t size() const;

  // The process-wide table behind the /runs endpoint.
  static RunRegistry& global();

 private:
  mutable std::mutex mu_;
  std::vector<RunStatus> rows_;  // insertion order; linear lookup by id
};

// Process-wide run context. set_run_context() installs (run_id, suite);
// run_labels() renders them as metric labels ({} while unset). The CLI
// sets it around each experiment; tests set/clear their own.
void set_run_context(const std::string& run_id, const std::string& suite);
void clear_run_context();
std::string run_id();
std::string run_suite();
Labels run_labels();

// RAII guard for a /runs row: marks `id` finished and clears the run
// context on destruction, so an experiment that unwinds early (an
// exception from a worker rethrown by parallel_for, a throwing factory)
// never leaves a live row or a stale context behind. Normal completion
// writes its final row before the guard runs; finish() on an
// already-finished (or vanished) row is a no-op, so the guard is safe on
// every exit path.
class RunFinalizer {
 public:
  explicit RunFinalizer(std::string id) : id_(std::move(id)) {}
  RunFinalizer(const RunFinalizer&) = delete;
  RunFinalizer& operator=(const RunFinalizer&) = delete;
  ~RunFinalizer() {
    RunRegistry::global().finish(id_);
    clear_run_context();
  }

 private:
  std::string id_;
};

}  // namespace fdqos::obs
