// Metrics registry (runtime observability, DESIGN.md §obs).
//
// The experiment harness measures failure detectors; this module measures
// the harness itself. Three instrument kinds in the Prometheus data model:
//
//   Counter    monotonically increasing u64 (events: heartbeats, refits)
//   Gauge      last-written double (levels: current run, suspecting count)
//   Histogram  fixed log-scale (1-2-5 decade) buckets (durations, sizes)
//
// Instruments live in labeled families inside a Registry. Registration
// takes a mutex; the returned reference is stable for the registry's
// lifetime, so hot paths register once, cache the handle, and then touch
// only relaxed atomics — no locks per event. A process-wide registry
// (`Registry::global()`) backs the built-in instrumentation; experiments
// and tests can also own private instances.
//
// Instrumentation is disabled by default: `obs::enabled()` is one relaxed
// atomic load, and every built-in instrumentation site checks it before
// touching clocks or instruments, so an un-observed run pays nothing
// measurable (see bench_overhead_microbench's obs/* series).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "stats/quantiles.hpp"

namespace fdqos::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

// Global instrumentation switch. Off by default; the CLI flips it on when
// any of --metrics-out / --trace-out / --progress is given.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// Label set of one instrument, e.g. {{"outcome", "accepted"}}. Keys are
// sorted at registration so equal sets always address the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram over fixed log-scale buckets: a 1-2-5 series per decade from
// 1 to 5e6 plus a +Inf overflow bucket. The unit is whatever the caller
// observes (built-in instruments use microseconds and say so in the name).
//
// Next to the buckets, every histogram carries three streaming P²
// quantile sketches (p50/p95/p99) so a live scrape gets sharp quantile
// summaries without Prometheus-side bucket interpolation. The sketches
// sit behind a small mutex — the only non-atomic state on the observe()
// path — which costs ~a CAS when uncontended and is only ever touched
// while obs is enabled (see bench obs/hist_observe_enabled).
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 20;  // finite bounds
  // The quantiles every histogram summarizes, exposed in the text
  // exposition as gauge families `<name>_p50/_p95/_p99`.
  static constexpr std::array<double, 3> kSummaryQuantiles = {0.5, 0.95, 0.99};
  // Ascending finite upper bounds; bucket i counts observations v with
  // bound[i-1] < v <= bound[i] (Prometheus `le` semantics).
  static const std::array<double, kBucketCount>& bucket_bounds();

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Non-cumulative count of bucket i; i == kBucketCount is the +Inf bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  // Streaming estimate for one of kSummaryQuantiles (anything else
  // aborts); NaN before the first observation.
  double quantile_estimate(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  mutable std::mutex sketch_mu_;
  stats::P2Quantile p50_{0.5};
  stats::P2Quantile p95_{0.95};
  stats::P2Quantile p99_{0.99};
};

enum class MetricType { kCounter, kGauge, kHistogram };

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Look up or create the instrument `name{labels}`. The same (name,
  // labels) always yields the same instrument; re-registering a name with
  // a different type aborts (it would corrupt the exposition).
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const Labels& labels = {});

  // Prometheus text exposition format (families sorted by name, label sets
  // sorted within a family — deterministic for golden tests).
  std::string to_prometheus() const;
  // One JSON object per line per instrument — the repo's JSONL convention
  // shared with stats::EventLog and obs::TraceWriter.
  std::string to_jsonl() const;

  bool save_prometheus(const std::string& path) const;
  bool save_jsonl(const std::string& path) const;

  std::size_t family_count() const;

  // The process-wide registry behind obs::instruments().
  static Registry& global();

 private:
  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    // Keyed by the canonical rendered label string ("" for no labels).
    std::map<std::string, Instrument> instruments;
  };

  Instrument& instrument(const std::string& name, const std::string& help,
                         MetricType type, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

// Renders labels canonically: `k1="v1",k2="v2"` sorted by key ("" when
// empty). Exposed for the exposition writers and tests.
std::string render_labels(const Labels& labels);

}  // namespace fdqos::obs
