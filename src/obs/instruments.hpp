// Built-in instrument handles on the global registry.
//
// Every instrumented runtime component (MultiPlexer, FreshnessDetector,
// ArimaPredictor, UdpTransport, SimCrash, QosTracker, Heartbeater) reaches
// its counters/histograms through this one struct. instruments() registers
// the whole set on Registry::global() on first use and then returns cached
// references, so a hot path pays one `obs::enabled()` load plus a relaxed
// atomic increment — never a registry lookup. Metric names and label
// conventions are documented in docs/observability.md.
#pragma once

#include "obs/metrics.hpp"

namespace fdqos::obs {

struct Instruments {
  // Heartbeat pipeline. Sent counts heartbeats the monitored process
  // emits (including those swallowed by an active crash layer below it);
  // delivered counts heartbeats the monitor's MultiPlexer fans out.
  Counter& heartbeats_sent;
  Counter& heartbeats_delivered;

  // MultiPlexer fan-out (all message types).
  Counter& mux_dispatch_total;
  Histogram& mux_dispatch_duration_us;

  // FreshnessDetector: freshness-point evaluations and trust<->suspect
  // transitions (labeled by direction).
  Counter& fd_freshness_checks_total;
  Counter& fd_transitions_to_suspect;
  Counter& fd_transitions_to_trust;

  // ArimaPredictor refits — the known CPU hog (refit_every = N_Arima).
  Counter& arima_refits_accepted;
  Counter& arima_refits_rejected;
  Histogram& arima_refit_duration_us;

  // UdpTransport datagram I/O. Send failures cover sendto() errors and
  // short writes — sent counts only exact-length completions.
  Counter& udp_datagrams_sent;
  Counter& udp_datagrams_received;
  Counter& udp_decode_failures_total;
  Counter& udp_send_failures_total;

  // `fdqos serve` ingest daemon (serve/daemon.hpp): recvmmsg batches
  // drained, datagrams received, heartbeats dropped (labeled by reason:
  // decode failure vs. admission capacity), and the per-drain batch-size
  // distribution. Incremented once per batch, never per datagram.
  Counter& serve_batches_total;
  Counter& serve_datagrams_total;
  Counter& serve_drops_decode;
  Counter& serve_drops_capacity;
  Histogram& serve_batch_size;

  // SimCrash injector.
  Counter& crash_injections;
  Counter& crash_restores;
  Counter& crash_dropped_messages_total;

  // QosTracker sample production (pooled across all detectors).
  Counter& qos_detections_total;
  Counter& qos_mistakes_total;

  // DetectorBank engine counters, flushed once per experiment from the
  // banks' cheap single-threaded tallies (see DetectorBank::Counters).
  Counter& bank_predictor_updates;  // observe() on shared predictors
  Counter& bank_lane_updates;       // per-lane margin+suspicion passes
  Counter& bank_coalesced_timers;   // per-detector sim events avoided
  Counter& bank_dispatch_errors;    // lane/observer callbacks that threw

  // Parallel simulation core (sim/parallel_simulator.hpp), flushed once
  // per experiment from the coordinator's tallies. Advances count safe
  // windows executed; stalls count zero-lookahead minimum grants (see
  // docs/pdes.md).
  Counter& sim_safe_window_advances;
  Counter& sim_lp_stalls;
  Counter& sim_cross_lp_messages;

  // Experiment-level gauges, refreshed by the progress emitter.
  Gauge& experiment_run;      // current run index (1-based)
  Gauge& fd_suspecting;       // detectors currently suspecting
  Gauge& sim_safe_window_ms;  // widest grant in the last PDES round
};

// The process-wide instrument set (registered on Registry::global()).
Instruments& instruments();

}  // namespace fdqos::obs
