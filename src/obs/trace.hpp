// Scoped tracing: RAII span timers over a swappable monotonic clock, with
// an optional JSONL trace sink.
//
// An ObsSpan measures the wall time of one scope. When instrumentation is
// enabled it records the duration into a Histogram (microseconds) and, if a
// global TraceWriter is installed, appends one complete-event line that
// chrome://tracing and Perfetto load directly. When obs::enabled() is
// false the constructor is a single relaxed load and nothing else runs.
//
// The clock is a plain function pointer so tests can install a fake
// (deterministic) clock; see tests/obs/trace_test.cpp.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace fdqos::obs {

// Monotonic nanoseconds since an arbitrary origin.
using ClockFn = std::uint64_t (*)();

std::uint64_t steady_now_ns();
// Install a replacement clock (tests); nullptr restores the steady clock.
void set_clock(ClockFn fn);
std::uint64_t clock_now_ns();

// Streams trace events to a file, one JSON object per line. The file opens
// with a lone "[" so chrome://tracing's JSON-array reader accepts it as-is
// (the format explicitly tolerates a missing "]"); every following line is
// one complete event ending in ",", so line-oriented tools can parse it by
// stripping the trailing comma. Thread-safe.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::uint64_t events_written() const {
    return events_.load(std::memory_order_relaxed);
  }

  // One chrome "ph":"X" (complete) event: span `name` starting at `ts_us`
  // lasting `dur_us`, with labels rendered into "args".
  void write(std::string_view name, std::uint64_t ts_us, std::uint64_t dur_us,
             const Labels& labels = {});
  void flush();

 private:
  std::FILE* f_ = nullptr;
  std::mutex mu_;
  std::atomic<std::uint64_t> events_{0};
};

// Global sink used by ObsSpan; nullptr (default) disables trace output.
// The caller keeps ownership and must clear the sink before destroying it.
void set_trace_writer(TraceWriter* writer);
TraceWriter* trace_writer();

class ObsSpan {
 public:
  // `name` must outlive the span (string literals at every call site).
  // `hist`, when non-null, receives the duration in microseconds.
  explicit ObsSpan(const char* name, Histogram* hist = nullptr);
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  bool active() const { return active_; }
  // Microseconds since construction (0 when inactive or if the installed
  // clock ran backwards — durations never underflow).
  std::uint64_t elapsed_us() const;

 private:
  const char* name_;
  Histogram* hist_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

}  // namespace fdqos::obs
