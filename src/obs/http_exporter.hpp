// HttpExporter — a dependency-free, poll()-based, single-thread HTTP/1.1
// server that makes the obs registry scrapeable while a run executes.
//
// Endpoints:
//   GET /metrics  Prometheus text exposition of the configured Registry
//   GET /healthz  liveness probe ("ok")
//   GET /runs     JSON snapshot of the live RunRegistry (experiment
//                 progress: runs started/done, crashes, suspecting, ...)
//
// Design mirrors net::udp_transport: raw POSIX sockets, no framework, no
// threads beyond the one serve loop. The loop poll()s the listening
// socket, a self-pipe (for prompt stop()), and every open connection;
// requests are tiny (one GET line), responses are written with
// Connection: close, and slow or oversized clients are dropped rather
// than ever blocking the loop. Rendering an exposition takes the
// registry mutex briefly — the experiment's hot paths touch only relaxed
// atomics, so a concurrent scrape never stalls a run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace fdqos::obs {

class HttpExporter {
 public:
  struct Options {
    // Port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral port
    // (read it back with port() — the tests do).
    std::uint16_t port = 0;
    // Registry served at /metrics; nullptr = Registry::global().
    Registry* registry = nullptr;
    // JSON body served at /runs; null = RunRegistry::global().to_json().
    std::function<std::string()> runs_snapshot;
    // Open connections the loop is willing to hold at once; accepts
    // beyond this are answered 503 and closed.
    std::size_t max_connections = 32;
  };

  HttpExporter();  // all-default Options
  explicit HttpExporter(Options options);
  ~HttpExporter();  // stop()s

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Bind + listen + spawn the serve thread. False (with a log line) if
  // the socket could not be set up; start() on a running exporter is a
  // no-op returning true.
  bool start();
  // Idempotent; joins the serve thread. Called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port (resolves port 0 to the kernel's choice); 0 if not bound.
  std::uint16_t port() const { return bound_port_; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::string in;    // request bytes read so far
    std::string out;   // response bytes not yet written
    bool ready = false;  // request parsed, response assembled
  };

  void serve_loop();
  void accept_ready();
  // Returns false when the connection should be closed.
  bool read_ready(Connection& conn);
  bool write_ready(Connection& conn);
  std::string respond(const std::string& request_line) const;

  Options options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // self-pipe: stop() writes, poll loop wakes
  int wake_write_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace fdqos::obs
