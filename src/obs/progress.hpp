// Periodic progress/telemetry emitter for long experiment runs.
//
// A 13-run × 10 000-cycle QoS experiment is silent for its whole lifetime
// unless something reports from inside. The ProgressEmitter is a wall-clock
// rate limiter plus a printf sink: callers invoke due() from any
// frequently-executed point (e.g. a repeating virtual-time event) and emit
// a status line when it fires. The emitter uses the obs clock, so tests can
// drive it deterministically with a fake clock.
//
// Next to the human-readable stderr line, an optional JsonlSink receives a
// machine-readable record per emit. Every JSONL line — from any thread —
// lands in the file as exactly one write(2) of a fully assembled buffer on
// an O_APPEND descriptor, so concurrent emitters never tear or interleave
// records (POSIX guarantees atomic appends well past our line sizes).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "common/log.hpp"

namespace fdqos::obs {

// Append-only JSONL file. write_line() adds the trailing '\n' and issues a
// single ::write() — the atomicity unit — so lines from racing threads
// interleave only at record boundaries. Thread-safe; open()/close() are
// not meant to race with write_line().
class JsonlSink {
 public:
  JsonlSink() = default;
  ~JsonlSink();
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  // Opens (creating/truncating) `path` in append mode. False on failure.
  bool open(const std::string& path);
  void close();
  bool is_open() const { return fd_ >= 0; }

  // Writes `line` + '\n' as one write(2). `line` must be a single record
  // (no embedded newline). Returns false if closed or the write failed.
  bool write_line(std::string_view line);

  std::uint64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  std::atomic<std::uint64_t> lines_{0};
};

class ProgressEmitter {
 public:
  struct Options {
    double interval_s = 5.0;   // wall-clock seconds between lines
    std::FILE* out = nullptr;  // nullptr = stderr
    std::string prefix = "[fdqos obs]";
    // Optional machine-readable mirror: each emit() also appends
    // {"run":...,"t_ns":...,"seq":...,"msg":...} to this sink. Not owned;
    // must outlive the emitter. nullptr = stderr only.
    JsonlSink* jsonl = nullptr;
    // Run id stamped into JSONL records ("" = omit the field).
    std::string run_id;
  };

  ProgressEmitter();  // all-default Options (out-of-line: NSDMIs of a
                      // nested aggregate are incomplete inside the class)
  explicit ProgressEmitter(Options options);

  // True once at least interval_s of wall time has elapsed since the last
  // emit(). The first call after construction is always due.
  bool due() const;

  // Formats and writes one prefixed line, flushes, and re-arms the timer.
  // The full line is assembled first and handed to stdio as one fwrite, so
  // even unsynchronized emitters can't interleave mid-line.
  void emit(const char* fmt, ...) FDQOS_PRINTF_FORMAT(2, 3);

  std::uint64_t lines_emitted() const;

 private:
  Options options_;
  // due()/emit() are called concurrently when experiment runs execute in
  // parallel (exec::ThreadPool); the mutex keeps the rate-limiter state
  // and the output line atomic. Callers that must never interleave a
  // due()+emit() pair serialize it themselves (see exp::ProgressState).
  mutable std::mutex mu_;
  std::uint64_t last_emit_ns_ = 0;
  bool emitted_once_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace fdqos::obs
