// Periodic progress/telemetry emitter for long experiment runs.
//
// A 13-run × 10 000-cycle QoS experiment is silent for its whole lifetime
// unless something reports from inside. The ProgressEmitter is a wall-clock
// rate limiter plus a printf sink: callers invoke due() from any
// frequently-executed point (e.g. a repeating virtual-time event) and emit
// a status line when it fires. The emitter uses the obs clock, so tests can
// drive it deterministically with a fake clock.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/log.hpp"

namespace fdqos::obs {

class ProgressEmitter {
 public:
  struct Options {
    double interval_s = 5.0;   // wall-clock seconds between lines
    std::FILE* out = nullptr;  // nullptr = stderr
    std::string prefix = "[fdqos obs]";
  };

  ProgressEmitter();  // all-default Options (out-of-line: NSDMIs of a
                      // nested aggregate are incomplete inside the class)
  explicit ProgressEmitter(Options options);

  // True once at least interval_s of wall time has elapsed since the last
  // emit(). The first call after construction is always due.
  bool due() const;

  // Formats and writes one prefixed line, flushes, and re-arms the timer.
  void emit(const char* fmt, ...) FDQOS_PRINTF_FORMAT(2, 3);

  std::uint64_t lines_emitted() const;

 private:
  Options options_;
  // due()/emit() are called concurrently when experiment runs execute in
  // parallel (exec::ThreadPool); the mutex keeps the rate-limiter state
  // and the output line atomic. Callers that must never interleave a
  // due()+emit() pair serialize it themselves (see exp::ProgressState).
  mutable std::mutex mu_;
  std::uint64_t last_emit_ns_ = 0;
  bool emitted_once_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace fdqos::obs
