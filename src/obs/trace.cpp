#include "obs/trace.hpp"

#include <atomic>
#include <chrono>

#include "obs/runs.hpp"

namespace fdqos::obs {
namespace {

std::atomic<ClockFn> g_clock{nullptr};
std::atomic<TraceWriter*> g_trace_writer{nullptr};

}  // namespace

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_clock(ClockFn fn) { g_clock.store(fn, std::memory_order_relaxed); }

std::uint64_t clock_now_ns() {
  const ClockFn fn = g_clock.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : steady_now_ns();
}

TraceWriter::TraceWriter(const std::string& path) {
  f_ = std::fopen(path.c_str(), "w");
  if (f_ != nullptr) std::fputs("[\n", f_);
}

TraceWriter::~TraceWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void TraceWriter::write(std::string_view name, std::uint64_t ts_us,
                        std::uint64_t dur_us, const Labels& labels) {
  if (f_ == nullptr) return;
  // Run-scoped labels ride on every span so one run's trace events join
  // against its metrics and progress JSONL by the same (run, suite) pair.
  Labels all = labels;
  for (auto& kv : run_labels()) all.push_back(std::move(kv));
  std::string args = "{";
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0) args.push_back(',');
    args += "\"" + all[i].first + "\":\"" + all[i].second + "\"";
  }
  args.push_back('}');
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(f_,
               "{\"name\":\"%.*s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
               "\"ts\":%llu,\"dur\":%llu,\"args\":%s},\n",
               static_cast<int>(name.size()), name.data(),
               static_cast<unsigned long long>(ts_us),
               static_cast<unsigned long long>(dur_us), args.c_str());
  events_.fetch_add(1, std::memory_order_relaxed);
}

void TraceWriter::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_ != nullptr) std::fflush(f_);
}

void set_trace_writer(TraceWriter* writer) {
  g_trace_writer.store(writer, std::memory_order_release);
}

TraceWriter* trace_writer() {
  return g_trace_writer.load(std::memory_order_acquire);
}

ObsSpan::ObsSpan(const char* name, Histogram* hist)
    : name_(name), hist_(hist), active_(enabled()) {
  if (active_) start_ns_ = clock_now_ns();
}

std::uint64_t ObsSpan::elapsed_us() const {
  if (!active_) return 0;
  const std::uint64_t now = clock_now_ns();
  return now > start_ns_ ? (now - start_ns_) / 1000 : 0;
}

ObsSpan::~ObsSpan() {
  if (!active_) return;
  const std::uint64_t dur_us = elapsed_us();
  if (hist_ != nullptr) hist_->observe(static_cast<double>(dur_us));
  if (TraceWriter* writer = trace_writer(); writer != nullptr) {
    writer->write(name_, start_ns_ / 1000, dur_us);
  }
}

}  // namespace fdqos::obs
