#include "obs/http_exporter.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/runs.hpp"

namespace fdqos::obs {
namespace {

constexpr std::size_t kMaxRequestBytes = 4096;  // a GET line + few headers
constexpr int kPollTimeoutMs = 250;             // stop() latency upper bound

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter() : HttpExporter(Options{}) {}

HttpExporter::HttpExporter(Options options) : options_(std::move(options)) {}

HttpExporter::~HttpExporter() { stop(); }

bool HttpExporter::start() {
  if (running()) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("obs: HttpExporter socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    std::perror("obs: HttpExporter bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    std::perror("obs: HttpExporter getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  bound_port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::listen(listen_fd_, 16) != 0 || !set_nonblocking(listen_fd_) ||
      ::pipe(pipe_fds) != 0) {
    std::perror("obs: HttpExporter listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    bound_port_ = 0;
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpExporter::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Nudge the poll loop awake; if the pipe is somehow full the loop still
  // notices `stopping_` within kPollTimeoutMs.
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = -1;
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
  bound_port_ = 0;
}

void HttpExporter::serve_loop() {
  std::vector<Connection> conns;
  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const Connection& conn : conns) {
      fds.push_back({conn.fd,
                     static_cast<short>(conn.ready ? POLLOUT : POLLIN), 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      char buf[16];
      while (::read(wake_read_fd_, buf, sizeof buf) > 0) {
      }
    }
    // Walk connections backwards so erasing doesn't shift unvisited fds;
    // fds[i + 2] corresponds to conns[i].
    for (std::size_t i = conns.size(); i-- > 0;) {
      const short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      Connection& conn = conns[i];
      bool keep = true;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !conn.ready) {
        keep = false;
      } else if (conn.ready) {
        keep = write_ready(conn);
      } else {
        keep = read_ready(conn);
      }
      if (!keep) {
        ::close(conn.fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    if ((fds[0].revents & POLLIN) != 0) {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        Connection conn;
        conn.fd = fd;
        if (conns.size() >= options_.max_connections) {
          conn.out = http_response(503, "Service Unavailable", "text/plain",
                                   "busy\n");
          conn.ready = true;
        }
        conns.push_back(std::move(conn));
      }
    }
  }
  for (const Connection& conn : conns) ::close(conn.fd);
}

bool HttpExporter::read_ready(Connection& conn) {
  char buf[1024];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      if (conn.in.size() > kMaxRequestBytes) return false;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error before a full request
  }
  // A request is complete at the header terminator; we only ever look at
  // the request line.
  const std::size_t end = conn.in.find("\r\n\r\n");
  if (end == std::string::npos) return true;  // keep reading
  const std::size_t line_end = conn.in.find("\r\n");
  conn.out = respond(conn.in.substr(0, line_end));
  conn.ready = true;
  requests_.fetch_add(1, std::memory_order_relaxed);
  return write_ready(conn);  // opportunistic immediate write
}

bool HttpExporter::write_ready(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return false;  // fully written -> close (Connection: close)
}

std::string HttpExporter::respond(const std::string& request_line) const {
  // "GET <path> HTTP/1.x" — anything else is a 400/405.
  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) {
    return http_response(400, "Bad Request", "text/plain", "bad request\n");
  }
  const std::string method = request_line.substr(0, sp1);
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  std::string path = sp2 == std::string::npos
                         ? request_line.substr(sp1 + 1)
                         : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  if (method != "GET") {
    return http_response(405, "Method Not Allowed", "text/plain",
                         "only GET\n");
  }
  if (path == "/metrics") {
    const Registry& reg =
        options_.registry != nullptr ? *options_.registry : Registry::global();
    return http_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         reg.to_prometheus());
  }
  if (path == "/healthz") {
    return http_response(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/runs" || path == "/runs/") {
    const std::string body = options_.runs_snapshot
                                 ? options_.runs_snapshot()
                                 : RunRegistry::global().to_json();
    return http_response(200, "OK", "application/json", body);
  }
  return http_response(404, "Not Found", "text/plain", "not found\n");
}

}  // namespace fdqos::obs
