#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::obs {
namespace {

// Doubles in expositions: integral values print without exponent or
// trailing zeros ("1000000"), everything else as shortest round-trip-ish
// "%.9g" ("34.5", "0.000123"). Non-finite values use the exposition
// format's canonical spellings.
std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  return buf;
}

// Prometheus text-format escaping. Label values escape exactly `\`, `"`
// and newline (the format defines no other sequences — escaping anything
// more would change the value); HELP text escapes only `\` and newline
// (quotes are legal there).
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// JSON string escaping for the JSONL snapshot — a superset of the
// Prometheus rules (control characters must be escaped for valid JSON).
std::string escape_json(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// JSON number: finite doubles render as-is, non-finite become null (JSON
// has no NaN/Inf literals).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return format_double(v);
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string render_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out.push_back(',');
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  return out;
}

void Gauge::add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

const std::array<double, Histogram::kBucketCount>& Histogram::bucket_bounds() {
  // 1-2-5 per decade over [1, 5e6]: with microsecond observations this
  // spans 1 µs .. 5 s before the overflow bucket.
  static const std::array<double, kBucketCount> kBounds = {
      1,    2,    5,    10,   20,   50,   100,  200,  500,  1000,
      2000, 5000, 1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6,  5e6};
  return kBounds;
}

void Histogram::observe(double v) {
  const auto& bounds = bucket_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lock(sketch_mu_);
    p50_.add(v);
    p95_.add(v);
    p99_.add(v);
  }
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  FDQOS_REQUIRE(i <= kBucketCount);
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::quantile_estimate(double q) const {
  std::lock_guard<std::mutex> lock(sketch_mu_);
  if (q == 0.5) return p50_.value();
  if (q == 0.95) return p95_.value();
  if (q == 0.99) return p99_.value();
  FDQOS_REQUIRE(!"unsupported histogram summary quantile");
  return 0.0;
}

Registry::Instrument& Registry::instrument(const std::string& name,
                                           const std::string& help,
                                           MetricType type,
                                           const Labels& labels) {
  FDQOS_REQUIRE(!name.empty());
  std::lock_guard<std::mutex> lock(mu_);
  auto [fam_it, fam_created] = families_.try_emplace(name);
  Family& family = fam_it->second;
  if (fam_created) {
    family.help = help;
    family.type = type;
  } else {
    FDQOS_REQUIRE(family.type == type);
  }
  auto [inst_it, inst_created] =
      family.instruments.try_emplace(render_labels(labels));
  Instrument& inst = inst_it->second;
  if (inst_created) {
    inst.labels = labels;
    std::sort(inst.labels.begin(), inst.labels.end());
    switch (type) {
      case MetricType::kCounter:
        inst.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        inst.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return inst;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  return *instrument(name, help, MetricType::kCounter, labels).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  return *instrument(name, help, MetricType::kGauge, labels).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help, const Labels& labels) {
  return *instrument(name, help, MetricType::kHistogram, labels).histogram;
}

std::size_t Registry::family_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + escape_help(family.help) + "\n";
    }
    out += "# TYPE " + name + " " + type_name(family.type) + "\n";
    for (const auto& [label_str, inst] : family.instruments) {
      const std::string braces =
          label_str.empty() ? "" : "{" + label_str + "}";
      switch (family.type) {
        case MetricType::kCounter:
          std::snprintf(line, sizeof line, "%s%s %llu\n", name.c_str(),
                        braces.c_str(),
                        static_cast<unsigned long long>(inst.counter->value()));
          out += line;
          break;
        case MetricType::kGauge:
          out += name + braces + " " + format_double(inst.gauge->value()) +
                 "\n";
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *inst.histogram;
          const std::string sep = label_str.empty() ? "" : ",";
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
            cumulative += h.bucket_count(i);
            out += name + "_bucket{" + label_str + sep + "le=\"" +
                   format_double(Histogram::bucket_bounds()[i]) + "\"} " +
                   std::to_string(cumulative) + "\n";
          }
          cumulative += h.bucket_count(Histogram::kBucketCount);
          out += name + "_bucket{" + label_str + sep + "le=\"+Inf\"} " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" + braces + " " + format_double(h.sum()) + "\n";
          out += name + "_count" + braces + " " + std::to_string(h.count()) +
                 "\n";
          break;
        }
      }
    }
    // Streaming quantile summaries ride along as their own gauge families
    // (`_p50` is not a legal sample suffix inside a histogram family, so
    // per the format these are separate metrics with their own TYPE).
    if (family.type == MetricType::kHistogram) {
      for (const double q : Histogram::kSummaryQuantiles) {
        const std::string suffix =
            q == 0.5 ? "_p50" : (q == 0.95 ? "_p95" : "_p99");
        out += "# HELP " + name + suffix + " Streaming P" + "\xc2\xb2" +
               " quantile estimate over " + name + " observations\n";
        out += "# TYPE " + name + suffix + " gauge\n";
        for (const auto& [label_str, inst] : family.instruments) {
          const std::string braces =
              label_str.empty() ? "" : "{" + label_str + "}";
          out += name + suffix + braces + " " +
                 format_double(inst.histogram->quantile_estimate(q)) + "\n";
        }
      }
    }
  }
  return out;
}

std::string Registry::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    for (const auto& [label_str, inst] : family.instruments) {
      std::string labels_json = "{";
      for (std::size_t i = 0; i < inst.labels.size(); ++i) {
        if (i > 0) labels_json.push_back(',');
        labels_json += "\"" + escape_json(inst.labels[i].first) + "\":\"" +
                       escape_json(inst.labels[i].second) + "\"";
      }
      labels_json.push_back('}');
      out += "{\"metric\":\"" + name + "\",\"type\":\"" +
             type_name(family.type) + "\",\"labels\":" + labels_json;
      switch (family.type) {
        case MetricType::kCounter:
          out += ",\"value\":" + std::to_string(inst.counter->value());
          break;
        case MetricType::kGauge:
          out += ",\"value\":" + json_number(inst.gauge->value());
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *inst.histogram;
          out += ",\"count\":" + std::to_string(h.count()) +
                 ",\"sum\":" + json_number(h.sum()) +
                 ",\"p50\":" + json_number(h.quantile_estimate(0.5)) +
                 ",\"p95\":" + json_number(h.quantile_estimate(0.95)) +
                 ",\"p99\":" + json_number(h.quantile_estimate(0.99)) +
                 ",\"buckets\":[";
          for (std::size_t i = 0; i <= Histogram::kBucketCount; ++i) {
            if (i > 0) out.push_back(',');
            const std::string le =
                i < Histogram::kBucketCount
                    ? format_double(Histogram::bucket_bounds()[i])
                    : std::string("\"+Inf\"");
            out += "{\"le\":" + le +
                   ",\"n\":" + std::to_string(h.bucket_count(i)) + "}";
          }
          out.push_back(']');
          break;
        }
      }
      out += "}\n";
    }
  }
  return out;
}

bool Registry::save_prometheus(const std::string& path) const {
  return write_file(path, to_prometheus());
}

bool Registry::save_jsonl(const std::string& path) const {
  return write_file(path, to_jsonl());
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace fdqos::obs
