#include "obs/progress.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace fdqos::obs {
namespace {

std::string jsonl_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

JsonlSink::~JsonlSink() { close(); }

bool JsonlSink::open(const std::string& path) {
  close();
  // O_APPEND is the atomicity mechanism: every write(2) lands at EOF as
  // one unit regardless of who else holds the fd.
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  return fd_ >= 0;
}

void JsonlSink::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool JsonlSink::write_line(std::string_view line) {
  if (fd_ < 0) return false;
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line);
  buf.push_back('\n');
  ssize_t n;
  do {
    n = ::write(fd_, buf.data(), buf.size());
  } while (n < 0 && errno == EINTR);
  if (n != static_cast<ssize_t>(buf.size())) return false;
  lines_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ProgressEmitter::ProgressEmitter() : ProgressEmitter(Options()) {}

ProgressEmitter::ProgressEmitter(Options options)
    : options_(std::move(options)) {
  FDQOS_REQUIRE(options_.interval_s > 0.0);
}

bool ProgressEmitter::due() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!emitted_once_) return true;
  const std::uint64_t now = clock_now_ns();
  const auto interval_ns =
      static_cast<std::uint64_t>(options_.interval_s * 1e9);
  return now - last_emit_ns_ >= interval_ns;
}

void ProgressEmitter::emit(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t now = clock_now_ns();

  // Assemble the whole stderr line first; one fwrite means two emitters
  // racing on the same stream still produce whole lines.
  std::string line = options_.prefix + " " + buf + "\n";
  std::FILE* out = options_.out != nullptr ? options_.out : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);

  if (options_.jsonl != nullptr && options_.jsonl->is_open()) {
    std::string rec = "{";
    if (!options_.run_id.empty()) {
      rec += "\"run\":\"" + jsonl_escape(options_.run_id) + "\",";
    }
    rec += "\"t_ns\":" + std::to_string(now) +
           ",\"seq\":" + std::to_string(emitted_ + 1) + ",\"msg\":\"" +
           jsonl_escape(buf) + "\"}";
    options_.jsonl->write_line(rec);
  }

  last_emit_ns_ = now;
  emitted_once_ = true;
  ++emitted_;
}

std::uint64_t ProgressEmitter::lines_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

}  // namespace fdqos::obs
