#include "obs/progress.hpp"

#include <cstdarg>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace fdqos::obs {

ProgressEmitter::ProgressEmitter() : ProgressEmitter(Options()) {}

ProgressEmitter::ProgressEmitter(Options options)
    : options_(std::move(options)) {
  FDQOS_REQUIRE(options_.interval_s > 0.0);
}

bool ProgressEmitter::due() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!emitted_once_) return true;
  const std::uint64_t now = clock_now_ns();
  const auto interval_ns =
      static_cast<std::uint64_t>(options_.interval_s * 1e9);
  return now - last_emit_ns_ >= interval_ns;
}

void ProgressEmitter::emit(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* out = options_.out != nullptr ? options_.out : stderr;
  std::fprintf(out, "%s %s\n", options_.prefix.c_str(), buf);
  std::fflush(out);

  last_emit_ns_ = clock_now_ns();
  emitted_once_ = true;
  ++emitted_;
}

std::uint64_t ProgressEmitter::lines_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

}  // namespace fdqos::obs
