#include "sim/event_queue.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::sim {

EventHandle EventQueue::schedule(TimePoint when, EventFn fn) {
#ifndef NDEBUG
  if (when < last_popped_) {
    std::fprintf(stderr,
                 "fdqos: event queue '%s': event scheduled in the past "
                 "(when=%s, latest executed=%s) — the scheduling layer must "
                 "never target a timestamp behind the clock\n",
                 name_.c_str(), when.to_string().c_str(),
                 last_popped_.to_string().c_str());
  }
#endif
  FDQOS_DASSERT(when >= last_popped_);
  auto node = std::make_shared<Node>();
  node->time = when;
  node->seq = next_seq_++;
  node->fn = std::move(fn);
  heap_.push(node);
  ++live_count_;
  return EventHandle{node, this};
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && heap_.top()->cancelled) {
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() const {
  // const_cast-free variant: scan by copying is wasteful; instead rely on
  // drop_cancelled_head having been called by mutating operations and do a
  // lazy check here over the (possibly cancelled) head.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_head();
  if (heap_.empty()) return TimePoint::max();
  return heap_.top()->time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  FDQOS_REQUIRE(!heap_.empty());
  auto node = heap_.top();
  heap_.pop();
  --live_count_;
  // The heap guarantees monotone pops; track the frontier so schedule() can
  // reject events that would land behind it (see header).
  last_popped_ = node->time;
  return Fired{node->time, std::move(node->fn)};
}

bool EventHandle::cancel() {
  auto node = node_.lock();
  if (!node || node->cancelled) return false;
  node->cancelled = true;
  node->fn = nullptr;  // release captured resources eagerly
  if (queue_ != nullptr) --queue_->live_count_;
  return true;
}

bool EventHandle::pending() const {
  auto node = node_.lock();
  return node && !node->cancelled;
}

TimePoint EventHandle::time() const {
  auto node = node_.lock();
  if (!node || node->cancelled) return TimePoint::max();
  return node->time;
}

}  // namespace fdqos::sim
