#include "sim/horizon.hpp"

#include <limits>

#include "common/assert.hpp"

namespace fdqos::sim {

TimePoint saturating_add(TimePoint t, Duration d) {
  FDQOS_ASSERT(d >= Duration::zero());
  const std::int64_t tn = t.count_nanos();
  const std::int64_t dn = d.count_nanos();
  if (tn > std::numeric_limits<std::int64_t>::max() - dn) {
    return TimePoint::max();
  }
  return t + d;
}

namespace {

// Saturating lookahead composition for the path closure.
Duration saturating_sum(Duration a, Duration b) {
  if (a == Duration::max() || b == Duration::max()) return Duration::max();
  const std::int64_t an = a.count_nanos();
  const std::int64_t bn = b.count_nanos();
  if (an > std::numeric_limits<std::int64_t>::max() - bn) {
    return Duration::max();
  }
  return a + b;
}

}  // namespace

ChannelGraph::ChannelGraph(std::size_t lp_count)
    : n_(lp_count), la_(lp_count * lp_count, Duration::max()) {
  FDQOS_REQUIRE(lp_count > 0);
}

void ChannelGraph::set_lookahead(std::size_t src, std::size_t dst,
                                 Duration lookahead) {
  FDQOS_REQUIRE(src < n_);
  FDQOS_REQUIRE(dst < n_);
  FDQOS_REQUIRE(src != dst);  // local events need no channel
  FDQOS_REQUIRE(lookahead >= Duration::zero());
  Duration& cell = la_[src * n_ + dst];
  cell = std::min(cell, lookahead);
  finalized_ = false;
}

void ChannelGraph::finalize() {
  if (finalized_) return;
  // Min-plus closure: a message can reach i via a relay k only at the cost
  // of both hops' lookaheads, but a small relayed lookahead still bounds i.
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      const Duration ik = la_[i * n_ + k];
      if (ik == Duration::max()) continue;
      for (std::size_t j = 0; j < n_; ++j) {
        if (i == j) continue;
        const Duration via = saturating_sum(ik, la_[k * n_ + j]);
        Duration& cell = la_[i * n_ + j];
        cell = std::min(cell, via);
      }
    }
  }
  finalized_ = true;
}

bool ChannelGraph::has_path(std::size_t src, std::size_t dst) const {
  return path_lookahead(src, dst) != Duration::max();
}

Duration ChannelGraph::path_lookahead(std::size_t src, std::size_t dst) const {
  FDQOS_REQUIRE(src < n_);
  FDQOS_REQUIRE(dst < n_);
  FDQOS_ASSERT(finalized_);
  return la_[src * n_ + dst];
}

void ChannelGraph::bounds(const std::vector<TimePoint>& next,
                          std::vector<TimePoint>& bounds) const {
  FDQOS_REQUIRE(next.size() == n_);
  FDQOS_ASSERT(finalized_);
  bounds.assign(n_, TimePoint::max());
  for (std::size_t i = 0; i < n_; ++i) {
    TimePoint bound = TimePoint::max();
    for (std::size_t j = 0; j < n_; ++j) {
      if (j == i) continue;
      const Duration la = la_[j * n_ + i];
      if (la == Duration::max()) continue;  // j can never reach i
      bound = std::min(bound, saturating_add(next[j], la));
    }
    bounds[i] = bound;
  }
}

}  // namespace fdqos::sim
