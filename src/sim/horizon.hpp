// Conservative synchronization horizons for the parallel engine.
//
// A ChannelGraph records, for every directed LP channel src→dst, a
// *lookahead*: a lower bound on how far ahead of src's clock any message it
// emits on that channel can be timestamped. For the QoS experiment the
// heartbeat channel's lookahead is the link's minimum one-way delay
// (DelayModel::min_delay — ~192 ms on the Table-4 Italy→Japan calibration),
// conservatively shrunk by faultx clock jumps (fault_models.hpp).
//
// Given each LP's next-event time n_j, LP i may safely execute every event
// with timestamp strictly below
//
//     bound_i = min over j with a path j⇝i of ( n_j + lookahead*(j, i) )
//
// where lookahead* is the minimum *path* lookahead (finalize() closes the
// direct-channel matrix under path composition): before executing past
// bound_i, LP i would have to receive a message that no LP can produce yet.
// TimePoint::max() when nothing constrains i. See docs/pdes.md for the
// safety argument and the zero-lookahead stall rule.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace fdqos::sim {

// TimePoint::max() (and near-max next-event times) must not wrap when a
// lookahead is added; saturate at TimePoint::max() instead.
TimePoint saturating_add(TimePoint t, Duration d);

class ChannelGraph {
 public:
  explicit ChannelGraph(std::size_t lp_count);

  std::size_t size() const { return n_; }

  // Declare the directed channel src→dst with the given lookahead (>= 0).
  // Declaring a channel twice keeps the smaller (more conservative) value.
  void set_lookahead(std::size_t src, std::size_t dst, Duration lookahead);

  // Close the matrix under path composition (min-plus / Floyd–Warshall), so
  // bounds() accounts for messages relayed through intermediate LPs. Must
  // run after the last set_lookahead; idempotent.
  void finalize();

  bool finalized() const { return finalized_; }
  bool has_path(std::size_t src, std::size_t dst) const;
  // Minimum path lookahead src⇝dst; Duration::max() when no path exists.
  Duration path_lookahead(std::size_t src, std::size_t dst) const;

  // Safe execution bound per LP given every LP's next-event time (see file
  // comment). `bounds` is resized to lp_count.
  void bounds(const std::vector<TimePoint>& next,
              std::vector<TimePoint>& bounds) const;

 private:
  std::size_t n_;
  bool finalized_ = false;
  // Dense min-lookahead matrix, row-major [src * n_ + dst];
  // Duration::max() = no channel/path.
  std::vector<Duration> la_;
};

}  // namespace fdqos::sim
