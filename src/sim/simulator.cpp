#include "sim/simulator.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::sim {

void Simulator::set_name(std::string name) {
  name_ = std::move(name);
  queue_.set_name(name_);
}

EventHandle Simulator::schedule_at(TimePoint when, EventFn fn) {
  if (when < now_) {
    std::fprintf(stderr,
                 "fdqos: simulator '%s': schedule_at targets the past "
                 "(when=%s < now=%s)\n",
                 name_.c_str(), when.to_string().c_str(),
                 now_.to_string().c_str());
  }
  FDQOS_REQUIRE(when >= now_);
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::schedule_after(Duration delay, EventFn fn) {
  FDQOS_REQUIRE(delay >= Duration::zero());
  return queue_.schedule(now_ + delay, std::move(fn));
}

void Simulator::execute(EventQueue::Fired fired) {
  // The queue pops in timestamp order and schedule_at rejects past targets,
  // so a regressing event means the queue was fed behind the clock's back
  // (e.g. a raw EventQueue::schedule or a cross-LP message that violated
  // its channel's lookahead). Catch it here instead of silently executing
  // the event at a time it was never scheduled for.
#ifndef NDEBUG
  if (fired.time < now_) {
    std::fprintf(stderr,
                 "fdqos: simulator '%s': event executes in the past "
                 "(event time=%s, clock=%s)\n",
                 name_.c_str(), fired.time.to_string().c_str(),
                 now_.to_string().c_str());
  }
#endif
  FDQOS_DASSERT(fired.time >= now_);
  now_ = fired.time;
  fired.fn();
  ++executed_;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    execute(queue_.pop());
    ++count;
  }
  // Advance the clock to the deadline even if no event lands exactly there,
  // so consecutive run_until calls observe monotonic time.
  if (now_ < deadline) now_ = deadline;
  return count;
}

std::uint64_t Simulator::run_before(TimePoint bound) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() < bound) {
    execute(queue_.pop());
    ++count;
  }
  return count;
}

void Simulator::advance_to(TimePoint to) {
  FDQOS_REQUIRE(to >= now_);
  now_ = to;
}

std::uint64_t Simulator::run() { return run_until(TimePoint::max()); }

bool Simulator::step() {
  if (queue_.empty()) return false;
  execute(queue_.pop());
  return true;
}

}  // namespace fdqos::sim
