#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace fdqos::sim {

EventHandle Simulator::schedule_at(TimePoint when, EventFn fn) {
  FDQOS_REQUIRE(when >= now_);
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::schedule_after(Duration delay, EventFn fn) {
  FDQOS_REQUIRE(delay >= Duration::zero());
  return queue_.schedule(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto fired = queue_.pop();
    now_ = fired.time;
    fired.fn();
    ++executed_;
    ++count;
  }
  // Advance the clock to the deadline even if no event lands exactly there,
  // so consecutive run_until calls observe monotonic time.
  if (now_ < deadline) now_ = deadline;
  return count;
}

std::uint64_t Simulator::run() { return run_until(TimePoint::max()); }

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  fired.fn();
  ++executed_;
  return true;
}

}  // namespace fdqos::sim
