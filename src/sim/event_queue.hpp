// Deterministic pending-event set for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which makes simulations
// bit-reproducible regardless of heap internals. Cancellation is O(1)
// (tombstone flag) because timeout-based failure detectors cancel timers on
// every heartbeat.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace fdqos::sim {

using EventFn = std::function<void()>;

class EventHandle;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Diagnostic label used by the past-event debug check ("sim", "lp2/...").
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  // Schedule `fn` to fire at `when`; the handle allows cancellation.
  // Debug builds abort when `when` lies behind the latest popped timestamp:
  // such an event would otherwise silently execute "in the past" on the next
  // pop, corrupting every downstream measurement. (Simulator::schedule_at
  // already rejects when < now(); this check also covers direct EventQueue
  // users and the LP mailbox drain.)
  EventHandle schedule(TimePoint when, EventFn fn);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Timestamp of the earliest live event; TimePoint::max() when empty.
  TimePoint next_time() const;

  // Pop and return the earliest live event. Precondition: !empty().
  struct Fired {
    TimePoint time;
    EventFn fn;
  };
  Fired pop();

 private:
  friend class EventHandle;

  struct Node {
    TimePoint time;
    std::uint64_t seq;
    EventFn fn;
    bool cancelled = false;
  };
  struct Compare {
    bool operator()(const std::shared_ptr<Node>& a,
                    const std::shared_ptr<Node>& b) const {
      if (a->time != b->time) return a->time > b->time;  // min-heap
      return a->seq > b->seq;
    }
  };

  void drop_cancelled_head();

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      Compare>
      heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  std::string name_ = "sim";
  TimePoint last_popped_ = TimePoint::min();  // updated by pop()
};

// Weak handle to a scheduled event; cancel() is idempotent and safe after
// the event fired or the queue died.
class EventHandle {
 public:
  EventHandle() = default;

  // Returns true if the event was live and is now cancelled.
  bool cancel();
  bool pending() const;
  // Scheduled fire time of a live event; TimePoint::max() once the event
  // fired or was cancelled. Lets timer owners (e.g. the DetectorBank's
  // coalesced expiry queue) compare an armed deadline against a new one
  // without mirroring the timestamp themselves.
  TimePoint time() const;

 private:
  friend class EventQueue;
  EventHandle(std::weak_ptr<EventQueue::Node> node, EventQueue* queue)
      : node_(std::move(node)), queue_(queue) {}
  std::weak_ptr<EventQueue::Node> node_;
  EventQueue* queue_ = nullptr;
};

}  // namespace fdqos::sim
