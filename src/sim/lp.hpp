// Logical process: one shard of a parallel discrete-event simulation.
//
// An Lp IS-A Simulator — it owns a private EventQueue and a local virtual
// clock, so every existing layer (Heartbeater, SimCrash, DetectorBank, ...)
// wires onto it unchanged. What it adds is a thread-safe *mailbox* for
// timestamped cross-LP messages: a source LP executing inside a safe window
// posts events into the destination's mailbox, and the coordinator drains
// every mailbox at the next window boundary, in the deterministic order
// (arrival time, source LP id, per-source sequence). Combined with the
// EventQueue's insertion-order tie-break, event execution order — and hence
// every report byte — is independent of thread scheduling and of the LP
// count. See docs/pdes.md.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace fdqos::sim {

class Lp : public Simulator {
 public:
  Lp(std::size_t id, std::string role);

  std::size_t id() const { return id_; }

  // Thread-safe: called from whichever pool thread is executing the source
  // LP's window. `when` must respect the channel's lookahead (the
  // coordinator's post() wrapper asserts it in debug builds).
  void post(std::size_t src_lp, TimePoint when, EventFn fn);

  // Single-threaded (between windows): move pending mail into the local
  // event queue in (when, src_lp, per-source order) order. The local queue's
  // sequence tie-break then preserves exactly this order at equal
  // timestamps. Returns the number of events admitted.
  std::size_t drain_mailbox();

  bool has_mail() const;
  // Messages ever posted into this LP's mailbox (cross-LP traffic stat).
  std::uint64_t mail_received() const;

 private:
  struct Mail {
    TimePoint when;
    std::size_t src;
    std::uint64_t seq;  // monotone per source (posts from one source are
                        // sequential, so one counter under the lock works)
    EventFn fn;
  };

  std::size_t id_;

  mutable std::mutex mail_mu_;
  std::vector<Mail> mail_;
  std::uint64_t next_mail_seq_ = 0;
  std::uint64_t mail_received_ = 0;
};

}  // namespace fdqos::sim
