#include "sim/parallel_simulator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "exec/thread_pool.hpp"

namespace fdqos::sim {

ParallelSimulator::ParallelSimulator(Options options)
    : graph_(options.lps == 0 ? 1 : options.lps),
      jobs_(options.jobs == 0 ? exec::default_jobs() : options.jobs),
      max_window_(options.max_window) {
  FDQOS_REQUIRE(options.lps > 0);
  FDQOS_REQUIRE(options.max_window >= Duration::zero());
  lps_.reserve(options.lps);
  for (std::size_t i = 0; i < options.lps; ++i) {
    lps_.push_back(std::make_unique<Lp>(
        i, i < options.roles.size() ? options.roles[i] : "lp"));
  }
}

ParallelSimulator::~ParallelSimulator() = default;

Lp& ParallelSimulator::lp(std::size_t i) {
  FDQOS_REQUIRE(i < lps_.size());
  return *lps_[i];
}

void ParallelSimulator::set_lookahead(std::size_t src, std::size_t dst,
                                      Duration lookahead) {
  graph_.set_lookahead(src, dst, lookahead);
}

void ParallelSimulator::post(std::size_t src, std::size_t dst, TimePoint when,
                             EventFn fn) {
  FDQOS_REQUIRE(src < lps_.size());
  FDQOS_REQUIRE(dst < lps_.size());
#ifndef NDEBUG
  // The conservative contract: a message on src→dst must be timestamped at
  // least the channel's lookahead past src's clock. (Checkable only once
  // the graph is closed, i.e. once the run started; pre-run seeding posts
  // are unconstrained — every clock still sits at the origin.)
  if (graph_.finalized()) {
    const Duration la = graph_.path_lookahead(src, dst);
    FDQOS_ASSERT(la != Duration::max() &&
                 "cross-LP post on a channel never declared via "
                 "set_lookahead");
    FDQOS_ASSERT(when >= saturating_add(lps_[src]->now(), la) &&
                 "cross-LP post violates its channel's lookahead promise");
  }
#endif
  lps_[dst]->post(src, when, std::move(fn));
}

std::uint64_t ParallelSimulator::run_until(TimePoint deadline) {
  graph_.finalize();
  const std::size_t n = lps_.size();
  const TimePoint past_deadline = saturating_add(deadline, Duration::nanos(1));
  std::uint64_t total = 0;

  next_.resize(n);
  executed_.assign(n, 0);

  for (;;) {
    for (auto& lp : lps_) lp->drain_mailbox();

    TimePoint gmin = TimePoint::max();
    for (std::size_t i = 0; i < n; ++i) {
      next_[i] = lps_[i]->next_event_time();
      gmin = std::min(gmin, next_[i]);
    }
    if (gmin > deadline) break;

    graph_.bounds(next_, bounds_);
    const TimePoint cap = max_window_ > Duration::zero()
                              ? saturating_add(gmin, max_window_)
                              : TimePoint::max();
    runnable_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      bounds_[i] = std::min({bounds_[i], past_deadline, cap});
      if (next_[i] < bounds_[i]) runnable_.push_back(i);
    }
    if (runnable_.empty()) {
      // Zero-lookahead stall: every channel into the minimum's holder has
      // collapsed (e.g. faultx ate the link floor). Grant exactly the
      // minimum timestamp to its lowest-id holder — deterministic, safe
      // (nobody can produce an event below gmin), strictly progressing.
      for (std::size_t i = 0; i < n; ++i) {
        if (next_[i] == gmin) {
          bounds_[i] = saturating_add(gmin, Duration::nanos(1));
          runnable_.push_back(i);
          break;
        }
      }
      ++stats_.stalls;
    }
    FDQOS_ASSERT(!runnable_.empty());

    Duration window = Duration::zero();
    for (const std::size_t i : runnable_) {
      if (bounds_[i] == TimePoint::max()) {
        window = Duration::max();  // unbounded grant (no cap, no channel in)
        break;
      }
      window = std::max(window, bounds_[i] - gmin);
    }
    stats_.last_window = window;
    stats_.max_window_seen = std::max(stats_.max_window_seen, window);
    ++stats_.rounds;

    if (jobs_ > 1 && runnable_.size() > 1) {
      if (pool_ == nullptr) pool_ = std::make_unique<exec::ThreadPool>(jobs_);
      pool_->parallel_for(runnable_.size(), [&](std::size_t k) {
        const std::size_t i = runnable_[k];
        executed_[i] = lps_[i]->run_before(bounds_[i]);
      });
    } else {
      for (const std::size_t i : runnable_) {
        executed_[i] = lps_[i]->run_before(bounds_[i]);
      }
    }
    for (const std::size_t i : runnable_) total += executed_[i];
  }

  // Settle every clock on the deadline (mirrors Simulator::run_until).
  for (auto& lp : lps_) {
    if (lp->now() < deadline) lp->advance_to(deadline);
  }
  stats_.events += total;
  stats_.cross_lp_messages = 0;
  for (const auto& lp : lps_) stats_.cross_lp_messages += lp->mail_received();
  return total;
}

}  // namespace fdqos::sim
