// Conservative parallel discrete-event simulation core (PDES).
//
// The simulation is partitioned into logical processes (sim/lp.hpp), each
// owning a private EventQueue and local virtual clock. The coordinator runs
// synchronous safe windows:
//
//   1. drain every LP mailbox (deterministic (time, src, seq) order);
//   2. read every LP's next-event time n_j;
//   3. compute per-LP bounds from the channel lookaheads (sim/horizon.hpp):
//      LP i may execute all events with timestamp < bound_i
//        = min over j⇝i of (n_j + path_lookahead(j, i));
//   4. execute every runnable LP's window on the exec:: pool, barrier;
//   5. repeat until the global minimum passes the deadline.
//
// When every channel into the global-minimum LP has zero lookahead (e.g. a
// faultx clock jump consumed the whole link floor), no window is non-empty;
// the coordinator then grants exactly the minimum timestamp to the lowest-id
// LP holding it (a *stall* — counted, never wrong, strictly progressing).
//
// Determinism: window bounds are a pure function of queue states, mailbox
// drains are order-stable, and each LP's queue breaks equal timestamps by
// insertion order — so event execution order, and every report byte, is
// identical for any jobs value and any LP partition of the same workload.
// The jobs=1 path runs windows inline on the calling thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sim/horizon.hpp"
#include "sim/lp.hpp"

namespace fdqos::exec {
class ThreadPool;
}

namespace fdqos::sim {

class ParallelSimulator {
 public:
  struct Options {
    std::size_t lps = 1;
    // Worker threads executing LP windows (counts the caller; 1 = inline
    // serial execution, 0 = exec::default_jobs()). Output is identical at
    // every value.
    std::size_t jobs = 1;
    // Cap on how far past the global minimum any window may reach. Bounds
    // coordinator memory (mail backlog) and keeps LPs loosely coupled in
    // wall time; zero = uncapped (a source LP with no incoming channel then
    // runs to the deadline in its first window). Never affects results.
    Duration max_window = Duration::seconds(10);
    // Role labels per LP id (optional; pads with "lp" when short).
    std::vector<std::string> roles;
  };

  struct Stats {
    std::uint64_t rounds = 0;       // safe-window advances
    std::uint64_t stalls = 0;       // zero-lookahead minimum grants
    std::uint64_t events = 0;       // events executed across all LPs
    std::uint64_t cross_lp_messages = 0;
    Duration last_window = Duration::zero();  // widest grant, last round
    Duration max_window_seen = Duration::zero();
  };

  explicit ParallelSimulator(Options options);
  ~ParallelSimulator();

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  std::size_t lp_count() const { return lps_.size(); }
  Lp& lp(std::size_t i);

  // Declare the directed channel src→dst (see ChannelGraph). All channels
  // must be declared before the first run_until.
  void set_lookahead(std::size_t src, std::size_t dst, Duration lookahead);

  // Post a cross-LP event: called from inside src's executing window (or
  // before the run starts). Debug builds verify `when` respects the
  // channel's conservative promise.
  void post(std::size_t src, std::size_t dst, TimePoint when, EventFn fn);

  // Run every LP until its queue drains or `deadline` passes (events at
  // exactly `deadline` still fire), then settle all clocks on `deadline`.
  // Returns the number of events executed.
  std::uint64_t run_until(TimePoint deadline);

  const Stats& stats() const { return stats_; }

 private:
  std::vector<std::unique_ptr<Lp>> lps_;
  ChannelGraph graph_;
  std::size_t jobs_;
  Duration max_window_;
  std::unique_ptr<exec::ThreadPool> pool_;  // lazily built when jobs_ > 1
  Stats stats_;

  // Scratch buffers reused across rounds.
  std::vector<TimePoint> next_;
  std::vector<TimePoint> bounds_;
  std::vector<std::size_t> runnable_;
  std::vector<std::uint64_t> executed_;
};

}  // namespace fdqos::sim
