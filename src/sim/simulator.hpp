// Discrete-event simulator with virtual time.
//
// The QoS experiment covers 13 runs × 10 000 s of virtual time; executing it
// in virtual time makes the full paper reproduction run in seconds and makes
// every run exactly repeatable from its seed. The same layer code also runs
// against the real UDP transport (see net/udp_transport.hpp) — the Neko
// property the experimental architecture depends on.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace fdqos::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  EventHandle schedule_at(TimePoint when, EventFn fn);
  EventHandle schedule_after(Duration delay, EventFn fn);

  // Run until the queue drains or `deadline` passes (events at exactly
  // `deadline` still fire). Returns the number of events executed.
  std::uint64_t run_until(TimePoint deadline);

  // Run until the queue is completely drained.
  std::uint64_t run();

  // Execute at most one event; returns false when none is pending.
  bool step();

  std::uint64_t executed_events() const { return executed_; }
  std::size_t pending_events() const { return queue_.size(); }

  // Timestamp of the earliest pending event; TimePoint::max() when idle.
  // Used by the real-time driver to size its poll timeout.
  TimePoint next_event_time() const { return queue_.next_time(); }

 private:
  EventQueue queue_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t executed_ = 0;
};

}  // namespace fdqos::sim
