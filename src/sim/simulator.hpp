// Discrete-event simulator with virtual time.
//
// The QoS experiment covers 13 runs × 10 000 s of virtual time; executing it
// in virtual time makes the full paper reproduction run in seconds and makes
// every run exactly repeatable from its seed. The same layer code also runs
// against the real UDP transport (see net/udp_transport.hpp) — the Neko
// property the experimental architecture depends on.
//
// Two engines drive this queue: the classic sequential loop below, and the
// conservative parallel engine in parallel_simulator.hpp, whose logical
// processes (sim/lp.hpp) each own one Simulator and advance it in safe
// windows (run_before). Reports are byte-identical between the two; see
// docs/pdes.md.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace fdqos::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  // Diagnostic label for the past-event checks ("sim" by default; LPs use
  // "lp<i>/<role>"), so an abort names the offending simulator instance.
  void set_name(std::string name);
  const std::string& name() const { return name_; }

  EventHandle schedule_at(TimePoint when, EventFn fn);
  EventHandle schedule_after(Duration delay, EventFn fn);

  // Run until the queue drains or `deadline` passes (events at exactly
  // `deadline` still fire). Returns the number of events executed.
  std::uint64_t run_until(TimePoint deadline);

  // Conservative-window variant: execute every event with timestamp
  // strictly below `bound` and leave the clock at the last executed event
  // (not at `bound` — a later safe window may still deliver events at
  // timestamps in [now, bound)). This is the primitive the parallel engine
  // grants one LP per safe window; see docs/pdes.md.
  std::uint64_t run_before(TimePoint bound);

  // Advance the clock with no event execution; `to` must not lie in the
  // past. The parallel engine uses this to settle every LP's clock on the
  // common deadline after the last window, mirroring run_until's "advance
  // even if no event lands exactly there" contract.
  void advance_to(TimePoint to);

  // Run until the queue is completely drained.
  std::uint64_t run();

  // Execute at most one event; returns false when none is pending.
  bool step();

  std::uint64_t executed_events() const { return executed_; }
  std::size_t pending_events() const { return queue_.size(); }

  // Timestamp of the earliest pending event; TimePoint::max() when idle.
  // Used by the real-time driver to size its poll timeout, and by the
  // parallel engine to compute safe-window bounds.
  TimePoint next_event_time() const { return queue_.next_time(); }

 private:
  void execute(EventQueue::Fired fired);

  EventQueue queue_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t executed_ = 0;
  std::string name_ = "sim";
};

}  // namespace fdqos::sim
