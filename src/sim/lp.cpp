#include "sim/lp.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fdqos::sim {

Lp::Lp(std::size_t id, std::string role) : id_(id) {
  set_name("lp" + std::to_string(id) + "/" + std::move(role));
}

void Lp::post(std::size_t src_lp, TimePoint when, EventFn fn) {
  std::lock_guard<std::mutex> lock(mail_mu_);
  mail_.push_back(Mail{when, src_lp, next_mail_seq_++, std::move(fn)});
  ++mail_received_;
}

std::size_t Lp::drain_mailbox() {
  std::vector<Mail> pending;
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    pending.swap(mail_);
  }
  if (pending.empty()) return 0;
  // (when, src, seq): seq values are assigned under the mailbox lock in
  // nondeterministic global order, but they are monotone per source, and the
  // source id breaks every cross-source tie first — so this sort (and the
  // schedule order below) is a pure function of what each LP posted.
  std::sort(pending.begin(), pending.end(), [](const Mail& a, const Mail& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (auto& mail : pending) {
    // The conservative bound guarantees no mail arrives behind the local
    // clock; a violation here means a channel's lookahead was overstated.
    FDQOS_DASSERT(mail.when >= now());
    schedule_at(mail.when, std::move(mail.fn));
  }
  return pending.size();
}

bool Lp::has_mail() const {
  std::lock_guard<std::mutex> lock(mail_mu_);
  return !mail_.empty();
}

std::uint64_t Lp::mail_received() const {
  std::lock_guard<std::mutex> lock(mail_mu_);
  return mail_received_;
}

}  // namespace fdqos::sim
