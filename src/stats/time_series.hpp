// Timestamped sample series with CSV export.
//
// The NekoStat-analog observers append (time, value) points here; experiment
// reports and the trace tooling consume them.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "stats/running_stats.hpp"

namespace fdqos::stats {

class TimeSeries {
 public:
  struct Point {
    TimePoint time;
    double value;
  };

  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(TimePoint t, double value);
  void reserve(std::size_t n) { points_.reserve(n); }

  const std::string& name() const { return name_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Point& operator[](std::size_t i) const { return points_[i]; }
  std::span<const Point> points() const { return points_; }

  // Values only, in insertion order.
  std::vector<double> values() const;

  Summary summarize() const;

  // "time_s,value" lines; `header` controls the leading column-name row.
  std::string to_csv(bool header = true) const;
  // Append to a file (creates it if missing); returns false on I/O error.
  bool save_csv(const std::string& path) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace fdqos::stats
