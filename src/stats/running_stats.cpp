#include "stats/running_stats.hpp"

#include <algorithm>
#include <cmath>

namespace fdqos::stats {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::min() const {
  return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::max() const {
  return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
}

Summary RunningStats::summary() const {
  Summary s;
  s.count = n_;
  s.mean = mean();
  s.variance = variance();
  s.stddev = stddev();
  s.min = min();
  s.max = max();
  s.sum = sum_;
  return s;
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace fdqos::stats
