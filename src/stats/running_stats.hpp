// Single-pass summary statistics (Welford's algorithm).
//
// Used everywhere an unbounded stream must be summarized without storing it:
// QoS metric accumulation, WAN link characterization, predictor-error
// tracking. Numerically stable for long runs (the QoS experiment feeds
// hundreds of thousands of samples).
#pragma once

#include <cstdint>
#include <limits>

namespace fdqos::stats {

struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // sample variance (n-1 denominator)
  double stddev = 0.0;
  double min = std::numeric_limits<double>::quiet_NaN();
  double max = std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
};

class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1). Zero when fewer than two samples.
  double variance() const;
  double stddev() const;
  // Population variance (n). Zero when empty.
  double population_variance() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  // Sum of squared deviations from the mean: Σ(x_i - x̄)².
  double sum_squared_deviations() const { return m2_; }

  Summary summary() const;

  // Half-width of the (approximately) 95% normal confidence interval of the
  // mean. Zero when fewer than two samples.
  double ci95_halfwidth() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace fdqos::stats
