// Fixed-bin histogram with under/overflow buckets and ASCII rendering.
//
// Used to characterize delay distributions (Table 4 experiment) and to
// inspect detection-time distributions beyond the mean/max the paper plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fdqos::stats {

class Histogram {
 public:
  // [lo, hi) split into `bins` equal-width buckets.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  // Lower edge of bin i.
  double bin_lower(std::size_t i) const;
  double bin_width() const { return width_; }

  // Fraction of samples at or below x (linear interpolation inside a bin).
  double cdf(double x) const;
  // Approximate quantile from the binned data, q in [0, 1].
  double quantile(double q) const;

  // Multi-line ASCII bar rendering (for experiment logs).
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace fdqos::stats
