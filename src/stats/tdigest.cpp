#include "stats/tdigest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace fdqos::stats {
namespace {

constexpr double kPi = 3.14159265358979323846;

// k1 scale function and its inverse: k(q) = (δ/2π)·asin(2q−1).
double k_of_q(double q, double compression) {
  return compression / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

double q_of_k(double k, double compression) {
  return (std::sin(2.0 * kPi * k / compression) + 1.0) / 2.0;
}

}  // namespace

TDigest::TDigest(double compression) : compression_(compression) {
  FDQOS_REQUIRE(compression_ >= 10.0);
  // Larger buffers amortize the sort; 8·δ keeps the merge pass rare
  // without growing memory past a few KiB at the default compression.
  buffer_capacity_ = static_cast<std::size_t>(8.0 * compression_);
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void TDigest::add(double x, double weight) {
  FDQOS_REQUIRE(std::isfinite(x));
  FDQOS_REQUIRE(weight > 0.0);
  buffer_.push_back({x, weight});
  count_ += static_cast<std::uint64_t>(weight);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (buffer_.size() >= buffer_capacity_) compress();
}

void TDigest::merge(const TDigest& other) {
  if (other.count_ == 0) return;
  // The other digest's centroids (compressed + buffered) become weighted
  // inputs; one compress folds them in deterministically.
  buffer_.reserve(buffer_.size() + other.centroids_.size() +
                  other.buffer_.size());
  for (const Centroid& c : other.centroids_) buffer_.push_back(c);
  for (const Centroid& c : other.buffer_) buffer_.push_back(c);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  compress();
}

void TDigest::compress() const {
  if (buffer_.empty()) return;
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  all.insert(all.end(), centroids_.begin(), centroids_.end());
  all.insert(all.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  // Stable: equal means keep their (deterministic) insertion order, so the
  // merge below never depends on an unstable comparator tie-break.
  std::stable_sort(all.begin(), all.end(),
                   [](const Centroid& a, const Centroid& b) {
                     return a.mean < b.mean;
                   });

  double total = 0.0;
  for (const Centroid& c : all) total += c.weight;

  std::vector<Centroid> merged;
  merged.reserve(static_cast<std::size_t>(2.0 * compression_) + 8);
  Centroid cur = all.front();
  double weight_so_far = 0.0;  // weight of centroids already emitted
  double q_limit = q_of_k(k_of_q(0.0, compression_) + 1.0, compression_);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const Centroid& next = all[i];
    const double q_if_merged = (weight_so_far + cur.weight + next.weight) / total;
    if (q_if_merged <= q_limit) {
      cur.mean += next.weight * (next.mean - cur.mean) /
                  (cur.weight + next.weight);
      cur.weight += next.weight;
    } else {
      merged.push_back(cur);
      weight_so_far += cur.weight;
      q_limit = q_of_k(k_of_q(weight_so_far / total, compression_) + 1.0,
                       compression_);
      cur = next;
    }
  }
  merged.push_back(cur);
  centroids_ = std::move(merged);
}

double TDigest::min() const {
  return count_ == 0 ? std::nan("") : min_;
}

double TDigest::max() const {
  return count_ == 0 ? std::nan("") : max_;
}

std::size_t TDigest::centroid_count() const {
  compress();
  return centroids_.size();
}

double TDigest::quantile(double q) const {
  FDQOS_REQUIRE(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return std::nan("");
  compress();
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  if (centroids_.size() == 1) return centroids_.front().mean;

  double total = 0.0;
  for (const Centroid& c : centroids_) total += c.weight;
  const double target = q * total;

  // Each centroid sits at the midpoint of its weight span; interpolate
  // between adjacent midpoints, clamping the ends to the exact extremes.
  double cum = 0.0;
  double prev_mid = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double mid = cum + c.weight / 2.0;
    if (target < mid) {
      const double span = mid - prev_mid;
      const double frac = span > 0.0 ? (target - prev_mid) / span : 0.0;
      return prev_mean + frac * (c.mean - prev_mean);
    }
    cum += c.weight;
    prev_mid = mid;
    prev_mean = c.mean;
  }
  const double span = total - prev_mid;
  const double frac = span > 0.0 ? (target - prev_mid) / span : 1.0;
  return prev_mean + frac * (max_ - prev_mean);
}

}  // namespace fdqos::stats
