// NekoStat-style event collection (paper §4).
//
// NekoStat turns distributed events — Sent(m_i), Received(m_i),
// StartSuspect, EndSuspect, Crash — into quantities of interest via a
// StatHandler, either online or after the run. This module is that
// pipeline: layers append typed events to an EventLog; handlers derive
// metrics from the recorded stream. Unlike the online QosTracker, a log
// supports post-hoc analysis (different warmups, per-interval breakdowns)
// and CSV export of the raw experiment record.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace fdqos::stats {

enum class EventKind : std::uint8_t {
  kSent,          // heartbeat m_seq left the monitored process
  kReceived,      // heartbeat m_seq reached a detector
  kStartSuspect,  // detector transitioned to suspicion
  kEndSuspect,    // detector transitioned back to trust
  kCrash,         // injector crashed the process
  kRestore,       // injector restored the process
};

const char* event_kind_name(EventKind kind);

struct Event {
  TimePoint time;
  EventKind kind;
  std::int32_t subject = 0;  // detector id (suspicion events), else 0
  std::int64_t seq = 0;      // heartbeat sequence (send/receive), else 0

  bool operator==(const Event&) const = default;
};

class EventLog {
 public:
  void record(TimePoint time, EventKind kind, std::int32_t subject = 0,
              std::int64_t seq = 0);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  std::span<const Event> events() const { return events_; }
  const Event& operator[](std::size_t i) const { return events_[i]; }

  // Events of one kind (optionally restricted to one subject).
  std::vector<Event> filter(EventKind kind) const;
  std::vector<Event> filter(EventKind kind, std::int32_t subject) const;

  std::string to_csv() const;
  bool save_csv(const std::string& path) const;

 private:
  std::vector<Event> events_;
};

// Derived per-detector QoS quantities, extracted from a recorded log the
// way NekoStat's FD StatHandler extracts T_M, T_MR, T_D from events.
struct LogDerivedQos {
  std::vector<double> detection_times_ms;    // T_D samples
  std::vector<double> mistake_durations_ms;  // T_M samples
  std::vector<double> mistake_recurrences_ms;  // T_MR samples
  std::uint64_t crashes = 0;
  std::uint64_t missed_detections = 0;
};

// Replays the log for `detector` through the same classification rules as
// the online QosTracker (see fd/qos_tracker.hpp); events before
// `warmup_end` update state but yield no samples.
LogDerivedQos derive_qos(const EventLog& log, std::int32_t detector,
                         TimePoint warmup_end = TimePoint::origin());

}  // namespace fdqos::stats
