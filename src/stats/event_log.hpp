// NekoStat-style event collection (paper §4).
//
// NekoStat turns distributed events — Sent(m_i), Received(m_i),
// StartSuspect, EndSuspect, Crash — into quantities of interest via a
// StatHandler, either online or after the run. This module is that
// pipeline: layers append typed events to an EventLog; handlers derive
// metrics from the recorded stream. Unlike the online QosTracker, a log
// supports post-hoc analysis (different warmups, per-interval breakdowns)
// and CSV export of the raw experiment record.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace fdqos::stats {

enum class EventKind : std::uint8_t {
  kSent,          // heartbeat m_seq left the monitored process
  kReceived,      // heartbeat m_seq reached a detector
  kStartSuspect,  // detector transitioned to suspicion
  kEndSuspect,    // detector transitioned back to trust
  kCrash,         // injector crashed the process
  kRestore,       // injector restored the process
};

const char* event_kind_name(EventKind kind);

struct Event {
  TimePoint time;
  EventKind kind;
  std::int32_t subject = 0;  // detector id (suspicion events), else 0
  std::int64_t seq = 0;      // heartbeat sequence (send/receive), else 0

  bool operator==(const Event&) const = default;
};

class EventLog {
 public:
  void record(TimePoint time, EventKind kind, std::int32_t subject = 0,
              std::int64_t seq = 0);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  std::span<const Event> events() const { return events_; }
  const Event& operator[](std::size_t i) const { return events_[i]; }

  // Events of one kind (optionally restricted to one subject).
  std::vector<Event> filter(EventKind kind) const;
  std::vector<Event> filter(EventKind kind, std::int32_t subject) const;

  std::string to_csv() const;
  bool save_csv(const std::string& path) const;

  // JSONL export: one event object per line, times as exact integer
  // nanoseconds — the output convention shared with the obs trace/metrics
  // writers. from_jsonl() inverts to_jsonl() bit-exactly.
  std::string to_jsonl() const;
  bool save_jsonl(const std::string& path) const;
  static EventLog from_jsonl(std::string_view text);

 private:
  std::vector<Event> events_;
};

// One event rendered as a JSONL line (no trailing newline), e.g.
//   {"t_ns":2500000000,"event":"crash","subject":0,"seq":0}
std::string event_to_json(const Event& event);
// Inverse of event_to_json; nullopt on malformed input.
std::optional<Event> event_from_json(std::string_view line);

// Streams events to a JSONL file as they are recorded — for runs too long
// (or too crash-prone) to buffer the whole log in memory first.
class EventJsonlWriter {
 public:
  explicit EventJsonlWriter(const std::string& path);
  ~EventJsonlWriter();

  EventJsonlWriter(const EventJsonlWriter&) = delete;
  EventJsonlWriter& operator=(const EventJsonlWriter&) = delete;

  bool ok() const { return f_ != nullptr; }
  void write(const Event& event);
  std::size_t written() const { return written_; }
  void flush();

 private:
  std::FILE* f_ = nullptr;
  std::size_t written_ = 0;
};

// Derived per-detector QoS quantities, extracted from a recorded log the
// way NekoStat's FD StatHandler extracts T_M, T_MR, T_D from events.
struct LogDerivedQos {
  std::vector<double> detection_times_ms;    // T_D samples
  std::vector<double> mistake_durations_ms;  // T_M samples
  std::vector<double> mistake_recurrences_ms;  // T_MR samples
  std::uint64_t crashes = 0;
  std::uint64_t missed_detections = 0;
};

// Replays the log for `detector` through the same classification rules as
// the online QosTracker (see fd/qos_tracker.hpp); events before
// `warmup_end` update state but yield no samples.
LogDerivedQos derive_qos(const EventLog& log, std::int32_t detector,
                         TimePoint warmup_end = TimePoint::origin());

}  // namespace fdqos::stats
