#include "stats/autocorrelation.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace fdqos::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double autocovariance(std::span<const double> xs, std::size_t lag) {
  FDQOS_REQUIRE(lag < xs.size());
  const double m = mean(xs);
  double sum = 0.0;
  for (std::size_t t = lag; t < xs.size(); ++t) {
    sum += (xs[t] - m) * (xs[t - lag] - m);
  }
  return sum / static_cast<double>(xs.size());
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  const double g0 = autocovariance(xs, 0);
  if (g0 == 0.0) return lag == 0 ? 1.0 : 0.0;
  return autocovariance(xs, lag) / g0;
}

std::vector<double> acf(std::span<const double> xs, std::size_t max_lag) {
  FDQOS_REQUIRE(max_lag < xs.size());
  std::vector<double> out(max_lag + 1);
  const double m = mean(xs);
  double g0 = 0.0;
  for (double x : xs) g0 += (x - m) * (x - m);
  g0 /= static_cast<double>(xs.size());
  out[0] = 1.0;
  if (g0 == 0.0) {
    for (std::size_t k = 1; k <= max_lag; ++k) out[k] = 0.0;
    return out;
  }
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double sum = 0.0;
    for (std::size_t t = k; t < xs.size(); ++t) {
      sum += (xs[t] - m) * (xs[t - k] - m);
    }
    out[k] = sum / static_cast<double>(xs.size()) / g0;
  }
  return out;
}

}  // namespace fdqos::stats
