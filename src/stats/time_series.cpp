#include "stats/time_series.hpp"

#include <cstdio>

namespace fdqos::stats {

void TimeSeries::add(TimePoint t, double value) { points_.push_back({t, value}); }

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.value);
  return out;
}

Summary TimeSeries::summarize() const {
  RunningStats rs;
  for (const auto& p : points_) rs.add(p.value);
  return rs.summary();
}

std::string TimeSeries::to_csv(bool header) const {
  std::string out;
  char line[96];
  if (header) {
    out += "time_s,";
    out += name_.empty() ? "value" : name_;
    out += '\n';
  }
  for (const auto& p : points_) {
    std::snprintf(line, sizeof line, "%.9f,%.9g\n", p.time.to_seconds_double(),
                  p.value);
    out += line;
  }
  return out;
}

bool TimeSeries::save_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace fdqos::stats
