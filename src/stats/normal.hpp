// Normal distribution functions for the φ-accrual detector and for
// confidence computations: CDF, tail, and inverse CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9 — far below any experimental
// noise here).
#pragma once

namespace fdqos::stats {

// P(X ≤ x) for X ~ N(0,1).
double normal_cdf(double x);

// P(X > x) for X ~ N(0,1), accurate in the far tail (uses erfc).
double normal_tail(double x);

// Quantile function: z such that P(X ≤ z) = p, p ∈ (0, 1).
double inverse_normal_cdf(double p);

}  // namespace fdqos::stats
