#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  FDQOS_REQUIRE(hi > lo);
  FDQOS_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[idx];
}

double Histogram::bin_lower(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  std::uint64_t below = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double upper = bin_lower(i) + width_;
    if (x >= upper) {
      below += counts_[i];
      continue;
    }
    const double frac = (x - bin_lower(i)) / width_;
    return (static_cast<double>(below) +
            frac * static_cast<double>(counts_[i])) /
           static_cast<double>(total_);
  }
  return static_cast<double>(total_ - overflow_) / static_cast<double>(total_) +
         (x >= hi_ ? static_cast<double>(overflow_) / static_cast<double>(total_) : 0.0);
}

double Histogram::quantile(double q) const {
  FDQOS_REQUIRE(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lower(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(peak) * static_cast<double>(max_bar_width)));
    std::snprintf(line, sizeof line, "[%10.3f, %10.3f) %8llu ", bin_lower(i),
                  bin_lower(i) + width_,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(line, sizeof line, "underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace fdqos::stats
