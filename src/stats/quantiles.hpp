// Quantile estimation: exact (stored samples) and streaming (P² / t-digest).
//
// Exact quantiles back the experiment reports (sample counts there are
// modest); the streaming estimators serve long-running monitors where
// storing every sample is not acceptable. SampleSet can opt into a
// t-digest backend at construction, which keeps the add()/quantile() API
// while dropping per-sample storage — the fleet-scale path (ROADMAP §5):
// per-endpoint stats at millions of samples in O(compression) memory.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "stats/tdigest.hpp"

namespace fdqos::stats {

// Stores all samples (exact backend, the default) or folds them into a
// t-digest (streaming backend); quantile() sorts lazily or queries the
// sketch.
//
// add() and quantile() (including the lazy sort) take an internal mutex,
// so any mix of concurrent readers and writers is safe — e.g. several
// report tables rendered in parallel from one pooled set. reserve() and
// samples() stay unsynchronized; call them only while no writer is active.
class SampleSet {
 public:
  enum class Backend {
    kExact,      // store every sample, sort lazily — bit-exact quantiles
    kStreaming,  // t-digest sketch — O(compression) memory, bounded error
  };

  SampleSet() = default;
  explicit SampleSet(Backend backend, double compression = 100.0);
  SampleSet(const SampleSet& other);
  SampleSet& operator=(const SampleSet& other);

  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  Backend backend() const { return backend_; }
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  // q-quantile with linear interpolation; q in [0, 1]. Exact on the exact
  // backend, sketch estimate (exact min/max at q = 0/1) on streaming.
  // Thread-safe against concurrent quantile()/median()/min()/max() calls.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  // Exact backend only (empty on streaming — the samples are gone).
  const std::vector<double>& samples() const { return samples_; }

 private:
  Backend backend_ = Backend::kExact;
  mutable std::mutex mu_;  // guards the lazy sort / digest compression
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  TDigest digest_{100.0};  // untouched on the exact backend
};

// Jain & Chlamtac's P² streaming quantile estimator: O(1) memory, O(1)
// update, no stored samples. Tracks one pre-declared quantile; for
// arbitrary post-hoc quantiles or shard merging use stats::TDigest.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  std::size_t count() const { return n_total_; }
  // Current estimate; exact while fewer than five samples have been seen.
  double value() const;

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::size_t n_total_ = 0;
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
};

}  // namespace fdqos::stats
