// Quantile estimation: exact (stored samples) and streaming (P² algorithm).
//
// Exact quantiles back the experiment reports (sample counts there are
// modest); the P² estimator serves long-running monitors where storing every
// sample is not acceptable.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace fdqos::stats {

// Stores all samples; quantile() sorts lazily. Suitable for experiment-sized
// data (up to a few million doubles).
//
// add() and quantile() (including the lazy sort) take an internal mutex,
// so any mix of concurrent readers and writers is safe — e.g. several
// report tables rendered in parallel from one pooled set. reserve() and
// samples() stay unsynchronized; call them only while no writer is active.
class SampleSet {
 public:
  SampleSet() = default;
  SampleSet(const SampleSet& other);
  SampleSet& operator=(const SampleSet& other);

  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Exact q-quantile with linear interpolation; q in [0, 1]. Thread-safe
  // against concurrent quantile()/median()/min()/max() calls.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::mutex mu_;  // guards the lazy sort in quantile()
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Jain & Chlamtac's P² streaming quantile estimator: O(1) memory, O(1)
// update, no stored samples.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  std::size_t count() const { return n_total_; }
  // Current estimate; exact while fewer than five samples have been seen.
  double value() const;

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::size_t n_total_ = 0;
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
};

}  // namespace fdqos::stats
