#include "stats/quantiles.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace fdqos::stats {

SampleSet::SampleSet(Backend backend, double compression)
    : backend_(backend), digest_(compression) {}

SampleSet::SampleSet(const SampleSet& other) : digest_(100.0) {
  std::lock_guard<std::mutex> lock(other.mu_);
  backend_ = other.backend_;
  samples_ = other.samples_;
  sorted_ = other.sorted_;
  digest_ = other.digest_;
}

SampleSet& SampleSet::operator=(const SampleSet& other) {
  if (this == &other) return *this;
  std::vector<double> copy;
  bool copy_sorted;
  Backend copy_backend;
  TDigest copy_digest{100.0};
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    copy = other.samples_;
    copy_sorted = other.sorted_;
    copy_backend = other.backend_;
    copy_digest = other.digest_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  samples_ = std::move(copy);
  sorted_ = copy_sorted;
  backend_ = copy_backend;
  digest_ = copy_digest;
  return *this;
}

void SampleSet::add(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  if (backend_ == Backend::kStreaming) {
    digest_.add(x);
    return;
  }
  samples_.push_back(x);
  sorted_ = false;
}

std::size_t SampleSet::size() const {
  if (backend_ == Backend::kStreaming) {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::size_t>(digest_.count());
  }
  return samples_.size();
}

double SampleSet::quantile(double q) const {
  FDQOS_REQUIRE(q >= 0.0 && q <= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  if (backend_ == Backend::kStreaming) {
    FDQOS_REQUIRE(!digest_.empty());
    return digest_.quantile(q);
  }
  FDQOS_REQUIRE(!samples_.empty());
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  FDQOS_REQUIRE(q > 0.0 && q < 1.0);
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q_;
  desired_[2] = 1 + 4 * q_;
  desired_[3] = 3 + 2 * q_;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q_ / 2;
  increments_[2] = q_;
  increments_[3] = (1 + q_) / 2;
  increments_[4] = 1;
}

double P2Quantile::parabolic(int i, double d) const {
  const double np = positions_[i + 1];
  const double nm = positions_[i - 1];
  const double n = positions_[i];
  return heights_[i] +
         d / (np - nm) *
             ((n - nm + d) * (heights_[i + 1] - heights_[i]) / (np - n) +
              (np - n - d) * (heights_[i] - heights_[i - 1]) / (n - nm));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (n_total_ < 5) {
    heights_[n_total_] = x;
    ++n_total_;
    if (n_total_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++n_total_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double step = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, step);
      }
      positions_[i] += step;
    }
  }
}

double P2Quantile::value() const {
  if (n_total_ == 0) return std::nan("");
  if (n_total_ < 5) {
    // Exact small-sample quantile over the buffered values.
    double tmp[5];
    std::copy(heights_, heights_ + n_total_, tmp);
    std::sort(tmp, tmp + n_total_);
    const double pos = q_ * static_cast<double>(n_total_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= n_total_) return tmp[n_total_ - 1];
    return tmp[lo] * (1.0 - frac) + tmp[lo + 1] * frac;
  }
  return heights_[2];
}

}  // namespace fdqos::stats
