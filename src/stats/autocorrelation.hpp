// Sample moments and autocorrelation over in-memory series.
//
// The forecasting substrate (Yule–Walker, order selection) consumes the ACF;
// WAN-model validation compares generated-trace autocorrelation against the
// target process.
#pragma once

#include <span>
#include <vector>

namespace fdqos::stats {

double mean(std::span<const double> xs);
// Sample variance (n-1 denominator); zero for fewer than two points.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

// Autocovariance at `lag` (biased, 1/n normalization — the standard choice
// for Yule–Walker, it keeps the autocovariance matrix positive definite).
double autocovariance(std::span<const double> xs, std::size_t lag);

// Autocorrelation at `lag` (gamma(lag)/gamma(0)).
double autocorrelation(std::span<const double> xs, std::size_t lag);

// Autocorrelations for lags 0..max_lag inclusive.
std::vector<double> acf(std::span<const double> xs, std::size_t max_lag);

}  // namespace fdqos::stats
