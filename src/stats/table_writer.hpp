// ASCII/CSV table formatting for experiment reports.
//
// Every bench binary prints its paper table/figure through this writer so
// the harness output is uniform and machine-diffable.
#pragma once

#include <string>
#include <vector>

namespace fdqos::stats {

class TableWriter {
 public:
  explicit TableWriter(std::string title = {});

  void set_columns(std::vector<std::string> names);
  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  // Fixed-width ASCII rendering with a title rule and a header rule.
  std::string to_ascii() const;
  std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Format helper: fixed precision, trimmed trailing zeros kept (plain %.*f).
std::string format_double(double v, int precision = 3);

}  // namespace fdqos::stats
