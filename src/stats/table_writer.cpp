#include "stats/table_writer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::stats {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

TableWriter::TableWriter(std::string title) : title_(std::move(title)) {}

void TableWriter::set_columns(std::vector<std::string> names) {
  columns_ = std::move(names);
}

void TableWriter::add_row(std::vector<std::string> cells) {
  FDQOS_REQUIRE(columns_.empty() || cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::add_row(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TableWriter::to_ascii() const {
  // Column widths from header + data.
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    widths.resize(std::max(widths.size(), row.size()), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto append_cell = [&](const std::string& s, std::size_t w, bool last) {
    out += s;
    if (!last) out.append(w - s.size() + 2, ' ');
  };

  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }

  if (!title_.empty()) {
    out += title_;
    out += '\n';
    out.append(std::max(total, title_.size()), '=');
    out += '\n';
  }
  if (!columns_.empty()) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      append_cell(columns_[c], widths[c], c + 1 == columns_.size());
    }
    out += '\n';
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      append_cell(row[c], widths[c], c + 1 == row.size());
    }
    out += '\n';
  }
  return out;
}

std::string TableWriter::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string esc = "\"";
    for (char ch : s) {
      if (ch == '"') esc += "\"\"";
      else esc += ch;
    }
    esc += '"';
    return esc;
  };
  std::string out;
  if (!columns_.empty()) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(columns_[c]);
    }
    out += '\n';
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace fdqos::stats
