#include "stats/event_log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>

namespace fdqos::stats {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSent: return "sent";
    case EventKind::kReceived: return "received";
    case EventKind::kStartSuspect: return "start_suspect";
    case EventKind::kEndSuspect: return "end_suspect";
    case EventKind::kCrash: return "crash";
    case EventKind::kRestore: return "restore";
  }
  return "?";
}

void EventLog::record(TimePoint time, EventKind kind, std::int32_t subject,
                      std::int64_t seq) {
  events_.push_back({time, kind, subject, seq});
}

std::vector<Event> EventLog::filter(EventKind kind) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<Event> EventLog::filter(EventKind kind,
                                    std::int32_t subject) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind && e.subject == subject) out.push_back(e);
  }
  return out;
}

std::string EventLog::to_csv() const {
  std::string out = "time_s,event,subject,seq\n";
  char line[96];
  for (const auto& e : events_) {
    std::snprintf(line, sizeof line, "%.9f,%s,%d,%lld\n",
                  e.time.to_seconds_double(), event_kind_name(e.kind),
                  e.subject, static_cast<long long>(e.seq));
    out += line;
  }
  return out;
}

bool EventLog::save_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

std::string event_to_json(const Event& event) {
  char line[128];
  std::snprintf(line, sizeof line,
                "{\"t_ns\":%lld,\"event\":\"%s\",\"subject\":%d,"
                "\"seq\":%lld}",
                static_cast<long long>(event.time.count_nanos()),
                event_kind_name(event.kind), event.subject,
                static_cast<long long>(event.seq));
  return line;
}

std::optional<Event> event_from_json(std::string_view line) {
  char kind_name[24] = {};
  long long t_ns = 0;
  long long seq = 0;
  int subject = 0;
  const std::string owned(line);
  if (std::sscanf(owned.c_str(),
                  " {\"t_ns\":%lld,\"event\":\"%23[^\"]\",\"subject\":%d,"
                  "\"seq\":%lld}",
                  &t_ns, kind_name, &subject, &seq) != 4) {
    return std::nullopt;
  }
  for (EventKind kind :
       {EventKind::kSent, EventKind::kReceived, EventKind::kStartSuspect,
        EventKind::kEndSuspect, EventKind::kCrash, EventKind::kRestore}) {
    if (std::strcmp(event_kind_name(kind), kind_name) == 0) {
      return Event{TimePoint::from_nanos(t_ns), kind, subject, seq};
    }
  }
  return std::nullopt;
}

std::string EventLog::to_jsonl() const {
  std::string out;
  for (const auto& e : events_) {
    out += event_to_json(e);
    out.push_back('\n');
  }
  return out;
}

bool EventLog::save_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string jsonl = to_jsonl();
  const bool ok =
      std::fwrite(jsonl.data(), 1, jsonl.size(), f) == jsonl.size();
  return std::fclose(f) == 0 && ok;
}

EventLog EventLog::from_jsonl(std::string_view text) {
  EventLog log;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    const std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    if (line.empty()) continue;
    if (const auto event = event_from_json(line)) log.events_.push_back(*event);
  }
  return log;
}

EventJsonlWriter::EventJsonlWriter(const std::string& path) {
  f_ = std::fopen(path.c_str(), "w");
}

EventJsonlWriter::~EventJsonlWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void EventJsonlWriter::write(const Event& event) {
  if (f_ == nullptr) return;
  const std::string line = event_to_json(event);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
  ++written_;
}

void EventJsonlWriter::flush() {
  if (f_ != nullptr) std::fflush(f_);
}

LogDerivedQos derive_qos(const EventLog& log, std::int32_t detector,
                         TimePoint warmup_end) {
  LogDerivedQos out;

  bool up = true;
  bool suspecting = false;
  std::optional<TimePoint> crash_time;
  std::optional<TimePoint> active_down_start;
  std::optional<TimePoint> mistake_start;
  std::optional<TimePoint> last_mistake_start;
  const auto recordable = [&](TimePoint t) { return t >= warmup_end; };

  for (const Event& e : log.events()) {
    switch (e.kind) {
      case EventKind::kSent:
      case EventKind::kReceived:
        break;
      case EventKind::kCrash:
        up = false;
        ++out.crashes;
        crash_time = e.time;
        // T_MR pairs *consecutive* mistakes within one up-interval; a crash
        // starts a fresh sequence (mirrors QosTracker::process_crashed).
        last_mistake_start.reset();
        if (suspecting) {
          if (mistake_start.has_value()) {
            const TimePoint start = *mistake_start;
            if (recordable(start)) {
              out.mistake_durations_ms.push_back(
                  (e.time - start).to_millis_double());
            }
          }
          mistake_start.reset();
          active_down_start = e.time;
        } else {
          active_down_start.reset();
        }
        break;
      case EventKind::kRestore:
        up = true;
        if (active_down_start && crash_time) {
          if (recordable(e.time)) {
            out.detection_times_ms.push_back(
                (*active_down_start - *crash_time).to_millis_double());
          }
        } else {
          ++out.missed_detections;
        }
        crash_time.reset();
        active_down_start.reset();
        break;
      case EventKind::kStartSuspect:
        if (e.subject != detector) break;
        suspecting = true;
        if (up) {
          mistake_start = e.time;
          if (last_mistake_start && recordable(e.time) &&
              recordable(*last_mistake_start)) {
            out.mistake_recurrences_ms.push_back(
                (e.time - *last_mistake_start).to_millis_double());
          }
          last_mistake_start = e.time;
        } else {
          active_down_start = e.time;
        }
        break;
      case EventKind::kEndSuspect:
        if (e.subject != detector) break;
        suspecting = false;
        if (up) {
          if (mistake_start.has_value()) {
            const TimePoint start = *mistake_start;
            if (recordable(start)) {
              out.mistake_durations_ms.push_back(
                  (e.time - start).to_millis_double());
            }
            mistake_start.reset();
          }
        } else {
          active_down_start.reset();
        }
        break;
    }
  }
  return out;
}

}  // namespace fdqos::stats
