#include "stats/event_log.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>

namespace fdqos::stats {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSent: return "sent";
    case EventKind::kReceived: return "received";
    case EventKind::kStartSuspect: return "start_suspect";
    case EventKind::kEndSuspect: return "end_suspect";
    case EventKind::kCrash: return "crash";
    case EventKind::kRestore: return "restore";
  }
  return "?";
}

void EventLog::record(TimePoint time, EventKind kind, std::int32_t subject,
                      std::int64_t seq) {
  events_.push_back({time, kind, subject, seq});
}

std::vector<Event> EventLog::filter(EventKind kind) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<Event> EventLog::filter(EventKind kind,
                                    std::int32_t subject) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind && e.subject == subject) out.push_back(e);
  }
  return out;
}

std::string EventLog::to_csv() const {
  std::string out = "time_s,event,subject,seq\n";
  char line[96];
  for (const auto& e : events_) {
    std::snprintf(line, sizeof line, "%.9f,%s,%d,%lld\n",
                  e.time.to_seconds_double(), event_kind_name(e.kind),
                  e.subject, static_cast<long long>(e.seq));
    out += line;
  }
  return out;
}

bool EventLog::save_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

LogDerivedQos derive_qos(const EventLog& log, std::int32_t detector,
                         TimePoint warmup_end) {
  LogDerivedQos out;

  bool up = true;
  bool suspecting = false;
  std::optional<TimePoint> crash_time;
  std::optional<TimePoint> active_down_start;
  std::optional<TimePoint> mistake_start;
  std::optional<TimePoint> last_mistake_start;
  const auto recordable = [&](TimePoint t) { return t >= warmup_end; };

  for (const Event& e : log.events()) {
    switch (e.kind) {
      case EventKind::kSent:
      case EventKind::kReceived:
        break;
      case EventKind::kCrash:
        up = false;
        ++out.crashes;
        crash_time = e.time;
        if (suspecting) {
          if (mistake_start.has_value()) {
            const TimePoint start = *mistake_start;
            if (recordable(start)) {
              out.mistake_durations_ms.push_back(
                  (e.time - start).to_millis_double());
            }
          }
          mistake_start.reset();
          active_down_start = e.time;
        } else {
          active_down_start.reset();
        }
        break;
      case EventKind::kRestore:
        up = true;
        if (active_down_start && crash_time) {
          if (recordable(e.time)) {
            out.detection_times_ms.push_back(
                (*active_down_start - *crash_time).to_millis_double());
          }
        } else {
          ++out.missed_detections;
        }
        crash_time.reset();
        active_down_start.reset();
        break;
      case EventKind::kStartSuspect:
        if (e.subject != detector) break;
        suspecting = true;
        if (up) {
          mistake_start = e.time;
          if (last_mistake_start && recordable(e.time) &&
              recordable(*last_mistake_start)) {
            out.mistake_recurrences_ms.push_back(
                (e.time - *last_mistake_start).to_millis_double());
          }
          last_mistake_start = e.time;
        } else {
          active_down_start = e.time;
        }
        break;
      case EventKind::kEndSuspect:
        if (e.subject != detector) break;
        suspecting = false;
        if (up) {
          if (mistake_start.has_value()) {
            const TimePoint start = *mistake_start;
            if (recordable(start)) {
              out.mistake_durations_ms.push_back(
                  (e.time - start).to_millis_double());
            }
            mistake_start.reset();
          }
        } else {
          active_down_start.reset();
        }
        break;
    }
  }
  return out;
}

}  // namespace fdqos::stats
