// TDigest — Dunning's merging t-digest: a fixed-memory streaming quantile
// sketch with relative accuracy that is best at the tails.
//
// The digest keeps at most O(compression) weighted centroids whose sizes
// follow the k1 scale function k(q) = (δ/2π)·asin(2q−1): centroids near
// q = 0 or q = 1 hold few points, centroids near the median hold many, so
// p99/p999 estimates stay sharp while memory stays constant. Incoming
// samples buffer and are folded in by a deterministic sorted merge —
// the same sample stream (and the same shard merge order) always yields
// the same centroid set, which the sketch property suite pins.
//
// Complements stats::P2Quantile: P² tracks *one* pre-declared quantile in
// five doubles; the t-digest answers any quantile after the fact and can
// merge shards (per-run or per-endpoint sketches folded in run order).
// Not thread-safe — wrap it (stats::SampleSet does) or confine it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fdqos::stats {

class TDigest {
 public:
  // `compression` (δ) bounds the centroid count (~2·δ) and the rank error
  // (mid-quantile error ~ 1/δ, tail error far smaller). 100 is the
  // conventional default; per-endpoint monitors use less, report-grade
  // summaries more.
  explicit TDigest(double compression = 100.0);

  void add(double x, double weight = 1.0);
  // Fold another digest into this one (its buffered and compressed
  // centroids become weighted inputs). Merging shards in a fixed order is
  // deterministic; different orders agree within the accuracy bound.
  void merge(const TDigest& other);

  // Interpolated quantile estimate, q in [0, 1]; NaN while empty. Exact
  // min/max at q = 0/1 (tracked separately from the centroids).
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const;
  double max() const;
  double compression() const { return compression_; }
  // Post-compression centroid count (compresses pending samples first).
  std::size_t centroid_count() const;

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  // Fold buffer_ into centroids_ with one sorted merge pass. Lazy (and
  // therefore mutable): add() stays O(1) amortized and quantile() pays
  // the sort only when something actually changed.
  void compress() const;

  double compression_;
  std::size_t buffer_capacity_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<Centroid> centroids_;
  mutable std::vector<Centroid> buffer_;
};

}  // namespace fdqos::stats
