#include "fd/fleet_bank.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace fdqos::fd {

void FleetBank::Counters::add(const Counters& other) {
  heartbeats += other.heartbeats;
  batches += other.batches;
  timer_events += other.timer_events;
  member_checks += other.member_checks;
  coalesced_events += other.coalesced_events;
  unroutable += other.unroutable;
  malformed += other.malformed;
}

FleetBank::FleetBank(sim::Simulator& simulator, Config config)
    : simulator_(simulator), config_(std::move(config)) {
  FDQOS_REQUIRE(config_.eta > Duration::zero());
  if (config_.expected_endpoints > 0) {
    members_.reserve(config_.expected_endpoints);
    due_heap_.reserve(config_.expected_endpoints);
    endpoint_of_.reserve(config_.expected_endpoints);
  }
}

DetectorBank& FleetBank::add_member(net::NodeId monitored, std::string name) {
  FDQOS_REQUIRE(!started_);
  DetectorBank::Config member_config;
  member_config.eta = config_.eta;
  member_config.monitored = monitored;
  member_config.epoch = config_.epoch;
  member_config.cold_start_timeout = config_.cold_start_timeout;
  member_config.name = name.empty()
                           ? config_.name + "/" + std::to_string(members_.size())
                           : std::move(name);
  DetectorBank* member =
      arena_.make<DetectorBank>(simulator_, std::move(member_config));
  member->set_timer_host(this, members_.size());
  members_.push_back(member);
  // First registration wins: duplicate ids only occur in per-node
  // attachment mode, which never routes through handle_up.
  endpoint_of_.emplace(monitored, members_.size() - 1);
  return *member;
}

DetectorBank& FleetBank::member(std::size_t e) {
  FDQOS_REQUIRE(e < members_.size());
  return *members_[e];
}

const DetectorBank& FleetBank::member(std::size_t e) const {
  FDQOS_REQUIRE(e < members_.size());
  return *members_[e];
}

void FleetBank::start() {
  FDQOS_REQUIRE(!started_);
  FDQOS_REQUIRE(!members_.empty());
  // Validate before any member arms a deadline: a start that already
  // missed σ_1 is a caller bug, and this check names it (instead of the
  // simulator's past-event abort when a member reports its first timer).
  FDQOS_REQUIRE(simulator_.now() < config_.epoch + config_.eta);
  started_ = true;
  // Raw-coordinator mode: members with no node stack of their own start
  // here. (In the experiment each member was already started by its
  // endpoint's monitor node; its begin_cycle(0) ran inline there.)
  for (DetectorBank* member : members_) {
    if (!member->started()) member->start();
  }
  // The shared cycle tick replaces every member's self-scheduled
  // cycle-begin event: the first tick lands at σ_1 (cycle 0 was computed
  // inline by each member's start()). Must be scheduled before the
  // simulator runs so it precedes same-instant heartbeat sends at σ_1,
  // preserving each member's standalone begin-before-send order.
  simulator_.schedule_at(config_.epoch + config_.eta,
                         [this] { cycle_tick(1); });
}

void FleetBank::cycle_tick(std::int64_t k) {
  // Each member performs exactly its standalone begin_cycle(k) work; the
  // fleet saved (members − 1) simulator events for this cycle.
  counters_.coalesced_events += members_.size() - 1;
  for (DetectorBank* member : members_) {
    member->host_begin_cycle(k);
  }
  const std::int64_t next = k + 1;
  simulator_.schedule_at(config_.epoch + config_.eta * next,
                         [this, next] { cycle_tick(next); });
}

void FleetBank::member_deadline_changed(std::size_t member, TimePoint due) {
  due_heap_.push_back(
      MemberDue{due, next_due_seq_++, static_cast<std::uint32_t>(member)});
  std::push_heap(due_heap_.begin(), due_heap_.end(), MemberDueAfter{});
  arm();
}

void FleetBank::arm() {
  if (due_heap_.empty()) return;
  const TimePoint front = due_heap_.front().due;
  // One armed event per shard; re-arm only when the front undercuts it
  // (tombstone cancel), exactly the member banks' own rule.
  if (armed_.time() <= front) return;
  armed_.cancel();
  armed_ = simulator_.schedule_at(front, [this] { fired(); });
}

void FleetBank::fired() {
  ++counters_.timer_events;
  const TimePoint now = simulator_.now();
  while (!due_heap_.empty() && due_heap_.front().due <= now) {
    std::pop_heap(due_heap_.begin(), due_heap_.end(), MemberDueAfter{});
    const MemberDue e = due_heap_.back();
    due_heap_.pop_back();
    ++counters_.member_checks;
    // The check pops the member's due freshness points (or nothing, for a
    // stale entry) and re-reports its new front — every consumed entry is
    // replaced, so no member deadline can be skipped. (Armed-event savings
    // are member_counters().timer_events − counters_.timer_events.)
    members_[e.member]->host_timer_check();
  }
  arm();
}

bool FleetBank::seq_in_range(std::int64_t seq) const {
  if (seq < 0) return false;
  const std::int64_t eta_ns = config_.eta.count_nanos();
  // epoch + η·seq must not overflow the ns timeline; anything that far out
  // is line noise, not a heartbeat.
  return seq <= std::numeric_limits<std::int64_t>::max() / eta_ns;
}

void FleetBank::handle_up(const net::Message& msg) {
  if (msg.type != net::MessageType::kHeartbeat) {
    deliver_up(msg);
    return;
  }
  const auto it = endpoint_of_.find(msg.from);
  if (it == endpoint_of_.end()) {
    ++counters_.unroutable;
    deliver_up(msg);
    return;
  }
  if (!seq_in_range(msg.seq)) {
    ++counters_.malformed;
    FDQOS_LOG_WARN("%s: dropping heartbeat with out-of-range seq %lld from %d",
                   config_.name.c_str(), static_cast<long long>(msg.seq),
                   static_cast<int>(msg.from));
    return;
  }
  ++counters_.heartbeats;
  members_[it->second]->observe_heartbeat(msg.seq);
}

void FleetBank::ingest(std::size_t endpoint, std::int64_t seq) {
  FDQOS_REQUIRE(endpoint < members_.size());
  if (!seq_in_range(seq)) {
    ++counters_.malformed;
    return;
  }
  ++counters_.heartbeats;
  members_[endpoint]->observe_heartbeat(seq);
}

void FleetBank::ingest_columns(const HeartbeatColumns& batch) {
  FDQOS_REQUIRE(batch.endpoint.size() == batch.seq.size());
  ++counters_.batches;
  for (std::size_t i = 0; i < batch.endpoint.size(); ++i) {
    ingest(batch.endpoint[i], batch.seq[i]);
  }
}

std::size_t FleetBank::total_lanes() const {
  std::size_t n = 0;
  for (const DetectorBank* member : members_) n += member->width();
  return n;
}

std::size_t FleetBank::suspecting_count() const {
  std::size_t n = 0;
  for (const DetectorBank* member : members_) n += member->suspecting_count();
  return n;
}

DetectorBank::Counters FleetBank::member_counters() const {
  DetectorBank::Counters total;
  for (const DetectorBank* member : members_) total.add(member->counters());
  return total;
}

std::size_t FleetBank::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += arena_.allocated_bytes();
  bytes += members_.capacity() * sizeof(DetectorBank*);
  bytes += due_heap_.capacity() * sizeof(MemberDue);
  // unordered_map: buckets + one node per entry (approximation).
  bytes += endpoint_of_.bucket_count() * sizeof(void*);
  bytes += endpoint_of_.size() *
           (sizeof(std::pair<net::NodeId, std::size_t>) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace fdqos::fd
