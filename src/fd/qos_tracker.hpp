// QosTracker — computes the Chen/Toueg/Aguilera QoS metrics (paper §2.1)
// from the event stream of one failure detector plus the crash-injector
// ground truth:
//
//   T_D   detection time: crash → start of *permanent* suspicion
//   T_D^U maximum observed detection time
//   T_M   mistake duration: wrong suspicion start → correction
//   T_MR  mistake recurrence: between starts of successive mistakes
//   P_A   query accuracy probability (T_MR − T_M)/T_MR
//
// Classification rules:
//  * A suspicion that starts while the process is down is (part of) a
//    detection, not a mistake. Permanence is resolved at restore time: the
//    T_D sample is the start of the suspicion interval still active when
//    the process comes back (an in-flight heartbeat delivered just after a
//    crash can briefly un-suspect a detector; the paper's T_D is defined on
//    permanent suspicion, so the *last* start wins).
//  * A suspicion that starts while the process is up is a mistake. If the
//    process crashes while the mistake is open, the mistake closes at the
//    crash instant and the detection time for that crash is 0 (already
//    suspecting).
//  * The residual suspicion after a restore (until the first fresh
//    heartbeat) belongs to the preceding detection and is not a mistake.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "common/time.hpp"
#include "stats/running_stats.hpp"

namespace fdqos::fd {

struct QosMetrics {
  stats::Summary detection_time_ms;  // T_D samples; .max is T_D^U
  stats::Summary mistake_duration_ms;     // T_M
  stats::Summary mistake_recurrence_ms;   // T_MR
  double query_accuracy = 1.0;            // P_A from mean T_M / mean T_MR
  double availability = 1.0;  // 1 − wrong-suspicion time / observed up time
  std::uint64_t crashes_observed = 0;
  std::uint64_t detections = 0;
  std::uint64_t missed_detections = 0;  // restore arrived with no suspicion
  std::uint64_t mistakes = 0;
};

class QosTracker {
 public:
  // Events before `warmup_end` still update state but produce no samples
  // (estimators are cold in the first cycles; the paper's runs are long
  // enough to swamp this, ours exclude it explicitly).
  explicit QosTracker(TimePoint warmup_end = TimePoint::origin());

  // Ground truth from the crash injector.
  void process_crashed(TimePoint t);
  void process_restored(TimePoint t);

  // Detector transitions.
  void suspect_started(TimePoint t);
  void suspect_ended(TimePoint t);

  // Close the books at the end of the run (open intervals are discarded as
  // censored rather than recorded short).
  void finalize(TimePoint end_time);

  QosMetrics metrics() const;

  bool process_up() const { return up_; }
  bool detector_suspecting() const { return suspecting_; }

  // Raw accumulators, for pooling samples across experiment runs.
  const stats::RunningStats& td_stats() const { return t_d_; }
  const stats::RunningStats& tm_stats() const { return t_m_; }
  const stats::RunningStats& tmr_stats() const { return t_mr_; }

  // Windowed (EWMA, α = 0.2) live estimates of T_D / T_M for telemetry
  // gauges: they react to recent behaviour instead of averaging the whole
  // run. NaN until the first sample. These feed *only* the obs plane —
  // reports come from the RunningStats above, so live scrapes can never
  // perturb report bytes. Updates are a couple of flops per (rare)
  // detection/mistake event, far off the heartbeat hot path.
  double recent_td_ms() const { return recent_td_ms_; }
  double recent_tm_ms() const { return recent_tm_ms_; }
  Duration observed_up_time() const { return observed_up_; }
  Duration wrong_suspicion_time() const { return wrong_suspicion_; }
  std::uint64_t crash_count() const { return crashes_; }
  std::uint64_t detection_count() const { return detections_; }
  std::uint64_t missed_detection_count() const { return missed_; }

 private:
  bool recordable(TimePoint t) const { return t >= warmup_end_; }

  TimePoint warmup_end_;
  bool up_ = true;
  bool suspecting_ = false;

  // Crash bookkeeping.
  std::optional<TimePoint> crash_time_;
  std::optional<TimePoint> active_down_suspect_start_;

  // Mistake bookkeeping.
  std::optional<TimePoint> mistake_start_;
  std::optional<TimePoint> last_mistake_start_;

  // Up-time accounting for availability.
  TimePoint up_since_ = TimePoint::origin();
  Duration observed_up_ = Duration::zero();
  Duration wrong_suspicion_ = Duration::zero();

  stats::RunningStats t_d_;
  stats::RunningStats t_m_;
  stats::RunningStats t_mr_;
  double recent_td_ms_ = std::numeric_limits<double>::quiet_NaN();
  double recent_tm_ms_ = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t crashes_ = 0;
  std::uint64_t detections_ = 0;
  std::uint64_t missed_ = 0;
};

}  // namespace fdqos::fd
