// φ-accrual failure detector (Hayashibara, Défago, Yared, Katayama, SRDS
// 2004 — the other adaptive-detector lineage, contemporary with the paper
// and later adopted by Akka and Cassandra). Included as an extension
// comparison point for the paper's predictor+margin family.
//
// Instead of a binary suspect/trust output with an engineered timeout, the
// detector emits a continuous suspicion level
//
//   φ(t) = −log10 P(a heartbeat arrives after t | it was sent)
//
// where P is estimated from the recent inter-arrival distribution (normal
// approximation over a sliding window). The application picks a threshold
// Φ: suspicion starts when φ(t) ≥ Φ. Larger Φ trades detection speed for
// accuracy — one scalar instead of the paper's (predictor, margin) grid.
//
// Implementation notes: rather than polling φ, the detector solves the
// threshold crossing analytically — φ(t) ≥ Φ when t − t_last ≥ μ + σ·z
// with z = Φ_N⁻¹(1 − 10^−Φ) — and arms a cancellable timer at that
// instant; each arrival cancels and re-arms it. This keeps the
// event-driven cost at O(1) per heartbeat, like the paper's detectors.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::fd {

class PhiAccrualDetector final : public runtime::Layer {
 public:
  struct Config {
    net::NodeId monitored = 0;
    double threshold = 8.0;          // Φ (Akka's default)
    std::size_t window = 1000;       // sliding inter-arrival window
    double min_stddev_ms = 2.0;      // floor on σ (degenerate-window guard)
    // Until two heartbeats have arrived there is no interval estimate;
    // suspect if nothing arrives within this budget.
    Duration cold_start_timeout = Duration::seconds(3);
    std::string name;                // default "PHI(th)"
  };

  using SuspectObserver = std::function<void(TimePoint, bool)>;

  PhiAccrualDetector(sim::Simulator& simulator, Config config);

  void set_observer(SuspectObserver observer) { observer_ = std::move(observer); }

  void start() override;
  void handle_up(const net::Message& msg) override;

  const std::string& name() const { return config_.name; }
  bool suspecting() const { return suspecting_; }
  // Current suspicion level φ(now); 0 before the first heartbeat.
  double phi() const;
  std::size_t heartbeats_seen() const { return arrivals_; }
  // Current inter-arrival estimates (ms).
  double interval_mean_ms() const;
  double interval_stddev_ms() const;

 private:
  void record_interval(double ms);
  void arm_crossing_timer();
  void on_crossing();
  void set_suspecting(bool suspecting);

  sim::Simulator& simulator_;
  Config config_;
  SuspectObserver observer_;

  // Sliding-window moments of inter-arrival times.
  std::vector<double> ring_;
  std::size_t count_ = 0;  // total intervals recorded
  double sum_ = 0.0;
  double sum_sq_ = 0.0;

  std::size_t arrivals_ = 0;
  TimePoint last_arrival_;
  bool suspecting_ = false;
  sim::EventHandle crossing_;
};

}  // namespace fdqos::fd
