// FreshnessDetector — the paper's modular push-style crash failure
// detector (§2.3), one (predictor, safety margin) pair per instance.
//
// The monitored process q sends heartbeat m_i at σ_i = i·η. At the
// beginning of cycle k the detector computes the freshness point
//
//   τ_{k+1} = σ_{k+1} + δ_{k+1},   δ_{k+1} = pred_{k+1} + sm_{k+1}
//
// using the observations received so far. At any time t ∈ [τ_i, τ_{i+1})
// the detector trusts q iff it has received some heartbeat m_k with k ≥ i;
// otherwise it suspects q. Heartbeats may be lost and reordered: the
// observation list is kept in arrival order and a stale heartbeat (seq
// below the current freshness index) does not restore trust.
//
// Since the DetectorBank refactor this class is a thin single-lane wrapper
// over a 1-wide fd::DetectorBank — the batched engine is the canonical
// execution path (see docs/detector_bank.md); this wrapper keeps the
// one-detector API for examples, the UDP live monitor, and tests.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fd/detector_bank.hpp"
#include "fd/safety_margin.hpp"
#include "forecast/predictor.hpp"
#include "sim/simulator.hpp"

namespace fdqos::fd {

class FreshnessDetector final : public DetectorBank {
 public:
  struct Config {
    Duration eta = Duration::seconds(1);   // monitored process's period η
    net::NodeId monitored = 0;             // heartbeat source to watch
    TimePoint epoch = TimePoint::origin();  // σ_i = epoch + i·η
    // Timeout used while no observation has arrived yet (cold start); the
    // adaptive δ takes over from the first heartbeat.
    Duration cold_start_timeout = Duration::seconds(1);
    std::string name;  // display name, e.g. "LAST+JAC_low"
  };

  // observer(time, suspecting): fired on every trust <-> suspect transition.
  using SuspectObserver = std::function<void(TimePoint, bool)>;

  FreshnessDetector(sim::Simulator& simulator, Config config,
                    std::unique_ptr<forecast::Predictor> predictor,
                    std::unique_ptr<SafetyMargin> margin);

  void set_observer(SuspectObserver observer) {
    DetectorBank::set_observer(
        [cb = std::move(observer)](std::size_t, TimePoint t, bool suspecting) {
          cb(t, suspecting);
        });
  }

  const std::string& name() const { return lane_name(0); }
  bool suspecting() const { return lane_suspecting(0); }
  // Index i of the current freshness window [τ_i, τ_{i+1}).
  std::int64_t freshness_index() const { return lane_freshness_index(0); }
  // Current timeout δ = pred + sm, in milliseconds.
  double current_delta_ms() const { return lane_delta_ms(0); }

  const forecast::Predictor& predictor() const { return group_predictor(0); }
  const SafetyMargin& margin() const { return lane_margin(0); }
};

}  // namespace fdqos::fd
