// FreshnessDetector — the paper's modular push-style crash failure
// detector (§2.3), one (predictor, safety margin) pair per instance.
//
// The monitored process q sends heartbeat m_i at σ_i = i·η. At the
// beginning of cycle k the detector computes the freshness point
//
//   τ_{k+1} = σ_{k+1} + δ_{k+1},   δ_{k+1} = pred_{k+1} + sm_{k+1}
//
// using the observations received so far. At any time t ∈ [τ_i, τ_{i+1})
// the detector trusts q iff it has received some heartbeat m_k with k ≥ i;
// otherwise it suspects q. Heartbeats may be lost and reordered: the
// observation list is kept in arrival order and a stale heartbeat (seq
// below the current freshness index) does not restore trust.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fd/safety_margin.hpp"
#include "forecast/predictor.hpp"
#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::fd {

class FreshnessDetector final : public runtime::Layer {
 public:
  struct Config {
    Duration eta = Duration::seconds(1);   // monitored process's period η
    net::NodeId monitored = 0;             // heartbeat source to watch
    TimePoint epoch = TimePoint::origin();  // σ_i = epoch + i·η
    // Timeout used while no observation has arrived yet (cold start); the
    // adaptive δ takes over from the first heartbeat.
    Duration cold_start_timeout = Duration::seconds(1);
    std::string name;  // display name, e.g. "LAST+JAC_low"
  };

  // observer(time, suspecting): fired on every trust <-> suspect transition.
  using SuspectObserver = std::function<void(TimePoint, bool)>;

  FreshnessDetector(sim::Simulator& simulator, Config config,
                    std::unique_ptr<forecast::Predictor> predictor,
                    std::unique_ptr<SafetyMargin> margin);

  void set_observer(SuspectObserver observer) { observer_ = std::move(observer); }

  void start() override;
  void handle_up(const net::Message& msg) override;

  const std::string& name() const { return config_.name; }
  bool suspecting() const { return suspecting_; }
  // Highest heartbeat sequence received so far (0 = none).
  std::int64_t max_seq() const { return max_seq_; }
  // Index i of the current freshness window [τ_i, τ_{i+1}).
  std::int64_t freshness_index() const { return freshness_index_; }
  // Current timeout δ = pred + sm, in milliseconds.
  double current_delta_ms() const;
  std::size_t observations() const { return observations_; }

  const forecast::Predictor& predictor() const { return *predictor_; }
  const SafetyMargin& margin() const { return *margin_; }

 private:
  void begin_cycle(std::int64_t k);
  void freshness_reached(std::int64_t index);
  void update_suspicion();

  sim::Simulator& simulator_;
  Config config_;
  std::unique_ptr<forecast::Predictor> predictor_;
  std::unique_ptr<SafetyMargin> margin_;
  SuspectObserver observer_;

  std::int64_t max_seq_ = 0;
  std::int64_t freshness_index_ = 0;
  bool suspecting_ = false;
  std::size_t observations_ = 0;
};

}  // namespace fdqos::fd
