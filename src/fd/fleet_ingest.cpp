#include "fd/fleet_ingest.hpp"

#include "common/assert.hpp"

namespace fdqos::fd {

FleetIngest::FleetIngest(FleetBank& fleet, std::size_t capacity)
    : fleet_(fleet), capacity_(capacity) {
  FDQOS_REQUIRE(fleet.members() >= capacity);
  slot_of_.reserve(capacity);
}

bool FleetIngest::offer(net::NodeId source, std::int64_t seq) {
  auto it = slot_of_.find(source);
  if (it == slot_of_.end()) {
    if (slot_of_.size() >= capacity_) {
      ++counters_.dropped_capacity;
      return false;
    }
    it = slot_of_.emplace(source, static_cast<std::uint32_t>(slot_of_.size()))
             .first;
  }
  batch_.endpoint.push_back(it->second);
  batch_.seq.push_back(seq);
  return true;
}

void FleetIngest::flush() {
  if (batch_.size() == 0) return;
  fleet_.ingest_columns(batch_);
  batch_.clear();
}

std::size_t FleetIngest::slot_of(net::NodeId source) const {
  auto it = slot_of_.find(source);
  return it == slot_of_.end() ? capacity_ : it->second;
}

}  // namespace fdqos::fd
