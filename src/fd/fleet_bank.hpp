// FleetBank — a bank-of-banks: fleet-scale monitoring of M endpoints.
//
// The paper evaluates one monitored Italy→Japan process; production
// failure detectors watch whole fleets (Dobre et al., PAPERS.md). The
// FleetBank owns one DetectorBank per monitored endpoint and extends the
// bank's coalescing idiom one level up, so a shard of tens of thousands of
// endpoints costs the simulator what a single bank used to:
//
//   * ONE cycle-begin event per shard per cycle. All endpoints share the
//     heartbeat epoch and period η, so their σ boundaries coincide; the
//     shard tick walks every member (arena-packed, nearly sequential
//     memory) instead of each bank scheduling its own event.
//   * ONE armed freshness-timer event per shard. Members run in
//     DetectorBank::TimerHost mode: they report their earliest pending
//     deadline into the fleet's (due, seq, member) min-heap, and the fleet
//     keeps a single armed event at the heap front — the same
//     "re-arm only if earlier" rule the bank applies to its lanes.
//   * Columnar heartbeat ingestion: a coordinator batches arrivals across
//     endpoints into index-aligned (endpoint, seq) columns and hands the
//     shard one ingest_columns() call per batch; each entry takes the
//     bank's observe_heartbeat() fast path (no message construction, no
//     allocation in steady state).
//
// Per-endpoint semantics are *identical* to a standalone DetectorBank —
// members never share estimator or suspicion state, only timer plumbing.
// The fleet equivalence suite (tests/fd/fleet_bank_test.cpp, `ctest -L
// fleet`) pins M independent single-endpoint runs ≡ one FleetBank run
// byte-for-byte. See docs/fleet.md.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "fd/detector_bank.hpp"
#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::fd {

class FleetBank final : public runtime::Layer, private DetectorBank::TimerHost {
 public:
  struct Config {
    Duration eta = Duration::seconds(1);    // shared heartbeat period
    TimePoint epoch = TimePoint::origin();  // shared σ_i = epoch + i·η
    Duration cold_start_timeout = Duration::seconds(1);
    std::string name = "fleet";     // log/telemetry label for the shard
    std::size_t expected_endpoints = 0;  // capacity hint for the heaps
  };

  // Shard-level engine counters; the experiment flushes them into the
  // fdqos::obs registry (fdqos_fleet_* families) at run end.
  struct Counters {
    // Heartbeats ingested via the route/ingest paths. In per-node
    // attachment mode deliveries bypass the fleet (members sit on their own
    // endpoint stacks); the experiment accounts them from the link stats
    // when draining a shard, so the obs counter covers both modes.
    std::uint64_t heartbeats = 0;
    std::uint64_t batches = 0;        // columnar batches ingested
    std::uint64_t timer_events = 0;   // shard armed events actually fired
    std::uint64_t member_checks = 0;  // member deadline checks dispatched
    // Member simulator events avoided by the shard-level tick and timer
    // (each member would otherwise schedule its own).
    std::uint64_t coalesced_events = 0;
    std::uint64_t unroutable = 0;  // heartbeats from unregistered sources
    std::uint64_t malformed = 0;   // heartbeats with out-of-range seq

    void add(const Counters& other);
  };

  // One columnar heartbeat batch: index-aligned endpoint/seq arrays, the
  // shard-local half of a scatter by endpoint→shard.
  struct HeartbeatColumns {
    std::vector<std::uint32_t> endpoint;  // member index within this shard
    std::vector<std::int64_t> seq;

    void clear() {
      endpoint.clear();
      seq.clear();
    }
    std::size_t size() const { return endpoint.size(); }
  };

  FleetBank(sim::Simulator& simulator, Config config);

  // Assembly, before start(): one member bank per monitored endpoint.
  // `monitored` keys handle_up routing (must be unique for routing to
  // work; per-node attachment mode — where each member is attached to its
  // own endpoint's stack — never routes and may reuse ids). The member is
  // arena-owned by the fleet; configure its groups/lanes before start().
  DetectorBank& add_member(net::NodeId monitored, std::string name = "");

  std::size_t members() const { return members_.size(); }
  DetectorBank& member(std::size_t e);
  const DetectorBank& member(std::size_t e) const;

  // Starts any member not already started by its own node stack, then
  // schedules the shared cycle tick. Call exactly once, after every
  // member's stack has started (the experiment starts members via their
  // ProcessNodes; the raw-coordinator bench lets start() do it).
  void start() override;

  // Routed ingestion: heartbeats are routed to the member registered for
  // msg.from; anything else falls through to deliver_up. Wild sequence
  // numbers (negative, or large enough that epoch + η·seq overflows) are
  // counted as malformed and dropped — network input is data, never a
  // contract violation.
  void handle_up(const net::Message& msg) override;

  // Direct ingestion fast paths (raw-coordinator mode). `endpoint` is the
  // member index — out of range is a caller bug (FDQOS_REQUIRE).
  void ingest(std::size_t endpoint, std::int64_t seq);
  void ingest_columns(const HeartbeatColumns& batch);

  std::size_t total_lanes() const;
  std::size_t suspecting_count() const;
  const Counters& counters() const { return counters_; }
  // Aggregate of every member's engine counters.
  DetectorBank::Counters member_counters() const;

  // Approximate resident bytes for the whole shard: arena blocks plus the
  // fleet-level containers. Predictor/margin internals behind virtual
  // interfaces are not visible from here, so treat this as a lower bound
  // (the bench reports it as bytes/endpoint).
  std::size_t memory_bytes() const;

  TimePoint next_timer_deadline() const { return armed_.time(); }

 private:
  struct MemberDue {
    TimePoint due;
    std::uint64_t seq;  // push order — stable tie-break
    std::uint32_t member;
  };
  struct MemberDueAfter {
    bool operator()(const MemberDue& a, const MemberDue& b) const {
      if (a.due != b.due) return a.due > b.due;  // min-heap
      return a.seq > b.seq;
    }
  };

  void member_deadline_changed(std::size_t member, TimePoint due) override;
  void cycle_tick(std::int64_t k);
  void arm();
  void fired();
  bool seq_in_range(std::int64_t seq) const;

  sim::Simulator& simulator_;
  Config config_;
  common::MonotonicArena arena_;
  std::vector<DetectorBank*> members_;  // arena-owned
  std::unordered_map<net::NodeId, std::size_t> endpoint_of_;  // routing

  // Coalesced member deadlines: vector min-heap + one armed event, the
  // bank's own expiry idiom lifted one level.
  std::vector<MemberDue> due_heap_;
  std::uint64_t next_due_seq_ = 0;
  sim::EventHandle armed_;

  bool started_ = false;
  Counters counters_;
};

}  // namespace fdqos::fd
