// DetectorBank — a batched columnar engine for N freshness detectors over
// one heartbeat arrival stream.
//
// The paper's fair-comparison design (§4) runs 30 detectors — 5 predictors
// × 6 safety margins — over the identical arrival process. Instantiating 30
// independent FreshnessDetectors recomputes each of the 5 distinct predictor
// states 6 times per heartbeat (including the ARIMA refits) and schedules
// 2 simulator events per detector per cycle. The bank collapses that
// duplication:
//
//   * each *distinct* predictor is owned exactly once, behind a
//     forecast::SharedPredictor handle — one observe() and one real
//     predict() evaluation per heartbeat per group;
//   * the per-(predictor, margin) state lives in struct-of-arrays lanes
//     (margin, freshness index, suspect flag, armed δ), updated in one
//     pass per heartbeat;
//   * freshness-point expiries feed one ordered timer queue per bank, with
//     a single armed simulator event, instead of one event per detector —
//     and one cycle-begin event per bank instead of one per detector.
//
// Semantics are *identical* to N independent FreshnessDetectors: lanes are
// independent given the shared stream, and the shared predictor state is
// byte-identical to each lane's private copy (same observations, same
// deterministic update). The bank-vs-legacy equivalence suite
// (tests/exp/bank_equivalence_test.cpp) and the chaos golden CSVs pin this
// guarantee. See docs/detector_bank.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fd/safety_margin.hpp"
#include "forecast/shared_predictor.hpp"
#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::fd {

class DetectorBank : public runtime::Layer {
 public:
  struct Config {
    Duration eta = Duration::seconds(1);   // monitored process's period η
    net::NodeId monitored = 0;             // heartbeat source to watch
    TimePoint epoch = TimePoint::origin();  // σ_i = epoch + i·η
    // Timeout used while no observation has arrived yet (cold start); the
    // adaptive δ takes over from the first heartbeat.
    Duration cold_start_timeout = Duration::seconds(1);
    std::string name = "bank";  // log/telemetry label for the whole bank
  };

  // Engine counters, cheap plain integers on the single-threaded hot path;
  // the experiment flushes them into the fdqos::obs registry at run end.
  struct Counters {
    std::uint64_t predictor_updates = 0;  // observe() on shared predictors
    std::uint64_t lane_updates = 0;       // per-lane margin+suspicion passes
    // Per-detector simulator events avoided by the shared cycle tick and
    // the ordered expiry queue (legacy schedules one begin event and one
    // freshness event per detector per cycle).
    std::uint64_t coalesced_timers = 0;
    std::uint64_t timer_events = 0;     // armed timer events actually fired
    std::uint64_t dispatch_errors = 0;  // lane updates/observers that threw

    void add(const Counters& other);
  };

  // observer(lane, time, suspecting): fired on every trust <-> suspect
  // transition of one lane. Exceptions are contained to the offending lane
  // (counted in dispatch_errors), mirroring the MultiPlexer's fan-out
  // isolation — one faulty consumer must not starve its sibling lanes.
  using LaneObserver =
      std::function<void(std::size_t lane, TimePoint t, bool suspecting)>;

  // Timer host for bank-of-banks coalescing (fd::FleetBank). A hosted bank
  // never arms its own simulator event and never schedules its own
  // cycle-begin tick; instead it reports its earliest pending freshness
  // deadline through member_deadline_changed(), and the host drives
  // host_begin_cycle() / host_timer_check() at the right instants — one
  // armed event and one cycle tick per *shard* instead of per bank.
  class TimerHost {
   public:
    virtual ~TimerHost() = default;
    // The member's earliest pending deadline dropped below every deadline
    // reported since the host's last host_timer_check() on this member.
    virtual void member_deadline_changed(std::size_t member,
                                         TimePoint due) = 0;
  };

  DetectorBank(sim::Simulator& simulator, Config config);

  // Assembly, before start(): register each distinct predictor once, then
  // hang margin lanes off it. Returns the group/lane index.
  std::size_t add_group(std::unique_ptr<forecast::Predictor> predictor);
  std::size_t add_lane(std::string name, std::size_t group,
                       std::unique_ptr<SafetyMargin> margin);

  void set_observer(LaneObserver observer) { observer_ = std::move(observer); }

  // Enter hosted mode (before start()): `member` is this bank's index at
  // the host. In hosted mode start() computes cycle 0 inline but schedules
  // nothing; the host owns all simulator events.
  void set_timer_host(TimerHost* host, std::size_t member);

  void start() override;
  void handle_up(const net::Message& msg) override;

  // Heartbeat fast path: identical semantics to handle_up for a heartbeat
  // with this sequence number from the monitored node, minus the message
  // filter — the caller (FleetBank's router / columnar ingest) has already
  // established provenance. This is the fleet's allocation-free
  // steady-state entry.
  void observe_heartbeat(std::int64_t seq);

  // Hosted-mode entry points (TimerHost side).
  //
  // host_begin_cycle(k): exactly begin_cycle(k) minus the self-scheduling
  // of cycle k+1 — the host's shared tick calls every member in turn.
  void host_begin_cycle(std::int64_t k);
  // host_timer_check(): called whenever a deadline this member reported
  // comes due at the host. Pops and dispatches every due freshness point
  // (if any — a stale entry is a no-op), then re-reports the new earliest
  // deadline, so every consumed host-queue entry is replaced and no
  // deadline is ever lost.
  void host_timer_check();
  // Earliest pending freshness deadline; TimePoint::max() when idle.
  TimePoint earliest_expiry() const;
  bool started() const { return started_; }

  // Capacity hints for allocation-free steady state (fleet assembly sizes
  // these from width × cycles-in-flight before the run starts).
  void reserve_lanes(std::size_t lanes);
  void reserve_expiries(std::size_t n) { expiries_.reserve(n); }

  std::size_t width() const { return margins_.size(); }
  std::size_t group_count() const { return groups_.size(); }

  // Bank-level state: every lane sees the same stream, so the highest
  // heartbeat sequence (0 = none) and the observation count are shared.
  std::int64_t max_seq() const { return max_seq_; }
  std::size_t observations() const { return observations_; }

  // Per-lane state.
  const std::string& lane_name(std::size_t lane) const;
  bool lane_suspecting(std::size_t lane) const;
  // Index i of the lane's current freshness window [τ_i, τ_{i+1}).
  std::int64_t lane_freshness_index(std::size_t lane) const;
  // Current timeout δ = pred + sm of the lane, in milliseconds.
  double lane_delta_ms(std::size_t lane) const;
  std::size_t lane_group(std::size_t lane) const;
  const SafetyMargin& lane_margin(std::size_t lane) const;
  const forecast::Predictor& group_predictor(std::size_t group) const;
  const forecast::SharedPredictor& shared_predictor(std::size_t group) const;

  std::size_t suspecting_count() const;
  const Counters& counters() const { return counters_; }

  // Deadline of the single armed freshness-timer event; TimePoint::max()
  // while no timer is armed. The obs plane renders `deadline − now` as the
  // freshness-timer lag gauge (how far away the next possible suspicion
  // is), so a live scrape can see a detector coasting vs. about to fire.
  // Hosted banks have no armed event of their own; their deadline is the
  // front of the expiry queue (the host fires at or before it).
  TimePoint next_timer_deadline() const {
    return host_ != nullptr ? earliest_expiry() : armed_.time();
  }

 private:
  struct Expiry {
    TimePoint due;
    std::uint64_t seq;  // push order — stable tie-break, matches the
                        // simulator's insertion-order semantics
    std::int64_t index;
    std::uint32_t lane;
  };
  struct ExpiryAfter {
    bool operator()(const Expiry& a, const Expiry& b) const {
      if (a.due != b.due) return a.due > b.due;  // min-heap
      return a.seq > b.seq;
    }
  };

  void begin_cycle(std::int64_t k);
  void push_expiry(TimePoint due, std::int64_t index, std::size_t lane);
  void arm_timer();
  void timer_fired();
  void pop_due(TimePoint now);
  void freshness_reached(std::size_t lane, std::int64_t index);
  void update_suspicion(std::size_t lane);

  sim::Simulator& simulator_;
  Config config_;
  LaneObserver observer_;

  // Predictor groups: one SharedPredictor per distinct predictor config.
  std::vector<std::unique_ptr<forecast::SharedPredictor>> groups_;

  // Lane state, struct-of-arrays: index-aligned across all vectors.
  std::vector<std::string> lane_names_;
  std::vector<std::uint32_t> lane_group_;
  std::vector<std::unique_ptr<SafetyMargin>> margins_;
  std::vector<std::int64_t> freshness_index_;
  std::vector<std::uint8_t> suspecting_;
  std::vector<double> armed_delta_ms_;  // δ used for the last armed τ

  // Coalesced freshness timers: one ordered queue (a binary min-heap over
  // a plain vector so capacity can be reserved up front — the fleet's
  // allocation-free steady state), one armed sim event. The (due, seq)
  // comparator totally orders entries, so heap pops are deterministic.
  std::vector<Expiry> expiries_;
  std::uint64_t next_expiry_seq_ = 0;
  sim::EventHandle armed_;  // armed_.time() is the deadline; max() = idle

  // Hosted mode (see TimerHost): the host pointer, this bank's member
  // index there, and the lowest deadline reported since the last check —
  // arm_timer() reports only when the front undercuts it, mirroring the
  // solo "re-arm only if earlier" rule.
  TimerHost* host_ = nullptr;
  std::size_t host_member_ = 0;
  TimePoint host_reported_ = TimePoint::max();

  std::int64_t max_seq_ = 0;
  std::size_t observations_ = 0;
  bool started_ = false;
  Counters counters_;
};

}  // namespace fdqos::fd
