#include "fd/nfd_config.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "forecast/basic_predictors.hpp"

namespace fdqos::fd {

double nfd_miss_probability(const LinkCharacterization& link, double alpha_ms) {
  FDQOS_REQUIRE(link.loss_probability >= 0.0 && link.loss_probability <= 1.0);
  FDQOS_REQUIRE(link.delay_var_ms2 >= 0.0);
  const double x = alpha_ms - link.delay_mean_ms;
  if (x <= 0.0) return 1.0;  // Cantelli gives nothing below the mean
  const double cantelli =
      link.delay_var_ms2 / (link.delay_var_ms2 + x * x);
  return link.loss_probability + (1.0 - link.loss_probability) * cantelli;
}

std::optional<NfdEConfiguration> configure_nfd_e(
    const QosRequirements& requirements, const LinkCharacterization& link) {
  const double td_u = requirements.max_detection_time.to_millis_double();
  const double tmr_l = requirements.min_mistake_recurrence.to_millis_double();
  const double tm_u = requirements.max_mistake_duration.to_millis_double();
  FDQOS_REQUIRE(td_u > 0.0 && tmr_l > 0.0 && tm_u > 0.0);

  // Scan candidate periods from large to small; the first feasible η is the
  // message-optimal one. Feasibility is not monotone in η (the accuracy
  // constraint relaxes with larger η, the detection constraint tightens),
  // hence the scan rather than a bisection.
  const double eta_hi = td_u;  // α must stay positive
  const int kSteps = 4096;
  for (int i = kSteps; i >= 1; --i) {
    const double eta = eta_hi * static_cast<double>(i) / kSteps;
    const double alpha = td_u - eta;
    if (alpha <= link.delay_mean_ms) continue;  // Cantelli needs α > E[D]
    // Mistake-duration: a wrong suspicion at τ_i is corrected by the next
    // heartbeat at the latest, which arrives by σ_{i+1} + E[D]; measured
    // from τ_i = σ_i + α that is η + E[D] − α.
    const double tm_bound = eta + link.delay_mean_ms - alpha;
    if (tm_bound > tm_u) continue;
    const double p_miss = nfd_miss_probability(link, alpha);
    if (p_miss > eta / tmr_l) continue;

    NfdEConfiguration config;
    config.eta = Duration::from_millis_double(eta);
    config.alpha = Duration::from_millis_double(alpha);
    config.margin_ms = alpha - link.delay_mean_ms;
    config.miss_probability = p_miss;
    config.detection_bound = Duration::from_millis_double(eta + alpha);
    config.mistake_recurrence_bound =
        Duration::from_millis_double(p_miss > 0.0 ? eta / p_miss : 1e15);
    return config;
  }
  return std::nullopt;
}

FdSpec make_nfd_e_spec(const NfdEConfiguration& config) {
  FdSpec spec;
  spec.name = "NFD-E";
  spec.predictor_label = "Mean";
  spec.margin_label = "CONST";
  spec.make_predictor = [] {
    return std::make_unique<forecast::MeanPredictor>();
  };
  const double margin_ms = config.margin_ms;
  spec.make_margin = [margin_ms] {
    return std::make_unique<ConstantSafetyMargin>(margin_ms);
  };
  return spec;
}

}  // namespace fdqos::fd
