// FleetIngest — dynamic endpoint admission in front of a FleetBank.
//
// A FleetBank's member set is fixed at start() (the shard tick and timer
// heap are sized around it), but a live ingest daemon (`fdqos serve`)
// learns its monitored fleet from the traffic itself: the first heartbeat
// from an unknown source claims the next free member slot. This front-end
// owns that mapping. The daemon pre-adds `capacity` members before
// start(); FleetIngest hands slots out on first sight and buffers
// (slot, seq) pairs into a columnar batch the daemon flushes once per
// receive batch — so the bank sees exactly the ingest_columns() fast path
// the fleet bench exercises. Heartbeats beyond capacity are counted and
// dropped (the FleetBank contract: wire input is data, never an abort).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "fd/fleet_bank.hpp"

namespace fdqos::fd {

class FleetIngest {
 public:
  struct Counters {
    std::uint64_t dropped_capacity = 0;  // heartbeats refused: no free slot
  };

  // `capacity` member slots must already exist on `fleet` (the daemon adds
  // them before start()); FleetIngest never adds members itself.
  FleetIngest(FleetBank& fleet, std::size_t capacity);

  // Offers one heartbeat. Known sources and admissible new ones buffer
  // into the pending batch and return true; once every slot is claimed,
  // unknown sources are counted as dropped and refused.
  bool offer(net::NodeId source, std::int64_t seq);

  // Hands the buffered batch to the fleet (one ingest_columns() call) and
  // clears it. No-op on an empty batch.
  void flush();

  std::size_t pending() const { return batch_.size(); }
  std::size_t admitted() const { return slot_of_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Counters& counters() const { return counters_; }
  // Slot of an admitted source, or capacity() if never admitted.
  std::size_t slot_of(net::NodeId source) const;

 private:
  FleetBank& fleet_;
  std::size_t capacity_;
  std::unordered_map<net::NodeId, std::uint32_t> slot_of_;
  FleetBank::HeartbeatColumns batch_;
  Counters counters_;
};

}  // namespace fdqos::fd
