#include "fd/phi_accrual.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"
#include "stats/normal.hpp"

namespace fdqos::fd {

// Intervals required before the normal approximation is trusted.
constexpr std::size_t kMinSamples = 5;

PhiAccrualDetector::PhiAccrualDetector(sim::Simulator& simulator,
                                       Config config)
    : simulator_(simulator), config_(std::move(config)) {
  FDQOS_REQUIRE(config_.threshold > 0.0);
  FDQOS_REQUIRE(config_.window >= 2);
  FDQOS_REQUIRE(config_.min_stddev_ms > 0.0);
  if (config_.name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "PHI(%g)", config_.threshold);
    config_.name = buf;
  }
  ring_.reserve(config_.window);
}

void PhiAccrualDetector::start() {
  // Cold start: no interval estimate yet, arm the fallback timeout.
  crossing_ = simulator_.schedule_after(config_.cold_start_timeout,
                                        [this] { on_crossing(); });
}

double PhiAccrualDetector::interval_mean_ms() const {
  const std::size_t n = std::min(count_, config_.window);
  return n > 0 ? sum_ / static_cast<double>(n) : 0.0;
}

double PhiAccrualDetector::interval_stddev_ms() const {
  const std::size_t n = std::min(count_, config_.window);
  if (n < 2) return config_.min_stddev_ms;
  const double mean = sum_ / static_cast<double>(n);
  const double var =
      std::max(0.0, sum_sq_ / static_cast<double>(n) - mean * mean);
  return std::max(std::sqrt(var), config_.min_stddev_ms);
}

void PhiAccrualDetector::record_interval(double ms) {
  if (count_ >= config_.window) {
    const double evicted = ring_[count_ % config_.window];
    sum_ -= evicted;
    sum_sq_ -= evicted * evicted;
    ring_[count_ % config_.window] = ms;
  } else {
    ring_.push_back(ms);
  }
  sum_ += ms;
  sum_sq_ += ms * ms;
  ++count_;
}

double PhiAccrualDetector::phi() const {
  if (arrivals_ == 0 || count_ == 0) return 0.0;
  const double since_ms =
      (simulator_.now() - last_arrival_).to_millis_double();
  const double z =
      (since_ms - interval_mean_ms()) / interval_stddev_ms();
  const double p_later = stats::normal_tail(z);
  if (p_later <= 0.0) return 40.0;  // beyond double-precision tail
  return -std::log10(p_later);
}

void PhiAccrualDetector::arm_crossing_timer() {
  crossing_.cancel();
  // Until a handful of intervals exist, the σ estimate is meaningless (it
  // sits on the floor) and would hair-trigger the crossing; stay on the
  // cold-start timeout while warming up.
  if (count_ < kMinSamples) {
    crossing_ = simulator_.schedule_after(config_.cold_start_timeout,
                                          [this] { on_crossing(); });
    return;
  }
  // φ(t) ≥ Φ exactly when t − t_last ≥ μ + σ·z with
  // z = Φ_N⁻¹(1 − 10^−Φ); also never fire before the next heartbeat is
  // even possible (elapsed ≥ 0 by construction).
  const double p = std::pow(10.0, -config_.threshold);
  const double z = stats::inverse_normal_cdf(1.0 - p);
  const double wait_ms = interval_mean_ms() + z * interval_stddev_ms();
  const TimePoint when =
      last_arrival_ + Duration::from_millis_double(std::max(wait_ms, 0.0));
  crossing_ = simulator_.schedule_at(std::max(when, simulator_.now()),
                                     [this] { on_crossing(); });
}

void PhiAccrualDetector::on_crossing() { set_suspecting(true); }

void PhiAccrualDetector::set_suspecting(bool suspecting) {
  if (suspecting_ == suspecting) return;
  suspecting_ = suspecting;
  if (observer_) observer_(simulator_.now(), suspecting_);
}

void PhiAccrualDetector::handle_up(const net::Message& msg) {
  if (msg.type != net::MessageType::kHeartbeat ||
      msg.from != config_.monitored) {
    deliver_up(msg);
    return;
  }
  const TimePoint now = simulator_.now();
  if (arrivals_ > 0) {
    const double interval_ms = (now - last_arrival_).to_millis_double();
    // An interval that dwarfs the current estimate spans a known anomaly —
    // a crash gap, not jitter. Recording a single 30 s down-time would
    // poison the window's μ/σ for hundreds of heartbeats (the paper's
    // detectors never face this: their obs list holds delays, not gaps).
    const bool anomalous_gap =
        count_ >= kMinSamples && interval_ms > 3.0 * interval_mean_ms();
    if (!anomalous_gap) record_interval(interval_ms);
  }
  last_arrival_ = now;
  ++arrivals_;
  set_suspecting(false);
  arm_crossing_timer();
}

}  // namespace fdqos::fd
