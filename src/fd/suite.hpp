// The paper's failure-detector family: 5 predictors × 6 safety margins
// (Tables 1 and 2), plus the NFD-E constant-margin baseline of Chen et al.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fd/safety_margin.hpp"
#include "forecast/arima/arima_predictor.hpp"
#include "forecast/predictor.hpp"

namespace fdqos::fd {

// Paper parameter choices.
struct PaperParams {
  // Table 1 — safety margins.
  std::array<double, 3> gammas{1.0, 2.0, 3.31};  // SM_CI: low, med, high
  std::array<double, 3> phis{1.0, 2.0, 4.0};     // SM_JAC: low, med, high
  double jacobson_alpha = 0.25;                  // α = 1/4 (Jacobson [13])
  // Table 2 — predictors.
  std::size_t winmean_window = 10;
  double lpf_beta = 0.125;  // β = 1/8
  forecast::ArimaOrder arima_order{2, 1, 1};
  std::size_t n_arima = 1000;  // refit cadence
};

struct FdSpec {
  std::string name;             // e.g. "Arima+CI_low"
  std::string predictor_label;  // e.g. "Arima" (figure series label)
  std::string margin_label;     // e.g. "CI_low" (figure x-axis label)
  // Sharing key for the DetectorBank: specs with the same non-empty key
  // promise that make_predictor() yields behaviourally identical predictors,
  // so the bank evaluates one shared instance for all of them. Empty = never
  // shared (a private predictor group per lane). Must encode every parameter
  // that changes forecasts, e.g. "Arima(2,1,1)/1000".
  std::string predictor_key;
  forecast::PredictorFactory make_predictor;
  SafetyMarginFactory make_margin;
};

// Figure ordering used throughout the benches (matches the paper's plots).
std::vector<std::string> paper_predictor_labels();  // Arima, Last, LPF, Mean, WinMean
std::vector<std::string> paper_margin_labels();     // CI_low..JAC_high

// One factory per paper predictor, keyed by its figure label.
forecast::PredictorFactory make_paper_predictor(const std::string& label,
                                                const PaperParams& params = {});
// Canonical FdSpec::predictor_key for a paper predictor: the figure label
// plus every forecast-affecting parameter, e.g. "Arima(2,1,1)/1000".
std::string paper_predictor_key(const std::string& label,
                                const PaperParams& params = {});
// One factory per paper margin, keyed by its figure label.
SafetyMarginFactory make_paper_margin(const std::string& label,
                                      const PaperParams& params = {});

// The full 30-detector suite, predictor-major in figure order.
std::vector<FdSpec> make_paper_suite(const PaperParams& params = {});

// NFD-E-style baselines: constant safety margin (value from offline QoS
// computation) under each paper predictor. Chen et al.'s NFD-E is the
// MEAN + constant entry.
std::vector<FdSpec> make_constant_margin_suite(double margin_ms,
                                               const PaperParams& params = {});

}  // namespace fdqos::fd
