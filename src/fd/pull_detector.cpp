#include "fd/pull_detector.hpp"

#include "common/assert.hpp"

namespace fdqos::fd {

PullDetector::PullDetector(sim::Simulator& simulator, Config config,
                           std::unique_ptr<forecast::Predictor> rtt_predictor,
                           std::unique_ptr<SafetyMargin> margin)
    : simulator_(simulator),
      config_(std::move(config)),
      predictor_(std::move(rtt_predictor)),
      margin_(std::move(margin)) {
  FDQOS_REQUIRE(config_.eta > Duration::zero());
  FDQOS_REQUIRE(predictor_ != nullptr);
  FDQOS_REQUIRE(margin_ != nullptr);
  if (config_.name.empty()) {
    config_.name = "pull:" + predictor_->name() + "+" + margin_->name();
  }
}

double PullDetector::current_delta_ms() const {
  if (observations_ == 0) return config_.cold_start_timeout.to_millis_double();
  const double delta = predictor_->predict() + margin_->margin();
  return delta > 0.0 ? delta : 0.0;
}

void PullDetector::start() { begin_cycle(0); }

void PullDetector::begin_cycle(std::int64_t k) {
  const std::int64_t next = k + 1;
  const TimePoint sigma_next = config_.epoch + config_.eta * next;
  const TimePoint tau_next =
      sigma_next + Duration::from_millis_double(current_delta_ms());
  // As in FreshnessDetector: a pong landing exactly on τ still counts.
  simulator_.schedule_at(tau_next + Duration::nanos(1),
                         [this, next] { freshness_reached(next); });
  simulator_.schedule_at(sigma_next, [this, next] {
    send_ping(next);
    begin_cycle(next);
  });
}

void PullDetector::send_ping(std::int64_t k) {
  if (config_.max_cycles > 0 && k > config_.max_cycles) return;
  net::Message ping;
  ping.from = config_.self;
  ping.to = config_.monitored;
  ping.type = net::MessageType::kPing;
  ping.seq = k;
  ping.send_time = simulator_.now();
  ++pings_sent_;
  send_down(std::move(ping));
}

void PullDetector::freshness_reached(std::int64_t index) {
  if (index > freshness_index_) freshness_index_ = index;
  update_suspicion();
}

void PullDetector::handle_up(const net::Message& msg) {
  if (msg.type != net::MessageType::kPong || msg.from != config_.monitored) {
    deliver_up(msg);
    return;
  }
  // RTT against our own clock: ping k left at σ_k, the pong returns now. No
  // remote clock is read anywhere — pull's key deployment advantage.
  const TimePoint sigma = config_.epoch + config_.eta * msg.seq;
  double rtt_ms = (simulator_.now() - sigma).to_millis_double();
  if (rtt_ms < 0.0) rtt_ms = 0.0;

  margin_->observe(rtt_ms, predictor_->predict());
  predictor_->observe(rtt_ms);
  ++observations_;

  if (msg.seq > max_pong_) max_pong_ = msg.seq;
  update_suspicion();
}

void PullDetector::update_suspicion() {
  const bool should_suspect = max_pong_ < freshness_index_;
  if (should_suspect == suspecting_) return;
  suspecting_ = should_suspect;
  if (observer_) observer_(simulator_.now(), suspecting_);
}

}  // namespace fdqos::fd
